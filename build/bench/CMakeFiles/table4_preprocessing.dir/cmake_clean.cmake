file(REMOVE_RECURSE
  "CMakeFiles/table4_preprocessing.dir/table4_preprocessing.cc.o"
  "CMakeFiles/table4_preprocessing.dir/table4_preprocessing.cc.o.d"
  "table4_preprocessing"
  "table4_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
