# Empty compiler generated dependencies file for table4_preprocessing.
# This may be replaced when dependencies are built.
