file(REMOVE_RECURSE
  "CMakeFiles/fig03_prefix_stats.dir/fig03_prefix_stats.cc.o"
  "CMakeFiles/fig03_prefix_stats.dir/fig03_prefix_stats.cc.o.d"
  "fig03_prefix_stats"
  "fig03_prefix_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_prefix_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
