# Empty compiler generated dependencies file for fig03_prefix_stats.
# This may be replaced when dependencies are built.
