# Empty dependencies file for fig12_partitioning.
# This may be replaced when dependencies are built.
