file(REMOVE_RECURSE
  "CMakeFiles/fig12_partitioning.dir/fig12_partitioning.cc.o"
  "CMakeFiles/fig12_partitioning.dir/fig12_partitioning.cc.o.d"
  "fig12_partitioning"
  "fig12_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
