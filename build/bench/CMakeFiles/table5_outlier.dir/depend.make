# Empty dependencies file for table5_outlier.
# This may be replaced when dependencies are built.
