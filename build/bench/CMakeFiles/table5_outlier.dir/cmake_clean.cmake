file(REMOVE_RECURSE
  "CMakeFiles/table5_outlier.dir/table5_outlier.cc.o"
  "CMakeFiles/table5_outlier.dir/table5_outlier.cc.o.d"
  "table5_outlier"
  "table5_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
