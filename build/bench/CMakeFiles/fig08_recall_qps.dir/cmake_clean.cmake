file(REMOVE_RECURSE
  "CMakeFiles/fig08_recall_qps.dir/fig08_recall_qps.cc.o"
  "CMakeFiles/fig08_recall_qps.dir/fig08_recall_qps.cc.o.d"
  "fig08_recall_qps"
  "fig08_recall_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_recall_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
