
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/test_dram.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/test_dram.dir/test_dram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ansmet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/et/CMakeFiles/ansmet_et.dir/DependInfo.cmake"
  "/root/repo/build/src/anns/CMakeFiles/ansmet_anns.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/ansmet_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ansmet_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ansmet_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ansmet_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ansmet_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ansmet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
