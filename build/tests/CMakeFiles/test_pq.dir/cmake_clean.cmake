file(REMOVE_RECURSE
  "CMakeFiles/test_pq.dir/test_pq.cc.o"
  "CMakeFiles/test_pq.dir/test_pq.cc.o.d"
  "test_pq"
  "test_pq.pdb"
  "test_pq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
