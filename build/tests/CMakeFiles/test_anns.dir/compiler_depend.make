# Empty compiler generated dependencies file for test_anns.
# This may be replaced when dependencies are built.
