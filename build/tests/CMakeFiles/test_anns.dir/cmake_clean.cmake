file(REMOVE_RECURSE
  "CMakeFiles/test_anns.dir/test_anns.cc.o"
  "CMakeFiles/test_anns.dir/test_anns.cc.o.d"
  "test_anns"
  "test_anns.pdb"
  "test_anns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
