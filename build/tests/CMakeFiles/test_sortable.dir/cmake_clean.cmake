file(REMOVE_RECURSE
  "CMakeFiles/test_sortable.dir/test_sortable.cc.o"
  "CMakeFiles/test_sortable.dir/test_sortable.cc.o.d"
  "test_sortable"
  "test_sortable.pdb"
  "test_sortable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sortable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
