# Empty dependencies file for test_sortable.
# This may be replaced when dependencies are built.
