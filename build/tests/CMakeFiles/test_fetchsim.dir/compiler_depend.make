# Empty compiler generated dependencies file for test_fetchsim.
# This may be replaced when dependencies are built.
