file(REMOVE_RECURSE
  "CMakeFiles/test_fetchsim.dir/test_fetchsim.cc.o"
  "CMakeFiles/test_fetchsim.dir/test_fetchsim.cc.o.d"
  "test_fetchsim"
  "test_fetchsim.pdb"
  "test_fetchsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fetchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
