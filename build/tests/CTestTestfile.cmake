# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_anns[1]_include.cmake")
include("/root/repo/build/tests/test_hnsw[1]_include.cmake")
include("/root/repo/build/tests/test_ivf[1]_include.cmake")
include("/root/repo/build/tests/test_sortable[1]_include.cmake")
include("/root/repo/build/tests/test_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_prefix[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_fetchsim[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_ndp[1]_include.cmake")
include("/root/repo/build/tests/test_pq[1]_include.cmake")
include("/root/repo/build/tests/test_exact[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
