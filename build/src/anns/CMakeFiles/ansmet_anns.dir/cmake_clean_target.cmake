file(REMOVE_RECURSE
  "libansmet_anns.a"
)
