file(REMOVE_RECURSE
  "CMakeFiles/ansmet_anns.dir/bruteforce.cc.o"
  "CMakeFiles/ansmet_anns.dir/bruteforce.cc.o.d"
  "CMakeFiles/ansmet_anns.dir/dataset.cc.o"
  "CMakeFiles/ansmet_anns.dir/dataset.cc.o.d"
  "CMakeFiles/ansmet_anns.dir/hnsw.cc.o"
  "CMakeFiles/ansmet_anns.dir/hnsw.cc.o.d"
  "CMakeFiles/ansmet_anns.dir/ivf.cc.o"
  "CMakeFiles/ansmet_anns.dir/ivf.cc.o.d"
  "CMakeFiles/ansmet_anns.dir/pq.cc.o"
  "CMakeFiles/ansmet_anns.dir/pq.cc.o.d"
  "CMakeFiles/ansmet_anns.dir/scalar.cc.o"
  "CMakeFiles/ansmet_anns.dir/scalar.cc.o.d"
  "libansmet_anns.a"
  "libansmet_anns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_anns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
