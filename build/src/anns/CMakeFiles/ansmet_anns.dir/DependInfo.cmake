
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anns/bruteforce.cc" "src/anns/CMakeFiles/ansmet_anns.dir/bruteforce.cc.o" "gcc" "src/anns/CMakeFiles/ansmet_anns.dir/bruteforce.cc.o.d"
  "/root/repo/src/anns/dataset.cc" "src/anns/CMakeFiles/ansmet_anns.dir/dataset.cc.o" "gcc" "src/anns/CMakeFiles/ansmet_anns.dir/dataset.cc.o.d"
  "/root/repo/src/anns/hnsw.cc" "src/anns/CMakeFiles/ansmet_anns.dir/hnsw.cc.o" "gcc" "src/anns/CMakeFiles/ansmet_anns.dir/hnsw.cc.o.d"
  "/root/repo/src/anns/ivf.cc" "src/anns/CMakeFiles/ansmet_anns.dir/ivf.cc.o" "gcc" "src/anns/CMakeFiles/ansmet_anns.dir/ivf.cc.o.d"
  "/root/repo/src/anns/pq.cc" "src/anns/CMakeFiles/ansmet_anns.dir/pq.cc.o" "gcc" "src/anns/CMakeFiles/ansmet_anns.dir/pq.cc.o.d"
  "/root/repo/src/anns/scalar.cc" "src/anns/CMakeFiles/ansmet_anns.dir/scalar.cc.o" "gcc" "src/anns/CMakeFiles/ansmet_anns.dir/scalar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ansmet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
