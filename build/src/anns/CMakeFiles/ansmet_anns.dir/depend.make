# Empty dependencies file for ansmet_anns.
# This may be replaced when dependencies are built.
