file(REMOVE_RECURSE
  "libansmet_cache.a"
)
