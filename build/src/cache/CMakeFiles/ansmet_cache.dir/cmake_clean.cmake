file(REMOVE_RECURSE
  "CMakeFiles/ansmet_cache.dir/cache.cc.o"
  "CMakeFiles/ansmet_cache.dir/cache.cc.o.d"
  "libansmet_cache.a"
  "libansmet_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
