# Empty compiler generated dependencies file for ansmet_cache.
# This may be replaced when dependencies are built.
