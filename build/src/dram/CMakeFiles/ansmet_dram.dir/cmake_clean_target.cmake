file(REMOVE_RECURSE
  "libansmet_dram.a"
)
