# Empty compiler generated dependencies file for ansmet_dram.
# This may be replaced when dependencies are built.
