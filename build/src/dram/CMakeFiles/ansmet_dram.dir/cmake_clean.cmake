file(REMOVE_RECURSE
  "CMakeFiles/ansmet_dram.dir/controller.cc.o"
  "CMakeFiles/ansmet_dram.dir/controller.cc.o.d"
  "CMakeFiles/ansmet_dram.dir/device.cc.o"
  "CMakeFiles/ansmet_dram.dir/device.cc.o.d"
  "libansmet_dram.a"
  "libansmet_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
