file(REMOVE_RECURSE
  "libansmet_cpu.a"
)
