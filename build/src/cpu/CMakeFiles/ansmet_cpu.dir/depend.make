# Empty dependencies file for ansmet_cpu.
# This may be replaced when dependencies are built.
