file(REMOVE_RECURSE
  "CMakeFiles/ansmet_cpu.dir/host.cc.o"
  "CMakeFiles/ansmet_cpu.dir/host.cc.o.d"
  "libansmet_cpu.a"
  "libansmet_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
