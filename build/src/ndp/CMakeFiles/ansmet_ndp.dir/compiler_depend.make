# Empty compiler generated dependencies file for ansmet_ndp.
# This may be replaced when dependencies are built.
