file(REMOVE_RECURSE
  "libansmet_ndp.a"
)
