
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndp/ndp_unit.cc" "src/ndp/CMakeFiles/ansmet_ndp.dir/ndp_unit.cc.o" "gcc" "src/ndp/CMakeFiles/ansmet_ndp.dir/ndp_unit.cc.o.d"
  "/root/repo/src/ndp/polling.cc" "src/ndp/CMakeFiles/ansmet_ndp.dir/polling.cc.o" "gcc" "src/ndp/CMakeFiles/ansmet_ndp.dir/polling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ansmet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ansmet_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/anns/CMakeFiles/ansmet_anns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
