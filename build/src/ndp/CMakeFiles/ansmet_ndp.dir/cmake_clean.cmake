file(REMOVE_RECURSE
  "CMakeFiles/ansmet_ndp.dir/ndp_unit.cc.o"
  "CMakeFiles/ansmet_ndp.dir/ndp_unit.cc.o.d"
  "CMakeFiles/ansmet_ndp.dir/polling.cc.o"
  "CMakeFiles/ansmet_ndp.dir/polling.cc.o.d"
  "libansmet_ndp.a"
  "libansmet_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
