
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/et/exact.cc" "src/et/CMakeFiles/ansmet_et.dir/exact.cc.o" "gcc" "src/et/CMakeFiles/ansmet_et.dir/exact.cc.o.d"
  "/root/repo/src/et/fetchsim.cc" "src/et/CMakeFiles/ansmet_et.dir/fetchsim.cc.o" "gcc" "src/et/CMakeFiles/ansmet_et.dir/fetchsim.cc.o.d"
  "/root/repo/src/et/layout.cc" "src/et/CMakeFiles/ansmet_et.dir/layout.cc.o" "gcc" "src/et/CMakeFiles/ansmet_et.dir/layout.cc.o.d"
  "/root/repo/src/et/prefix.cc" "src/et/CMakeFiles/ansmet_et.dir/prefix.cc.o" "gcc" "src/et/CMakeFiles/ansmet_et.dir/prefix.cc.o.d"
  "/root/repo/src/et/profile.cc" "src/et/CMakeFiles/ansmet_et.dir/profile.cc.o" "gcc" "src/et/CMakeFiles/ansmet_et.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ansmet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/anns/CMakeFiles/ansmet_anns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
