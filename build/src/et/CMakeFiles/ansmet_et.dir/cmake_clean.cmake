file(REMOVE_RECURSE
  "CMakeFiles/ansmet_et.dir/exact.cc.o"
  "CMakeFiles/ansmet_et.dir/exact.cc.o.d"
  "CMakeFiles/ansmet_et.dir/fetchsim.cc.o"
  "CMakeFiles/ansmet_et.dir/fetchsim.cc.o.d"
  "CMakeFiles/ansmet_et.dir/layout.cc.o"
  "CMakeFiles/ansmet_et.dir/layout.cc.o.d"
  "CMakeFiles/ansmet_et.dir/prefix.cc.o"
  "CMakeFiles/ansmet_et.dir/prefix.cc.o.d"
  "CMakeFiles/ansmet_et.dir/profile.cc.o"
  "CMakeFiles/ansmet_et.dir/profile.cc.o.d"
  "libansmet_et.a"
  "libansmet_et.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_et.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
