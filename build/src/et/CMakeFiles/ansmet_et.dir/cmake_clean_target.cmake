file(REMOVE_RECURSE
  "libansmet_et.a"
)
