# Empty compiler generated dependencies file for ansmet_et.
# This may be replaced when dependencies are built.
