file(REMOVE_RECURSE
  "libansmet_common.a"
)
