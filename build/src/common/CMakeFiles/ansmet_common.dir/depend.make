# Empty dependencies file for ansmet_common.
# This may be replaced when dependencies are built.
