file(REMOVE_RECURSE
  "CMakeFiles/ansmet_common.dir/logging.cc.o"
  "CMakeFiles/ansmet_common.dir/logging.cc.o.d"
  "libansmet_common.a"
  "libansmet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
