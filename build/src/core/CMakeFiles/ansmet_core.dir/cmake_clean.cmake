file(REMOVE_RECURSE
  "CMakeFiles/ansmet_core.dir/experiment.cc.o"
  "CMakeFiles/ansmet_core.dir/experiment.cc.o.d"
  "CMakeFiles/ansmet_core.dir/system.cc.o"
  "CMakeFiles/ansmet_core.dir/system.cc.o.d"
  "CMakeFiles/ansmet_core.dir/trace.cc.o"
  "CMakeFiles/ansmet_core.dir/trace.cc.o.d"
  "libansmet_core.a"
  "libansmet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
