file(REMOVE_RECURSE
  "libansmet_core.a"
)
