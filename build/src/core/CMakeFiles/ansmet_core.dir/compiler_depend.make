# Empty compiler generated dependencies file for ansmet_core.
# This may be replaced when dependencies are built.
