# Empty compiler generated dependencies file for ansmet_layout.
# This may be replaced when dependencies are built.
