file(REMOVE_RECURSE
  "libansmet_layout.a"
)
