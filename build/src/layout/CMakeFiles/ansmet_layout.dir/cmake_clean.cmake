file(REMOVE_RECURSE
  "CMakeFiles/ansmet_layout.dir/partition.cc.o"
  "CMakeFiles/ansmet_layout.dir/partition.cc.o.d"
  "libansmet_layout.a"
  "libansmet_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansmet_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
