/**
 * @file
 * Fetch-simulator tests — the heart of the reproduction:
 *  - losslessness: early termination never rejects an accepted vector,
 *    for every scheme, metric, and dtype;
 *  - savings ordering: ET schemes never fetch more than the full
 *    layout, and the optimized schemes fetch less on prefix-friendly
 *    data;
 *  - the paper's scheme-specific observations (DimET unstable for IP,
 *    BitET wasteful at low dimensionality).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "common/prng.h"
#include "et/fetchsim.h"
#include "et/profile.h"

namespace ansmet::et {
namespace {

using anns::DatasetId;

struct Workload
{
    anns::Dataset ds;
    EtProfile profile;
};

const Workload &
workload(DatasetId id)
{
    static std::map<DatasetId, Workload> cache;
    auto it = cache.find(id);
    if (it == cache.end()) {
        Workload w{anns::makeDataset(id, 1500, 10, 1), {}};
        ProfileConfig cfg;
        cfg.numSamples = 60;
        cfg.maxPairs = 800;
        w.profile = buildProfile(*w.ds.base, w.ds.metric(), cfg);
        it = cache.emplace(id, std::move(w)).first;
    }
    return it->second;
}

std::vector<EtScheme>
allSchemes()
{
    return {EtScheme::kNone,      EtScheme::kDimOnly,
            EtScheme::kBitSerial, EtScheme::kHeuristic,
            EtScheme::kDual,      EtScheme::kOpt};
}

class LosslessTest
    : public ::testing::TestWithParam<std::tuple<DatasetId, EtScheme>>
{
};

TEST_P(LosslessTest, TerminationNeverDropsAcceptedVectors)
{
    const auto [id, scheme] = GetParam();
    const Workload &w = workload(id);
    const FetchSimulator sim(*w.ds.base, w.ds.metric(), scheme,
                             &w.profile);

    for (const auto &q : w.ds.queries) {
        // Use a realistic converged threshold: the 10th-NN distance.
        const auto gt =
            anns::bruteForceKnn(w.ds.metric(), q.data(), *w.ds.base, 10);
        const double threshold = gt.back().dist * 1.0000001;

        for (VectorId v = 0; v < 300; ++v) {
            const FetchResult r = sim.simulate(q.data(), v, threshold);
            const bool truly_accepted =
                anns::distance(w.ds.metric(), q.data(), *w.ds.base, v) <
                threshold;
            EXPECT_EQ(r.accepted, truly_accepted);
            if (r.terminatedEarly) {
                EXPECT_FALSE(truly_accepted)
                    << "scheme " << schemeName(scheme)
                    << " terminated an accepted vector " << v;
            }
            EXPECT_LE(r.lines, sim.fullLines());
            EXPECT_GE(r.lines, 1u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAcrossDatasets, LosslessTest,
    ::testing::Combine(::testing::Values(DatasetId::kSift,
                                         DatasetId::kSpacev,
                                         DatasetId::kDeep,
                                         DatasetId::kGlove,
                                         DatasetId::kGist),
                       ::testing::ValuesIn(allSchemes())),
    [](const auto &info) {
        std::string n = anns::datasetSpec(std::get<0>(info.param)).name +
                        std::string("_") +
                        schemeName(std::get<1>(info.param));
        for (auto &c : n)
            if (c == '+' || c == '-')
                c = '_';
        return n;
    });

/** Mean lines per comparison at a converged threshold. */
double
meanLines(const Workload &w, EtScheme scheme)
{
    const FetchSimulator sim(*w.ds.base, w.ds.metric(), scheme,
                             &w.profile);
    double total = 0.0;
    std::size_t n = 0;
    for (const auto &q : w.ds.queries) {
        const auto gt =
            anns::bruteForceKnn(w.ds.metric(), q.data(), *w.ds.base, 10);
        const double threshold = gt.back().dist;
        for (VectorId v = 0; v < 400; ++v) {
            total += sim.simulate(q.data(), v, threshold).totalLines();
            ++n;
        }
    }
    return total / static_cast<double>(n);
}

TEST(FetchSavings, HybridEtBeatsFullFetchOnL2)
{
    for (const DatasetId id :
         {DatasetId::kSift, DatasetId::kDeep, DatasetId::kGist}) {
        const Workload &w = workload(id);
        const double none = meanLines(w, EtScheme::kNone);
        const double et = meanLines(w, EtScheme::kHeuristic);
        EXPECT_LT(et, none)
            << anns::datasetSpec(id).name << ": ET saved nothing";
    }
}

TEST(FetchSavings, DualAndOptImproveOnFloatData)
{
    // DEEP/GIST: narrow fp32 ranges -> prefix elimination and dual
    // granularity should beat the naive 8-bit heuristic.
    for (const DatasetId id : {DatasetId::kDeep, DatasetId::kGist}) {
        const Workload &w = workload(id);
        const double heur = meanLines(w, EtScheme::kHeuristic);
        const double opt = meanLines(w, EtScheme::kOpt);
        EXPECT_LE(opt, heur * 1.05)
            << anns::datasetSpec(id).name;
    }
}

TEST(FetchSavings, DimOnlyUselessForInnerProduct)
{
    // The paper: unfetched dims can contribute negatives, so
    // NDP-DimET gets no stable bound on GloVe/Txt2Img.
    const Workload &w = workload(DatasetId::kGlove);
    const double none = meanLines(w, EtScheme::kNone);
    const double dim = meanLines(w, EtScheme::kDimOnly);
    EXPECT_GT(dim, none * 0.95)
        << "partial dimensions should save ~nothing under IP";

    // ...while bit-level hybrid ET still works there.
    const double opt = meanLines(w, EtScheme::kOpt);
    EXPECT_LT(opt, none * 0.9);
}

TEST(FetchSavings, BitSerialWastefulAtLowDimensionality)
{
    // SIFT: 128 x 1 bit = 16 B per line -> 75% waste; full data is
    // only 2 lines, so bit-serial fetches *more* lines than NDP-Base.
    const Workload &w = workload(DatasetId::kSift);
    const double none = meanLines(w, EtScheme::kNone);
    const double bits = meanLines(w, EtScheme::kBitSerial);
    EXPECT_GT(bits, none);

    // GIST (960 dims) has enough elements per bit-plane to profit.
    const Workload &g = workload(DatasetId::kGist);
    EXPECT_LT(meanLines(g, EtScheme::kBitSerial),
              meanLines(g, EtScheme::kNone));
}

TEST(FetchSim, InfinityThresholdNeverTerminates)
{
    const Workload &w = workload(DatasetId::kSift);
    const FetchSimulator sim(*w.ds.base, w.ds.metric(), EtScheme::kOpt,
                             &w.profile);
    const auto &q = w.ds.queries[0];
    const FetchResult r = sim.simulate(
        q.data(), 5, std::numeric_limits<double>::infinity());
    EXPECT_FALSE(r.terminatedEarly);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.lines, sim.fullLines());
}

TEST(FetchSim, RangeSimulationCoversSubvectors)
{
    const Workload &w = workload(DatasetId::kGist);
    const FetchSimulator sim(*w.ds.base, w.ds.metric(), EtScheme::kOpt,
                             &w.profile);
    const auto &q = w.ds.queries[0];
    const auto gt =
        anns::bruteForceKnn(w.ds.metric(), q.data(), *w.ds.base, 10);
    const double threshold = gt.back().dist;

    const unsigned dims = w.ds.base->dims();
    for (VectorId v = 0; v < 50; ++v) {
        unsigned total_range = 0;
        for (unsigned d0 = 0; d0 < dims; d0 += 240) {
            const auto r = sim.simulateRange(q.data(), v, threshold, d0,
                                             std::min(d0 + 240, dims));
            total_range += r.lines;
            EXPECT_LE(r.lines, sim.subPlan(240).totalLines());
        }
        // Local ET is weaker: rank-local fetches can only be less
        // effective than the full-vector view, never fetch more than
        // the whole layout split four ways.
        EXPECT_LE(total_range, 4u * sim.subPlan(240).totalLines());
        EXPECT_GE(total_range, 1u);
    }
}

TEST(FetchSim, OutlierVectorsPayBackupOnAccept)
{
    const Workload &w = workload(DatasetId::kSpacev);
    const FetchSimulator sim(*w.ds.base, w.ds.metric(), EtScheme::kOpt,
                             &w.profile);
    const auto *pe = sim.prefixElimination();
    ASSERT_NE(pe, nullptr);

    const auto &q = w.ds.queries[0];
    bool saw_backup = false;
    for (VectorId v = 0; v < static_cast<VectorId>(w.ds.base->size());
         ++v) {
        const auto r = sim.simulate(
            q.data(), v, std::numeric_limits<double>::infinity());
        if (pe->vectorIsOutlier(v)) {
            EXPECT_GT(r.backupLines, 0u);
            saw_backup = true;
        } else {
            EXPECT_EQ(r.backupLines, 0u);
        }
    }
    // With a 0.1% outlier element budget the full set should contain
    // at least one outlier vector.
    (void)saw_backup;
}

TEST(FetchSim, EstimateIsConservative)
{
    const Workload &w = workload(DatasetId::kDeep);
    const FetchSimulator sim(*w.ds.base, w.ds.metric(), EtScheme::kOpt,
                             &w.profile);
    for (const auto &q : w.ds.queries) {
        for (VectorId v = 0; v < 200; ++v) {
            const auto r = sim.simulate(
                q.data(), v, std::numeric_limits<double>::infinity());
            EXPECT_LE(r.estimate, r.exactDist + 1e-9);
        }
    }
}

/** Random vectors of @p type; queries are members cast to float. */
anns::VectorSet
randomVectors(anns::ScalarType type, std::size_t n, unsigned dims,
              std::uint64_t seed)
{
    Prng rng(seed);
    anns::VectorSet vs(n, dims, type);
    for (std::size_t v = 0; v < n; ++v) {
        for (unsigned d = 0; d < dims; ++d) {
            float x;
            switch (type) {
              case anns::ScalarType::kUint8:
                x = static_cast<float>(rng.below(256));
                break;
              case anns::ScalarType::kInt8:
                x = static_cast<float>(
                        static_cast<int>(rng.below(256))) -
                    128.0f;
                break;
              default:
                x = static_cast<float>(rng.uniform(-2.0, 2.0));
            }
            vs.set(static_cast<VectorId>(v), d, x);
        }
    }
    return vs;
}

struct DualCase
{
    anns::Metric metric;
    anns::ScalarType type;
    unsigned dims;
};

class DualScheduleTest : public ::testing::TestWithParam<DualCase>
{
};

TEST_P(DualScheduleTest, BoundStaysBelowExactForAllSchedules)
{
    // Property test over the dual-granularity *schedule space*, not
    // just the optimizer's pick: for any (nC, TC, nF) the per-step
    // lower bound must stay below the exact distance (losslessness)
    // and the fetch count within the layout. The audit layer is live
    // so the per-step DCHECKs inside the bound loop fire too.
    const auto [metric, type, dims] = GetParam();
    setAuditEnabled(true);
    const anns::VectorSet vs = randomVectors(type, 300, dims, 7 + dims);

    ProfileConfig pc;
    pc.numSamples = 40;
    pc.maxPairs = 400;
    const EtProfile base = buildProfile(vs, metric, pc);

    // Coarse/fine grids chosen to cover degenerate (tc=0, nf=keyBits)
    // and extreme (bit-serial fine phase) corners of the space.
    const DualParams schedules[] = {
        {8, 0, 4}, {4, 2, 2}, {8, 1, 1}, {3, 2, 5}, {16, 1, 8},
        {1, 4, 1}, {8, 4, 8},
    };

    Prng rng(99);
    for (const DualParams &dp : schedules) {
        EtProfile prof = base;
        prof.dualNoPrefix = dp;
        const FetchSimulator sim(vs, metric, EtScheme::kDual, &prof);

        for (unsigned trial = 0; trial < 8; ++trial) {
            const auto qsrc =
                static_cast<VectorId>(rng.below(vs.size()));
            const std::vector<float> q = vs.toFloat(qsrc);
            const auto gt = anns::bruteForceKnn(metric, q.data(), vs, 10);
            // Converged, loose, and infinite thresholds.
            const double thresholds[] = {
                gt.back().dist, gt.back().dist * 2.0 + 1.0,
                std::numeric_limits<double>::infinity()};

            for (const double threshold : thresholds) {
                for (VectorId v = 0; v < 100; ++v) {
                    const FetchResult r =
                        sim.simulate(q.data(), v, threshold);
                    EXPECT_LE(r.estimate, r.exactDist + 1e-9)
                        << "nc=" << dp.nc << " tc=" << dp.tc
                        << " nf=" << dp.nf << " v=" << v;
                    EXPECT_EQ(r.accepted, r.exactDist < threshold);
                    if (r.terminatedEarly) {
                        EXPECT_FALSE(r.accepted);
                    }
                    EXPECT_GE(r.lines, 1u);
                    EXPECT_LE(r.lines, sim.fullLines());
                }
            }
        }
    }
    setAuditEnabled(false);
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndTypes, DualScheduleTest,
    ::testing::Values(DualCase{anns::Metric::kL2,
                               anns::ScalarType::kUint8, 48},
                      DualCase{anns::Metric::kL2,
                               anns::ScalarType::kFp32, 32},
                      DualCase{anns::Metric::kIp,
                               anns::ScalarType::kFp32, 36},
                      DualCase{anns::Metric::kIp,
                               anns::ScalarType::kInt8, 40}),
    [](const auto &info) {
        return std::string(anns::metricName(info.param.metric)) + "_" +
               anns::scalarName(info.param.type);
    });

/**
 * Linear-scan top-k where every comparison goes through the fetch
 * simulator with the current kth-best distance as the ET threshold —
 * the access pattern of a real lossless ET search.
 */
std::vector<double>
etTopKDistances(const FetchSimulator &sim, const anns::VectorSet &vs,
                const float *q, std::size_t k)
{
    std::vector<double> best; // ascending, at most k entries
    for (VectorId v = 0; v < static_cast<VectorId>(vs.size()); ++v) {
        const double threshold =
            best.size() < k ? std::numeric_limits<double>::infinity()
                            : best.back();
        const FetchResult r = sim.simulate(q, v, threshold);
        if (!r.accepted)
            continue;
        best.insert(
            std::upper_bound(best.begin(), best.end(), r.exactDist),
            r.exactDist);
        if (best.size() > k)
            best.pop_back();
    }
    return best;
}

TEST(LosslessTopK, EtSearchMatchesBruteForce)
{
    // End-to-end losslessness: a top-k scan that prunes through ET
    // must return exactly the brute-force result, for every scheme
    // and across randomized dual schedules.
    constexpr std::size_t kK = 10;
    Prng rng(2718);
    for (const auto &[metric, type, dims] :
         {DualCase{anns::Metric::kL2, anns::ScalarType::kUint8, 48},
          DualCase{anns::Metric::kIp, anns::ScalarType::kFp32, 36}}) {
        const anns::VectorSet vs = randomVectors(type, 400, dims, 11);
        ProfileConfig pc;
        pc.numSamples = 40;
        pc.maxPairs = 400;
        const EtProfile base = buildProfile(vs, metric, pc);

        std::vector<std::pair<EtScheme, EtProfile>> configs;
        for (const EtScheme s : allSchemes())
            configs.emplace_back(s, base);
        for (unsigned i = 0; i < 4; ++i) { // randomized dual schedules
            EtProfile prof = base;
            prof.dualNoPrefix = {
                1 + static_cast<unsigned>(rng.below(8)),
                static_cast<unsigned>(rng.below(5)),
                1 + static_cast<unsigned>(rng.below(8))};
            configs.emplace_back(EtScheme::kDual, std::move(prof));
        }

        for (const auto &[scheme, prof] : configs) {
            const FetchSimulator sim(vs, metric, scheme, &prof);
            for (unsigned trial = 0; trial < 6; ++trial) {
                const auto qsrc =
                    static_cast<VectorId>(rng.below(vs.size()));
                const std::vector<float> q = vs.toFloat(qsrc);
                const auto gt =
                    anns::bruteForceKnn(metric, q.data(), vs, kK);
                const std::vector<double> et =
                    etTopKDistances(sim, vs, q.data(), kK);
                ASSERT_EQ(et.size(), gt.size())
                    << schemeName(scheme);
                for (std::size_t i = 0; i < kK; ++i)
                    EXPECT_DOUBLE_EQ(et[i], gt[i].dist)
                        << schemeName(scheme) << " rank " << i;
            }
        }
    }
}

TEST(FetchSimInvariants, AuditCleanAcrossSchemes)
{
    // Run the fetch loop with the audit layer live: every per-step
    // DCHECK (bound monotonicity, cursor limits, final bound vs exact
    // distance) fires on violation, so a clean pass demonstrates the
    // invariants hold across schemes and thresholds.
    setAuditEnabled(true);
    const Workload &w = workload(DatasetId::kDeep);
    for (const EtScheme s : {EtScheme::kBitSerial, EtScheme::kHeuristic,
                             EtScheme::kDual, EtScheme::kOpt}) {
        const FetchSimulator sim(*w.ds.base, w.ds.metric(), s, &w.profile);
        for (const auto &q : w.ds.queries) {
            for (VectorId v = 0; v < 100; ++v) {
                // A tight threshold exercises early termination, the
                // infinite one exercises the full-fetch final check.
                (void)sim.simulate(q.data(), v, 1.0);
                (void)sim.simulate(
                    q.data(), v, std::numeric_limits<double>::infinity());
            }
        }
    }
    setAuditEnabled(false);
}

TEST(FetchSimInvariants, BadDimensionRangePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Workload &w = workload(DatasetId::kDeep);
    const FetchSimulator sim(*w.ds.base, w.ds.metric(), EtScheme::kHeuristic,
                             &w.profile);
    const auto &q = w.ds.queries.front();
    EXPECT_DEATH(sim.simulateRange(q.data(), 0, 1.0, 5, 5),
                 "bad dimension range");
}

} // namespace
} // namespace ansmet::et
