/**
 * @file
 * Serving-layer tests: load-generator determinism (bitwise-identical
 * schedules and latency samples for a fixed ANSMET_SEED regardless of
 * thread/core configuration), admission-scheduler properties (QSHR
 * budget, FIFO no-starvation, double-admission death), and latency-
 * recorder quantile exactness.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "anns/dataset.h"
#include "anns/hnsw.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "core/trace.h"
#include "et/profile.h"
#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/loadgen.h"
#include "serve/recorder.h"

namespace ansmet {
namespace {

using anns::DatasetId;

std::uint64_t
envSeed()
{
    const char *s = std::getenv("ANSMET_SEED");
    return s ? std::strtoull(s, nullptr, 10) : 1;
}

/** Run @p fn inside a private pool worker: every nested parallel entry
 *  point degrades to the serial (ANSMET_THREADS=1) code path. */
template <typename Fn>
auto
runSerial(Fn fn) -> decltype(fn())
{
    ThreadPool sandbox(2);
    return sandbox.submit(std::move(fn)).get();
}

// ------------------------------------------------------------------
// Load generator
// ------------------------------------------------------------------

serve::LoadGenConfig
loadCfg(serve::ArrivalProcess p = serve::ArrivalProcess::kPoisson)
{
    serve::LoadGenConfig cfg;
    cfg.offeredQps = 50000.0;
    cfg.numQueries = 2000;
    cfg.numTraces = 50;
    cfg.process = p;
    cfg.seed = envSeed();
    return cfg;
}

TEST(LoadGen, ScheduleIsPureFunctionOfSeed)
{
    for (const auto p : {serve::ArrivalProcess::kPoisson,
                         serve::ArrivalProcess::kBursty}) {
        const auto a = serve::generateArrivals(loadCfg(p));
        const auto b = serve::generateArrivals(loadCfg(p));
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].at, b[i].at) << i;
            EXPECT_EQ(a[i].traceIdx, b[i].traceIdx) << i;
            EXPECT_EQ(a[i].queryId, b[i].queryId) << i;
        }

        auto other = loadCfg(p);
        other.seed = envSeed() + 17;
        const auto c = serve::generateArrivals(other);
        bool any_diff = false;
        for (std::size_t i = 0; i < a.size(); ++i)
            any_diff |= a[i].at != c[i].at;
        EXPECT_TRUE(any_diff) << "seed does not reach the schedule";
    }
}

TEST(LoadGen, ScheduleIsThreadIndependent)
{
    // The generator must not touch any pool or global state: the
    // schedule computed inside a serial sandbox (the ANSMET_THREADS=1
    // path) is bitwise the one computed on the main thread.
    const auto par = serve::generateArrivals(loadCfg());
    const auto ser =
        runSerial([] { return serve::generateArrivals(loadCfg()); });
    ASSERT_EQ(par.size(), ser.size());
    for (std::size_t i = 0; i < par.size(); ++i) {
        EXPECT_EQ(par[i].at, ser[i].at);
        EXPECT_EQ(par[i].traceIdx, ser[i].traceIdx);
    }
}

TEST(LoadGen, ArrivalsOrderedAndRateRoughlyOffered)
{
    for (const auto p : {serve::ArrivalProcess::kPoisson,
                         serve::ArrivalProcess::kBursty}) {
        const auto cfg = loadCfg(p);
        const auto arr = serve::generateArrivals(cfg);
        ASSERT_EQ(arr.size(), cfg.numQueries);
        for (std::size_t i = 1; i < arr.size(); ++i)
            ASSERT_LE(arr[i - 1].at, arr[i].at) << i;
        // Long-run rate within 2x of offered either way (statistical,
        // but the seed is fixed; 2000 samples keep this far from the
        // bound).
        const double secs =
            static_cast<double>(arr.back().at.raw()) * 1e-12;
        const double rate = static_cast<double>(arr.size()) / secs;
        EXPECT_GT(rate, cfg.offeredQps / 2) << serve::arrivalProcessName(p);
        EXPECT_LT(rate, cfg.offeredQps * 2) << serve::arrivalProcessName(p);
    }
}

TEST(LoadGen, PopularityIsZipfSkewed)
{
    const auto arr = serve::generateArrivals(loadCfg());
    std::vector<std::size_t> hits(50, 0);
    for (const auto &a : arr) {
        ASSERT_LT(a.traceIdx, hits.size());
        ++hits[a.traceIdx];
    }
    // Trace 0 is the hottest under Zipf; far above the uniform share.
    const std::size_t uniform = arr.size() / hits.size();
    EXPECT_GT(hits[0], 4 * uniform);
    EXPECT_GT(hits[0], hits[25]);
}

TEST(LoadGen, BurstyRequiresFeasibleQuietRate)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto cfg = loadCfg(serve::ArrivalProcess::kBursty);
    cfg.burstFactor = 20.0; // 20 * 0.1 >= 1: quiet rate would go <= 0
    EXPECT_DEATH(serve::generateArrivals(cfg),
                 "burstFactor \\* burstFraction");
}

// ------------------------------------------------------------------
// Admission scheduler properties
// ------------------------------------------------------------------

TEST(Admission, NeverExceedsQshrBudget)
{
    serve::AdmissionConfig cfg;
    cfg.queueCapacity = 128;
    cfg.numQshrs = 32;
    cfg.qshrsPerQuery = 2;
    serve::AdmissionScheduler adm(cfg);
    EXPECT_EQ(adm.maxInFlight(), 16u);

    for (std::uint64_t id = 0; id < 100; ++id)
        EXPECT_TRUE(adm.tryOffer(id, 0, Tick{id}));

    // Drain: admission stops exactly at the QSHR budget.
    std::vector<unsigned> slots;
    while (auto a = adm.admitNext(Tick{1000}))
        slots.push_back(a->slot);
    EXPECT_EQ(slots.size(), 16u);
    EXPECT_EQ(adm.occupiedQshrs(), 32u);
    EXPECT_EQ(adm.admitNext(Tick{1001}), std::nullopt);

    // Slots are distinct and allocated lowest-first.
    for (unsigned s = 0; s < slots.size(); ++s)
        EXPECT_EQ(slots[s], s);

    // Release/admit churn never raises the high-water mark past 32.
    for (std::uint64_t id = 0; id < 16; id += 2)
        adm.release(static_cast<unsigned>(id), id);
    while (auto a = adm.admitNext(Tick{2000}))
        (void)a;
    EXPECT_EQ(adm.maxOccupiedQshrs(), 32u);
    EXPECT_LE(adm.occupiedQshrs(), 32u);
}

TEST(Admission, BoundedQueueDropsWhenFull)
{
    serve::AdmissionConfig cfg;
    cfg.queueCapacity = 4;
    serve::AdmissionScheduler adm(cfg);
    for (std::uint64_t id = 0; id < 4; ++id)
        EXPECT_TRUE(adm.tryOffer(id, 0, Tick{}));
    EXPECT_FALSE(adm.tryOffer(99, 0, Tick{}));
    EXPECT_EQ(adm.dropped(), 1u);
    EXPECT_EQ(adm.queueDepth(), 4u);
    // A dropped id was never retained: offering it again is legal.
    EXPECT_EQ(adm.admitNext(Tick{}).has_value(), true);
    EXPECT_TRUE(adm.tryOffer(99, 0, Tick{}));
}

TEST(Admission, FifoPreservesArrivalOrder)
{
    serve::AdmissionConfig cfg;
    cfg.queueCapacity = 64;
    serve::AdmissionScheduler adm(cfg);
    for (std::uint64_t id = 0; id < 40; ++id)
        ASSERT_TRUE(adm.tryOffer(id, 0, Tick{id}));
    std::uint64_t expect = 0;
    while (auto a = adm.admitNext(Tick{100}))
        EXPECT_EQ(a->queryId, expect++);
    // Budget-limited: the rest stay queued, still in order.
    EXPECT_EQ(expect, adm.maxInFlight());
    adm.release(0, 0);
    const auto next = adm.admitNext(Tick{101});
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->queryId, expect);
    EXPECT_EQ(next->slot, 0u); // lowest free slot reused
}

TEST(AdmissionDeathTest, DoubleAdmissionOfSameQueryIdDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    serve::AdmissionConfig cfg;
    serve::AdmissionScheduler adm(cfg);
    ASSERT_TRUE(adm.tryOffer(7, 0, Tick{}));
    EXPECT_DEATH((void)adm.tryOffer(7, 1, Tick{}),
                 "offered while already queued or in flight");
}

// ------------------------------------------------------------------
// Latency recorder
// ------------------------------------------------------------------

TEST(LatencyRecorder, ExactQuantilesOnKnownDistribution)
{
    serve::LatencyRecorder rec;
    // 1..1000 in shuffled-ish order (order must not matter).
    for (std::uint64_t v = 1000; v >= 1; --v)
        rec.record(serve::Phase::kTotal, v);
    EXPECT_EQ(rec.count(serve::Phase::kTotal), 1000u);
    EXPECT_EQ(rec.exactQuantile(serve::Phase::kTotal, 0.50), 500u);
    EXPECT_EQ(rec.exactQuantile(serve::Phase::kTotal, 0.99), 990u);
    EXPECT_EQ(rec.exactQuantile(serve::Phase::kTotal, 0.999), 999u);
    EXPECT_EQ(rec.exactQuantile(serve::Phase::kTotal, 1.0), 1000u);

    const auto s = rec.summary(serve::Phase::kTotal);
    EXPECT_EQ(s.p50, 500u);
    EXPECT_EQ(s.p99, 990u);
    EXPECT_EQ(s.p999, 999u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_DOUBLE_EQ(s.mean, 500.5);
}

TEST(LatencyRecorder, QuantileEdgeCases)
{
    serve::LatencyRecorder rec;
    EXPECT_EQ(rec.exactQuantile(serve::Phase::kCompute, 0.99), 0u);
    rec.record(serve::Phase::kCompute, 42);
    EXPECT_EQ(rec.exactQuantile(serve::Phase::kCompute, 0.001), 42u);
    EXPECT_EQ(rec.exactQuantile(serve::Phase::kCompute, 1.0), 42u);
    EXPECT_EQ(rec.summary(serve::Phase::kQueueWait).count, 0u);
}

// ------------------------------------------------------------------
// End-to-end serving runs
// ------------------------------------------------------------------

struct ServeWorld
{
    anns::Dataset ds;
    std::unique_ptr<anns::HnswIndex> idx;
    et::EtProfile profile;
    std::vector<core::QueryTrace> traces;
    std::vector<VectorId> hot;
};

const ServeWorld &
world()
{
    static const ServeWorld *w = [] {
        auto *out = new ServeWorld{
            anns::makeDataset(DatasetId::kSift, 1200, 12, 1),
            nullptr,
            {},
            {},
            {}};
        out->idx = std::make_unique<anns::HnswIndex>(
            *out->ds.base, out->ds.metric(), anns::HnswParams{16, 80, 42});
        et::ProfileConfig pc;
        pc.numSamples = 60;
        pc.maxPairs = 600;
        out->profile =
            et::buildProfile(*out->ds.base, out->ds.metric(), pc);
        for (const auto &q : out->ds.queries)
            out->traces.push_back(
                core::traceHnswQuery(*out->idx, q, 10, 48));
        const unsigned top = out->idx->maxLevel();
        out->hot = out->idx->verticesAtLevel(top >= 3 ? top - 3 : 1);
        return out;
    }();
    return *w;
}

serve::ServeConfig
serveCfg(double qps, std::uint64_t n = 64)
{
    serve::ServeConfig cfg;
    cfg.load.offeredQps = qps;
    cfg.load.numQueries = n;
    cfg.load.zipfAlpha = 1.3;
    cfg.load.seed = envSeed();
    cfg.queueCapacity = 32;
    return cfg;
}

serve::ServeReport
runServe(double qps, bool prefetch = true, std::uint64_t n = 64)
{
    const ServeWorld &w = world();
    core::SystemConfig cfg;
    cfg.design = core::Design::kNdpEtOpt;
    cfg.prefetchReplay = prefetch;
    core::SystemModel model(cfg, *w.ds.base, w.ds.metric(), &w.profile,
                            w.hot);
    return serve::serve(model, w.traces, serveCfg(qps, n));
}

void
expectBitwiseEqual(const serve::ServeReport &a, const serve::ServeReport &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (std::size_t i = 0; i < a.queries.size(); ++i) {
        EXPECT_EQ(a.queries[i].queryId, b.queries[i].queryId) << i;
        EXPECT_EQ(a.queries[i].traceIdx, b.queries[i].traceIdx) << i;
        EXPECT_EQ(a.queries[i].queueWait, b.queries[i].queueWait) << i;
        EXPECT_EQ(a.queries[i].stats.start, b.queries[i].stats.start);
        EXPECT_EQ(a.queries[i].stats.end, b.queries[i].stats.end);
    }
    for (unsigned p = 0; p < serve::kNumPhases; ++p) {
        const auto ph = static_cast<serve::Phase>(p);
        ASSERT_EQ(a.latency.samples(ph), b.latency.samples(ph))
            << serve::phaseName(ph);
    }
}

TEST(Serve, FixedSeedRunIsBitwiseReproducible)
{
    const auto a = runServe(200000.0);
    const auto b = runServe(200000.0);
    expectBitwiseEqual(a, b);
}

TEST(Serve, LatencySamplesIndependentOfThreadConfig)
{
    // The only parallel stage in a serve is the pure fetch precompute;
    // forcing the on-the-fly reference path (prefetchReplay=false, the
    // ANSMET_THREADS=1 equivalent) must not move one sample. Together
    // with the sandboxed generateArrivals test this is the
    // "bitwise-identical across ANSMET_THREADS/ANSMET_CORES" contract:
    // thread/core counts only ever reach those two mechanisms.
    const auto pooled = runServe(200000.0, /*prefetch=*/true);
    const auto serial = runServe(200000.0, /*prefetch=*/false);
    expectBitwiseEqual(pooled, serial);

    const auto sandboxed =
        runSerial([] { return runServe(200000.0, /*prefetch=*/true); });
    expectBitwiseEqual(pooled, sandboxed);
}

TEST(Serve, ReportsAllPhasesWithOrderedTails)
{
    const auto r = runServe(500000.0, true, 128);
    EXPECT_EQ(r.offered, 128u);
    EXPECT_EQ(r.completed + r.dropped, r.offered);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.achievedQps(), 0.0);
    EXPECT_LE(r.maxOccupiedQshrs, 32u);
    for (unsigned p = 0; p < serve::kNumPhases; ++p) {
        const auto ph = static_cast<serve::Phase>(p);
        EXPECT_EQ(r.latency.count(ph), r.completed)
            << serve::phaseName(ph);
        const auto s = r.latency.summary(ph);
        EXPECT_LE(s.p50, s.p99) << serve::phaseName(ph);
        EXPECT_LE(s.p99, s.p999) << serve::phaseName(ph);
        EXPECT_LE(s.p999, s.max) << serve::phaseName(ph);
    }
    // Total covers queue wait plus every service phase.
    const auto total = r.latency.summary(serve::Phase::kTotal);
    const auto qw = r.latency.summary(serve::Phase::kQueueWait);
    EXPECT_GE(total.max, qw.max);
}

TEST(Serve, FifoQueueWaitBoundedUnderZipfSkew)
{
    // No-starvation property: under FIFO admission a query waits at
    // most the full drain of the bounded queue ahead of it, so
    // max(queue wait) <= (capacity + 1) * max(service time) however
    // skewed the popularity draw is. Overload on purpose (queue
    // pressure + drops) to stress the bound.
    const auto r = runServe(2.0e6, true, 192);
    ASSERT_GT(r.completed, 0u);
    std::uint64_t max_service = 0;
    for (const auto &q : r.queries)
        max_service = std::max(max_service, q.stats.latency().raw());
    const std::uint64_t bound = (32 + 1) * max_service;
    for (const auto &q : r.queries)
        EXPECT_LE(q.queueWait.raw(), bound) << "query " << q.queryId;
}

TEST(Serve, OverloadDropsInsteadOfUnboundedQueueing)
{
    // Far past saturation the bounded queue must shed load.
    const auto r = runServe(5.0e7, true, 256);
    EXPECT_GT(r.dropped, 0u);
    EXPECT_EQ(r.completed + r.dropped, r.offered);
}

} // namespace
} // namespace ansmet
