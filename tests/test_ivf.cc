/**
 * @file
 * IVF index tests: k-means partition invariants, nprobe search
 * quality, and trace/observer behavior.
 */

#include <gtest/gtest.h>

#include <set>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/ivf.h"
#include "core/trace.h"

namespace ansmet::anns {
namespace {

const Dataset &
sift()
{
    static const Dataset ds = makeDataset(DatasetId::kSift, 2000, 20, 2);
    return ds;
}

const IvfIndex &
siftIvf()
{
    static const IvfIndex idx(*sift().base, Metric::kL2,
                              IvfParams{64, 8, 42});
    return idx;
}

TEST(Ivf, ListsPartitionTheDataset)
{
    const auto &idx = siftIvf();
    std::set<VectorId> seen;
    std::size_t total = 0;
    for (unsigned c = 0; c < idx.numClusters(); ++c) {
        for (const VectorId v : idx.list(c)) {
            EXPECT_TRUE(seen.insert(v).second) << "duplicate member " << v;
            ++total;
        }
    }
    EXPECT_EQ(total, 2000u);
}

TEST(Ivf, MembersAreClosestToTheirCentroidAmongAll)
{
    const auto &idx = siftIvf();
    const auto &vs = *sift().base;
    // Spot-check: members are assigned to their nearest centroid.
    for (unsigned c = 0; c < idx.numClusters(); c += 7) {
        for (std::size_t i = 0; i < idx.list(c).size(); i += 13) {
            const VectorId v = idx.list(c)[i];
            const auto vec = vs.toFloat(v);
            const double own =
                l2Sq(vec.data(), idx.centroid(c).data(), vs.dims());
            for (unsigned o = 0; o < idx.numClusters(); ++o) {
                const double other =
                    l2Sq(vec.data(), idx.centroid(o).data(), vs.dims());
                EXPECT_GE(other + 1e-6, own)
                    << "vector " << v << " misassigned";
            }
        }
    }
}

TEST(Ivf, RecallGrowsWithNprobe)
{
    const auto &ds = sift();
    const auto &idx = siftIvf();
    const auto gt = bruteForceAll(Metric::kL2, ds.queries, *ds.base, 10);

    auto recall_at = [&](unsigned nprobe) {
        double total = 0.0;
        for (std::size_t q = 0; q < ds.queries.size(); ++q) {
            total += recallAtK(
                idx.search(ds.queries[q].data(), 10, nprobe), gt[q], 10);
        }
        return total / static_cast<double>(ds.queries.size());
    };

    const double r1 = recall_at(1);
    const double r8 = recall_at(8);
    const double rall = recall_at(idx.numClusters());
    EXPECT_LE(r1, r8 + 1e-9);
    EXPECT_GE(r8, 0.5);
    EXPECT_NEAR(rall, 1.0, 1e-9) << "probing all clusters must be exact";
}

TEST(Ivf, TraceContainsCentroidAndClusterSteps)
{
    const auto &ds = sift();
    const auto &idx = siftIvf();
    const auto trace = core::traceIvfQuery(idx, ds.queries[0], 10, 4);

    ASSERT_FALSE(trace.steps.empty());
    EXPECT_EQ(trace.steps[0].kind, StepKind::kCentroidScan);
    std::set<std::uint64_t> clusters;
    std::size_t chunk_comparisons = 0;
    for (std::size_t s = 1; s < trace.steps.size(); ++s) {
        EXPECT_EQ(trace.steps[s].kind, StepKind::kClusterScan);
        // One set-search instruction carries at most 8 tasks.
        EXPECT_LE(trace.steps[s].tasks.size(), 8u);
        clusters.insert(trace.steps[s].ident);
        chunk_comparisons += trace.steps[s].tasks.size();
    }
    EXPECT_EQ(clusters.size(), 4u); // nprobe distinct clusters
    EXPECT_EQ(chunk_comparisons, trace.numComparisons());
    EXPECT_EQ(trace.result, idx.search(ds.queries[0].data(), 10, 4));
}

TEST(Ivf, HighRejectionRateOnClusterScans)
{
    // Figure 1: IVF rejects most scanned vectors.
    const auto &ds = sift();
    const auto &idx = siftIvf();
    std::size_t total = 0, accepted = 0;
    for (const auto &q : ds.queries) {
        const auto trace = core::traceIvfQuery(idx, q, 10, 8);
        total += trace.numComparisons();
        accepted += trace.numAccepted();
    }
    EXPECT_LT(accepted * 2, total);
}

TEST(Ivf, DefaultClusterCountIsSqrtN)
{
    const auto &ds = sift();
    const IvfIndex idx(*ds.base, Metric::kL2, IvfParams{0, 3, 1});
    EXPECT_NEAR(static_cast<double>(idx.numClusters()),
                std::sqrt(2000.0), 2.0);
}

} // namespace
} // namespace ansmet::anns
