/**
 * @file
 * Bit-plane layout tests: plan construction rules (the paper's
 * m_i = |64*8/n_i| packing), cursor coverage, and the physical
 * transform/restore round trip.
 */

#include <gtest/gtest.h>

#include "anns/vector.h"
#include "common/prng.h"
#include "et/layout.h"

namespace ansmet::et {
namespace {

using anns::ScalarType;
using anns::VectorSet;

TEST(FetchPlan, FullPlanMatchesOriginalLayout)
{
    const auto plan = FetchPlanSpec::full(ScalarType::kFp32, 128);
    EXPECT_TRUE(plan.valid());
    EXPECT_EQ(plan.levels(), 1u);
    EXPECT_EQ(plan.elemsPerLine(0), 16u);   // 512 / 32
    EXPECT_EQ(plan.linesInLevel(0), 8u);    // 128 / 16
    EXPECT_EQ(plan.totalLines(), 8u);       // = 128 * 4 B / 64 B
}

TEST(FetchPlan, HeuristicChunks)
{
    const auto ints = FetchPlanSpec::heuristic(ScalarType::kUint8, 100);
    EXPECT_TRUE(ints.valid());
    EXPECT_EQ(ints.levels(), 2u); // 8 bits in 4-bit chunks
    EXPECT_EQ(ints.steps[0], 4u);

    const auto floats = FetchPlanSpec::heuristic(ScalarType::kFp32, 100);
    EXPECT_TRUE(floats.valid());
    EXPECT_EQ(floats.levels(), 4u); // 32 bits in 8-bit chunks
}

TEST(FetchPlan, BitSerial)
{
    const auto plan = FetchPlanSpec::bitSerial(ScalarType::kUint8, 128);
    EXPECT_TRUE(plan.valid());
    EXPECT_EQ(plan.levels(), 8u);
    // 128 1-bit elements use only 128 of 512 bits: 1 line per level,
    // 75% wasted — the paper's SIFT BitET observation.
    EXPECT_EQ(plan.elemsPerLine(0), 512u);
    EXPECT_EQ(plan.linesInLevel(0), 1u);
    EXPECT_EQ(plan.totalLines(), 8u);
}

TEST(FetchPlan, DualGranularity)
{
    // fp32, prefix 6 eliminated, 2 coarse steps of 8, then fine 2s.
    const auto plan =
        FetchPlanSpec::dual(ScalarType::kFp32, 96, 6, 8, 2, 2);
    EXPECT_TRUE(plan.valid());
    EXPECT_EQ(plan.prefixLen, 6u);
    EXPECT_EQ(plan.steps[0], 8u);
    EXPECT_EQ(plan.steps[1], 8u);
    EXPECT_EQ(plan.steps[2], 2u);
    unsigned sum = 0;
    for (const auto s : plan.steps)
        sum += s;
    EXPECT_EQ(sum + plan.prefixLen, 32u);
}

TEST(FetchPlan, PaperPaddingExample)
{
    // "a 64 B chunk may contain the next highest 9 bits from 56
    //  dimensions, with 8 padding bits at the end"
    FetchPlanSpec plan{ScalarType::kFp32, 56, 0, {9, 23}, false};
    EXPECT_TRUE(plan.valid());
    EXPECT_EQ(plan.elemsPerLine(0), 56u);
    EXPECT_EQ(plan.linesInLevel(0), 1u);
}

TEST(FetchPlan, MetaBitmapCostsOneBitPerElement)
{
    FetchPlanSpec plain{ScalarType::kFp32, 64, 24, {8}, false};
    FetchPlanSpec meta{ScalarType::kFp32, 64, 24, {8}, true};
    EXPECT_EQ(plain.elemsPerLine(0), 64u);
    EXPECT_EQ(meta.elemsPerLine(0), 56u); // 512 / 9
}

TEST(FetchCursor, CoversEveryDimEveryLevel)
{
    const auto plan = FetchPlanSpec::heuristic(ScalarType::kFp32, 100);
    FetchCursor cursor(plan);
    std::vector<unsigned> seen(plan.dims, 0);
    unsigned lines = 0;
    while (!cursor.done()) {
        const LineInfo info = cursor.next();
        ++lines;
        EXPECT_LE(info.dimEnd, plan.dims);
        for (unsigned d = info.dimBegin; d < info.dimEnd; ++d)
            ++seen[d];
    }
    EXPECT_EQ(lines, plan.totalLines());
    for (const unsigned s : seen)
        EXPECT_EQ(s, plan.levels());
}

TEST(FetchCursor, KnownBitsProgress)
{
    const auto plan =
        FetchPlanSpec::dual(ScalarType::kFp32, 32, 4, 8, 2, 4);
    FetchCursor cursor(plan);
    unsigned prev = plan.prefixLen;
    while (!cursor.done()) {
        const LineInfo info = cursor.next();
        EXPECT_GE(info.knownBitsAfter, prev);
        prev = info.knownBitsAfter;
    }
    EXPECT_EQ(prev, 32u);
}

class TransformTest : public ::testing::TestWithParam<ScalarType>
{
};

TEST_P(TransformTest, RoundTripsThroughBitPlanes)
{
    const ScalarType t = GetParam();
    const unsigned dims = 37; // deliberately not a multiple of anything
    VectorSet vs(4, dims, t);
    Prng rng(5);
    for (unsigned v = 0; v < 4; ++v)
        for (unsigned d = 0; d < dims; ++d)
            vs.set(v, d, static_cast<float>(rng.uniform(-100, 100)));

    for (const auto &plan :
         {FetchPlanSpec::full(t, dims), FetchPlanSpec::heuristic(t, dims),
          FetchPlanSpec::bitSerial(t, dims)}) {
        for (unsigned v = 0; v < 4; ++v) {
            const auto buf = transformVector(plan, vs, v);
            EXPECT_EQ(buf.size(), plan.totalLines() * 64u);
            const auto keys = restoreKeys(plan, buf.data());
            for (unsigned d = 0; d < dims; ++d) {
                EXPECT_EQ(keys[d], toKey(t, vs.bitsAt(v, d)))
                    << "v=" << v << " d=" << d;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, TransformTest,
                         ::testing::Values(ScalarType::kUint8,
                                           ScalarType::kInt8,
                                           ScalarType::kFp16,
                                           ScalarType::kFp32),
                         [](const auto &info) {
                             return anns::scalarName(info.param);
                         });

TEST(Transform, PrefixEliminationRoundTrip)
{
    // All elements share a 4-bit key prefix; transform drops it.
    const ScalarType t = ScalarType::kUint8;
    const unsigned dims = 16;
    VectorSet vs(1, dims, t);
    for (unsigned d = 0; d < dims; ++d)
        vs.set(0, d, static_cast<float>(0xA0 + d)); // keys 0xA0..0xAF

    FetchPlanSpec plan{t, dims, 4, {4}, false};
    ASSERT_TRUE(plan.valid());
    const auto buf = transformVector(plan, vs, 0);
    const auto keys = restoreKeys(plan, buf.data(), 0xA);
    for (unsigned d = 0; d < dims; ++d)
        EXPECT_EQ(keys[d], toKey(t, vs.bitsAt(0, d)));
}

} // namespace
} // namespace ansmet::et
