/**
 * @file
 * Thread pool tests: exact range coverage, task submission, exception
 * propagation, nested calls, and the ANSMET_THREADS=1 inline fallback.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace ansmet {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<unsigned>> hits(kN);
    pool.parallelFor(
        0, kN,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/7);
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, ParallelForHonorsNonZeroBegin)
{
    ThreadPool pool(3);
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(100, 200, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            sum.fetch_add(i, std::memory_order_relaxed);
    });
    // sum of [100, 200) = (100+199)*100/2
    EXPECT_EQ(sum.load(), 14950u);
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(5, 5, [&](std::size_t, std::size_t) { called = true; });
    pool.parallelFor(7, 3, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SubmitRunsTaskAndReturnsValue)
{
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitRunsOnWorkerThread)
{
    ThreadPool pool(2); // one worker thread
    const auto main_id = std::this_thread::get_id();
    auto fut = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_NE(fut.get(), main_id);
}

TEST(ThreadPool, SubmitPropagatesException)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("task boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstExceptionAndCompletes)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 512;
    std::vector<std::atomic<unsigned>> hits(kN);
    auto run = [&] {
        pool.parallelFor(
            0, kN,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    hits[i].fetch_add(1, std::memory_order_relaxed);
                if (lo <= kN / 2 && kN / 2 < hi)
                    throw std::runtime_error("chunk boom");
            },
            /*grain=*/8);
    };
    EXPECT_THROW(run(), std::runtime_error);
    // The failing chunk must not strand the rest of the range.
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    constexpr std::size_t kOuter = 64;
    constexpr std::size_t kInner = 100;
    std::vector<std::size_t> sums(kOuter, 0);
    pool.parallelFor(0, kOuter, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t o = lo; o < hi; ++o) {
            // Nested call on a pool thread must degrade to a plain
            // serial loop instead of waiting on pool capacity.
            pool.parallelFor(0, kInner,
                             [&](std::size_t ilo, std::size_t ihi) {
                                 for (std::size_t i = ilo; i < ihi; ++i)
                                     sums[o] += i;
                             });
        }
    });
    for (std::size_t o = 0; o < kOuter; ++o)
        EXPECT_EQ(sums[o], kInner * (kInner - 1) / 2);
}

TEST(ThreadPool, SingleThreadPoolRunsInlineInOneCall)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    const auto main_id = std::this_thread::get_id();
    unsigned calls = 0;
    pool.parallelFor(3, 40, [&](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 3u);
        EXPECT_EQ(hi, 40u);
        EXPECT_EQ(std::this_thread::get_id(), main_id);
    });
    EXPECT_EQ(calls, 1u); // no chunking on the serial reference path

    // submit() also runs inline on the caller.
    auto fut = pool.submit([main_id] {
        EXPECT_EQ(std::this_thread::get_id(), main_id);
        return 1;
    });
    EXPECT_EQ(fut.get(), 1);
}

TEST(ThreadPool, ConfiguredThreadsReadsEnv)
{
    const char *saved = std::getenv("ANSMET_THREADS");
    const std::string saved_val = saved ? saved : "";

    ::setenv("ANSMET_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    ::setenv("ANSMET_THREADS", "1", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 1u);

    // ANSMET_THREADS=1 must build a pool with zero workers.
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);

    if (saved)
        ::setenv("ANSMET_THREADS", saved_val.c_str(), 1);
    else
        ::unsetenv("ANSMET_THREADS");
}

TEST(ThreadPool, ManySequentialParallelFors)
{
    // Regression guard for job publication/unpublication races: the
    // same pool must survive many back-to-back loops with results
    // identical to serial accumulation.
    ThreadPool pool(4);
    std::size_t total = 0;
    for (unsigned round = 0; round < 200; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(0, 97, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                sum.fetch_add(i + round, std::memory_order_relaxed);
        });
        total += sum.load();
    }
    std::size_t expect = 0;
    for (unsigned round = 0; round < 200; ++round)
        for (std::size_t i = 0; i < 97; ++i)
            expect += i + round;
    EXPECT_EQ(total, expect);
}

} // namespace
} // namespace ansmet
