/**
 * @file
 * Property tests for the distance lower bounds: the bound must never
 * exceed the true distance for any prefix configuration (that is the
 * entire no-accuracy-loss guarantee), and must tighten monotonically.
 */

#include <gtest/gtest.h>

#include "anns/vector.h"
#include "common/prng.h"
#include "et/bounds.h"

namespace ansmet::et {
namespace {

using anns::Metric;
using anns::ScalarType;
using anns::VectorSet;

struct Case
{
    Metric metric;
    ScalarType type;
};

class BoundsTest : public ::testing::TestWithParam<Case>
{
  protected:
    static constexpr unsigned kDims = 24;

    void
    fill(VectorSet &vs, Prng &rng) const
    {
        for (std::size_t v = 0; v < vs.size(); ++v) {
            for (unsigned d = 0; d < vs.dims(); ++d) {
                float x;
                switch (vs.type()) {
                  case ScalarType::kUint8:
                    x = static_cast<float>(rng.below(256));
                    break;
                  case ScalarType::kInt8:
                    x = static_cast<float>(
                            static_cast<int>(rng.below(256))) -
                        128.0f;
                    break;
                  default:
                    x = static_cast<float>(rng.uniform(-2.0, 2.0));
                }
                vs.set(static_cast<VectorId>(v), d, x);
            }
        }
    }

    ValueInterval
    rangeOf(const VectorSet &vs) const
    {
        double lo = vs.at(0, 0), hi = lo;
        for (std::size_t v = 0; v < vs.size(); ++v) {
            for (unsigned d = 0; d < vs.dims(); ++d) {
                lo = std::min(lo, static_cast<double>(vs.at(
                                      static_cast<VectorId>(v), d)));
                hi = std::max(hi, static_cast<double>(vs.at(
                                      static_cast<VectorId>(v), d)));
            }
        }
        return {lo, hi};
    }
};

TEST_P(BoundsTest, NeverExceedsTrueDistance)
{
    const auto [metric, type] = GetParam();
    Prng rng(42);
    VectorSet vs(32, kDims, type);
    fill(vs, rng);
    const ValueInterval global = rangeOf(vs);
    const unsigned w = keyBits(type);

    for (unsigned trial = 0; trial < 64; ++trial) {
        const auto target = static_cast<VectorId>(rng.below(vs.size()));
        const auto qsrc = static_cast<VectorId>(rng.below(vs.size()));
        std::vector<float> q = vs.toFloat(qsrc);

        const double true_dist =
            anns::distance(metric, q.data(), vs, target);

        BoundAccumulator acc(metric, q.data(), kDims, global);
        EXPECT_LE(acc.lowerBound(), true_dist + 1e-9)
            << "initial bound too tight";

        // Reveal prefixes dimension by dimension in random order with
        // random lengths, checking the invariant at every point.
        double prev = acc.lowerBound();
        for (unsigned step = 0; step < kDims * 2; ++step) {
            const unsigned d = static_cast<unsigned>(rng.below(kDims));
            const unsigned len =
                1 + static_cast<unsigned>(rng.below(w));
            const std::uint32_t key = toKey(type, vs.bitsAt(target, d));
            acc.update(d, intervalFromPrefix(type, key >> (w - len), len));

            const double b = acc.lowerBound();
            EXPECT_LE(b, true_dist + 1e-9)
                << "bound exceeded true distance";
            (void)prev;
            prev = b;
        }
    }
}

TEST_P(BoundsTest, FullPrefixesReachTrueDistance)
{
    const auto [metric, type] = GetParam();
    Prng rng(43);
    VectorSet vs(8, kDims, type);
    fill(vs, rng);
    const ValueInterval global = rangeOf(vs);
    const unsigned w = keyBits(type);

    for (unsigned v = 0; v < vs.size(); ++v) {
        std::vector<float> q = vs.toFloat(
            static_cast<VectorId>((v + 1) % vs.size()));
        BoundAccumulator acc(metric, q.data(), kDims, global);
        for (unsigned d = 0; d < kDims; ++d) {
            const std::uint32_t key =
                toKey(type, vs.bitsAt(static_cast<VectorId>(v), d));
            acc.update(d, intervalFromPrefix(type, key, w));
        }
        const double true_dist = anns::distance(
            metric, q.data(), vs, static_cast<VectorId>(v));
        const double tol =
            1e-6 * (1.0 + std::abs(true_dist));
        EXPECT_NEAR(acc.lowerBound(), true_dist, tol);
    }
}

TEST_P(BoundsTest, TighteningIsMonotone)
{
    const auto [metric, type] = GetParam();
    Prng rng(44);
    VectorSet vs(4, kDims, type);
    fill(vs, rng);
    const ValueInterval global = rangeOf(vs);
    const unsigned w = keyBits(type);

    std::vector<float> q = vs.toFloat(0);
    BoundAccumulator acc(metric, q.data(), kDims, global);
    double prev = acc.lowerBound();
    // Deepen every dim simultaneously, one bit at a time.
    for (unsigned len = 1; len <= w; ++len) {
        for (unsigned d = 0; d < kDims; ++d) {
            const std::uint32_t key = toKey(type, vs.bitsAt(1, d));
            acc.update(d, intervalFromPrefix(type, key >> (w - len), len));
        }
        EXPECT_GE(acc.lowerBound(), prev - 1e-12)
            << "bound regressed at len " << len;
        prev = acc.lowerBound();
    }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndTypes, BoundsTest,
    ::testing::Values(Case{Metric::kL2, ScalarType::kUint8},
                      Case{Metric::kL2, ScalarType::kInt8},
                      Case{Metric::kL2, ScalarType::kFp32},
                      Case{Metric::kL2, ScalarType::kFp16},
                      Case{Metric::kIp, ScalarType::kFp32},
                      Case{Metric::kIp, ScalarType::kInt8}),
    [](const auto &info) {
        return std::string(anns::metricName(info.param.metric)) + "_" +
               anns::scalarName(info.param.type);
    });

TEST(Bounds, PaperPartialDimensionExample)
{
    // Section 4: partial vector (1, 2, x2, x3) against query
    // (4, -2, 6, -1): the L2 lower bound is sqrt((4-1)^2 + (-2-2)^2)=5,
    // i.e. 25 in squared space.
    VectorSet vs(1, 4, ScalarType::kFp32);
    vs.set(0, 0, 1.0f);
    vs.set(0, 1, 2.0f);
    vs.set(0, 2, 6.0f);  // xs happen to match the bound-minimizing vals
    vs.set(0, 3, -1.0f);
    const float q[4] = {4.0f, -2.0f, 6.0f, -1.0f};

    BoundAccumulator acc(Metric::kL2, q, 4, {-100.0, 100.0});
    const unsigned w = keyBits(ScalarType::kFp32);
    for (unsigned d = 0; d < 2; ++d) {
        const std::uint32_t key =
            toKey(ScalarType::kFp32, vs.bitsAt(0, d));
        acc.update(d, intervalFromPrefix(ScalarType::kFp32, key, w));
    }
    EXPECT_DOUBLE_EQ(acc.lowerBound(), 25.0);
}

TEST(BoundInvariants, UpdatesOnlyEverTightenTheBound)
{
    const float q[3] = {1.0f, -2.0f, 0.5f};
    for (const Metric m : {Metric::kL2, Metric::kIp}) {
        BoundAccumulator acc(m, q, 3, {-8.0, 8.0});
        double prev = acc.lowerBound();
        // Progressively narrower knowledge about each dimension; the
        // audit layer inside update() verifies per-dimension
        // monotonicity, this loop verifies the aggregate.
        for (double width = 8.0; width > 0.01; width /= 2.0) {
            for (unsigned d = 0; d < 3; ++d)
                acc.update(d, {-width / (d + 1), width / (d + 1)});
            EXPECT_GE(acc.lowerBound(), prev) << "metric "
                                              << static_cast<int>(m);
            prev = acc.lowerBound();
        }
    }
}

TEST(BoundInvariants, OutOfRangeDimensionFailsAudit)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setAuditEnabled(true);
    const float q[2] = {0.0f, 0.0f};
    BoundAccumulator acc(Metric::kL2, q, 2, {-1.0, 1.0});
    EXPECT_DEATH(acc.update(2, {0.0, 0.5}), "dimension 2 of 2");
    setAuditEnabled(false);
}

TEST(BoundInvariants, InconsistentIntervalKnowledgeFailsAudit)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setAuditEnabled(true);
    const float q[1] = {0.0f};
    BoundAccumulator acc(Metric::kL2, q, 1, {-1.0, 1.0});
    acc.update(0, {0.5, 1.0});
    // Disjoint from everything previously known about the dimension:
    // the intersection is empty, which means the fetched bits lied.
    EXPECT_DEATH(acc.update(0, {-1.0, 0.2}), "inconsistent interval");
    setAuditEnabled(false);
}

} // namespace
} // namespace ansmet::et
