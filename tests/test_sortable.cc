/**
 * @file
 * Property tests for the sortable-key codecs: invertibility,
 * monotonicity, and interval soundness — the foundations the entire
 * early-termination correctness argument rests on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.h"
#include "et/sortable.h"

namespace ansmet::et {
namespace {

using anns::ScalarType;

/** Draw a random raw bit pattern that decodes to a finite value. */
std::uint32_t
randomRaw(ScalarType t, Prng &rng)
{
    switch (t) {
      case ScalarType::kUint8:
      case ScalarType::kInt8:
        return static_cast<std::uint32_t>(rng.below(256));
      case ScalarType::kFp16: {
        std::uint32_t r;
        do {
            r = static_cast<std::uint32_t>(rng.below(1u << 16));
        } while (((r >> 10) & 0x1f) == 0x1f); // skip inf/nan
        return r;
      }
      case ScalarType::kFp32: {
        std::uint32_t r;
        do {
            r = static_cast<std::uint32_t>(rng.next());
        } while (((r >> 23) & 0xff) == 0xff);
        return r;
      }
    }
    return 0;
}

class SortableTest : public ::testing::TestWithParam<ScalarType>
{
};

TEST_P(SortableTest, KeyRoundTrips)
{
    const ScalarType t = GetParam();
    Prng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const std::uint32_t raw = randomRaw(t, rng);
        EXPECT_EQ(fromKey(t, toKey(t, raw)), raw);
    }
}

TEST_P(SortableTest, KeysAreMonotone)
{
    const ScalarType t = GetParam();
    Prng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const std::uint32_t ra = randomRaw(t, rng);
        const std::uint32_t rb = randomRaw(t, rng);
        const double va = keyToValue(t, toKey(t, ra));
        const double vb = keyToValue(t, toKey(t, rb));
        const std::uint32_t ka = toKey(t, ra);
        const std::uint32_t kb = toKey(t, rb);
        if (va < vb) {
            EXPECT_LT(ka, kb) << va << " vs " << vb;
        }
        if (va > vb) {
            EXPECT_GT(ka, kb);
        }
    }
}

TEST_P(SortableTest, IntervalContainsValueForEveryPrefixLength)
{
    const ScalarType t = GetParam();
    const unsigned w = keyBits(t);
    Prng rng(3);
    for (int i = 0; i < 500; ++i) {
        const std::uint32_t raw = randomRaw(t, rng);
        const std::uint32_t key = toKey(t, raw);
        const double v = keyToValue(t, key);
        for (unsigned len = 0; len <= w; ++len) {
            const std::uint32_t prefix =
                len == 0 ? 0 : (key >> (w - len));
            const ValueInterval iv = intervalFromPrefix(t, prefix, len);
            EXPECT_LE(iv.lo, v) << "len=" << len;
            EXPECT_GE(iv.hi, v) << "len=" << len;
            EXPECT_LE(iv.lo, iv.hi);
        }
    }
}

TEST_P(SortableTest, LongerPrefixesNest)
{
    const ScalarType t = GetParam();
    const unsigned w = keyBits(t);
    Prng rng(4);
    for (int i = 0; i < 300; ++i) {
        const std::uint32_t key = toKey(t, randomRaw(t, rng));
        ValueInterval prev = intervalFromPrefix(t, 0, 0);
        for (unsigned len = 1; len <= w; ++len) {
            const ValueInterval iv =
                intervalFromPrefix(t, key >> (w - len), len);
            EXPECT_GE(iv.lo, prev.lo) << "len=" << len;
            EXPECT_LE(iv.hi, prev.hi) << "len=" << len;
            prev = iv;
        }
        // Full prefix pins the exact value.
        EXPECT_DOUBLE_EQ(prev.lo, prev.hi);
        EXPECT_DOUBLE_EQ(prev.lo, keyToValue(t, key));
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, SortableTest,
                         ::testing::Values(ScalarType::kUint8,
                                           ScalarType::kInt8,
                                           ScalarType::kFp16,
                                           ScalarType::kFp32),
                         [](const auto &info) {
                             return anns::scalarName(info.param);
                         });

TEST(Sortable, KnownValues)
{
    // UINT8 identity.
    EXPECT_EQ(toKey(ScalarType::kUint8, 0x7f), 0x7fu);
    // INT8: -128 -> 0, 0 -> 128, 127 -> 255.
    EXPECT_EQ(toKey(ScalarType::kInt8, 0x80), 0x00u);
    EXPECT_EQ(toKey(ScalarType::kInt8, 0x00), 0x80u);
    EXPECT_EQ(toKey(ScalarType::kInt8, 0x7f), 0xffu);
    // FP32: -0.0 sorts just below +0.0, both decode to 0.
    const std::uint32_t kneg = toKey(ScalarType::kFp32, 0x80000000u);
    const std::uint32_t kpos = toKey(ScalarType::kFp32, 0x00000000u);
    EXPECT_LT(kneg, kpos);
    EXPECT_EQ(keyToValue(ScalarType::kFp32, kneg), 0.0);
}

TEST(Sortable, PaperPartialBitExample)
{
    // Section 4.1: query 0101, fetched 01__ -> missing bits set to 01,
    // i.e. the recovered closest value is 0101 itself.
    const ScalarType t = ScalarType::kUint8;
    // 4-bit example embedded in the low bits of uint8 keys: use real
    // 8-bit values 0101'0000-style by shifting.
    const std::uint32_t q = 0b01010000;
    const std::uint32_t partial_prefix = 0b01; // top 2 bits
    const ValueInterval iv = intervalFromPrefix(t, partial_prefix, 2);
    // q = 80 lies inside [64, 127]: distance lower bound 0.
    EXPECT_LE(iv.lo, static_cast<double>(q));
    EXPECT_GE(iv.hi, static_cast<double>(q));

    // Fetched 00__: interval [0, 63], query 80 -> gap 17 (to 63).
    const ValueInterval iv2 = intervalFromPrefix(t, 0b00, 2);
    EXPECT_DOUBLE_EQ(iv2.hi, 63.0);
}

TEST(Sortable, ClampKeepsEndpointsFinite)
{
    // A 1-bit fp32 prefix of "positive" spans into what would be NaN
    // space; clamping must keep endpoints finite.
    const ValueInterval iv = intervalFromPrefix(ScalarType::kFp32, 1, 1);
    EXPECT_TRUE(std::isfinite(iv.lo));
    EXPECT_TRUE(std::isfinite(iv.hi));
    EXPECT_GT(iv.hi, 1e38);
}

} // namespace
} // namespace ansmet::et
