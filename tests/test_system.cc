/**
 * @file
 * Integration tests of the full co-simulation: all nine designs run a
 * small workload end to end; the paper's headline orderings must hold
 * (NDP beats CPU, ET reduces lines, adaptive polling beats fixed).
 */

#include <gtest/gtest.h>

#include <map>

#include "anns/dataset.h"
#include "anns/hnsw.h"
#include "core/system.h"
#include "et/profile.h"

namespace ansmet::core {
namespace {

using anns::DatasetId;

struct Fixture
{
    anns::Dataset ds;
    std::unique_ptr<anns::HnswIndex> index;
    et::EtProfile profile;
    std::vector<QueryTrace> traces;
    std::vector<VectorId> hot;
};

const Fixture &
fixture()
{
    static const Fixture f = [] {
        // DEEP: fp32 x 96 dims = 6 lines per vector, the regime where
        // rank-level NDP bandwidth matters (the paper's best dataset).
        Fixture fx{anns::makeDataset(DatasetId::kDeep, 1500, 12, 1),
                   nullptr,
                   {},
                   {},
                   {}};
        fx.index = std::make_unique<anns::HnswIndex>(
            *fx.ds.base, fx.ds.metric(), anns::HnswParams{16, 80, 42});
        et::ProfileConfig pc;
        pc.numSamples = 60;
        pc.maxPairs = 600;
        fx.profile = et::buildProfile(*fx.ds.base, fx.ds.metric(), pc);
        for (const auto &q : fx.ds.queries)
            fx.traces.push_back(traceHnswQuery(*fx.index, q, 10, 48));
        const unsigned top = fx.index->maxLevel();
        fx.hot = fx.index->verticesAtLevel(top >= 3 ? top - 3 : 1);
        return fx;
    }();
    return f;
}

RunStats
runDesign(Design d, std::function<void(SystemConfig &)> mutate = nullptr)
{
    const Fixture &f = fixture();
    SystemConfig cfg;
    cfg.design = d;
    cfg.concurrentQueries = 8;
    scaleCachesToDataset(cfg,
                         f.ds.base->size() * f.ds.base->vectorBytes());
    if (mutate)
        mutate(cfg);
    SystemModel model(cfg, *f.ds.base, f.ds.metric(), &f.profile, f.hot);
    return model.run(f.traces);
}

const RunStats &
cachedRun(Design d)
{
    static std::map<Design, RunStats> cache;
    auto it = cache.find(d);
    if (it == cache.end())
        it = cache.emplace(d, runDesign(d)).first;
    return it->second;
}

class AllDesignsTest : public ::testing::TestWithParam<Design>
{
};

TEST_P(AllDesignsTest, CompletesAllQueriesWithSaneStats)
{
    const RunStats &rs = cachedRun(GetParam());
    const Fixture &f = fixture();

    ASSERT_EQ(rs.queries.size(), f.traces.size());
    EXPECT_GT(rs.makespan, TickDelta{});
    EXPECT_GT(rs.energy.totalNj(), 0.0);

    std::size_t comparisons = 0;
    for (const auto &t : f.traces)
        comparisons += t.numComparisons();
    const auto totals = rs.totals();
    EXPECT_EQ(totals.comparisons, comparisons);
    EXPECT_GT(totals.linesEffectual + totals.linesIneffectual, 0u);

    for (const auto &q : rs.queries) {
        EXPECT_GT(q.latency(), TickDelta{});
        EXPECT_LE(q.start, q.end);
        EXPECT_GT(q.traversal, TickDelta{});
        EXPECT_GT(q.distComp, TickDelta{});
    }
}

INSTANTIATE_TEST_SUITE_P(Everything, AllDesignsTest,
                         ::testing::ValuesIn(allDesigns()),
                         [](const auto &info) {
                             std::string n = designName(info.param);
                             for (auto &c : n)
                                 if (c == '-' || c == '+')
                                     c = '_';
                             return n;
                         });

TEST(System, NdpBeatsCpuBaseline)
{
    const double cpu_qps = cachedRun(Design::kCpuBase).qps();
    const double ndp_qps = cachedRun(Design::kNdpBase).qps();
    EXPECT_GT(ndp_qps, cpu_qps * 1.5)
        << "rank-level NDP must clearly beat the channel-bound CPU";
}

TEST(System, EtReducesFetchedLines)
{
    const auto base = cachedRun(Design::kNdpBase).totals();
    const auto et = cachedRun(Design::kNdpEt).totals();
    EXPECT_LT(et.linesEffectual + et.linesIneffectual,
              base.linesEffectual + base.linesIneffectual);
    EXPECT_GT(et.terminated, 0u);
    EXPECT_EQ(base.terminated, 0u);
}

TEST(System, EtOptImprovesQpsOverNdpBase)
{
    EXPECT_GT(cachedRun(Design::kNdpEtOpt).qps(),
              cachedRun(Design::kNdpBase).qps());
}

TEST(System, AcceptedCountsIdenticalAcrossDesigns)
{
    // Losslessness at system level: every design sees the same
    // accept/reject outcomes.
    const auto ref = cachedRun(Design::kCpuBase).totals().accepted;
    for (const Design d : allDesigns())
        EXPECT_EQ(cachedRun(d).totals().accepted, ref) << designName(d);
}

TEST(System, DeterministicRuns)
{
    const RunStats a = runDesign(Design::kNdpEtOpt);
    const RunStats b = runDesign(Design::kNdpEtOpt);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (std::size_t i = 0; i < a.queries.size(); ++i)
        EXPECT_EQ(a.queries[i].latency(), b.queries[i].latency());
    EXPECT_DOUBLE_EQ(a.energy.totalNj(), b.energy.totalNj());
}

TEST(System, PollingModesOrdering)
{
    auto with_poll = [&](ndp::PollingMode m) {
        return runDesign(Design::kNdpEtOpt, [m](SystemConfig &c) {
            c.polling.mode = m;
        });
    };
    const RunStats ideal = with_poll(ndp::PollingMode::kIdeal);
    const RunStats adaptive = with_poll(ndp::PollingMode::kAdaptive);
    const RunStats conv = with_poll(ndp::PollingMode::kConventional);

    // Ideal has zero collection cost; adaptive must not lose to the
    // fixed 100 ns interval; both are upper-bounded by ideal.
    EXPECT_EQ(ideal.totals().collect, TickDelta{});
    EXPECT_GT(conv.totals().collect, TickDelta{});
    EXPECT_LE(adaptive.totals().collect, conv.totals().collect);
    EXPECT_LE(ideal.makespan, adaptive.makespan);
}

TEST(System, NdpScalesWithUnits)
{
    auto with_units = [&](unsigned n) {
        return runDesign(Design::kNdpEtOpt, [n](SystemConfig &c) {
            c.ndpUnits = n;
        }).qps();
    };
    const double qps8 = with_units(8);
    const double qps32 = with_units(32);
    EXPECT_GT(qps32, qps8);
}

TEST(System, EnergyNdpLowerThanCpu)
{
    const double cpu = cachedRun(Design::kCpuBase).energy.totalNj();
    const double ndp = cachedRun(Design::kNdpBase).energy.totalNj();
    EXPECT_LT(ndp, cpu);
}

TEST(System, ReplicationImprovesBalanceUnderSkew)
{
    // Build a skewed workload directly on the fixture's index.
    const Fixture &f = fixture();

    auto imbalance = [&](bool replicate) {
        SystemConfig cfg;
        cfg.design = Design::kNdpBase;
        cfg.concurrentQueries = 8;
        cfg.replicateHot = replicate;
        SystemModel model(cfg, *f.ds.base, f.ds.metric(), &f.profile,
                          f.hot);
        return model.run(f.traces).loadImbalance;
    };

    const double without = imbalance(false);
    const double with = imbalance(true);
    EXPECT_LE(with, without + 1e-9);
    EXPECT_GE(without, 1.0);
}

} // namespace
} // namespace ansmet::core
