/**
 * @file
 * Thread-pool stress tests aimed at the race detector: concurrent
 * submit() from many threads, nested parallelFor from inside pool
 * work, and exception propagation from several chunks at once. The
 * iteration counts are sized so a TSan build gets enough interleavings
 * to bite while a plain build stays under a second.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace ansmet {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmitFromManyThreads)
{
    ThreadPool pool(4);
    static constexpr int kSubmitters = 4;
    static constexpr int kTasksEach = 200;
    std::atomic<int> executed{0};

    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<int>>> futures(kSubmitters);
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            futures[s].reserve(kTasksEach);
            for (int t = 0; t < kTasksEach; ++t) {
                futures[s].push_back(pool.submit([&executed, s, t] {
                    executed.fetch_add(1, std::memory_order_relaxed);
                    return s * kTasksEach + t;
                }));
            }
        });
    }
    for (auto &th : submitters)
        th.join();

    long long sum = 0;
    for (auto &fs : futures)
        for (auto &f : fs)
            sum += f.get();
    EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
    const long long n = kSubmitters * kTasksEach;
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ThreadPoolStress, NestedParallelForRunsEveryIteration)
{
    ThreadPool pool(4);
    constexpr std::size_t kOuter = 64;
    constexpr std::size_t kInner = 64;
    std::vector<std::atomic<int>> hits(kOuter * kInner);

    for (int round = 0; round < 10; ++round) {
        pool.parallelFor(0, kOuter, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t o = lo; o < hi; ++o) {
                // Nested call: must degrade to inline execution, not
                // deadlock on pool capacity.
                pool.parallelFor(
                    0, kInner, [&, o](std::size_t ilo, std::size_t ihi) {
                        for (std::size_t i = ilo; i < ihi; ++i)
                            hits[o * kInner + i].fetch_add(
                                1, std::memory_order_relaxed);
                    });
            }
        }, 1);
    }
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 10) << "iteration " << i;
}

TEST(ThreadPoolStress, SubmitDuringParallelFor)
{
    ThreadPool pool(4);
    std::atomic<int> task_hits{0};
    std::atomic<long long> iter_hits{0};

    // submit() from inside pool work runs inline; from outside it
    // shares the worker queue with the active parallelFor job.
    std::thread outside([&] {
        std::vector<std::future<void>> fs;
        fs.reserve(100);
        for (int i = 0; i < 100; ++i) {
            fs.push_back(pool.submit([&] {
                task_hits.fetch_add(1, std::memory_order_relaxed);
            }));
        }
        for (auto &f : fs)
            f.get();
    });
    for (int round = 0; round < 20; ++round) {
        pool.parallelFor(0, 512, [&](std::size_t lo, std::size_t hi) {
            iter_hits.fetch_add(static_cast<long long>(hi - lo),
                                std::memory_order_relaxed);
            pool.submit([&] {
                task_hits.fetch_add(1, std::memory_order_relaxed);
            }).get();
        }, 8);
    }
    outside.join();
    EXPECT_EQ(iter_hits.load(), 20 * 512);
    EXPECT_GE(task_hits.load(), 100);
}

TEST(ThreadPoolStress, ExceptionFromManyChunksPropagatesOnce)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> ran{0};
        bool threw = false;
        try {
            pool.parallelFor(0, 256, [&](std::size_t lo, std::size_t hi) {
                ran.fetch_add(hi - lo, std::memory_order_relaxed);
                // Every chunk throws; exactly one exception must
                // surface, after the whole range has been claimed.
                throw std::runtime_error("chunk failure");
            }, 4);
        } catch (const std::runtime_error &e) {
            threw = true;
            EXPECT_STREQ(e.what(), "chunk failure");
        }
        EXPECT_TRUE(threw);
        EXPECT_EQ(ran.load(), 256u);
    }
}

TEST(ThreadPoolStress, ExceptionThroughSubmitFuture)
{
    ThreadPool pool(4);
    auto fut = pool.submit([]() -> int {
        throw std::logic_error("task failure");
    });
    EXPECT_THROW(fut.get(), std::logic_error);
}

TEST(ThreadPoolStress, SequentialParallelForsStayDeterministic)
{
    ThreadPool pool(4);
    std::vector<std::size_t> out(4096);
    for (int round = 0; round < 20; ++round) {
        pool.parallelFor(0, out.size(),
                         [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i)
                                 out[i] = i * i;
                         });
        const std::size_t spot = 1234;
        ASSERT_EQ(out[spot], spot * spot);
    }
}

} // namespace
} // namespace ansmet
