/**
 * @file
 * Dedicated event-queue tests: same-timestamp tie-break determinism,
 * the ordering invariants added by the audit layer, cancellation, and
 * the Clocked cycle<->tick helpers.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "sim/event_queue.h"

namespace ansmet::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<Tick> seen;
    eq.schedule(30, [&] { seen.push_back(30); });
    eq.schedule(10, [&] { seen.push_back(10); });
    eq.schedule(20, [&] { seen.push_back(20); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<Tick>{10, 20, 30}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, SameTickPriorityThenInsertionOrder)
{
    EventQueue eq;
    std::string order;
    // All at tick 100: priority breaks ties first, then insertion
    // order. This exact order is what makes replays bit-identical.
    eq.schedule(100, [&] { order += 'c'; }, 1);
    eq.schedule(100, [&] { order += 'a'; }, -1);
    eq.schedule(100, [&] { order += 'd'; }, 1);
    eq.schedule(100, [&] { order += 'b'; }, 0);
    eq.run();
    EXPECT_EQ(order, "abcd");
}

TEST(EventQueue, InsertionOrderStableAcrossInterleavedScheduling)
{
    // Events scheduled from within callbacks still honor (tick, prio,
    // insertion) ordering relative to already-pending events.
    EventQueue eq;
    std::string order;
    eq.schedule(10, [&] {
        order += 'a';
        eq.schedule(20, [&] { order += 'x'; });
    });
    eq.schedule(20, [&] { order += 'b'; });
    eq.run();
    EXPECT_EQ(order, "abx");
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 50u);
    EXPECT_DEATH(eq.schedule(10, [] {}), "scheduling in the past");
}

TEST(EventQueue, DescheduleUnknownHandleDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setAuditEnabled(true);
    EventQueue eq;
    eq.schedule(5, [] {});
    EXPECT_DEATH(eq.deschedule(7), "unknown handle");
    setAuditEnabled(false);
}

TEST(EventQueue, DeschedulePreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    const auto id = eq.schedule(10, [&] { ran = true; });
    eq.schedule(5, [&, id] { eq.deschedule(id); });
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ResetRestartsClock)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    // Post-reset, early ticks are schedulable again.
    bool ran = false;
    eq.schedule(1, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.run(15);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(Clocked, ConversionsAndEdges)
{
    EventQueue eq;
    Clocked c(eq, 833); // ~1.2 GHz in ps
    EXPECT_EQ(c.cyclesToTicks(0), 0u);
    EXPECT_EQ(c.cyclesToTicks(3), 2499u);
    EXPECT_EQ(c.ticksToCycles(1), 1u);
    EXPECT_EQ(c.ticksToCycles(833), 1u);
    EXPECT_EQ(c.ticksToCycles(834), 2u);
    EXPECT_EQ(c.nextEdge(), 0u);
    eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(c.nextEdge(), 833u);
}

TEST(Clocked, ZeroPeriodPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    EXPECT_DEATH(Clocked(eq, 0), "zero period");
}

} // namespace
} // namespace ansmet::sim
