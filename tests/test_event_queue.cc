/**
 * @file
 * Dedicated event-queue tests: same-timestamp tie-break determinism,
 * the ordering invariants added by the audit layer, cancellation, the
 * Clocked cycle<->tick helpers, randomized ordering parity between the
 * calendar queue and the reference heap queue, calendar-tier crossing
 * cases, deschedule stress, and the InlineFunction callback type.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "sim/event_queue.h"
#include "sim/reference_queue.h"

namespace ansmet::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<Tick> seen;
    eq.schedule(Tick{30}, [&] { seen.push_back(Tick{30}); });
    eq.schedule(Tick{10}, [&] { seen.push_back(Tick{10}); });
    eq.schedule(Tick{20}, [&] { seen.push_back(Tick{20}); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<Tick>{Tick{10}, Tick{20}, Tick{30}}));
    EXPECT_EQ(eq.now(), Tick{30});
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, SameTickPriorityThenInsertionOrder)
{
    EventQueue eq;
    std::string order;
    // All at tick 100: priority breaks ties first, then insertion
    // order. This exact order is what makes replays bit-identical.
    eq.schedule(Tick{100}, [&] { order += 'c'; }, 1);
    eq.schedule(Tick{100}, [&] { order += 'a'; }, -1);
    eq.schedule(Tick{100}, [&] { order += 'd'; }, 1);
    eq.schedule(Tick{100}, [&] { order += 'b'; }, 0);
    eq.run();
    EXPECT_EQ(order, "abcd");
}

TEST(EventQueue, InsertionOrderStableAcrossInterleavedScheduling)
{
    // Events scheduled from within callbacks still honor (tick, prio,
    // insertion) ordering relative to already-pending events.
    EventQueue eq;
    std::string order;
    eq.schedule(Tick{10}, [&] {
        order += 'a';
        eq.schedule(Tick{20}, [&] { order += 'x'; });
    });
    eq.schedule(Tick{20}, [&] { order += 'b'; });
    eq.run();
    EXPECT_EQ(order, "abx");
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.schedule(Tick{50}, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), Tick{50});
    EXPECT_DEATH(eq.schedule(Tick{10}, [] {}), "scheduling in the past");
}

TEST(EventQueue, DescheduleUnknownHandleDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setAuditEnabled(true);
    EventQueue eq;
    eq.schedule(Tick{5}, [] {});
    EXPECT_DEATH(eq.deschedule(7), "unknown handle");
    setAuditEnabled(false);
}

TEST(EventQueue, DeschedulePreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    const auto id = eq.scheduleCancelable(Tick{10}, [&] { ran = true; });
    eq.schedule(Tick{5}, [&, id] { eq.deschedule(id); });
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.now(), Tick{5});
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(Tick{1}, [&] { ++count; });
    eq.schedule(Tick{2}, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), Tick{1});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ResetRestartsClock)
{
    EventQueue eq;
    eq.schedule(Tick{42}, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), Tick{});
    EXPECT_EQ(eq.pending(), 0u);
    // Post-reset, early ticks are schedulable again.
    bool ran = false;
    eq.schedule(Tick{1}, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(Tick{10}, [&] { ++count; });
    eq.schedule(Tick{20}, [&] { ++count; });
    eq.run(Tick{15});
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, OverflowTierCrossingsExecuteInOrder)
{
    // Events several horizons out sit in the overflow heap and must
    // migrate into the calendar (and execute in order) as the current
    // day repeatedly jumps past the ring's reach.
    EventQueue eq;
    std::vector<int> seen;
    const TickDelta stride = EventQueue::kHorizonTicks + TickDelta{7};
    for (const int i : {4, 1, 5, 2, 3}) {
        eq.schedule(Tick{} + static_cast<std::uint64_t>(i) * stride,
                    [&seen, i] { seen.push_back(i); });
    }
    eq.run();
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(eq.now(), Tick{} + 5 * stride);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, FarFutureSameTickTiesKeepPriorityAndInsertionOrder)
{
    // Three events land on one far-future tick via different routes:
    // two through the overflow tier at schedule time, one through the
    // ring after the calendar has advanced. (tick, prio, insertion)
    // order must hold regardless of the tier each traversed.
    EventQueue eq;
    std::string order;
    const Tick far = Tick{} + 2 * EventQueue::kHorizonTicks +
                     TickDelta{12345};
    eq.schedule(far, [&order] { order += 'a'; });
    eq.schedule(Tick{} + EventQueue::kHorizonTicks + TickDelta{5},
                [&eq, &order, far] {
        order += 'x';
        eq.schedule(far, [&order] { order += 'c'; }, 1);
                });
    eq.schedule(far, [&order] { order += 'b'; });
    eq.run();
    EXPECT_EQ(order, "xabc");
}

TEST(EventQueue, DescheduleStressReleasesPendingImmediately)
{
    // Regression for the pre-overhaul queue, whose cancelled list grew
    // without bound until the victim reached the heap top: descheduling
    // must shrink pending() right away and release the slots.
    EventQueue eq;
    constexpr std::size_t kN = 200000;
    std::size_t executed = 0;
    std::vector<std::uint64_t> ids;
    ids.reserve(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        ids.push_back(eq.scheduleCancelable(Tick{1 + (i % 1000) * 100},
                                  [&executed] { ++executed; }));
    }
    ASSERT_EQ(eq.pending(), kN);
    for (std::size_t i = 0; i < kN; i += 2)
        eq.deschedule(ids[i]);
    EXPECT_EQ(eq.pending(), kN / 2);
    eq.run();
    EXPECT_EQ(executed, kN / 2);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, DoubleDescheduleCountsOnce)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(Tick{1}, [&ran] { ran = true; });
    const auto id = eq.scheduleCancelable(Tick{2}, [] {});
    eq.deschedule(id);
    eq.deschedule(id); // second cancel of the same handle: no-op
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, StaleHandleAfterExecutionIsANoOp)
{
    EventQueue eq;
    const auto stale = eq.scheduleCancelable(Tick{1}, [] {});
    eq.run();
    // The next schedule reuses the released slot; the old handle's
    // generation no longer matches and must not cancel it.
    bool ran = false;
    eq.schedule(Tick{2}, [&ran] { ran = true; });
    eq.deschedule(stale);
    eq.run();
    EXPECT_TRUE(ran);
}

/**
 * Random schedule driver usable with both queue implementations.
 * Every draw happens inside the executed callbacks, so as long as the
 * two queues execute in the same order they make identical decisions —
 * and any ordering divergence shows up as differing logs.
 */
template <class Queue>
struct ParityDriver
{
    Queue q;
    Prng rng;
    std::vector<unsigned> log;
    std::vector<std::uint64_t> handles;
    unsigned scheduled = 0;
    unsigned budget;

    ParityDriver(std::uint64_t seed, unsigned budget)
        : rng(seed), budget(budget)
    {
    }

    TickDelta
    draw()
    {
        switch (rng.below(4)) {
          case 0:
            return TickDelta{rng.below(4)}; // same-tick collisions
          case 1:
            return TickDelta{rng.below(2000)}; // current/next day
          case 2:
            return TickDelta{rng.below(100000)}; // calendar ring
          default: // overflow tier
            return EventQueue::kHorizonTicks +
                   TickDelta{rng.below(1u << 20)};
        }
    }

    void
    spawn()
    {
        const unsigned label = scheduled++;
        const TickDelta delta = draw();
        const int prio = static_cast<int>(rng.below(3)) - 1;
        handles.push_back(q.scheduleInCancelable(
            delta, [this, label] { fire(label); }, prio));
    }

    void
    fire(unsigned label)
    {
        log.push_back(label);
        if (scheduled < budget) {
            spawn();
            if (rng.below(2) != 0 && scheduled < budget)
                spawn();
        }
        // Cancel a random earlier event: executed handles are benign
        // no-ops in both implementations.
        if (!handles.empty() && rng.below(4) == 0)
            q.deschedule(handles[rng.below(handles.size())]);
    }

    void
    run()
    {
        for (int i = 0; i < 16; ++i)
            spawn();
        q.run();
    }
};

TEST(EventQueue, OrderingParityWithReferenceQueue)
{
    // The calendar queue must execute randomized schedules in exactly
    // the order of the executable spec (sim/reference_queue.h),
    // including same-tick priority/insertion ties, mid-run cancels,
    // and overflow-tier crossings.
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        ParityDriver<EventQueue> opt(seed, 4000);
        ParityDriver<ReferenceEventQueue> ref(seed, 4000);
        opt.run();
        ref.run();
        ASSERT_EQ(opt.log.size(), ref.log.size()) << "seed " << seed;
        EXPECT_EQ(opt.log, ref.log) << "seed " << seed;
        EXPECT_EQ(opt.q.now(), ref.q.now()) << "seed " << seed;
        EXPECT_EQ(opt.q.pending(), 0u);
    }
}

TEST(InlineFunction, InvokesAndReportsEngagement)
{
    InlineFunction<int(int), 16> f;
    EXPECT_FALSE(static_cast<bool>(f));
    int base = 40;
    f = [&base](int x) { return base + x; };
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(2), 42);
    f = nullptr;
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, MoveTransfersCallableAndEmptiesSource)
{
    int calls = 0;
    InlineFunction<void(), 16> a = [&calls] { ++calls; };
    InlineFunction<void(), 16> b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);
    a = std::move(b); // move-assign back over the empty one
    EXPECT_FALSE(static_cast<bool>(b));
    a();
    EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, DestroysCaptureExactlyOnce)
{
    // A shared_ptr capture counts destructions for us: after move
    // chains and reset, the use count must drop back to 1.
    auto token = std::make_shared<int>(7);
    {
        InlineFunction<int(), 32> f = [token] { return *token; };
        EXPECT_EQ(token.use_count(), 2);
        InlineFunction<int(), 32> g = std::move(f);
        EXPECT_EQ(token.use_count(), 2); // relocated, not duplicated
        EXPECT_EQ(g(), 7);
        g = nullptr;
        EXPECT_EQ(token.use_count(), 1);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(Clocked, ConversionsAndEdges)
{
    EventQueue eq;
    Clocked c(eq, TickDelta{833}); // ~1.2 GHz in ps
    EXPECT_EQ(c.cyclesToTicks(0), TickDelta{});
    EXPECT_EQ(c.cyclesToTicks(3), TickDelta{2499});
    EXPECT_EQ(c.ticksToCycles(TickDelta{1}), 1u);
    EXPECT_EQ(c.ticksToCycles(TickDelta{833}), 1u);
    EXPECT_EQ(c.ticksToCycles(TickDelta{834}), 2u);
    EXPECT_EQ(c.nextEdge(), Tick{});
    eq.schedule(Tick{1}, [] {});
    eq.run();
    EXPECT_EQ(c.nextEdge(), Tick{833});
}

TEST(Clocked, ZeroPeriodPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    EXPECT_DEATH(Clocked(eq, TickDelta{0}), "zero period");
}

} // namespace
} // namespace ansmet::sim
