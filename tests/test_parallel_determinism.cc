/**
 * @file
 * Serial-vs-parallel determinism: every thread-pooled stage (ground
 * truth, HNSW construction, concurrent search, trace replay) must
 * produce results bit-identical to the single-threaded reference path
 * for a fixed seed.
 *
 * The serial reference is obtained by running the stage inside a
 * worker of a private pool: pool work is flagged thread-local, so
 * every nested ThreadPool::global() entry point degrades to a plain
 * inline loop — exactly the ANSMET_THREADS=1 code path — while the
 * parallel run on the main thread uses the full global pool. On a
 * single-core machine both sides are serial and the tests pass
 * trivially.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/hnsw.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "core/trace.h"
#include "et/profile.h"

namespace ansmet {
namespace {

using anns::DatasetId;

/** Run @p fn with every ThreadPool::global() entry point forced inline. */
template <typename Fn>
auto
runSerial(Fn fn) -> decltype(fn())
{
    ThreadPool sandbox(2); // one worker; submit() must not run inline
    return sandbox.submit(std::move(fn)).get();
}

const anns::Dataset &
dataset()
{
    static const anns::Dataset ds =
        anns::makeDataset(DatasetId::kSift, 1200, 10, 1);
    return ds;
}

TEST(ParallelDeterminism, GroundTruthMatchesSerial)
{
    const auto &ds = dataset();
    const auto par =
        anns::bruteForceAll(anns::Metric::kL2, ds.queries, *ds.base, 10);
    const auto ser = runSerial([&] {
        return anns::bruteForceAll(anns::Metric::kL2, ds.queries, *ds.base,
                                   10);
    });
    ASSERT_EQ(par.size(), ser.size());
    for (std::size_t q = 0; q < par.size(); ++q) {
        ASSERT_EQ(par[q].size(), ser[q].size()) << "query " << q;
        for (std::size_t i = 0; i < par[q].size(); ++i) {
            EXPECT_EQ(par[q][i].id, ser[q][i].id) << "query " << q;
            EXPECT_EQ(par[q][i].dist, ser[q][i].dist) << "query " << q;
        }
    }
}

TEST(ParallelDeterminism, HnswBuildMatchesSerial)
{
    const auto &ds = dataset();
    const anns::HnswParams params{16, 80, 42};
    const anns::HnswIndex par(*ds.base, anns::Metric::kL2, params);
    const auto ser = runSerial([&] {
        return std::make_unique<anns::HnswIndex>(*ds.base,
                                                 anns::Metric::kL2, params);
    });

    EXPECT_EQ(par.entryPoint(), ser->entryPoint());
    ASSERT_EQ(par.maxLevel(), ser->maxLevel());
    for (VectorId v = 0; v < ds.base->size(); ++v) {
        ASSERT_EQ(par.levelOf(v), ser->levelOf(v)) << "v=" << v;
        for (unsigned l = 0; l <= par.levelOf(v); ++l)
            EXPECT_EQ(par.neighbors(v, l), ser->neighbors(v, l))
                << "v=" << v << " level=" << l;
    }
}

TEST(ParallelDeterminism, ConcurrentSearchMatchesSerial)
{
    const auto &ds = dataset();
    const anns::HnswIndex idx(*ds.base, anns::Metric::kL2,
                              anns::HnswParams{16, 80, 42});

    std::vector<std::vector<VectorId>> serial(ds.queries.size());
    for (std::size_t q = 0; q < ds.queries.size(); ++q)
        serial[q] = idx.search(ds.queries[q].data(), 10, 64);

    // Search is const and uses leased visit scratch, so many threads
    // may query one index at once with identical per-query results.
    std::vector<std::vector<VectorId>> parallel(ds.queries.size());
    ansmet::parallelFor(0, ds.queries.size(),
                        [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t q = lo; q < hi; ++q)
                                parallel[q] =
                                    idx.search(ds.queries[q].data(), 10, 64);
                        },
                        /*grain=*/1);
    EXPECT_EQ(parallel, serial);
}

TEST(ParallelDeterminism, TraceReplayStatsMatchOnTheFlyReference)
{
    const auto ds = anns::makeDataset(DatasetId::kDeep, 1200, 10, 1);
    const anns::HnswIndex idx(*ds.base, ds.metric(),
                              anns::HnswParams{16, 80, 42});
    et::ProfileConfig pc;
    pc.numSamples = 60;
    pc.maxPairs = 600;
    const et::EtProfile profile = et::buildProfile(*ds.base, ds.metric(), pc);
    std::vector<core::QueryTrace> traces;
    for (const auto &q : ds.queries)
        traces.push_back(core::traceHnswQuery(idx, q, 10, 48));
    const unsigned top = idx.maxLevel();
    const auto hot = idx.verticesAtLevel(top >= 3 ? top - 3 : 1);

    auto run = [&](core::Design d, bool prefetch) {
        core::SystemConfig cfg;
        cfg.design = d;
        cfg.concurrentQueries = 8;
        cfg.prefetchReplay = prefetch;
        core::SystemModel model(cfg, *ds.base, ds.metric(), &profile, hot);
        return model.run(traces);
    };

    for (const core::Design d :
         {core::Design::kCpuEt, core::Design::kNdpEtOpt}) {
        const core::RunStats pre = run(d, true);
        const core::RunStats fly = run(d, false);
        EXPECT_EQ(pre.makespan, fly.makespan) << designName(d);
        EXPECT_DOUBLE_EQ(pre.energy.totalNj(), fly.energy.totalNj())
            << designName(d);
        ASSERT_EQ(pre.queries.size(), fly.queries.size());
        for (std::size_t q = 0; q < pre.queries.size(); ++q) {
            const auto &a = pre.queries[q];
            const auto &b = fly.queries[q];
            EXPECT_EQ(a.start, b.start) << designName(d) << " q=" << q;
            EXPECT_EQ(a.end, b.end) << designName(d) << " q=" << q;
            EXPECT_EQ(a.comparisons, b.comparisons);
            EXPECT_EQ(a.accepted, b.accepted);
            EXPECT_EQ(a.terminated, b.terminated);
            EXPECT_EQ(a.linesEffectual, b.linesEffectual);
            EXPECT_EQ(a.linesIneffectual, b.linesIneffectual);
            EXPECT_EQ(a.backupLines, b.backupLines);
            EXPECT_EQ(a.polls, b.polls);
        }
    }
}

TEST(ParallelDeterminism, LockedBuildSearchStillAccurate)
{
    // The opt-in lock-based build is nondeterministic by construction,
    // but must still produce a valid, searchable graph.
    const auto &ds = dataset();
    anns::HnswParams params{16, 80, 42};
    params.build = anns::HnswParams::Build::kLocked;
    const anns::HnswIndex idx(*ds.base, anns::Metric::kL2, params);

    for (VectorId v = 0; v < ds.base->size(); ++v) {
        for (unsigned l = 0; l <= idx.levelOf(v); ++l) {
            EXPECT_LE(idx.neighbors(v, l).size(), params.maxDegree(l));
            for (const VectorId nb : idx.neighbors(v, l)) {
                EXPECT_LT(nb, ds.base->size());
                EXPECT_NE(nb, v);
                EXPECT_GE(idx.levelOf(nb), l);
            }
        }
    }

    const auto gt =
        anns::bruteForceAll(anns::Metric::kL2, ds.queries, *ds.base, 10);
    double total = 0.0;
    for (std::size_t q = 0; q < ds.queries.size(); ++q) {
        total += anns::recallAtK(idx.search(ds.queries[q].data(), 10, 100),
                                 gt[q], 10);
    }
    EXPECT_GE(total / static_cast<double>(ds.queries.size()), 0.8);
}

} // namespace
} // namespace ansmet
