/**
 * @file
 * Observability-layer tests: registry semantics (counters, gauges,
 * histograms, shard merging across threads), snapshot JSON shape, and
 * the Chrome-trace writer's off-by-default behaviour.
 *
 * The whole suite is a no-op (beyond stub-API coverage) when the
 * library was built with -DANSMET_OBS=OFF.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ansmet::obs {
namespace {

#ifndef ANSMET_OBS_DISABLED

class RegistryTest : public ::testing::Test
{
  protected:
    void SetUp() override { Registry::instance().reset(); }
    void TearDown() override { Registry::instance().reset(); }
};

TEST_F(RegistryTest, CounterAccumulates)
{
    Counter c = Registry::instance().counter("test.counter_a");
    c.inc();
    c.add(41);
    const Snapshot snap = Registry::instance().snapshot();
    ASSERT_TRUE(snap.counters.count("test.counter_a"));
    EXPECT_EQ(snap.counters.at("test.counter_a"), 42u);
}

TEST_F(RegistryTest, RegistrationIsIdempotent)
{
    Counter a = Registry::instance().counter("test.same_name");
    Counter b = Registry::instance().counter("test.same_name");
    a.add(1);
    b.add(2);
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.same_name"), 3u);
}

TEST_F(RegistryTest, GaugeKeepsLastValue)
{
    Gauge g = Registry::instance().gauge("test.gauge");
    g.set(7);
    g.add(-3);
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.gauges.at("test.gauge"), 4);
}

TEST_F(RegistryTest, HistogramBucketsByLog2)
{
    Histogram h = Registry::instance().histogram("test.hist", 8);
    h.sample(0); // bucket 0
    h.sample(1); // bucket 1: [1, 2)
    h.sample(3); // bucket 2: [2, 4)
    h.sample(1000000); // clamps into the last bucket
    const Snapshot snap = Registry::instance().snapshot();
    const HistogramData &d = snap.histograms.at("test.hist");
    EXPECT_EQ(d.count, 4u);
    EXPECT_EQ(d.sum, 0u + 1 + 3 + 1000000);
    ASSERT_EQ(d.buckets.size(), 8u);
    EXPECT_EQ(d.buckets[0], 1u);
    EXPECT_EQ(d.buckets[1], 1u);
    EXPECT_EQ(d.buckets[2], 1u);
    EXPECT_EQ(d.buckets[7], 1u);
    EXPECT_DOUBLE_EQ(d.mean(), (0.0 + 1 + 3 + 1000000) / 4.0);
}

TEST_F(RegistryTest, ShardsMergeAcrossThreads)
{
    Counter c = Registry::instance().counter("test.mt_counter");
    Histogram h = Registry::instance().histogram("test.mt_hist", 8);
    constexpr int kThreads = 8;
    constexpr int kIters = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                h.sample(2);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.mt_counter"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(snap.histograms.at("test.mt_hist").count,
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(RegistryTest, SnapshotJsonIsParsableShape)
{
    Registry::instance().counter("test.json_counter").add(5);
    Registry::instance().gauge("test.json_gauge").set(-2);
    Registry::instance().histogram("test.json_hist", 4).sample(1);
    const std::string json = Registry::instance().snapshotJson();
    // Not a full JSON parser — assert the structural anchors a real
    // consumer (tools/, CI artifact readers) relies on.
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json_counter\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"test.json_gauge\": -2"), std::string::npos);
    EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST_F(RegistryTest, ResetZeroesEverything)
{
    Counter c = Registry::instance().counter("test.reset_counter");
    c.add(9);
    Registry::instance().reset();
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.reset_counter"), 0u);
}

TEST(TraceWriterTest, DisabledWithoutEnv)
{
    // The test binary never sets ANSMET_TRACE, so recording must be
    // off and every call a cheap no-op.
    auto &tw = TraceWriter::instance();
    EXPECT_FALSE(tw.enabled());
    tw.beginRun("test-run");
    tw.span("noop", 0, Tick{}, Tick{10});
    tw.counter("noop", 0, Tick{}, 1);
    tw.instant("noop", 0, Tick{});
    tw.flush();
    EXPECT_EQ(tw.dropped(), 0u);
}

#else // ANSMET_OBS_DISABLED

TEST(ObsDisabled, StubsAreInertButLinkable)
{
    Counter c = Registry::instance().counter("x");
    c.add(100);
    Gauge g = Registry::instance().gauge("y");
    g.set(1);
    Histogram h = Registry::instance().histogram("z");
    h.sample(1);
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_EQ(Registry::instance().snapshotJson(), "{}");
    EXPECT_FALSE(TraceWriter::instance().enabled());
}

#endif // ANSMET_OBS_DISABLED

} // namespace
} // namespace ansmet::obs
