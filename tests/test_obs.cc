/**
 * @file
 * Observability-layer tests: registry semantics (counters, gauges,
 * histograms, shard merging across threads), snapshot JSON shape, and
 * the Chrome-trace writer's off-by-default behaviour.
 *
 * The whole suite is a no-op (beyond stub-API coverage) when the
 * library was built with -DANSMET_OBS=OFF.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ansmet::obs {
namespace {

#ifndef ANSMET_OBS_DISABLED

class RegistryTest : public ::testing::Test
{
  protected:
    void SetUp() override { Registry::instance().reset(); }
    void TearDown() override { Registry::instance().reset(); }
};

TEST_F(RegistryTest, CounterAccumulates)
{
    Counter c = Registry::instance().counter("test.counter_a");
    c.inc();
    c.add(41);
    const Snapshot snap = Registry::instance().snapshot();
    ASSERT_TRUE(snap.counters.count("test.counter_a"));
    EXPECT_EQ(snap.counters.at("test.counter_a"), 42u);
}

TEST_F(RegistryTest, RegistrationIsIdempotent)
{
    Counter a = Registry::instance().counter("test.same_name");
    Counter b = Registry::instance().counter("test.same_name");
    a.add(1);
    b.add(2);
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.same_name"), 3u);
}

TEST_F(RegistryTest, GaugeKeepsLastValue)
{
    Gauge g = Registry::instance().gauge("test.gauge");
    g.set(7);
    g.add(-3);
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.gauges.at("test.gauge"), 4);
}

TEST_F(RegistryTest, HistogramBucketsByLog2)
{
    Histogram h = Registry::instance().histogram("test.hist", 8);
    h.sample(0); // bucket 0
    h.sample(1); // bucket 1: [1, 2)
    h.sample(3); // bucket 2: [2, 4)
    h.sample(1000000); // clamps into the last bucket
    const Snapshot snap = Registry::instance().snapshot();
    const HistogramData &d = snap.histograms.at("test.hist");
    EXPECT_EQ(d.count, 4u);
    EXPECT_EQ(d.sum, 0u + 1 + 3 + 1000000);
    ASSERT_EQ(d.buckets.size(), 8u);
    EXPECT_EQ(d.buckets[0], 1u);
    EXPECT_EQ(d.buckets[1], 1u);
    EXPECT_EQ(d.buckets[2], 1u);
    EXPECT_EQ(d.buckets[7], 1u);
    EXPECT_DOUBLE_EQ(d.mean(), (0.0 + 1 + 3 + 1000000) / 4.0);
}

TEST_F(RegistryTest, HistogramQuantileExactOnBucketBoundaries)
{
    // Values whose bucket upper bound equals the value itself make the
    // log2 quantile exact: 0 (zero bucket) and 2^i - 1.
    Histogram h = Registry::instance().histogram("test.quant_exact", 12);
    for (int i = 0; i < 50; ++i)
        h.sample(0);
    for (int i = 0; i < 30; ++i)
        h.sample(1); // bucket 1, upper bound 1
    for (int i = 0; i < 15; ++i)
        h.sample(3); // bucket 2, upper bound 3
    for (int i = 0; i < 5; ++i)
        h.sample(7); // bucket 3, upper bound 7
    const Snapshot snap = Registry::instance().snapshot();
    const HistogramData &d = snap.histograms.at("test.quant_exact");
    EXPECT_EQ(d.quantile(0.50), 0u);   // rank 50 of 100
    EXPECT_EQ(d.quantile(0.51), 1u);   // rank 51
    EXPECT_EQ(d.quantile(0.80), 1u);   // rank 80
    EXPECT_EQ(d.quantile(0.95), 3u);   // rank 95
    EXPECT_EQ(d.quantile(0.99), 7u);   // rank 99
    EXPECT_EQ(d.quantile(1.0), 7u);
    EXPECT_EQ(HistogramData{}.quantile(0.99), 0u); // empty
}

TEST_F(RegistryTest, HistogramQuantileWithinLog2ErrorBound)
{
    // For any in-range sample distribution, the bucketed estimate e of
    // a quantile whose true sample is v satisfies e/2 < v <= e — the
    // documented log2 bound. Check against the exact nearest-rank
    // quantile of a fixed sample set.
    Histogram h = Registry::instance().histogram("test.quant_bound", 32);
    std::vector<std::uint64_t> vals;
    std::uint64_t x = 12345;
    for (int i = 0; i < 1000; ++i) {
        // Deterministic LCG spread over a few decades.
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        vals.push_back(1 + (x >> 33) % 1000000);
    }
    for (std::uint64_t v : vals)
        h.sample(v);
    std::vector<std::uint64_t> sorted = vals;
    std::sort(sorted.begin(), sorted.end());
    const Snapshot snap = Registry::instance().snapshot();
    const HistogramData &d = snap.histograms.at("test.quant_bound");
    for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(sorted.size())));
        const std::uint64_t truth = sorted[rank - 1];
        const std::uint64_t est = d.quantile(q);
        EXPECT_LE(truth, est) << "q=" << q;
        EXPECT_LT(est, 2 * truth) << "q=" << q;
    }
}

TEST_F(RegistryTest, HistogramQuantileMergesAcrossShards)
{
    // Each thread contributes a disjoint slice of the distribution
    // from its own shard; quantiles over the merged snapshot must see
    // the union.
    Histogram h = Registry::instance().histogram("test.quant_mt", 24);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            // Thread t samples 250 values around 2^(4 + 2t).
            const std::uint64_t v = std::uint64_t{1} << (4 + 2 * t);
            for (int i = 0; i < 250; ++i)
                h.sample(v);
        });
    }
    for (auto &t : threads)
        t.join();
    const Snapshot snap = Registry::instance().snapshot();
    const HistogramData &d = snap.histograms.at("test.quant_mt");
    EXPECT_EQ(d.count, 1000u);
    // Quartile boundaries land between the per-thread clusters.
    EXPECT_LT(d.quantile(0.25), 32u);      // cluster 0: v=16
    EXPECT_LT(d.quantile(0.50), 128u);     // cluster 1: v=64
    EXPECT_LT(d.quantile(0.75), 512u);     // cluster 2: v=256
    EXPECT_GE(d.quantile(1.0), 1024u);     // cluster 3: v=1024
}

TEST_F(RegistryTest, SnapshotDoesNotTearHistogramMidRun)
{
    // Regression for the bucket/sum tear: a snapshot taken while a
    // histogram sample is mid-flight (bucket slot bumped, sum slot not
    // yet) used to report sum != value * count. The per-shard seqlock
    // epoch makes every snapshot internally consistent.
    //
    // The writer samples in short bursts with a pause between them, so
    // the reader always finds a stable epoch well inside its retry
    // bound and the assertion is not flaky; the burst itself is what
    // used to tear. Run under tsan in CI for ordering coverage.
    Histogram h = Registry::instance().histogram("test.tear", 16);
    constexpr std::uint64_t kValue = 5;
    constexpr int kBursts = 400;
    constexpr int kPerBurst = 16;
    std::atomic<bool> done{false};
    std::thread writer([&] {
        for (int b = 0; b < kBursts; ++b) {
            for (int i = 0; i < kPerBurst; ++i)
                h.sample(kValue);
            std::this_thread::yield();
        }
        done.store(true, std::memory_order_release);
    });
    std::uint64_t snapshots = 0;
    while (!done.load(std::memory_order_acquire)) {
        const Snapshot snap = Registry::instance().snapshot();
        const HistogramData &d = snap.histograms.at("test.tear");
        EXPECT_EQ(d.sum, kValue * d.count)
            << "torn snapshot after " << snapshots << " reads";
        ++snapshots;
    }
    writer.join();
    const Snapshot fin = Registry::instance().snapshot();
    const HistogramData &final_d = fin.histograms.at("test.tear");
    EXPECT_EQ(final_d.count,
              static_cast<std::uint64_t>(kBursts) * kPerBurst);
    EXPECT_EQ(final_d.sum, kValue * final_d.count);
}

TEST_F(RegistryTest, ShardsMergeAcrossThreads)
{
    Counter c = Registry::instance().counter("test.mt_counter");
    Histogram h = Registry::instance().histogram("test.mt_hist", 8);
    constexpr int kThreads = 8;
    constexpr int kIters = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                h.sample(2);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.mt_counter"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(snap.histograms.at("test.mt_hist").count,
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(RegistryTest, SnapshotJsonIsParsableShape)
{
    Registry::instance().counter("test.json_counter").add(5);
    Registry::instance().gauge("test.json_gauge").set(-2);
    Registry::instance().histogram("test.json_hist", 4).sample(1);
    const std::string json = Registry::instance().snapshotJson();
    // Not a full JSON parser — assert the structural anchors a real
    // consumer (tools/, CI artifact readers) relies on.
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json_counter\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"test.json_gauge\": -2"), std::string::npos);
    EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST_F(RegistryTest, ResetZeroesEverything)
{
    Counter c = Registry::instance().counter("test.reset_counter");
    c.add(9);
    Registry::instance().reset();
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.reset_counter"), 0u);
}

TEST(TraceWriterTest, DisabledWithoutEnv)
{
    // The test binary never sets ANSMET_TRACE, so recording must be
    // off and every call a cheap no-op.
    auto &tw = TraceWriter::instance();
    EXPECT_FALSE(tw.enabled());
    tw.beginRun("test-run");
    tw.span("noop", 0, Tick{}, Tick{10});
    tw.counter("noop", 0, Tick{}, 1);
    tw.instant("noop", 0, Tick{});
    tw.flush();
    EXPECT_EQ(tw.dropped(), 0u);
}

#else // ANSMET_OBS_DISABLED

TEST(ObsDisabled, StubsAreInertButLinkable)
{
    Counter c = Registry::instance().counter("x");
    c.add(100);
    Gauge g = Registry::instance().gauge("y");
    g.set(1);
    Histogram h = Registry::instance().histogram("z");
    h.sample(1);
    const Snapshot snap = Registry::instance().snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_EQ(Registry::instance().snapshotJson(), "{}");
    EXPECT_FALSE(TraceWriter::instance().enabled());
}

#endif // ANSMET_OBS_DISABLED

} // namespace
} // namespace ansmet::obs
