/**
 * @file
 * DRAM model tests: per-command timing constraint verification (via
 * the command trace), controller scheduling behavior, address mapping,
 * bus-only transfers, and refresh.
 */

#include <gtest/gtest.h>

#include <map>

#include "dram/controller.h"
#include "dram/power.h"
#include "sim/event_queue.h"

namespace ansmet::dram {
namespace {

TimingParams
timing()
{
    return TimingParams{};
}

OrgParams
smallOrg()
{
    OrgParams org;
    org.channels = 1;
    org.dimmsPerChannel = 1;
    org.ranksPerDimm = 1;
    return org;
}

/** Check every pairwise constraint on a recorded command trace. */
void
verifyTrace(const std::vector<CommandRecord> &trace, const TimingParams &tp,
            const OrgParams &org)
{
    struct BankView
    {
        Tick lastAct{};
        Tick lastPre{};
        Tick lastCol{};
        bool open = false;
        bool sawAct = false, sawPre = false, sawCol = false;
    };
    std::map<unsigned, BankView> banks;
    Tick lastActRank{};
    bool sawActRank = false;
    std::vector<Tick> actWindow;

    for (const auto &c : trace) {
        if (c.cmd == Command::kRef)
            continue;
        const unsigned flat = c.bankGroup * org.banksPerGroup + c.bank;
        BankView &b = banks[flat];
        switch (c.cmd) {
          case Command::kAct:
            ASSERT_FALSE(b.open) << "ACT on open bank @" << c.tick;
            if (b.sawAct) {
                EXPECT_GE(c.tick, b.lastAct + tp.cycles(tp.tRC));
            }
            if (b.sawPre) {
                EXPECT_GE(c.tick, b.lastPre + tp.cycles(tp.tRP));
            }
            if (sawActRank) {
                EXPECT_GE(c.tick, lastActRank + tp.cycles(tp.tRRD_S));
            }
            actWindow.push_back(c.tick);
            if (actWindow.size() > 4)
                actWindow.erase(actWindow.begin());
            if (actWindow.size() == 4) {
                EXPECT_GE(c.tick, actWindow.front()); // window recorded
            }
            b.lastAct = c.tick;
            b.sawAct = true;
            b.open = true;
            lastActRank = c.tick;
            sawActRank = true;
            break;
          case Command::kPre:
            ASSERT_TRUE(b.open);
            EXPECT_GE(c.tick, b.lastAct + tp.cycles(tp.tRAS));
            if (b.sawCol) {
                EXPECT_GE(c.tick, b.lastCol + tp.cycles(tp.tRTP));
            }
            b.lastPre = c.tick;
            b.sawPre = true;
            b.open = false;
            break;
          case Command::kRd:
          case Command::kWr:
            ASSERT_TRUE(b.open) << "column command to closed bank";
            EXPECT_GE(c.tick, b.lastAct + tp.cycles(tp.tRCD));
            b.lastCol = c.tick;
            b.sawCol = true;
            break;
          default:
            break;
        }
    }
}

TEST(RankDevice, ClosedPageReadLatency)
{
    const auto tp = timing();
    RankDevice dev(tp, smallOrg());
    BankAddr a{0, 0, 5, 17};

    const Tick act = dev.earliestAct(a, Tick{});
    EXPECT_EQ(act, Tick{});
    dev.issueAct(a, act);
    const Tick col = dev.earliestCol(a, false, act);
    EXPECT_EQ(col, act + tp.cycles(tp.tRCD));
    const Tick done = dev.issueCol(a, false, col);
    EXPECT_EQ(done, col + tp.cycles(tp.tCL + tp.tBL));
}

TEST(RankDevice, RowConflictNeedsPrecharge)
{
    const auto tp = timing();
    RankDevice dev(tp, smallOrg());
    BankAddr a{0, 0, 5, 0};
    BankAddr b{0, 0, 9, 0};

    dev.issueAct(a, Tick{});
    EXPECT_TRUE(dev.openRow(b).has_value());
    EXPECT_EQ(*dev.openRow(b), 5u);

    const Tick pre = dev.earliestPre(b, Tick{});
    EXPECT_GE(pre, Tick{} + tp.cycles(tp.tRAS));
    dev.issuePre(b, pre);
    EXPECT_FALSE(dev.openRow(b).has_value());
    const Tick act = dev.earliestAct(b, pre);
    EXPECT_GE(act, pre + tp.cycles(tp.tRP));
}

TEST(RankDevice, FawLimitsActivates)
{
    const auto tp = timing();
    RankDevice dev(tp, smallOrg());
    Tick t{};
    // Four ACTs to different bank groups, spaced at tRRD_S.
    for (unsigned i = 0; i < 4; ++i) {
        BankAddr a{i, 0, 1, 0};
        t = dev.earliestAct(a, t);
        dev.issueAct(a, t);
    }
    BankAddr fifth{4, 0, 1, 0};
    const Tick e = dev.earliestAct(fifth, t);
    // The fifth ACT must wait for the FAW window from the first.
    EXPECT_GE(e, Tick{} + (dev.trace().empty() ? TickDelta{}
                                               : tp.cycles(tp.tFAW)));
    EXPECT_GE(e, Tick{} + tp.cycles(tp.tFAW));
}

TEST(RankDevice, WriteRecoveryGatesRead)
{
    const auto tp = timing();
    RankDevice dev(tp, smallOrg());
    BankAddr a{0, 0, 1, 0};
    dev.issueAct(a, Tick{});
    const Tick wr = dev.earliestCol(a, true, Tick{});
    const Tick wr_end = dev.issueCol(a, true, wr);
    const Tick rd = dev.earliestCol(a, false, wr + tp.tCK);
    EXPECT_GE(rd, wr_end + tp.cycles(tp.tWTR));
}

TEST(RankDevice, RefreshBlocksAndCloses)
{
    const auto tp = timing();
    RankDevice dev(tp, smallOrg());
    BankAddr a{0, 0, 1, 0};
    dev.issueAct(a, Tick{});
    const Tick after_refi = Tick{} + tp.cycles(tp.tREFI) + TickDelta{10};
    dev.catchUpRefresh(after_refi);
    EXPECT_EQ(dev.numRefreshes(), 1u);
    EXPECT_FALSE(dev.openRow(a).has_value());
    EXPECT_GE(dev.earliestAct(a, after_refi),
              Tick{} + tp.cycles(tp.tREFI) + tp.cycles(tp.tRFC));
}

TEST(MemController, SingleReadCompletes)
{
    sim::EventQueue eq;
    const auto tp = timing();
    MemController ctrl(eq, tp, smallOrg(), 1, "t");

    Tick done{};
    Request req;
    req.addr = BankAddr{0, 0, 1, 0};
    req.onComplete = [&](Tick t) { done = t; };
    ctrl.enqueue(0, std::move(req));
    eq.run();

    // Closed page: ACT + tRCD + CL + tBL.
    EXPECT_EQ(done, Tick{} + tp.cycles(tp.tRCD + tp.tCL + tp.tBL));
}

TEST(MemController, RowHitsAreFasterThanConflicts)
{
    sim::EventQueue eq;
    const auto tp = timing();
    MemController ctrl(eq, tp, smallOrg(), 1, "t");

    std::vector<Tick> hit_done(4), conf_done(2);
    for (unsigned i = 0; i < 4; ++i) {
        Request req;
        req.addr = BankAddr{0, 0, 1, i};
        req.onComplete = [&, i](Tick t) { hit_done[i] = t; };
        ctrl.enqueue(0, std::move(req));
    }
    eq.run();
    const TickDelta hits_span = hit_done[3] - hit_done[0];

    sim::EventQueue eq2;
    MemController ctrl2(eq2, tp, smallOrg(), 1, "t2");
    for (unsigned i = 0; i < 2; ++i) {
        Request req;
        req.addr = BankAddr{0, 0, i + 1, 0}; // different rows, same bank
        req.onComplete = [&, i](Tick t) { conf_done[i] = t; };
        ctrl2.enqueue(0, std::move(req));
    }
    eq2.run();
    EXPECT_LT(hits_span, conf_done[1] - conf_done[0]);
}

TEST(MemController, TimingTraceIsClean)
{
    sim::EventQueue eq;
    const auto tp = timing();
    const auto org = smallOrg();
    MemController ctrl(eq, tp, org, 1, "t");
    ctrl.rankDevice(0).enableTrace();

    // A pseudo-random mix of reads and writes across banks and rows.
    std::uint64_t state = 12345;
    unsigned completed = 0;
    for (int i = 0; i < 300; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        Request req;
        req.addr.bankGroup = (state >> 10) % org.bankGroups;
        req.addr.bank = (state >> 20) % org.banksPerGroup;
        req.addr.row = (state >> 30) % 8;
        req.addr.column = (state >> 40) % org.columns;
        req.isWrite = ((state >> 50) & 3) == 0;
        req.onComplete = [&](Tick) { ++completed; };
        ctrl.enqueue(0, std::move(req));
    }
    eq.run();
    EXPECT_EQ(completed, 300u);
    verifyTrace(ctrl.rankDevice(0).trace(), tp, org);
}

TEST(MemController, MultiRankParallelismBeatsSingleRank)
{
    const auto tp = timing();
    const auto org = smallOrg();
    const int n = 64;

    auto run_banked = [&](unsigned ranks) {
        sim::EventQueue eq;
        MemController ctrl(eq, tp, org, ranks, "t");
        for (int i = 0; i < n; ++i) {
            Request req;
            // Same bank+row conflict pattern within each rank.
            req.addr = BankAddr{0, 0, static_cast<unsigned>(i), 0};
            req.onComplete = nullptr;
            ctrl.enqueue(i % ranks, std::move(req));
        }
        eq.run();
        return eq.now();
    };

    // Spreading conflicting rows over ranks hides tRC.
    EXPECT_LT(run_banked(4), run_banked(1));
}

TEST(MemController, BusTransferLatency)
{
    sim::EventQueue eq;
    const auto tp = timing();
    MemController ctrl(eq, tp, smallOrg(), 1, "t");
    Tick done{};
    ctrl.enqueueBusTransfer(true, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, Tick{} + tp.cycles(tp.tCWL + tp.tBL));
}

TEST(MemController, BandwidthApproachesPeakOnStreams)
{
    sim::EventQueue eq;
    const auto tp = timing();
    const auto org = smallOrg();
    MemController ctrl(eq, tp, org, 1, "t");

    const int n = 512;
    for (int i = 0; i < n; ++i) {
        Request req;
        req.addr = mapLine(static_cast<std::uint64_t>(i), org);
        req.onComplete = nullptr;
        ctrl.enqueue(0, std::move(req));
    }
    eq.run();
    // Streaming row hits should keep the data bus > 70% utilized.
    const double util = static_cast<double>(ctrl.dataBusBusy().raw()) /
                        static_cast<double>(eq.now().raw());
    EXPECT_GT(util, 0.7);
}

TEST(AddrMap, BijectiveOverARange)
{
    const auto org = smallOrg();
    std::map<std::tuple<unsigned, unsigned, unsigned, unsigned>,
             std::uint64_t>
        seen;
    for (std::uint64_t line = 0; line < 100000; line += 37) {
        const BankAddr a = mapLine(line, org);
        const auto key =
            std::make_tuple(a.bankGroup, a.bank, a.row, a.column);
        EXPECT_EQ(seen.count(key), 0u) << "collision at line " << line;
        seen[key] = line;
        EXPECT_LT(a.bankGroup, org.bankGroups);
        EXPECT_LT(a.bank, org.banksPerGroup);
        EXPECT_LT(a.row, org.rows);
        EXPECT_LT(a.column, org.columns);
    }
}

TEST(Power, EnergyScalesWithActivity)
{
    const auto tp = timing();
    const auto org = smallOrg();
    RankDevice dev(tp, org);
    const EnergyParams ep;

    const auto idle = rankEnergy(dev, ep, TickDelta{1000000}, 0);
    EXPECT_DOUBLE_EQ(idle.actPreNj, 0.0);
    EXPECT_GT(idle.backgroundNj, 0.0);

    BankAddr a{0, 0, 1, 0};
    dev.issueAct(a, Tick{});
    dev.issueCol(a, false, dev.earliestCol(a, false, Tick{}));
    const auto active = rankEnergy(dev, ep, TickDelta{1000000}, 1);
    EXPECT_GT(active.actPreNj, 0.0);
    EXPECT_GT(active.rdWrCoreNj, 0.0);
    EXPECT_GT(active.ioNj, 0.0);
    EXPECT_GT(active.totalNj(), idle.totalNj());
}

TEST(DeviceInvariants, ColumnToClosedRowPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RankDevice dev(timing(), smallOrg());
    const BankAddr a{0, 0, 5, 0};
    EXPECT_DEATH(dev.issueCol(a, false, Tick{100}),
                 "column command to a closed/incorrect row");
}

TEST(DeviceInvariants, ColumnToWrongRowPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RankDevice dev(timing(), smallOrg());
    const BankAddr opened{0, 0, 5, 0};
    dev.issueAct(opened, dev.earliestAct(opened, Tick{}));
    const BankAddr wrong{0, 0, 6, 0};
    EXPECT_DEATH(
        dev.issueCol(wrong, false,
                     dev.earliestCol(wrong, false, Tick{1000000})),
        "closed/incorrect row");
}

TEST(DeviceInvariants, ActOnOpenBankPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RankDevice dev(timing(), smallOrg());
    const BankAddr a{0, 0, 5, 0};
    dev.issueAct(a, dev.earliestAct(a, Tick{}));
    const BankAddr other_row{0, 0, 9, 0};
    EXPECT_DEATH(dev.issueAct(other_row, Tick{1000000}),
                 "ACT to a bank with an open row");
}

TEST(DeviceInvariants, ActTimingViolationPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const TimingParams tp = timing();
    RankDevice dev(tp, smallOrg());
    const BankAddr a{0, 0, 5, 0};
    dev.issueAct(a, dev.earliestAct(a, Tick{}));
    dev.issuePre(a, dev.earliestPre(a, Tick{} + tp.cycles(tp.tRAS)));
    // Re-activating before tRP after the precharge violates timing.
    EXPECT_DEATH(
        dev.issueAct(a, dev.earliestAct(a, Tick{}) - TickDelta{1}),
        "ACT timing violation");
}

} // namespace
} // namespace ansmet::dram
