/**
 * @file
 * Early-terminated exact search tests (Section 4.1's "can even be used
 * in accurate algorithms like kmeans and kNN"): results must be
 * bit-identical to the plain scans, with strictly fewer data touches.
 */

#include <gtest/gtest.h>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "common/prng.h"
#include "et/exact.h"
#include "et/profile.h"

namespace ansmet::et {
namespace {

using anns::DatasetId;

struct Fixture
{
    anns::Dataset ds;
    EtProfile profile;
};

const Fixture &
fixture()
{
    static const Fixture f = [] {
        Fixture fx{anns::makeDataset(DatasetId::kDeep, 1500, 10, 6), {}};
        ProfileConfig cfg;
        cfg.numSamples = 50;
        cfg.maxPairs = 500;
        fx.profile = buildProfile(*fx.ds.base, fx.ds.metric(), cfg);
        return fx;
    }();
    return f;
}

TEST(ExactKnnEt, IdenticalToBruteForce)
{
    const Fixture &f = fixture();
    const FetchSimulator sim(*f.ds.base, f.ds.metric(), EtScheme::kOpt,
                             &f.profile);

    for (const auto &q : f.ds.queries) {
        const auto exact =
            anns::bruteForceKnn(f.ds.metric(), q.data(), *f.ds.base, 10);
        ExactScanStats stats;
        const auto et = exactKnnEt(sim, q.data(), 10, &stats);

        ASSERT_EQ(et.size(), exact.size());
        for (std::size_t i = 0; i < et.size(); ++i) {
            EXPECT_EQ(et[i].id, exact[i].id) << "rank " << i;
            EXPECT_DOUBLE_EQ(et[i].dist, exact[i].dist);
        }
        EXPECT_LT(stats.linesFetched, stats.linesFull)
            << "exact ET scan saved nothing";
        EXPECT_GT(stats.terminated, 0u);
    }
}

TEST(ExactKnnEt, SavingsGrowAsResultSetConverges)
{
    // The scan's threshold tightens as better candidates arrive, so a
    // k=1 scan should terminate more comparisons than a k=100 scan.
    const Fixture &f = fixture();
    const FetchSimulator sim(*f.ds.base, f.ds.metric(), EtScheme::kOpt,
                             &f.profile);
    const auto &q = f.ds.queries[0];

    ExactScanStats tight, loose;
    exactKnnEt(sim, q.data(), 1, &tight);
    exactKnnEt(sim, q.data(), 100, &loose);
    EXPECT_LE(tight.linesFetched, loose.linesFetched);
}

TEST(KmeansAssignEt, MatchesExhaustiveAssignment)
{
    const Fixture &f = fixture();
    const auto &vs = *f.ds.base;
    const unsigned k = 8;

    // Centroids: a few dataset vectors.
    std::vector<float> centroids;
    for (unsigned c = 0; c < k; ++c) {
        const auto cv = vs.toFloat(static_cast<VectorId>(c * 137));
        centroids.insert(centroids.end(), cv.begin(), cv.end());
    }

    ExactScanStats stats;
    const auto assign =
        kmeansAssignEt(vs, f.ds.metric(), centroids, k, &stats);

    ASSERT_EQ(assign.size(), vs.size());
    std::vector<float> buf(vs.dims());
    for (std::size_t v = 0; v < vs.size(); v += 13) {
        vs.toFloat(static_cast<VectorId>(v), buf.data());
        double best = std::numeric_limits<double>::infinity();
        unsigned best_c = 0;
        for (unsigned c = 0; c < k; ++c) {
            const double d = anns::distance(
                f.ds.metric(), centroids.data() + c * vs.dims(),
                buf.data(), vs.dims());
            if (d < best) {
                best = d;
                best_c = c;
            }
        }
        EXPECT_EQ(assign[v], best_c) << "vector " << v;
    }
    EXPECT_LT(stats.linesFetched, stats.linesFull);
}

} // namespace
} // namespace ansmet::et
