/**
 * @file
 * ANNS primitives: scalar conversions, vector storage, distances,
 * heaps, brute force, recall, and the dataset generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/distance.h"
#include "anns/heap.h"
#include "anns/vector.h"
#include "common/prng.h"

namespace ansmet::anns {
namespace {

TEST(Scalar, HalfRoundTripExactValues)
{
    // Values exactly representable in fp16 round-trip losslessly.
    for (const float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f,
                          65504.0f, -65504.0f, 6.1035156e-5f}) {
        EXPECT_EQ(halfToFloat(floatToHalf(f)), f) << f;
    }
}

TEST(Scalar, HalfSubnormals)
{
    const float tiny = 5.9604645e-8f; // smallest positive subnormal
    EXPECT_EQ(halfToFloat(floatToHalf(tiny)), tiny);
    EXPECT_EQ(halfToFloat(floatToHalf(tiny / 4)), 0.0f); // underflow
}

TEST(Scalar, HalfRounding)
{
    Prng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const float f = static_cast<float>(rng.uniform(-1000.0, 1000.0));
        const float back = halfToFloat(floatToHalf(f));
        // fp16 has ~3 decimal digits: relative error < 2^-10.
        EXPECT_NEAR(back, f, std::abs(f) * 0.001f + 1e-6f);
    }
}

TEST(VectorSet, TypedStorageRoundTrip)
{
    for (const ScalarType t :
         {ScalarType::kUint8, ScalarType::kInt8, ScalarType::kFp16,
          ScalarType::kFp32}) {
        VectorSet vs(4, 8, t);
        vs.set(1, 3, 42.0f);
        vs.set(2, 0, t == ScalarType::kUint8 ? 7.0f : -7.0f);
        EXPECT_EQ(vs.at(1, 3), 42.0f) << scalarName(t);
        EXPECT_EQ(vs.at(2, 0), t == ScalarType::kUint8 ? 7.0f : -7.0f);
        EXPECT_EQ(vs.at(0, 0), 0.0f);
    }
}

TEST(VectorSet, ClampsToRange)
{
    VectorSet u8(1, 2, ScalarType::kUint8);
    u8.set(0, 0, -5.0f);
    u8.set(0, 1, 300.0f);
    EXPECT_EQ(u8.at(0, 0), 0.0f);
    EXPECT_EQ(u8.at(0, 1), 255.0f);

    VectorSet i8(1, 2, ScalarType::kInt8);
    i8.set(0, 0, -200.0f);
    i8.set(0, 1, 200.0f);
    EXPECT_EQ(i8.at(0, 0), -128.0f);
    EXPECT_EQ(i8.at(0, 1), 127.0f);
}

TEST(Distance, L2MatchesManual)
{
    VectorSet vs(1, 3, ScalarType::kFp32);
    vs.set(0, 0, 1.0f);
    vs.set(0, 1, 2.0f);
    vs.set(0, 2, -3.0f);
    const float q[3] = {4.0f, -2.0f, 0.0f};
    EXPECT_DOUBLE_EQ(l2Sq(q, vs, 0), 9.0 + 16.0 + 9.0);
}

TEST(Distance, IpMatchesManualAndIsNegated)
{
    VectorSet vs(1, 3, ScalarType::kFp32);
    vs.set(0, 0, 1.0f);
    vs.set(0, 1, 2.0f);
    vs.set(0, 2, 3.0f);
    const float q[3] = {1.0f, 1.0f, 1.0f};
    EXPECT_DOUBLE_EQ(negIp(q, vs, 0), -6.0);
}

TEST(Distance, TypedFastPathsAgreeWithGeneric)
{
    Prng rng(9);
    for (const ScalarType t :
         {ScalarType::kUint8, ScalarType::kInt8, ScalarType::kFp32}) {
        VectorSet vs(8, 16, t);
        std::vector<float> q(16);
        for (unsigned v = 0; v < 8; ++v)
            for (unsigned d = 0; d < 16; ++d)
                vs.set(v, d, static_cast<float>(rng.uniform(-100, 100)));
        for (unsigned d = 0; d < 16; ++d)
            q[d] = static_cast<float>(rng.uniform(-100, 100));

        for (unsigned v = 0; v < 8; ++v) {
            double manual = 0.0;
            for (unsigned d = 0; d < 16; ++d) {
                const double diff = static_cast<double>(q[d]) -
                                    static_cast<double>(vs.at(v, d));
                manual += diff * diff;
            }
            EXPECT_NEAR(l2Sq(q.data(), vs, v), manual,
                        1e-9 * (1.0 + manual));
        }
    }
}

TEST(Normalize, UnitNorm)
{
    float v[4] = {3.0f, 0.0f, 4.0f, 0.0f};
    normalizeL2(v, 4);
    EXPECT_NEAR(v[0], 0.6f, 1e-6);
    EXPECT_NEAR(v[2], 0.8f, 1e-6);
}

TEST(ResultSet, KeepsKSmallest)
{
    ResultSet rs(3);
    EXPECT_TRUE(std::isinf(rs.worst()));
    rs.offer({5.0, 1});
    rs.offer({3.0, 2});
    rs.offer({9.0, 3});
    EXPECT_TRUE(rs.full());
    EXPECT_DOUBLE_EQ(rs.worst(), 9.0);

    EXPECT_TRUE(rs.offer({1.0, 4}));   // evicts 9.0
    EXPECT_FALSE(rs.offer({100.0, 5}));
    const auto s = rs.sorted();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].id, 4u);
    EXPECT_EQ(s[1].id, 2u);
    EXPECT_EQ(s[2].id, 1u);
}

TEST(SearchSet, MinHeapOrder)
{
    SearchSet ss;
    ss.push({3.0, 1});
    ss.push({1.0, 2});
    ss.push({2.0, 3});
    EXPECT_EQ(ss.pop().id, 2u);
    EXPECT_EQ(ss.pop().id, 3u);
    EXPECT_EQ(ss.pop().id, 1u);
    EXPECT_TRUE(ss.empty());
}

TEST(HeapInvariants, ZeroCapacityResultSetPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(ResultSet rs(0), "result set needs capacity >= 1");
}

TEST(HeapInvariants, PopFromEmptySearchSetPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SearchSet ss;
    EXPECT_DEATH(ss.pop(), "pop from an empty search set");
}

TEST(BruteForce, FindsExactNeighbors)
{
    VectorSet vs(100, 4, ScalarType::kFp32);
    Prng rng(1);
    for (unsigned v = 0; v < 100; ++v)
        for (unsigned d = 0; d < 4; ++d)
            vs.set(v, d, static_cast<float>(rng.uniform(-10, 10)));

    // Make vector 42 the exact query.
    const auto q = vs.toFloat(42);
    const auto nn = bruteForceKnn(Metric::kL2, q.data(), vs, 5);
    ASSERT_EQ(nn.size(), 5u);
    EXPECT_EQ(nn[0].id, 42u);
    EXPECT_DOUBLE_EQ(nn[0].dist, 0.0);
    for (std::size_t i = 1; i < nn.size(); ++i)
        EXPECT_GE(nn[i].dist, nn[i - 1].dist);
}

TEST(Recall, CountsOverlap)
{
    std::vector<Neighbor> gt = {{0.0, 1}, {1.0, 2}, {2.0, 3}, {3.0, 4}};
    EXPECT_DOUBLE_EQ(recallAtK({1, 2, 3, 4}, gt, 4), 1.0);
    EXPECT_DOUBLE_EQ(recallAtK({1, 2, 9, 8}, gt, 4), 0.5);
    EXPECT_DOUBLE_EQ(recallAtK({9, 8, 7, 6}, gt, 4), 0.0);
}

class DatasetTest : public ::testing::TestWithParam<DatasetId>
{
};

TEST_P(DatasetTest, MatchesSpec)
{
    const auto &spec = datasetSpec(GetParam());
    const auto ds = makeDataset(GetParam(), 500, 20, 3);
    EXPECT_EQ(ds.base->size(), 500u);
    EXPECT_EQ(ds.base->dims(), spec.dims);
    EXPECT_EQ(ds.base->type(), spec.type);
    EXPECT_EQ(ds.queries.size(), 20u);
    for (const auto &q : ds.queries)
        EXPECT_EQ(q.size(), spec.dims);
}

TEST_P(DatasetTest, Deterministic)
{
    const auto a = makeDataset(GetParam(), 100, 5, 7);
    const auto b = makeDataset(GetParam(), 100, 5, 7);
    for (unsigned v = 0; v < 100; ++v)
        for (unsigned d = 0; d < a.base->dims(); ++d)
            ASSERT_EQ(a.base->bitsAt(v, d), b.base->bitsAt(v, d));
}

TEST_P(DatasetTest, NormalizedWhenIp)
{
    const auto ds = makeDataset(GetParam(), 200, 5, 3);
    if (ds.metric() != Metric::kIp)
        return;
    for (unsigned v = 0; v < 200; v += 17) {
        double n = 0.0;
        for (unsigned d = 0; d < ds.base->dims(); ++d) {
            const double x = ds.base->at(v, d);
            n += x * x;
        }
        EXPECT_NEAR(std::sqrt(n), 1.0, 1e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::ValuesIn(allDatasets()),
                         [](const auto &info) {
                             return datasetSpec(info.param).name;
                         });

TEST(Dataset, ZipfQueriesAreSkewed)
{
    // Just ensure generation succeeds and is deterministic with skew.
    const auto a = makeDataset(DatasetId::kSift, 300, 50, 5, 2.0);
    const auto b = makeDataset(DatasetId::kSift, 300, 50, 5, 2.0);
    for (std::size_t q = 0; q < a.queries.size(); ++q)
        EXPECT_EQ(a.queries[q], b.queries[q]);
}

} // namespace
} // namespace ansmet::anns
