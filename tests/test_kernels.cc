/**
 * @file
 * Kernel-parity suite for the SIMD batch-kernel layer.
 *
 * Every compiled ISA tier must produce bitwise-identical results to
 * the scalar reference (the canonical blocked-summation contract in
 * anns/kernels.h), the batched forms must match the single-row forms
 * exactly, and the bound kernels must uphold the conservative-bound
 * contract: the accumulated lower bound never exceeds the exact
 * distance. The cross-tier tests therefore use EXPECT_EQ on doubles —
 * exact equality, not tolerances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "anns/distance.h"
#include "anns/kernels.h"
#include "anns/vector.h"
#include "common/check.h"
#include "common/prng.h"
#include "common/simd.h"
#include "et/bounds.h"
#include "et/fetchsim.h"
#include "et/sortable.h"

namespace ansmet::anns {
namespace {

constexpr ScalarType kTypes[] = {ScalarType::kUint8, ScalarType::kInt8,
                                 ScalarType::kFp16, ScalarType::kFp32};

// Dimension counts straddling the 16-lane block boundary, plus the
// degenerate and GIST-sized cases.
constexpr unsigned kDims[] = {1, 3, 95, 96, 97, 960};

/** Restores the startup kernel tier on scope exit. */
class KernelLevelGuard
{
  public:
    KernelLevelGuard() : saved_(activeKernelLevel()) {}
    ~KernelLevelGuard() { setKernelLevel(saved_); }

  private:
    SimdLevel saved_;
};

/** Forces audit mode on/off for the scope. */
class AuditGuard
{
  public:
    explicit AuditGuard(bool on) : saved_(auditEnabled())
    {
        setAuditEnabled(on);
    }
    ~AuditGuard() { setAuditEnabled(saved_); }

  private:
    bool saved_;
};

std::vector<const KernelOps *>
simdTiers()
{
    std::vector<const KernelOps *> tiers;
    for (const SimdLevel l : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
        if (const KernelOps *ops = kernelsFor(l))
            tiers.push_back(ops);
    }
    return tiers;
}

/**
 * Fill vector @p v with type-appropriate pseudorandom values,
 * including negatives for the signed types and denormals for the
 * float types (exercised through the exact-conversion contract).
 */
void
fillVector(VectorSet &vs, VectorId v, Prng &rng)
{
    for (unsigned d = 0; d < vs.dims(); ++d) {
        float x = 0.0f;
        switch (vs.type()) {
          case ScalarType::kUint8:
            x = static_cast<float>(rng.below(256));
            break;
          case ScalarType::kInt8:
            x = static_cast<float>(rng.below(256)) - 128.0f;
            break;
          case ScalarType::kFp16:
            // Every 16th element a subnormal-scale value.
            x = d % 16 == 7
                    ? static_cast<float>(rng.uniform(-6e-5, 6e-5))
                    : static_cast<float>(rng.uniform(-8.0, 8.0));
            break;
          case ScalarType::kFp32:
            x = d % 16 == 7
                    ? static_cast<float>(rng.uniform(-1e-38, 1e-38))
                    : static_cast<float>(rng.uniform(-8.0, 8.0));
            break;
        }
        vs.set(v, d, x);
    }
}

std::vector<float>
randomQuery(unsigned dims, Prng &rng, bool denormals = true)
{
    std::vector<float> q(dims);
    for (unsigned d = 0; d < dims; ++d) {
        q[d] = denormals && d % 16 == 3
                   ? static_cast<float>(rng.uniform(-1e-38, 1e-38))
                   : static_cast<float>(rng.uniform(-8.0, 8.0));
    }
    return q;
}

TEST(KernelParity, RowDistanceMatchesScalarBitwise)
{
    const KernelOps *scalar = kernel_detail::scalarKernels();
    ASSERT_NE(scalar, nullptr);
    const auto tiers = simdTiers();

    Prng rng(11);
    for (const ScalarType t : kTypes) {
        for (const unsigned dims : kDims) {
            VectorSet vs(4, dims, t);
            for (VectorId v = 0; v < 4; ++v)
                fillVector(vs, v, rng);
            const auto q = randomQuery(dims, rng);
            const unsigned ti = typeIndex(t);
            for (VectorId v = 0; v < 4; ++v) {
                const double l2_ref =
                    scalar->l2[ti](q.data(), vs.raw(v), dims);
                const double dot_ref =
                    scalar->dot[ti](q.data(), vs.raw(v), dims);
                for (const KernelOps *ops : tiers) {
                    EXPECT_EQ(ops->l2[ti](q.data(), vs.raw(v), dims),
                              l2_ref)
                        << scalarName(t) << " dims=" << dims << " tier="
                        << simdLevelName(ops->level);
                    EXPECT_EQ(ops->dot[ti](q.data(), vs.raw(v), dims),
                              dot_ref)
                        << scalarName(t) << " dims=" << dims << " tier="
                        << simdLevelName(ops->level);
                }
            }
        }
    }
}

TEST(KernelParity, BatchMatchesSingleRowExactly)
{
    const KernelOps *scalar = kernel_detail::scalarKernels();
    ASSERT_NE(scalar, nullptr);
    auto tiers = simdTiers();
    tiers.push_back(scalar); // the scalar batch form must also agree

    Prng rng(12);
    for (const ScalarType t : kTypes) {
        for (const unsigned dims : {3u, 96u, 97u}) {
            const std::size_t n = 33; // odd, exercises batch tails
            VectorSet vs(n, dims, t);
            for (VectorId v = 0; v < n; ++v)
                fillVector(vs, v, rng);
            const auto q = randomQuery(dims, rng);
            const unsigned ti = typeIndex(t);

            // Scattered ids, some repeated.
            std::vector<VectorId> ids;
            for (std::size_t i = 0; i < n; ++i)
                ids.push_back(static_cast<VectorId>((i * 7 + 3) % n));

            std::vector<double> out(n);
            for (const KernelOps *ops : tiers) {
                ops->l2Batch[ti](q.data(), vs.raw(0), vs.vectorBytes(),
                                 ids.data(), n, dims, out.data());
                for (std::size_t i = 0; i < n; ++i) {
                    EXPECT_EQ(out[i], scalar->l2[ti](q.data(),
                                                     vs.raw(ids[i]), dims))
                        << scalarName(t) << " dims=" << dims << " tier="
                        << simdLevelName(ops->level) << " i=" << i;
                }
                ops->dotBatch[ti](q.data(), vs.raw(0), vs.vectorBytes(),
                                  ids.data(), n, dims, out.data());
                for (std::size_t i = 0; i < n; ++i) {
                    EXPECT_EQ(out[i], scalar->dot[ti](q.data(),
                                                      vs.raw(ids[i]), dims))
                        << scalarName(t) << " dims=" << dims << " tier="
                        << simdLevelName(ops->level) << " i=" << i;
                }
            }
        }
    }
}

TEST(KernelParity, NormalizeMatchesScalarBitwise)
{
    const KernelOps *scalar = kernel_detail::scalarKernels();
    ASSERT_NE(scalar, nullptr);
    const auto tiers = simdTiers();

    Prng rng(13);
    for (const unsigned dims : kDims) {
        const auto base = randomQuery(dims, rng, /*denormals=*/false);

        auto ref = base;
        scalar->normalize(ref.data(), dims);
        double norm = 0.0;
        for (unsigned d = 0; d < dims; ++d)
            norm += static_cast<double>(ref[d]) * ref[d];
        EXPECT_NEAR(norm, 1.0, 1e-5) << "dims=" << dims;

        for (const KernelOps *ops : tiers) {
            auto v = base;
            ops->normalize(v.data(), dims);
            for (unsigned d = 0; d < dims; ++d) {
                EXPECT_EQ(v[d], ref[d])
                    << "dims=" << dims << " tier="
                    << simdLevelName(ops->level) << " d=" << d;
            }
        }
    }
}

TEST(KernelParity, BoundBatchMatchesScalarBitwise)
{
    const KernelOps *scalar = kernel_detail::scalarKernels();
    ASSERT_NE(scalar, nullptr);
    const auto tiers = simdTiers();

    Prng rng(14);
    for (const bool is_l2 : {true, false}) {
        for (const unsigned dims : kDims) {
            const auto q = randomQuery(dims, rng);

            // Reference interval state plus one clone per tier; feed
            // all of them the same progressively tightening rounds and
            // demand bitwise-equal deltas AND bitwise-equal state.
            std::vector<double> lo(dims, -10.0), hi(dims, 10.0);
            std::vector<double> contrib(dims, 0.0);
            for (unsigned d = 0; d < dims; ++d) {
                // Seed contributions consistently with [lo, hi].
                const double qd = q[d];
                if (is_l2) {
                    contrib[d] = qd < lo[d]
                                     ? (lo[d] - qd) * (lo[d] - qd)
                                     : (qd > hi[d]
                                            ? (qd - hi[d]) * (qd - hi[d])
                                            : 0.0);
                } else {
                    contrib[d] = qd >= 0.0 ? hi[d] * qd : lo[d] * qd;
                }
            }
            struct State
            {
                const KernelOps *ops;
                std::vector<double> lo, hi, contrib;
                double total = 0.0;
            };
            std::vector<State> states;
            for (const KernelOps *ops : tiers)
                states.push_back({ops, lo, hi, contrib, 0.0});
            State ref{scalar, lo, hi, contrib, 0.0};

            std::vector<double> nlo(dims), nhi(dims);
            for (int round = 0; round < 4; ++round) {
                for (unsigned d = 0; d < dims; ++d) {
                    // Overlapping refinement: the intersection with the
                    // current interval is never empty.
                    const double mid = (ref.lo[d] + ref.hi[d]) / 2;
                    nlo[d] = rng.uniform(ref.lo[d] - 1.0, mid);
                    nhi[d] = rng.uniform(mid, ref.hi[d] + 1.0);
                }
                const auto run = [&](State &s) {
                    const BoundBatchFn fn =
                        is_l2 ? s.ops->boundL2 : s.ops->boundIp;
                    s.total += fn(q.data(), s.lo.data(), s.hi.data(),
                                  s.contrib.data(), nlo.data(), nhi.data(),
                                  dims);
                };
                run(ref);
                for (State &s : states) {
                    run(s);
                    EXPECT_EQ(s.total, ref.total)
                        << (is_l2 ? "L2" : "IP") << " dims=" << dims
                        << " tier=" << simdLevelName(s.ops->level)
                        << " round=" << round;
                    for (unsigned d = 0; d < dims; ++d) {
                        EXPECT_EQ(s.lo[d], ref.lo[d]) << "d=" << d;
                        EXPECT_EQ(s.hi[d], ref.hi[d]) << "d=" << d;
                        EXPECT_EQ(s.contrib[d], ref.contrib[d])
                            << "d=" << d;
                    }
                }
            }
        }
    }
}

TEST(KernelDispatch, OverrideAndRestore)
{
    KernelLevelGuard guard;

    ASSERT_TRUE(setKernelLevel(SimdLevel::kScalar));
    EXPECT_EQ(activeKernelLevel(), SimdLevel::kScalar);

    for (const SimdLevel l : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
        if (kernelsFor(l)) {
            EXPECT_TRUE(setKernelLevel(l));
            EXPECT_EQ(activeKernelLevel(), l);
            EXPECT_EQ(kernels().level, l);
        } else {
            EXPECT_FALSE(setKernelLevel(l));
        }
    }
}

TEST(KernelDispatch, KernelsForScalarAlwaysAvailable)
{
    const KernelOps *ops = kernelsFor(SimdLevel::kScalar);
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->level, SimdLevel::kScalar);
    for (const ScalarType t : kTypes) {
        EXPECT_NE(ops->l2[typeIndex(t)], nullptr);
        EXPECT_NE(ops->dot[typeIndex(t)], nullptr);
        EXPECT_NE(ops->l2Batch[typeIndex(t)], nullptr);
        EXPECT_NE(ops->dotBatch[typeIndex(t)], nullptr);
    }
    EXPECT_NE(ops->normalize, nullptr);
    EXPECT_NE(ops->boundL2, nullptr);
    EXPECT_NE(ops->boundIp, nullptr);
}

/**
 * The conservative-bound contract, audited: refining a vector's value
 * intervals prefix-bit by prefix-bit must keep the accumulated lower
 * bound at or below the exact distance, for every scalar type, both
 * metrics, and every kernel tier.
 */
TEST(BoundContract, NeverExceedsExactUnderAudit)
{
    KernelLevelGuard level_guard;
    AuditGuard audit(true);

    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
        if (!setKernelLevel(level))
            continue;
        Prng rng(15);
        for (const ScalarType t : kTypes) {
            const unsigned dims = 40;
            const unsigned w = et::keyBits(t);
            VectorSet vs(8, dims, t);
            for (VectorId v = 0; v < 8; ++v)
                fillVector(vs, v, rng);

            // Dataset-wide value range (IP's fallback for unknowns).
            double glo = vs.at(0, 0), ghi = glo;
            for (VectorId v = 0; v < 8; ++v) {
                for (unsigned d = 0; d < dims; ++d) {
                    glo = std::min(glo, double{vs.at(v, d)});
                    ghi = std::max(ghi, double{vs.at(v, d)});
                }
            }

            const auto q = vs.toFloat(0);
            for (const Metric m : {Metric::kL2, Metric::kIp}) {
                for (VectorId v = 1; v < 8; ++v) {
                    const double exact =
                        distance(m, q.data(), vs, v);
                    const double slack =
                        1e-6 * (1.0 + std::abs(exact));
                    et::BoundAccumulator acc(m, q.data(), dims,
                                             {glo, ghi});
                    std::vector<double> nlo(dims), nhi(dims);
                    for (unsigned len = 1; len <= w; ++len) {
                        for (unsigned d = 0; d < dims; ++d) {
                            const auto key =
                                et::toKey(t, vs.bitsAt(v, d));
                            const et::ValueInterval iv =
                                et::intervalFromPrefix(
                                    t, key >> (w - len), len);
                            nlo[d] = iv.lo;
                            nhi[d] = iv.hi;
                        }
                        acc.updateBatch(0, dims, nlo.data(), nhi.data());
                        EXPECT_LE(acc.lowerBound(), exact + slack)
                            << scalarName(t) << " v=" << v << " len="
                            << len << " metric="
                            << (m == Metric::kL2 ? "L2" : "IP")
                            << " tier=" << simdLevelName(level);
                    }
                }
            }
        }
    }
}

/**
 * End-to-end tier invariance: the fetch simulator must report the
 * exact same per-comparison outcome (lines fetched, termination,
 * estimate, decision) no matter which kernel tier computed it.
 */
TEST(BoundContract, FetchResultsIdenticalAcrossTiers)
{
    KernelLevelGuard level_guard;
    AuditGuard audit(true);

    Prng rng(16);
    const unsigned dims = 32;
    VectorSet vs(32, dims, ScalarType::kFp16);
    for (VectorId v = 0; v < 32; ++v)
        fillVector(vs, v, rng);
    const auto q = vs.toFloat(0);

    // Minimal profile carrying the real dataset value range (IP's
    // per-dim fallback); the null-profile ±DBL_MAX/4 range overflows
    // the initial IP contribution at these query magnitudes.
    et::EtProfile prof;
    double glo = vs.at(0, 0), ghi = glo;
    for (VectorId v = 0; v < 32; ++v) {
        for (unsigned d = 0; d < dims; ++d) {
            glo = std::min(glo, double{vs.at(v, d)});
            ghi = std::max(ghi, double{vs.at(v, d)});
        }
    }
    prof.globalRange = {glo, ghi};

    for (const Metric m : {Metric::kL2, Metric::kIp}) {
        for (const et::EtScheme scheme :
             {et::EtScheme::kBitSerial, et::EtScheme::kHeuristic}) {
            const et::FetchSimulator sim(vs, m, scheme, &prof);
            const double threshold =
                distance(m, q.data(), vs, 7); // plausible mid threshold

            struct Outcome
            {
                unsigned lines;
                bool terminated, accepted;
                double exact, estimate;
            };
            std::vector<std::vector<Outcome>> per_tier;
            for (const SimdLevel level :
                 {SimdLevel::kScalar, SimdLevel::kAvx2,
                  SimdLevel::kAvx512}) {
                if (!setKernelLevel(level))
                    continue;
                std::vector<Outcome> outs;
                for (VectorId v = 1; v < 32; ++v) {
                    const et::FetchResult r =
                        sim.simulate(q.data(), v, threshold);
                    outs.push_back({r.lines, r.terminatedEarly,
                                    r.accepted, r.exactDist, r.estimate});
                }
                per_tier.push_back(std::move(outs));
            }
            ASSERT_GE(per_tier.size(), 1u);
            for (std::size_t tier = 1; tier < per_tier.size(); ++tier) {
                for (std::size_t i = 0; i < per_tier[0].size(); ++i) {
                    EXPECT_EQ(per_tier[tier][i].lines,
                              per_tier[0][i].lines) << i;
                    EXPECT_EQ(per_tier[tier][i].terminated,
                              per_tier[0][i].terminated) << i;
                    EXPECT_EQ(per_tier[tier][i].accepted,
                              per_tier[0][i].accepted) << i;
                    EXPECT_EQ(per_tier[tier][i].exact,
                              per_tier[0][i].exact) << i;
                    EXPECT_EQ(per_tier[tier][i].estimate,
                              per_tier[0][i].estimate) << i;
                }
            }
        }
    }
}

} // namespace
} // namespace ansmet::anns
