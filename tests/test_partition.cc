/**
 * @file
 * Rank-partitioning tests: dimension coverage, group structure across
 * the vertical/hybrid/horizontal spectrum, replication, and load
 * tracking.
 */

#include <gtest/gtest.h>

#include "layout/partition.h"

namespace ansmet::layout {
namespace {

TEST(Partitioner, HorizontalKeepsVectorInOneRank)
{
    Partitioner p(PartitionConfig::horizontal(32), 128, 1, 1000);
    EXPECT_EQ(p.ranksPerGroup(), 1u);
    EXPECT_EQ(p.numGroups(), 32u);
    const auto subs = p.placement(7);
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0].dimBegin, 0u);
    EXPECT_EQ(subs[0].dimEnd, 128u);
}

TEST(Partitioner, VerticalSplitsAcrossManyRanks)
{
    // GIST-like: 960 dims x 4 B = 3840 B; 64 B sub-vectors want 60
    // ranks, capped at 32.
    Partitioner p(PartitionConfig::vertical(32), 960, 4, 1000);
    EXPECT_EQ(p.ranksPerGroup(), 32u);
    EXPECT_EQ(p.numGroups(), 1u);
}

TEST(Partitioner, Hybrid1kbMatchesPaperShape)
{
    // 960 x 4 B = 3840 B over 1 kB sub-vectors -> 4 ranks per group,
    // 8 groups of the 32 ranks.
    Partitioner p(PartitionConfig::hybrid(32, 1024), 960, 4, 1000);
    EXPECT_EQ(p.ranksPerGroup(), 4u);
    EXPECT_EQ(p.numGroups(), 8u);
}

TEST(Partitioner, SmallVectorsStayWholeUnderHybrid)
{
    // SIFT: 128 B < 1 kB -> one rank per vector even in hybrid mode.
    Partitioner p(PartitionConfig::hybrid(32, 1024), 128, 1, 1000);
    EXPECT_EQ(p.ranksPerGroup(), 1u);
    EXPECT_EQ(p.numGroups(), 32u);
}

TEST(Partitioner, PlacementCoversDimsExactlyOnce)
{
    Partitioner p(PartitionConfig::hybrid(32, 256), 960, 4, 100);
    for (VectorId v = 0; v < 100; ++v) {
        const auto subs = p.placement(v);
        unsigned expect = 0;
        for (const auto &s : subs) {
            EXPECT_EQ(s.dimBegin, expect);
            EXPECT_GT(s.dimEnd, s.dimBegin);
            EXPECT_LT(s.rank, 32u);
            expect = s.dimEnd;
        }
        EXPECT_EQ(expect, 960u);
    }
}

TEST(Partitioner, SubVectorsLandInOwnGroup)
{
    Partitioner p(PartitionConfig::hybrid(32, 1024), 960, 4, 100);
    for (VectorId v = 0; v < 100; ++v) {
        const unsigned g = p.groupOf(v);
        for (const auto &s : p.placement(v)) {
            EXPECT_GE(s.rank, g * p.ranksPerGroup());
            EXPECT_LT(s.rank, (g + 1) * p.ranksPerGroup());
        }
    }
}

TEST(Partitioner, GroupsAreReasonablyBalanced)
{
    Partitioner p(PartitionConfig::horizontal(8), 128, 1, 0);
    std::vector<unsigned> counts(8, 0);
    for (VectorId v = 0; v < 8000; ++v)
        ++counts[p.groupOf(v)];
    for (const unsigned c : counts) {
        EXPECT_GT(c, 700u);
        EXPECT_LT(c, 1300u);
    }
}

TEST(Partitioner, Replication)
{
    Partitioner p(PartitionConfig::hybrid(32, 1024), 960, 4, 100);
    EXPECT_FALSE(p.isReplicated(3));
    p.replicate({3, 5});
    EXPECT_TRUE(p.isReplicated(3));
    EXPECT_TRUE(p.isReplicated(5));
    EXPECT_EQ(p.numReplicated(), 2u);
    EXPECT_EQ(p.replicationBytes(),
              2ull * (p.numGroups() - 1) * 960 * 4);

    // A replica placement in a foreign group stays in that group.
    const unsigned foreign = (p.groupOf(3) + 1) % p.numGroups();
    for (const auto &s : p.placement(3, foreign)) {
        EXPECT_GE(s.rank, foreign * p.ranksPerGroup());
        EXPECT_LT(s.rank, (foreign + 1) * p.ranksPerGroup());
    }
}

TEST(LoadTracker, ImbalanceRatio)
{
    LoadTracker lt(4);
    lt.add(0, 100);
    lt.add(1, 100);
    lt.add(2, 100);
    lt.add(3, 100);
    EXPECT_DOUBLE_EQ(lt.imbalanceRatio(), 1.0);
    lt.add(0, 100);
    EXPECT_DOUBLE_EQ(lt.imbalanceRatio(), 200.0 / 125.0);
    EXPECT_EQ(lt.leastLoaded({0, 1, 2}), 1u);
}

} // namespace
} // namespace ansmet::layout
