/**
 * @file
 * Golden-figure regression test: replays a small fixed-seed slice of
 * the fig06 (design speedups) and fig08 (efSearch sweep) workloads
 * in-process and diffs the rows against checked-in golden files, so a
 * silent drift in simulated timing fails ctest instead of waiting for
 * the manual CI figure diff.
 *
 * The rows record integer makespans (ticks) and recalls produced by
 * the deterministic event queue; they are invariant to thread count
 * and SIMD tier by the repo's determinism contracts. Dataset synthesis
 * goes through libm (log/sin/cos), so goldens are pinned to the
 * toolchain the repo targets; regenerate with
 *
 *     ANSMET_UPDATE_GOLDEN=1 ./tests/test_golden_figures
 *
 * after an intentional change and commit the updated files.
 */

#include <gtest/gtest.h>

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/design.h"
#include "core/experiment.h"

namespace ansmet::core {
namespace {

/** Small but non-trivial workload; the seed is distinct from every
 *  bench configuration so the on-disk graph caches never collide. */
ExperimentConfig
goldenConfig(anns::DatasetId id)
{
    ExperimentConfig cfg;
    cfg.dataset = id;
    cfg.numVectors = 1200;
    cfg.numQueries = 8;
    cfg.k = 10;
    cfg.efSearch = 50; // fixed: ef auto-tuning is not under test here
    cfg.seed = 99;
    cfg.hnsw = anns::HnswParams{16, 60, 42};
    cfg.profile.numSamples = 50;
    cfg.profile.maxPairs = 800;
    return cfg;
}

const ExperimentContext &
goldenContext(anns::DatasetId id)
{
    static std::map<int, std::unique_ptr<ExperimentContext>> cache;
    auto &slot = cache[static_cast<int>(id)];
    if (!slot)
        slot = std::make_unique<ExperimentContext>(goldenConfig(id));
    return *slot;
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof buf, format, args);
    va_end(args);
    return buf;
}

/** fig06 slice: absolute makespans for a design subset on two
 *  datasets covering both metrics (L2 and IP). */
std::vector<std::string>
fig06Rows()
{
    const std::vector<Design> designs = {Design::kCpuBase,
                                         Design::kNdpBase,
                                         Design::kNdpEtOpt};
    std::vector<std::string> rows;
    for (const auto id :
         {anns::DatasetId::kSift, anns::DatasetId::kGlove}) {
        const ExperimentContext &ctx = goldenContext(id);
        for (const Design d : designs) {
            const RunStats rs = ctx.runDesign(d);
            std::uint64_t comparisons = 0;
            for (const QueryStats &q : rs.queries)
                comparisons += q.comparisons;
            rows.push_back(fmt(
                "fig06 %s %s makespan_ps=%llu comparisons=%llu",
                anns::datasetSpec(id).name.c_str(), designName(d),
                static_cast<unsigned long long>(rs.makespan.raw()),
                static_cast<unsigned long long>(comparisons)));
        }
    }
    return rows;
}

/** fig08 slice: efSearch sweep on one dataset, recall + makespans. */
std::vector<std::string>
fig08Rows()
{
    const ExperimentContext &ctx = goldenContext(anns::DatasetId::kSift);
    std::vector<std::string> rows;
    for (const std::size_t ef : {std::size_t{10}, std::size_t{40}}) {
        const auto [traces, recall] = ctx.traceWithEf(ef);
        std::uint64_t base = 0, etopt = 0;
        for (const Design d : {Design::kCpuBase, Design::kNdpEtOpt}) {
            SystemConfig cfg = ctx.systemConfig(d);
            SystemModel model(cfg, *ctx.dataset().base,
                              ctx.dataset().metric(), &ctx.profile(),
                              ctx.hotVectors());
            const std::uint64_t ms = model.run(traces).makespan.raw();
            (d == Design::kCpuBase ? base : etopt) = ms;
        }
        rows.push_back(fmt("fig08 sift ef=%zu recall=%.4f "
                           "cpu_base_ps=%llu ndp_etopt_ps=%llu",
                           ef, recall,
                           static_cast<unsigned long long>(base),
                           static_cast<unsigned long long>(etopt)));
    }
    return rows;
}

std::vector<std::string>
readGolden(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        rows.push_back(line);
    }
    return rows;
}

void
writeGolden(const std::string &path,
            const std::vector<std::string> &rows)
{
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << "# Golden figure rows. Regenerate after an intentional\n"
           "# timing/model change with:\n"
           "#   ANSMET_UPDATE_GOLDEN=1 ./tests/test_golden_figures\n";
    for (const auto &r : rows)
        out << r << "\n";
}

void
checkAgainstGolden(const char *file,
                   const std::vector<std::string> &rows)
{
    const std::string path = std::string(ANSMET_GOLDEN_DIR) + "/" + file;
    if (std::getenv("ANSMET_UPDATE_GOLDEN")) {
        writeGolden(path, rows);
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::vector<std::string> golden = readGolden(path);
    ASSERT_FALSE(golden.empty())
        << "missing or empty golden file " << path
        << " — run with ANSMET_UPDATE_GOLDEN=1 to create it";
    // Compare row-by-row for readable failures before the exact check.
    const std::size_t n = std::min(golden.size(), rows.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(rows[i], golden[i]) << "figure row " << i << " drifted";
    EXPECT_EQ(rows.size(), golden.size());
}

TEST(GoldenFigures, Fig06DesignMakespans)
{
    checkAgainstGolden("fig06.txt", fig06Rows());
}

TEST(GoldenFigures, Fig08EfSweep)
{
    checkAgainstGolden("fig08.txt", fig08Rows());
}

} // namespace
} // namespace ansmet::core
