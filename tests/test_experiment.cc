/**
 * @file
 * Experiment harness tests: context construction, efSearch tuning to
 * the paper's recall floor, trace consistency, and design replay.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/experiment.h"

namespace ansmet::core {
namespace {

class ExperimentTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Isolate the on-disk cache for tests.
        ::setenv("ANSMET_CACHE", ".ansmet_test_cache", 1);
    }

    static ExperimentConfig
    smallConfig()
    {
        ExperimentConfig cfg;
        cfg.dataset = anns::DatasetId::kSift;
        cfg.numVectors = 1200;
        cfg.numQueries = 10;
        cfg.hnsw = anns::HnswParams{16, 60, 42};
        cfg.profile.numSamples = 50;
        cfg.profile.maxPairs = 500;
        return cfg;
    }

    static const ExperimentContext &
    ctx()
    {
        static const ExperimentContext c(smallConfig());
        return c;
    }
};

TEST_F(ExperimentTest, MeetsRecallTarget)
{
    EXPECT_GE(ctx().recall(), ctx().config().targetRecall);
    EXPECT_GE(ctx().efSearch(), 10u);
}

TEST_F(ExperimentTest, TracesMatchQueries)
{
    EXPECT_EQ(ctx().traces().size(), 10u);
    for (const auto &t : ctx().traces()) {
        EXPECT_FALSE(t.steps.empty());
        EXPECT_FALSE(t.result.empty());
    }
}

TEST_F(ExperimentTest, HotSetIsSmall)
{
    EXPECT_GT(ctx().hotVectors().size(), 0u);
    EXPECT_LT(ctx().hotVectors().size(), ctx().dataset().base->size() / 2);
}

TEST_F(ExperimentTest, RunsAllDesigns)
{
    for (const Design d : {Design::kCpuBase, Design::kNdpEtOpt}) {
        const RunStats rs = ctx().runDesign(d);
        EXPECT_EQ(rs.queries.size(), 10u);
        EXPECT_GT(rs.qps(), 0.0);
    }
}

TEST_F(ExperimentTest, EfSweepChangesWork)
{
    const auto [small_traces, small_recall] = ctx().traceWithEf(10);
    const auto [big_traces, big_recall] = ctx().traceWithEf(200);
    std::size_t small_cmp = 0, big_cmp = 0;
    for (const auto &t : small_traces)
        small_cmp += t.numComparisons();
    for (const auto &t : big_traces)
        big_cmp += t.numComparisons();
    EXPECT_LT(small_cmp, big_cmp);
    EXPECT_LE(small_recall, big_recall + 1e-9);
}

TEST_F(ExperimentTest, GraphCacheRoundTrips)
{
    // A second context with identical config must load the cached
    // graph and produce identical traces.
    const ExperimentContext again(smallConfig());
    ASSERT_EQ(again.traces().size(), ctx().traces().size());
    for (std::size_t i = 0; i < again.traces().size(); ++i) {
        EXPECT_EQ(again.traces()[i].result, ctx().traces()[i].result);
        EXPECT_EQ(again.traces()[i].numComparisons(),
                  ctx().traces()[i].numComparisons());
    }
    EXPECT_EQ(again.efSearch(), ctx().efSearch());
}

TEST_F(ExperimentTest, PreprocessingTimeIsRecorded)
{
    EXPECT_GT(ctx().etPreprocSeconds(), 0.0);
}

} // namespace
} // namespace ansmet::core
