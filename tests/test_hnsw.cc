/**
 * @file
 * HNSW index tests: structural invariants, search quality against
 * brute force, observer/trace behavior, serialization, determinism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/hnsw.h"
#include "core/trace.h"

namespace ansmet::anns {
namespace {

const Dataset &
sift()
{
    static const Dataset ds = makeDataset(DatasetId::kSift, 2000, 30, 1);
    return ds;
}

const HnswIndex &
siftIndex()
{
    static const HnswIndex idx(*sift().base, Metric::kL2,
                               HnswParams{16, 100, 42});
    return idx;
}

TEST(Hnsw, DegreesRespectCaps)
{
    const auto &idx = siftIndex();
    const HnswParams params{16, 100, 42};
    for (VectorId v = 0; v < 2000; ++v) {
        for (unsigned l = 0; l <= idx.levelOf(v); ++l) {
            EXPECT_LE(idx.neighbors(v, l).size(), params.maxDegree(l))
                << "v=" << v << " level=" << l;
        }
    }
}

TEST(Hnsw, NeighborsAreValidAndDistinctFromSelf)
{
    const auto &idx = siftIndex();
    for (VectorId v = 0; v < 2000; ++v) {
        for (unsigned l = 0; l <= idx.levelOf(v); ++l) {
            for (const VectorId nb : idx.neighbors(v, l)) {
                EXPECT_LT(nb, 2000u);
                EXPECT_NE(nb, v);
                // The neighbor must exist at this level too.
                EXPECT_GE(idx.levelOf(nb), l);
            }
        }
    }
}

TEST(Hnsw, UpperLayersShrink)
{
    const auto &idx = siftIndex();
    std::size_t prev = idx.verticesAtLevel(0).size();
    EXPECT_EQ(prev, 2000u);
    for (unsigned l = 1; l <= idx.maxLevel(); ++l) {
        const std::size_t count = idx.verticesAtLevel(l).size();
        EXPECT_LE(count, prev);
        prev = count;
    }
    EXPECT_GE(idx.levelOf(idx.entryPoint()), idx.maxLevel());
}

TEST(Hnsw, RecallBeatsTarget)
{
    const auto &ds = sift();
    const auto &idx = siftIndex();
    const auto gt = bruteForceAll(Metric::kL2, ds.queries, *ds.base, 10);

    double total = 0.0;
    for (std::size_t q = 0; q < ds.queries.size(); ++q) {
        const auto ids = idx.search(ds.queries[q].data(), 10, 100);
        total += recallAtK(ids, gt[q], 10);
    }
    EXPECT_GE(total / static_cast<double>(ds.queries.size()), 0.85);
}

TEST(Hnsw, LargerEfImprovesRecall)
{
    const auto &ds = sift();
    const auto &idx = siftIndex();
    const auto gt = bruteForceAll(Metric::kL2, ds.queries, *ds.base, 10);

    auto recall_at = [&](std::size_t ef) {
        double total = 0.0;
        for (std::size_t q = 0; q < ds.queries.size(); ++q) {
            total += recallAtK(idx.search(ds.queries[q].data(), 10, ef),
                               gt[q], 10);
        }
        return total / static_cast<double>(ds.queries.size());
    };
    EXPECT_GE(recall_at(200) + 1e-9, recall_at(10));
}

TEST(Hnsw, ResultsSortedByDistance)
{
    const auto &ds = sift();
    const auto &idx = siftIndex();
    const auto &q = ds.queries[0];
    const auto ids = idx.search(q.data(), 10, 64);
    ASSERT_GE(ids.size(), 2u);
    double prev = -1.0;
    for (const VectorId id : ids) {
        const double d = distance(Metric::kL2, q.data(), *ds.base, id);
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST(Hnsw, DeterministicAcrossBuilds)
{
    const auto &ds = sift();
    const HnswIndex a(*ds.base, Metric::kL2, HnswParams{8, 50, 7});
    const HnswIndex b(*ds.base, Metric::kL2, HnswParams{8, 50, 7});
    EXPECT_EQ(a.entryPoint(), b.entryPoint());
    EXPECT_EQ(a.maxLevel(), b.maxLevel());
    for (VectorId v = 0; v < 2000; v += 97)
        EXPECT_EQ(a.neighbors(v, 0), b.neighbors(v, 0));
}

TEST(Hnsw, SaveLoadRoundTrip)
{
    const auto &ds = sift();
    const auto &idx = siftIndex();

    std::stringstream ss;
    idx.save(ss);
    const HnswIndex loaded =
        HnswIndex::load(ss, *ds.base, Metric::kL2, HnswParams{16, 100, 42});

    EXPECT_EQ(loaded.entryPoint(), idx.entryPoint());
    EXPECT_EQ(loaded.maxLevel(), idx.maxLevel());
    for (VectorId v = 0; v < 2000; v += 31) {
        ASSERT_EQ(loaded.levelOf(v), idx.levelOf(v));
        for (unsigned l = 0; l <= idx.levelOf(v); ++l)
            EXPECT_EQ(loaded.neighbors(v, l), idx.neighbors(v, l));
    }

    // Same search behavior.
    const auto &q = ds.queries[0];
    EXPECT_EQ(loaded.search(q.data(), 10, 64), idx.search(q.data(), 10, 64));
}

TEST(Hnsw, TraceMatchesSearch)
{
    const auto &ds = sift();
    const auto &idx = siftIndex();

    const auto trace =
        core::traceHnswQuery(idx, ds.queries[1], 10, 64);
    EXPECT_EQ(trace.result, idx.search(ds.queries[1].data(), 10, 64));
    EXPECT_GT(trace.steps.size(), 1u);
    EXPECT_GT(trace.numComparisons(), 10u);
    EXPECT_GE(trace.numComparisons(), trace.numAccepted());

    // Every recorded comparison must be exact and self-consistent.
    for (const auto &step : trace.steps) {
        for (const auto &t : step.tasks) {
            const double d = distance(Metric::kL2, ds.queries[1].data(),
                                      *ds.base, t.vec);
            EXPECT_DOUBLE_EQ(d, t.dist);
            EXPECT_EQ(t.accepted, t.dist < t.threshold);
        }
    }
}

TEST(Hnsw, MostComparisonsAreRejectedOnConvergedSearch)
{
    // Figure 1's observation: 50%+ of comparisons are beyond the
    // threshold once the result set converges.
    const auto &ds = sift();
    const auto &idx = siftIndex();
    std::size_t total = 0, accepted = 0;
    for (const auto &q : ds.queries) {
        const auto trace = core::traceHnswQuery(idx, q, 10, 128);
        total += trace.numComparisons();
        accepted += trace.numAccepted();
    }
    EXPECT_LT(static_cast<double>(accepted),
              0.6 * static_cast<double>(total));
}

TEST(Hnsw, IpMetricSearchWorks)
{
    const auto ds = makeDataset(DatasetId::kGlove, 1500, 10, 3);
    const HnswIndex idx(*ds.base, Metric::kIp, HnswParams{16, 100, 42});
    const auto gt = bruteForceAll(Metric::kIp, ds.queries, *ds.base, 10);
    double total = 0.0;
    for (std::size_t q = 0; q < ds.queries.size(); ++q) {
        total += recallAtK(idx.search(ds.queries[q].data(), 10, 128),
                           gt[q], 10);
    }
    EXPECT_GE(total / static_cast<double>(ds.queries.size()), 0.7);
}

} // namespace
} // namespace ansmet::anns
