/**
 * @file
 * Product-quantization tests (Section 4.3 compatibility): training,
 * encoding, memoized distance tables, the partial-element lower bound,
 * and lossless (relative to PQ distances) early-terminated search.
 */

#include <gtest/gtest.h>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/pq.h"

namespace ansmet::anns {
namespace {

const Dataset &
deep()
{
    static const Dataset ds = makeDataset(DatasetId::kDeep, 1200, 12, 4);
    return ds;
}

const PqIndex &
deepPq()
{
    static const PqIndex pq(*deep().base, Metric::kL2,
                            PqParams{12, 64, 8, 42});
    return pq;
}

TEST(Pq, ShapesAndCodesInRange)
{
    const auto &pq = deepPq();
    EXPECT_EQ(pq.subspaces(), 12u);
    EXPECT_EQ(pq.subDims(), 8u); // 96 / 12
    for (VectorId v = 0; v < 1200; v += 37)
        for (unsigned s = 0; s < pq.subspaces(); ++s)
            EXPECT_LT(pq.code(v, s), pq.codebookSize());
}

TEST(Pq, TableDistanceMatchesExplicitReconstruction)
{
    const auto &pq = deepPq();
    const auto &q = deep().queries[0];
    const auto table = pq.distanceTable(q.data());

    for (VectorId v = 0; v < 50; ++v) {
        // Reconstruct the quantized vector and compute the distance
        // directly; must equal the table aggregation.
        double direct = 0.0;
        for (unsigned s = 0; s < pq.subspaces(); ++s) {
            direct += distance(Metric::kL2,
                               q.data() + s * pq.subDims(),
                               pq.codeword(s, pq.code(v, s)),
                               pq.subDims());
        }
        EXPECT_NEAR(pq.tableDistance(table, v), direct,
                    1e-9 * (1.0 + direct));
    }
}

TEST(Pq, QuantizationErrorIsBounded)
{
    // PQ distances approximate true distances well enough for recall:
    // the PQ top-10 must overlap substantially with the exact top-10
    // (random guessing would score ~10/1200 = 0.008; PQ without
    // re-ranking on tightly clustered unit-norm data lands ~0.3).
    const auto &pq = deepPq();
    const auto &ds = deep();
    double recall = 0.0;
    for (const auto &q : ds.queries) {
        const auto exact = bruteForceKnn(Metric::kL2, q.data(),
                                         *ds.base, 10);
        const auto approx = pq.search(q.data(), 10);
        std::vector<VectorId> ids;
        for (const auto &n : approx)
            ids.push_back(n.id);
        recall += recallAtK(ids, exact, 10);
    }
    EXPECT_GE(recall / static_cast<double>(ds.queries.size()), 0.25);
}

TEST(Pq, PartialBoundNeverExceedsFullDistance)
{
    const auto &pq = deepPq();
    const auto &q = deep().queries[1];
    const auto table = pq.distanceTable(q.data());
    const auto minima = pq.rowMinima(table);

    for (VectorId v = 0; v < 200; ++v) {
        const double full = pq.tableDistance(table, v);
        double prev = -std::numeric_limits<double>::infinity();
        for (unsigned f = 0; f <= pq.subspaces(); ++f) {
            const double b = pq.partialLowerBound(table, minima, v, f);
            EXPECT_LE(b, full + 1e-9) << "f=" << f;
            EXPECT_GE(b, prev - 1e-12) << "bound must tighten";
            prev = b;
        }
        EXPECT_NEAR(prev, full, 1e-9 * (1.0 + std::abs(full)));
    }
}

TEST(Pq, EtSearchIsLosslessAndSavesReads)
{
    const auto &pq = deepPq();
    const auto &ds = deep();

    std::uint64_t reads = 0;
    std::uint64_t full_reads = 0;
    for (const auto &q : ds.queries) {
        const auto plain = pq.search(q.data(), 10);
        const auto et = pq.searchEt(q.data(), 10, &reads);
        full_reads += pq.size() * pq.subspaces();

        ASSERT_EQ(plain.size(), et.size());
        for (std::size_t i = 0; i < plain.size(); ++i) {
            EXPECT_EQ(plain[i].id, et[i].id) << "rank " << i;
            EXPECT_NEAR(plain[i].dist, et[i].dist,
                        1e-9 * (1.0 + plain[i].dist));
        }
    }
    EXPECT_LT(reads, full_reads) << "partial-element ET saved nothing";
}

TEST(Pq, WorksUnderInnerProduct)
{
    const auto ds = makeDataset(DatasetId::kGlove, 800, 6, 5);
    const PqIndex pq(*ds.base, Metric::kIp, PqParams{10, 16, 6, 7});
    const auto &q = ds.queries[0];

    const auto plain = pq.search(q.data(), 5);
    const auto et = pq.searchEt(q.data(), 5);
    ASSERT_EQ(plain.size(), et.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(plain[i].id, et[i].id);

    // IP table rows contain negatives; the row-minimum bound must
    // still never exceed the full distance.
    const auto table = pq.distanceTable(q.data());
    const auto minima = pq.rowMinima(table);
    for (VectorId v = 0; v < 100; ++v) {
        EXPECT_LE(pq.partialLowerBound(table, minima, v, 3),
                  pq.tableDistance(table, v) + 1e-9);
    }
}

} // namespace
} // namespace ansmet::anns
