/**
 * @file
 * Cache model tests: LRU replacement, set indexing, and hierarchy
 * fill/hit behavior.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"

namespace ansmet::cache {
namespace {

TEST(CacheArray, HitAfterFill)
{
    CacheArray c(4096, 4); // 16 sets
    EXPECT_FALSE(c.accessAndFill(0x1000));
    EXPECT_TRUE(c.accessAndFill(0x1000));
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(4 * 64, 4); // a single set of 4 ways
    EXPECT_EQ(c.numSets(), 1u);

    // Fill 4 lines, then touch line 0 to refresh its LRU position.
    for (Addr a = 0; a < 4; ++a)
        c.accessAndFill(a * 64);
    EXPECT_TRUE(c.accessAndFill(0));

    // A fifth line must evict line 1 (the LRU), not line 0.
    c.accessAndFill(4 * 64);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(64));
    EXPECT_TRUE(c.probe(2 * 64));
}

TEST(CacheArray, SubLineOffsetsAlias)
{
    CacheArray c(4096, 4);
    c.accessAndFill(0x100);
    EXPECT_TRUE(c.probe(0x100 + 63)); // same 64 B line
    EXPECT_FALSE(c.probe(0x100 + 64));
}

TEST(CacheArray, DistinctSetsDontConflict)
{
    CacheArray c(2 * 64 * 2, 2); // 2 sets x 2 ways
    // These two addresses land in different sets.
    c.accessAndFill(0);
    c.accessAndFill(64);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(64));
}

TEST(CacheArray, Flush)
{
    CacheArray c(4096, 4);
    c.accessAndFill(0x40);
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Hierarchy, MissThenL1Hit)
{
    HierarchyParams p;
    CacheHierarchy h(p);
    EXPECT_EQ(h.access(0x1000), CacheHierarchy::Level::kMemory);
    EXPECT_EQ(h.access(0x1000), CacheHierarchy::Level::kL1);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyParams p;
    p.l1Bytes = 8 * 64; // 1 set x 8 ways: tiny L1
    p.l1Assoc = 8;
    CacheHierarchy h(p);

    h.access(0); // install everywhere
    // Blow L1 (8 ways) with 8 new lines mapping to its single set.
    for (Addr a = 1; a <= 8; ++a)
        h.access(a * 64);
    EXPECT_EQ(h.access(0), CacheHierarchy::Level::kL2);
}

TEST(Hierarchy, HitCyclesOrdering)
{
    HierarchyParams p;
    CacheHierarchy h(p);
    EXPECT_LT(h.hitCycles(CacheHierarchy::Level::kL1),
              h.hitCycles(CacheHierarchy::Level::kL2));
    EXPECT_LT(h.hitCycles(CacheHierarchy::Level::kL2),
              h.hitCycles(CacheHierarchy::Level::kLlc));
}

TEST(Hierarchy, StatsCount)
{
    HierarchyParams p;
    CacheHierarchy h(p);
    h.access(0);
    h.access(0);
    h.access(64);
    EXPECT_EQ(h.stats().counters().at("misses").value(), 2u);
    EXPECT_EQ(h.stats().counters().at("l1_hits").value(), 1u);
}

} // namespace
} // namespace ansmet::cache
