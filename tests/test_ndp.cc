/**
 * @file
 * NDP unit tests: task timing, QSHR ordering and parallelism,
 * instruction helpers, and the polling estimator.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/check.h"
#include "cpu/host.h"
#include "ndp/instr.h"
#include "ndp/ndp_unit.h"
#include "ndp/polling.h"

namespace ansmet::ndp {
namespace {

dram::OrgParams
smallOrg()
{
    dram::OrgParams org;
    org.channels = 1;
    org.dimmsPerChannel = 1;
    org.ranksPerDimm = 1;
    return org;
}

TEST(Instr, SetQueryWriteCounts)
{
    EXPECT_EQ(setQueryWrites(1), 1u);
    EXPECT_EQ(setQueryWrites(64), 1u);
    EXPECT_EQ(setQueryWrites(65), 2u);
    EXPECT_EQ(setQueryWrites(1024), 16u);
}

TEST(NdpUnit, SingleTaskLatency)
{
    sim::EventQueue eq;
    const dram::TimingParams tp;
    NdpUnit unit(eq, NdpParams{}, tp, smallOrg(), 0);

    Tick done{};
    NdpTask t;
    t.startLine = 0;
    t.lines = 1;
    t.onComplete = [&](Tick when) { done = when; };
    unit.submit(0, std::move(t));
    eq.run();

    // Lookup + closed-page read + compute (2 cycles + bound check).
    const NdpParams np;
    const TickDelta expect = np.period() * np.qshrLookupCycles +
                             tp.cycles(tp.tRCD + tp.tCL + tp.tBL) +
                             np.period() * 3;
    EXPECT_EQ(done, Tick{} + expect);
    EXPECT_EQ(unit.linesFetched(), 1u);
    EXPECT_EQ(unit.tasksCompleted(), 1u);
}

TEST(NdpUnit, TasksOnOneQshrSerialize)
{
    sim::EventQueue eq;
    const dram::TimingParams tp;
    NdpUnit unit(eq, NdpParams{}, tp, smallOrg(), 0);

    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i) {
        NdpTask t;
        t.startLine = static_cast<std::uint64_t>(i) * 100;
        t.lines = 2;
        t.onComplete = [&](Tick when) { done.push_back(when); };
        unit.submit(0, std::move(t));
    }
    eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_LT(done[0], done[1]);
    EXPECT_LT(done[1], done[2]);
    // Serial execution: the second and third tasks take at least one
    // full fetch pipeline each after the first.
    EXPECT_GE(done[1] - done[0], tp.cycles(tp.tBL));
}

TEST(NdpUnit, QshrsOverlap)
{
    const dram::TimingParams tp;

    auto run_with_qshrs = [&](bool spread) {
        sim::EventQueue eq;
        NdpUnit unit(eq, NdpParams{}, tp, smallOrg(), 0);
        for (int i = 0; i < 8; ++i) {
            NdpTask t;
            // Different rows in different banks: parallelizable.
            t.startLine = static_cast<std::uint64_t>(i) * 4096;
            t.lines = 4;
            unit.submit(spread ? static_cast<unsigned>(i) : 0,
                        std::move(t));
        }
        eq.run();
        return eq.now();
    };

    EXPECT_LT(run_with_qshrs(true), run_with_qshrs(false));
}

TEST(NdpUnit, EarlyTerminationFetchesFewerLines)
{
    sim::EventQueue eq;
    const dram::TimingParams tp;
    NdpUnit unit(eq, NdpParams{}, tp, smallOrg(), 0);

    NdpTask full;
    full.lines = 8;
    unit.submit(0, std::move(full));
    eq.run();
    const Tick t_full = eq.now();
    EXPECT_EQ(unit.linesFetched(), 8u);

    sim::EventQueue eq2;
    NdpUnit unit2(eq2, NdpParams{}, tp, smallOrg(), 0);
    NdpTask et;
    et.lines = 2; // terminated after 2 fetches
    unit2.submit(0, std::move(et));
    eq2.run();
    EXPECT_LT(eq2.now(), t_full);
    EXPECT_EQ(unit2.linesFetched(), 2u);
}

TEST(PollingEstimator, ExpectationFromDistribution)
{
    // 50% of tasks fetch 1 line, 50% fetch 3.
    const std::vector<double> dist = {0.0, 0.5, 0.0, 0.5};
    PollingEstimator est(dist, TickDelta{100}, TickDelta{10});
    EXPECT_DOUBLE_EQ(est.expectedLines(), 2.0);
    EXPECT_EQ(est.expectedLatency(1), TickDelta{210});
    EXPECT_EQ(est.expectedLatency(4), TickDelta{840});
}

TEST(Polling, ModeNames)
{
    EXPECT_STREQ(pollingModeName(PollingMode::kConventional), "ConvPoll");
    EXPECT_STREQ(pollingModeName(PollingMode::kAdaptive), "AdaptPoll");
    EXPECT_STREQ(pollingModeName(PollingMode::kIdeal), "IdealPoll");
}

TEST(HostCpu, ComputeAdvancesTime)
{
    sim::EventQueue eq;
    cpu::HostParams hp;
    dram::TimingParams tp;
    dram::OrgParams org;
    cpu::HostCpu host(eq, hp, tp, org);

    Tick done{};
    host.compute(100, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, Tick{} + 100 * hp.period());
    EXPECT_EQ(host.computeBusy(), 100 * hp.period());
}

TEST(HostCpu, CachedReadsAreFasterThanMisses)
{
    sim::EventQueue eq;
    cpu::HostParams hp;
    dram::TimingParams tp;
    dram::OrgParams org;
    cpu::HostCpu host(eq, hp, tp, org);

    Tick first{}, second{};
    host.read(0x1000, 1, [&] {
        first = eq.now();
        host.read(0x1000, 1, [&] { second = eq.now(); });
    });
    eq.run();
    EXPECT_GT(first, Tick{});
    EXPECT_LT(second - first, first - Tick{});
}

TEST(HostCpu, MultiLineReadsOverlap)
{
    dram::TimingParams tp;
    dram::OrgParams org;

    auto span_for = [&](unsigned lines) {
        sim::EventQueue eq;
        cpu::HostParams hp;
        cpu::HostCpu host(eq, hp, tp, org);
        Tick done{};
        host.read(1 << 20, lines, [&] { done = eq.now(); });
        eq.run();
        return done - Tick{};
    };

    // 8 parallel line fetches must take far less than 8 serial ones.
    EXPECT_LT(span_for(8), 4 * span_for(1));
}

TEST(HostCpu, UncachedTransfersComplete)
{
    sim::EventQueue eq;
    cpu::HostParams hp;
    dram::TimingParams tp;
    dram::OrgParams org;
    cpu::HostCpu host(eq, hp, tp, org);

    int done = 0;
    host.writeUncached(0, 0, [&] { ++done; });
    host.readUncached(1, 64, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 2);
}

TEST(NdpUnitStress, BackpressurePastArchitecturalSlots)
{
    // Drive every QSHR well past its 8 architectural slots: the unit
    // must stage the overflow, never let the fifo exceed tasksPerQshr,
    // and still complete every task exactly once.
    sim::EventQueue eq;
    const dram::TimingParams tp;
    const NdpParams np;
    NdpUnit unit(eq, np, tp, smallOrg(), 0);

    constexpr unsigned kPerQshr = 24; // 3x the slot count
    std::uint64_t completed = 0;
    for (unsigned q = 0; q < np.numQshrs; ++q) {
        for (unsigned i = 0; i < kPerQshr; ++i) {
            NdpTask t;
            t.startLine = (static_cast<std::uint64_t>(q) * kPerQshr + i) * 8;
            t.lines = 1;
            t.onComplete = [&](Tick) { ++completed; };
            unit.submit(q, std::move(t));
        }
        // Architectural occupancy is capped; the rest is staged.
        EXPECT_EQ(unit.occupiedSlots(q), np.tasksPerQshr);
        EXPECT_EQ(unit.stagedTasks(q), kPerQshr - np.tasksPerQshr);
    }
    EXPECT_EQ(unit.backpressureEvents(),
              static_cast<std::uint64_t>(np.numQshrs) *
                  (kPerQshr - np.tasksPerQshr));

    eq.run();
    EXPECT_EQ(completed,
              static_cast<std::uint64_t>(np.numQshrs) * kPerQshr);
    EXPECT_EQ(unit.tasksCompleted(), completed);
    for (unsigned q = 0; q < np.numQshrs; ++q) {
        EXPECT_EQ(unit.occupiedSlots(q), 0u);
        EXPECT_EQ(unit.stagedTasks(q), 0u);
    }
}

TEST(NdpUnitStress, StagedTasksCompleteInFifoOrder)
{
    sim::EventQueue eq;
    const dram::TimingParams tp;
    const NdpParams np;
    NdpUnit unit(eq, np, tp, smallOrg(), 0);

    // 20 tasks on one QSHR (12 staged). Per-QSHR execution is strictly
    // serial, so completion order must equal submission order even
    // across the staged/architectural boundary.
    std::vector<unsigned> order;
    for (unsigned i = 0; i < 20; ++i) {
        NdpTask t;
        t.startLine = static_cast<std::uint64_t>(i) * 64;
        t.lines = 1 + i % 3;
        t.onComplete = [&order, i](Tick) { order.push_back(i); };
        unit.submit(3, std::move(t));
    }
    eq.run();
    ASSERT_EQ(order.size(), 20u);
    for (unsigned i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(NdpUnitStress, BackpressureIsTimingNeutral)
{
    // Staging exists so callers can over-submit without deadlock; it
    // must not change *when* work finishes. Run the same 24-task
    // sequence twice: once dumped into the unit up front (16 staged),
    // once fed by the caller so the architectural slots never
    // overflow. Completion times must match tick for tick.
    const dram::TimingParams tp;
    const NdpParams np;
    constexpr unsigned kTasks = 24;

    auto task_at = [](unsigned i) {
        NdpTask t;
        t.startLine = static_cast<std::uint64_t>(i) * 8;
        t.lines = 2;
        return t;
    };

    std::vector<Tick> staged_done;
    {
        sim::EventQueue eq;
        NdpUnit unit(eq, np, tp, smallOrg(), 0);
        for (unsigned i = 0; i < kTasks; ++i) {
            NdpTask t = task_at(i);
            t.onComplete = [&](Tick when) { staged_done.push_back(when); };
            unit.submit(0, std::move(t));
        }
        EXPECT_EQ(unit.stagedTasks(0), kTasks - np.tasksPerQshr);
        eq.run();
    }

    std::vector<Tick> fed_done;
    {
        sim::EventQueue eq;
        NdpUnit unit(eq, np, tp, smallOrg(), 0);
        unsigned next = np.tasksPerQshr;
        std::function<void(Tick)> on_done = [&](Tick when) {
            fed_done.push_back(when);
            if (next < kTasks) {
                NdpTask t = task_at(next++);
                t.onComplete = on_done;
                unit.submit(0, std::move(t));
            }
        };
        for (unsigned i = 0; i < np.tasksPerQshr; ++i) {
            NdpTask t = task_at(i);
            t.onComplete = on_done;
            unit.submit(0, std::move(t));
        }
        eq.run();
        EXPECT_EQ(unit.backpressureEvents(), 0u);
    }

    EXPECT_EQ(staged_done, fed_done);
}

TEST(NdpUnitInvariants, ZeroLineTaskFailsAudit)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setAuditEnabled(true);
    sim::EventQueue eq;
    const dram::TimingParams tp;
    NdpUnit unit(eq, NdpParams{}, tp, smallOrg(), 0);
    NdpTask task; // lines left at 0
    EXPECT_DEATH(unit.submit(0, std::move(task)), "zero-line task");
    setAuditEnabled(false);
}

TEST(NdpUnitInvariants, OccupancyQueriesRejectBadQshr)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::EventQueue eq;
    const dram::TimingParams tp;
    NdpParams np;
    NdpUnit unit(eq, np, tp, smallOrg(), 0);
    EXPECT_DEATH(unit.occupiedSlots(np.numQshrs), "bad QSHR id");
    EXPECT_DEATH(unit.stagedTasks(np.numQshrs), "bad QSHR id");
}

TEST(NdpUnitInvariants, SubmitToBadQshrPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::EventQueue eq;
    const dram::TimingParams tp;
    NdpParams np;
    NdpUnit unit(eq, np, tp, smallOrg(), 0);
    NdpTask task;
    task.lines = 1;
    EXPECT_DEATH(unit.submit(np.numQshrs, std::move(task)), "bad QSHR id");
}

TEST(PollingInvariants, EmptyDistributionPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(PollingEstimator({}, TickDelta{100}, TickDelta{100}),
                 "needs a fetch-count distribution");
}

TEST(PollingInvariants, UnnormalizedDistributionFailsAudit)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setAuditEnabled(true);
    // Mass 1.5: a distribution this broken would silently skew every
    // adaptive-polling prediction.
    EXPECT_DEATH(
        PollingEstimator({0.5, 1.0}, TickDelta{100}, TickDelta{100}),
        "distribution mass");
    setAuditEnabled(false);
}

} // namespace
} // namespace ansmet::ndp
