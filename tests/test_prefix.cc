/**
 * @file
 * Common-prefix elimination tests: prefix discovery under outlier
 * budgets, outlier classification, the progressive knownLen model, and
 * space accounting (Table 5's quantities).
 */

#include <gtest/gtest.h>

#include "anns/vector.h"
#include "common/prng.h"
#include "et/prefix.h"

namespace ansmet::et {
namespace {

using anns::ScalarType;
using anns::VectorSet;

TEST(FindCommonPrefix, ExactSharedPrefix)
{
    // All keys share the top 4 bits 0b1010.
    std::vector<std::uint32_t> keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.push_back(0xA0u | i);
    const CommonPrefix cp =
        findCommonPrefix(ScalarType::kUint8, keys, 0.0);
    EXPECT_EQ(cp.length, 4u);
    EXPECT_EQ(cp.bits, 0xAu);
}

TEST(FindCommonPrefix, OutlierBudgetExtendsPrefix)
{
    // 95 keys share 6 bits; 5 share only 2.
    std::vector<std::uint32_t> keys;
    for (unsigned i = 0; i < 95; ++i)
        keys.push_back(0xA8u | (i & 3)); // 101010xx
    for (unsigned i = 0; i < 5; ++i)
        keys.push_back(0x90u | i);       // 1001xxxx

    const CommonPrefix strict =
        findCommonPrefix(ScalarType::kUint8, keys, 0.0);
    EXPECT_EQ(strict.length, 2u); // only "10" is fully common

    const CommonPrefix loose =
        findCommonPrefix(ScalarType::kUint8, keys, 0.06);
    EXPECT_EQ(loose.length, 6u);
    EXPECT_EQ(loose.bits, 0x2Au); // 101010
}

TEST(FindCommonPrefix, NeverConsumesAllBits)
{
    std::vector<std::uint32_t> keys(10, 0x55u); // identical keys
    const CommonPrefix cp =
        findCommonPrefix(ScalarType::kUint8, keys, 0.0);
    EXPECT_LT(cp.length, 8u);
}

class PrefixElimFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        vs_ = std::make_unique<VectorSet>(8, 4, ScalarType::kUint8);
        // Vectors 0..6: all elements have keys 0xA0 | x (match 0b1010).
        for (unsigned v = 0; v < 7; ++v)
            for (unsigned d = 0; d < 4; ++d)
                vs_->set(v, d, static_cast<float>(0xA0 + v + d));
        // Vector 7: one mismatching element (0x50).
        for (unsigned d = 0; d < 4; ++d)
            vs_->set(7, d, static_cast<float>(d == 2 ? 0x50 : 0xA1));

        cp_ = CommonPrefix{ScalarType::kUint8, 4, 0xA};
        pe_ = std::make_unique<PrefixElimination>(cp_, *vs_);
    }

    std::unique_ptr<VectorSet> vs_;
    CommonPrefix cp_;
    std::unique_ptr<PrefixElimination> pe_;
};

TEST_F(PrefixElimFixture, ClassifiesOutliers)
{
    for (unsigned v = 0; v < 7; ++v)
        EXPECT_FALSE(pe_->vectorIsOutlier(v)) << v;
    EXPECT_TRUE(pe_->vectorIsOutlier(7));
    EXPECT_EQ(pe_->numOutlierVectors(), 1u);
    EXPECT_EQ(pe_->numOutlierElements(), 1u);
}

TEST_F(PrefixElimFixture, NormalVectorKnownLen)
{
    // P = 4; every fetched storage bit extends the prefix.
    EXPECT_EQ(pe_->knownLen(0, 0, 0), 4u);
    EXPECT_EQ(pe_->knownLen(0, 0, 2), 6u);
    EXPECT_EQ(pe_->knownLen(0, 0, 4), 8u);
    EXPECT_EQ(pe_->maxKnownLen(0, 0), 8u);
}

TEST_F(PrefixElimFixture, OutlierVectorLosesBudgetBits)
{
    // Vector 7 is an outlier vector; its *normal* elements spend one
    // bit on the OlElm flag.
    EXPECT_EQ(pe_->knownLen(7, 0, 0), 0u);
    EXPECT_EQ(pe_->knownLen(7, 0, 1), 4u);
    EXPECT_EQ(pe_->knownLen(7, 0, 4), 7u);
    EXPECT_LT(pe_->maxKnownLen(7, 0), 8u);
}

TEST_F(PrefixElimFixture, OutlierElementPartialRecovery)
{
    // Element (7, 2) has key 0x50 = 0101'0000; matches only "0" bits?
    // Common prefix is 1010: the key starts 0101 -> matchLen 0.
    // metaBits = bitsFor(3) = 2. Budget = 4 storage bits:
    // 1 OlElm + 2 matchLen + 1 payload bit => maxKnownLen = 1.
    EXPECT_EQ(pe_->knownLen(7, 2, 0), 0u);
    EXPECT_EQ(pe_->knownLen(7, 2, 1), 0u);  // field incomplete
    EXPECT_EQ(pe_->knownLen(7, 2, 3), 0u);  // field just complete, ml=0
    EXPECT_EQ(pe_->knownLen(7, 2, 4), 1u);
    EXPECT_EQ(pe_->maxKnownLen(7, 2), 1u);
}

TEST_F(PrefixElimFixture, KnownLenIsMonotone)
{
    for (unsigned v = 0; v < 8; ++v) {
        for (unsigned d = 0; d < 4; ++d) {
            unsigned prev = 0;
            for (unsigned f = 0; f <= 4; ++f) {
                const unsigned k = pe_->knownLen(v, d, f);
                EXPECT_GE(k, prev);
                EXPECT_LE(k, pe_->maxKnownLen(v, d));
                prev = k;
            }
        }
    }
}

TEST_F(PrefixElimFixture, SpaceAccounting)
{
    // Saved: P*D - (D+1) = 16 - 5 = 11 bits of 32 per vector.
    EXPECT_NEAR(pe_->spaceSavedFraction(), 11.0 / 32.0, 1e-9);
    // One of eight vectors needs a backup copy.
    EXPECT_NEAR(pe_->extraSpaceFraction(), 1.0 / 8.0, 1e-9);
}

TEST(PrefixElimination, RandomizedKnownLenSoundness)
{
    // For arbitrary data, the bits claimed known must actually match
    // the element's true key prefix (soundness of the decoder model).
    Prng rng(77);
    VectorSet vs(64, 8, ScalarType::kFp32);
    for (unsigned v = 0; v < 64; ++v)
        for (unsigned d = 0; d < 8; ++d)
            vs.set(v, d, static_cast<float>(rng.uniform(0.01, 0.3)));

    std::vector<std::uint32_t> keys;
    for (unsigned v = 0; v < 64; ++v)
        for (unsigned d = 0; d < 8; ++d)
            keys.push_back(toKey(ScalarType::kFp32, vs.bitsAt(v, d)));

    const CommonPrefix cp =
        findCommonPrefix(ScalarType::kFp32, keys, 0.01);
    EXPECT_GT(cp.length, 0u) << "narrow-range fp32 must share a prefix";

    PrefixElimination pe(cp, vs);
    for (unsigned v = 0; v < 64; ++v) {
        for (unsigned d = 0; d < 8; ++d) {
            const std::uint32_t key =
                toKey(ScalarType::kFp32, vs.bitsAt(v, d));
            for (unsigned f = 0; f <= 32 - cp.length; f += 3) {
                const unsigned known = pe.knownLen(v, d, f);
                ASSERT_LE(known, 32u);
                if (known == 0 || pe.vectorIsOutlier(v))
                    continue;
                // Normal vectors: claimed prefix must equal the true
                // top bits extended from the common prefix.
                const std::uint32_t claimed_prefix = key >> (32 - known);
                EXPECT_EQ(claimed_prefix >> (known - cp.length),
                          cp.bits >> 0);
            }
        }
    }
}

} // namespace
} // namespace ansmet::et
