/**
 * @file
 * Unit tests for common utilities: bit operations, PRNG, stats,
 * tables, annotated sync primitives, and the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/bitops.h"
#include "common/check.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/sync.h"
#include "common/table.h"
#include "sim/event_queue.h"

namespace ansmet {
namespace {

TEST(Bitops, MaskLow)
{
    EXPECT_EQ(maskLow(0), 0u);
    EXPECT_EQ(maskLow(1), 1u);
    EXPECT_EQ(maskLow(8), 0xffu);
    EXPECT_EQ(maskLow(32), 0xffffffffu);
    EXPECT_EQ(maskLow(64), ~std::uint64_t{0});
}

TEST(Bitops, ExtractMsbFirst)
{
    // value = 0b1011'0010, width 8
    const std::uint64_t v = 0xB2;
    EXPECT_EQ(extractMsbFirst(v, 8, 0, 4), 0xBu);
    EXPECT_EQ(extractMsbFirst(v, 8, 4, 4), 0x2u);
    EXPECT_EQ(extractMsbFirst(v, 8, 0, 8), 0xB2u);
    EXPECT_EQ(extractMsbFirst(v, 8, 2, 3), 0x6u); // bits 110
}

TEST(Bitops, RoundAndDiv)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Bitops, BitsFor)
{
    EXPECT_EQ(bitsFor(0), 1u);
    EXPECT_EQ(bitsFor(1), 1u);
    EXPECT_EQ(bitsFor(2), 2u);
    EXPECT_EQ(bitsFor(7), 3u);
    EXPECT_EQ(bitsFor(8), 4u);
}

TEST(Bitops, WriterReaderRoundTrip)
{
    std::vector<std::uint8_t> buf;
    BitWriter w(buf);
    w.put(0b101, 3);
    w.put(0xAB, 8);
    w.put(1, 1);
    w.put(0x3FFFF, 18);
    const auto len = w.bitLength();
    EXPECT_EQ(len, 30u);

    BitReader r(buf.data(), len);
    EXPECT_EQ(r.get(3), 0b101u);
    EXPECT_EQ(r.get(8), 0xABu);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(18), 0x3FFFFu);
}

TEST(Bitops, WriterAlign)
{
    std::vector<std::uint8_t> buf;
    BitWriter w(buf);
    w.put(1, 1);
    w.align(512);
    EXPECT_EQ(w.bitLength(), 512u);
    EXPECT_EQ(buf.size(), 64u);
}

TEST(Prng, Deterministic)
{
    Prng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Prng, UniformRange)
{
    Prng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Prng, GaussianMoments)
{
    Prng rng(11);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Prng, ZipfSkew)
{
    Prng rng(5);
    std::size_t low = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        if (rng.zipf(1000, 2.0) < 10)
            ++low;
    // With alpha=2 most of the mass is on the first few values.
    EXPECT_GT(low, static_cast<std::size_t>(n) / 2);
}

TEST(Stats, ScalarStat)
{
    ScalarStat s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, Histogram)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(5.5);
    h.sample(10.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, GroupRegistry)
{
    StatGroup g("test");
    ++g.counter("a");
    g.counter("a") += 2;
    EXPECT_EQ(g.counter("a").value(), 3u);
    g.reset();
    EXPECT_EQ(g.counter("a").value(), 0u);
}

TEST(Table, Renders)
{
    TextTable t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("b").cell(std::uint64_t{42});
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(EventQueue, OrdersByTime)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(Tick{30}, [&] { order.push_back(3); });
    eq.schedule(Tick{10}, [&] { order.push_back(1); });
    eq.schedule(Tick{20}, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), Tick{30});
}

TEST(EventQueue, SameTickPriorityAndFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(Tick{10}, [&] { order.push_back(2); }, 1);
    eq.schedule(Tick{10}, [&] { order.push_back(1); }, 0);
    eq.schedule(Tick{10}, [&] { order.push_back(3); }, 1);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduledDuringRun)
{
    sim::EventQueue eq;
    int hits = 0;
    eq.schedule(Tick{5}, [&] {
        ++hits;
        eq.scheduleIn(TickDelta{5}, [&] { ++hits; });
    });
    eq.run();
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(eq.now(), Tick{10});
}

TEST(EventQueue, Deschedule)
{
    sim::EventQueue eq;
    int hits = 0;
    const auto id = eq.scheduleCancelable(Tick{5}, [&] { ++hits; });
    eq.deschedule(id);
    eq.schedule(Tick{6}, [&] { ++hits; });
    eq.run();
    EXPECT_EQ(hits, 1);
}

TEST(EventQueue, RunLimit)
{
    sim::EventQueue eq;
    int hits = 0;
    eq.schedule(Tick{5}, [&] { ++hits; });
    eq.schedule(Tick{50}, [&] { ++hits; });
    eq.run(Tick{10});
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(Clocked, Conversions)
{
    sim::EventQueue eq;
    sim::Clocked c(eq, TickDelta{416});
    EXPECT_EQ(c.cyclesToTicks(10), TickDelta{4160});
    EXPECT_EQ(c.ticksToCycles(TickDelta{4160}), 10u);
    EXPECT_EQ(c.ticksToCycles(TickDelta{4161}), 11u);
}

// ---------------------------------------------------------------------
// Strong tick units (common/types.h). The unit contract is enforced at
// compile time; these probes pin the rejected expressions via type
// traits (a deleted operator or explicit constructor makes the
// corresponding trait false) and the accepted algebra at runtime.
// ---------------------------------------------------------------------

// Implicit construction from raw integers is rejected in both
// directions: a byte count or queue depth can never become a time.
static_assert(!std::is_convertible_v<int, sim::Tick>,
              "Tick must not be implicitly constructible from int");
static_assert(!std::is_convertible_v<std::uint64_t, sim::Tick>,
              "Tick must not be implicitly constructible from uint64");
static_assert(!std::is_convertible_v<int, sim::TickDelta>,
              "TickDelta must not be implicitly constructible from int");
static_assert(!std::is_convertible_v<std::uint64_t, sim::TickDelta>,
              "TickDelta must not be implicitly constructible from uint64");
static_assert(std::is_constructible_v<sim::Tick, std::uint64_t>,
              "explicit Tick{raw} construction stays available");

// Unit-unsound arithmetic on absolute time points does not exist:
// adding or scaling two points is meaningless.
static_assert(!std::is_invocable_v<std::plus<>, sim::Tick, sim::Tick>,
              "Tick + Tick must not compile");
static_assert(
    !std::is_invocable_v<std::multiplies<>, sim::Tick, sim::Tick>,
    "Tick * Tick must not compile");
static_assert(
    !std::is_invocable_v<std::multiplies<>, sim::Tick, std::uint64_t>,
    "Tick * scalar must not compile");
static_assert(!std::is_invocable_v<std::divides<>, sim::Tick, sim::Tick>,
              "Tick / Tick must not compile");

// The sound algebra: Tick +- TickDelta -> Tick, Tick - Tick ->
// TickDelta, TickDelta scales by counts, and span ratios are counts.
static_assert(std::is_same_v<decltype(sim::Tick{5} + sim::TickDelta{2}),
                             sim::Tick>);
static_assert(std::is_same_v<decltype(sim::Tick{5} - sim::Tick{2}),
                             sim::TickDelta>);
static_assert(
    std::is_same_v<decltype(sim::TickDelta{5} * std::uint64_t{2}),
                   sim::TickDelta>);
static_assert(
    std::is_same_v<decltype(sim::TickDelta{6} / sim::TickDelta{2}),
                   std::uint64_t>);

TEST(TickUnits, SoundAlgebraEvaluates)
{
    const Tick t0{1000};
    const TickDelta d{250};
    EXPECT_EQ(t0 + d, Tick{1250});
    EXPECT_EQ(d + t0, Tick{1250});
    EXPECT_EQ(t0 - d, Tick{750});
    EXPECT_EQ((t0 + d) - t0, d);
    EXPECT_EQ(3 * d, TickDelta{750});
    EXPECT_EQ(d * 3, TickDelta{750});
    EXPECT_EQ(TickDelta{750} / d, 3u);
    EXPECT_EQ(TickDelta{750} % d, TickDelta{});
    Tick t = t0;
    t += d;
    EXPECT_EQ(t, Tick{1250});
    t -= d;
    EXPECT_EQ(t, t0);
    EXPECT_EQ(t0.raw(), 1000u);
    EXPECT_EQ(d.raw(), 250u);
}

TEST(TickUnits, ConstantsAndConversions)
{
    EXPECT_EQ(kTicksPerNs, TickDelta{1000});
    EXPECT_EQ(periodFromGHz(1.0), TickDelta{1000});
    EXPECT_EQ(periodFromGHz(2.0), TickDelta{500});
    EXPECT_GT(kMaxTick, Tick{});
}

TEST(Check, PassingConditionsAreSilent)
{
    ANSMET_CHECK(1 + 1 == 2, "arithmetic broke");
    ANSMET_DCHECK(true, "never evaluated");
}

TEST(Check, FailedCheckPanicsWithMessage)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const int lines = 3;
    EXPECT_DEATH(ANSMET_CHECK(lines == 4, "expected 4, got ", lines),
                 "check failed: lines == 4 expected 4, got 3");
}

TEST(Check, DcheckHonorsAuditToggle)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setAuditEnabled(false);
    int evaluations = 0;
    // Disabled audit: condition is not even evaluated.
    ANSMET_DCHECK(++evaluations > 0, "unreachable");
    EXPECT_EQ(evaluations, 0);
    EXPECT_FALSE(auditEnabled());

    setAuditEnabled(true);
    EXPECT_TRUE(auditEnabled());
    ANSMET_DCHECK(++evaluations > 0, "passes");
    EXPECT_EQ(evaluations, 1);
    EXPECT_DEATH(ANSMET_DCHECK(false, "audit caught it"),
                 "dcheck failed: false audit caught it");
    setAuditEnabled(false);
}

// ---------------------------------------------------------------------
// Annotated sync primitives (common/sync.h). The annotations are
// compile-time only; these tests pin the runtime semantics of the
// wrappers under contention (and give TSan in CI something to chew on).
// ---------------------------------------------------------------------

TEST(Sync, MutexLockExcludesConcurrentIncrements)
{
    Mutex mu;
    int counter = 0;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                MutexLock lk(mu);
                ++counter;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, 4000);
}

TEST(Sync, SharedMutexAllowsConcurrentReaders)
{
    SharedMutex mu;
    const int value = 42;
    std::atomic<int> observed{0};
    std::atomic<int> inside{0};
    std::atomic<int> peak{0};
    std::vector<std::thread> readers;
    readers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            ReaderLock lk(mu);
            const int now = inside.fetch_add(1) + 1;
            int prev = peak.load();
            while (prev < now && !peak.compare_exchange_weak(prev, now)) {
            }
            observed.fetch_add(value);
            // Linger so the readers actually overlap.
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            inside.fetch_sub(1);
        });
    }
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(observed.load(), 4 * value);
    EXPECT_GE(peak.load(), 2) << "readers never overlapped";
    // A writer can still get exclusive access afterwards.
    WriterLock lk(mu);
    EXPECT_EQ(inside.load(), 0);
}

TEST(Sync, CondVarWaitWakesOnNotify)
{
    Mutex mu;
    CondVar cv;
    bool ready = false;
    int seen = 0;
    std::thread waiter([&] {
        MutexLock lk(mu);
        while (!ready)
            cv.wait(mu);
        seen = 1;
    });
    {
        MutexLock lk(mu);
        ready = true;
    }
    cv.notifyAll();
    waiter.join();
    EXPECT_EQ(seen, 1);
}

} // namespace
} // namespace ansmet
