/**
 * @file
 * Task runtime tests: channel SPSC/MPSC/steal stress (the tsan job
 * runs these under -fsanitize=thread), bounded-channel backpressure
 * (tasks are never dropped), affinity-hint placement with stealing
 * disabled, the one-lane inline fast path, drain-then-join shutdown
 * with the submit-after-shutdown CHECK, TaskGroup join/exception
 * semantics, and result identity across lane counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/runtime/core_set.h"
#include "common/runtime/mpsc_channel.h"
#include "common/runtime/runtime.h"

namespace ansmet::runtime {
namespace {

RuntimeConfig
config(unsigned lanes, std::size_t capacity = 1024, bool steal = true)
{
    RuntimeConfig cfg;
    cfg.cores = CoreSet::identity(lanes);
    cfg.channelCapacity = capacity;
    cfg.steal = steal;
    return cfg;
}

// --------------------------------------------------------------------
// CoreSet
// --------------------------------------------------------------------

TEST(CoreSet, ParsesListsRangesAndDuplicates)
{
    const CoreSet cs = CoreSet::parse("0,2,4-6");
    ASSERT_EQ(cs.size(), 5u);
    const unsigned want[] = {0, 2, 4, 5, 6};
    for (unsigned i = 0; i < cs.size(); ++i)
        EXPECT_EQ(cs[i], want[i]);
    EXPECT_TRUE(cs.pinned());

    const CoreSet down = CoreSet::parse("6-4");
    ASSERT_EQ(down.size(), 3u);
    EXPECT_EQ(down[0], 6u);
    EXPECT_EQ(down[2], 4u);

    // Duplicates keep their first position.
    const CoreSet dup = CoreSet::parse("3,1,3,1-2");
    ASSERT_EQ(dup.size(), 3u);
    EXPECT_EQ(dup[0], 3u);
    EXPECT_EQ(dup[1], 1u);
    EXPECT_EQ(dup[2], 2u);
}

TEST(CoreSet, RejectsJunkAsEmpty)
{
    EXPECT_EQ(CoreSet::parse("banana").size(), 0u);
    EXPECT_EQ(CoreSet::parse("1,x").size(), 0u);
    EXPECT_EQ(CoreSet::parse("-3").size(), 0u);
    EXPECT_EQ(CoreSet::parse(nullptr).size(), 0u);
    EXPECT_FALSE(CoreSet::parse("junk").pinned());
}

TEST(CoreSet, IdentityIsUnpinned)
{
    const CoreSet cs = CoreSet::identity(4);
    ASSERT_EQ(cs.size(), 4u);
    EXPECT_FALSE(cs.pinned());
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(cs[i], i);
}

// --------------------------------------------------------------------
// MpscChannel
// --------------------------------------------------------------------

TEST(MpscChannel, FifoSingleProducerSingleConsumer)
{
    MpscChannel<std::uint64_t> ch(64);
    constexpr std::uint64_t kN = 100000;
    std::thread producer([&ch] {
        for (std::uint64_t i = 0; i < kN; ++i)
            while (!ch.tryPush(std::uint64_t{i}))
                std::this_thread::yield();
    });
    std::uint64_t expect = 0;
    while (expect < kN) {
        std::uint64_t v = 0;
        if (!ch.tryPop(v)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(v, expect); // SPSC degenerates to strict FIFO
        ++expect;
    }
    producer.join();
    std::uint64_t v = 0;
    EXPECT_FALSE(ch.tryPop(v));
}

TEST(MpscChannel, MultiProducerKeepsPerProducerOrderAndDropsNothing)
{
    MpscChannel<std::uint64_t> ch(128);
    constexpr unsigned kProducers = 4;
    constexpr std::uint64_t kPerProducer = 50000;
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (unsigned p = 0; p < kProducers; ++p)
        producers.emplace_back([&ch, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                const std::uint64_t tagged = (std::uint64_t{p} << 32) | i;
                while (!ch.tryPush(std::uint64_t{tagged}))
                    std::this_thread::yield();
            }
        });
    std::vector<std::uint64_t> next_seq(kProducers, 0);
    std::uint64_t popped = 0;
    while (popped < kProducers * kPerProducer) {
        std::uint64_t v = 0;
        if (!ch.tryPop(v)) {
            std::this_thread::yield();
            continue;
        }
        const unsigned p = static_cast<unsigned>(v >> 32);
        const std::uint64_t seq = v & 0xffffffffu;
        ASSERT_LT(p, kProducers);
        ASSERT_EQ(seq, next_seq[p]) << "producer " << p;
        ++next_seq[p];
        ++popped;
    }
    for (auto &t : producers)
        t.join();
}

TEST(MpscChannel, ConcurrentStealersDrainEverythingExactlyOnce)
{
    // The steal path makes the consumer side multi-participant; hammer
    // it with several poppers racing the producers.
    MpscChannel<std::uint64_t> ch(64);
    constexpr unsigned kProducers = 2;
    constexpr unsigned kConsumers = 3;
    constexpr std::uint64_t kPerProducer = 40000;
    constexpr std::uint64_t kTotal = kProducers * kPerProducer;
    std::atomic<std::uint64_t> popped{0};
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < kProducers; ++p)
        threads.emplace_back([&ch, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i)
                while (!ch.tryPush(p * kPerProducer + i))
                    std::this_thread::yield();
        });
    for (unsigned c = 0; c < kConsumers; ++c)
        threads.emplace_back([&ch, &popped, &sum] {
            while (popped.load(std::memory_order_acquire) < kTotal) {
                std::uint64_t v = 0;
                if (ch.tryPop(v)) {
                    sum.fetch_add(v, std::memory_order_relaxed);
                    popped.fetch_add(1, std::memory_order_acq_rel);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(popped.load(), kTotal);
    EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2); // each value once
}

TEST(MpscChannel, TryPushLeavesValueIntactWhenFull)
{
    MpscChannel<std::vector<int>> ch(2);
    ASSERT_TRUE(ch.tryPush(std::vector<int>{1}));
    ASSERT_TRUE(ch.tryPush(std::vector<int>{2}));
    std::vector<int> keep{3, 4, 5};
    ASSERT_FALSE(ch.tryPush(std::move(keep)));
    EXPECT_EQ(keep.size(), 3u); // backpressure retries reuse the task
}

// --------------------------------------------------------------------
// Runtime: backpressure, placement, inline path, shutdown
// --------------------------------------------------------------------

TEST(Runtime, BackpressureNeverDropsTasks)
{
    // Capacity 4 with thousands of external posts: every push beyond
    // capacity must either help-drain or wait, never drop.
    Runtime rt(config(/*lanes=*/3, /*capacity=*/4));
    constexpr unsigned kTasks = 20000;
    std::atomic<unsigned> ran{0};
    TaskGroup group(rt);
    for (unsigned t = 0; t < kTasks; ++t)
        group.run(t, Task::Fn{[&ran] {
                      ran.fetch_add(1, std::memory_order_relaxed);
                  }});
    group.wait();
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(Runtime, WorkerSidePostsSurviveFullChannels)
{
    // Tasks that fan out from inside workers overflow the tiny
    // channels; the worker-producer path must run them inline instead
    // of deadlocking on its own full channel.
    Runtime rt(config(/*lanes=*/2, /*capacity=*/2));
    std::atomic<unsigned> ran{0};
    TaskGroup group(rt);
    for (unsigned t = 0; t < 64; ++t)
        group.run(t, Task::Fn{[&rt, &group, &ran] {
                      for (unsigned c = 0; c < 8; ++c)
                          group.run(c, Task::Fn{[&ran] {
                                        ran.fetch_add(
                                            1, std::memory_order_relaxed);
                                    }});
                      ran.fetch_add(1, std::memory_order_relaxed);
                  }});
    group.wait();
    EXPECT_EQ(ran.load(), 64u * 9u);
}

TEST(Runtime, AffinityHintPlacesTasksWhenStealingIsOff)
{
    constexpr unsigned kWorkers = 3;
    Runtime rt(config(kWorkers + 1, 1024, /*steal=*/false));
    ASSERT_EQ(rt.numWorkers(), kWorkers);
    constexpr unsigned kTasks = 300;
    std::vector<std::uint32_t> ran_on(kTasks, kAnyLane);
    TaskGroup group(rt);
    for (unsigned t = 0; t < kTasks; ++t)
        group.run(t, Task::Fn{[&ran_on, t] {
                      ran_on[t] = Runtime::currentWorker();
                  }});
    group.wait();
    for (unsigned t = 0; t < kTasks; ++t)
        ASSERT_EQ(ran_on[t], t % kWorkers) << "task " << t;
}

TEST(Runtime, OneLaneRuntimeRunsEverythingInlineOnTheCaller)
{
    Runtime rt(config(1));
    EXPECT_EQ(rt.numWorkers(), 0u);
    EXPECT_EQ(rt.lanes(), 1u);
    const std::thread::id self = std::this_thread::get_id();
    bool ran = false;
    rt.post(Task{Task::Fn{[&ran, self] {
                     ran = true;
                     EXPECT_EQ(std::this_thread::get_id(), self);
                     EXPECT_TRUE(Runtime::inRuntimeWork());
                     EXPECT_EQ(Runtime::currentWorker(), kAnyLane);
                 }},
                 kAnyLane});
    EXPECT_TRUE(ran);
    EXPECT_FALSE(Runtime::inRuntimeWork());

    std::vector<unsigned> hits(100, 0);
    rt.parallelFor(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        for (std::size_t i = lo; i < hi; ++i)
            ++hits[i];
    });
    for (unsigned h : hits)
        EXPECT_EQ(h, 1u);
}

TEST(Runtime, ShutdownDrainsAcceptedTasksBeforeJoining)
{
    constexpr unsigned kTasks = 5000;
    std::atomic<unsigned> ran{0};
    {
        Runtime rt(config(4));
        for (unsigned t = 0; t < kTasks; ++t)
            rt.post(Task{Task::Fn{[&ran] {
                             ran.fetch_add(1, std::memory_order_relaxed);
                         }},
                         t});
        rt.shutdown(); // must drain, not abandon
        EXPECT_EQ(ran.load(), kTasks);
        rt.shutdown(); // idempotent
    }
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(RuntimeDeathTest, PostAfterShutdownIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // One lane: no worker threads in the parent, so the death-test
    // fork is clean.
    Runtime rt(config(1));
    rt.shutdown();
    EXPECT_DEATH(rt.post(Task{Task::Fn{[] {}}, kAnyLane}),
                 "post on a stopped runtime");
}

TEST(Runtime, ParkedWorkersWakeForTrickledWork)
{
    // Slow trickle with gaps well past the spin budget: every post
    // must un-park a worker (a lost wakeup hangs this test).
    Runtime rt(config(3));
    std::atomic<unsigned> ran{0};
    TaskGroup group(rt);
    for (unsigned t = 0; t < 50; ++t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        group.run(kAnyLane, Task::Fn{[&ran] {
                      ran.fetch_add(1, std::memory_order_relaxed);
                  }});
    }
    group.wait();
    EXPECT_EQ(ran.load(), 50u);
}

// --------------------------------------------------------------------
// TaskGroup
// --------------------------------------------------------------------

TEST(TaskGroup, WaitRethrowsFirstTaskError)
{
    Runtime rt(config(4));
    TaskGroup group(rt);
    std::atomic<unsigned> ran{0};
    for (unsigned t = 0; t < 100; ++t)
        group.run(t, Task::Fn{[&ran, t] {
                      ran.fetch_add(1, std::memory_order_relaxed);
                      if (t == 37)
                          throw std::runtime_error("task 37 failed");
                  }});
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 100u); // the failure does not cancel siblings
}

TEST(TaskGroup, WaitFromInsideAWorkerHelpsInsteadOfDeadlocking)
{
    // A group task that itself forks-and-joins a subgroup: with one
    // worker, the subgroup's tasks sit on that worker's own channel,
    // so its wait() must help-drain them.
    Runtime rt(config(2));
    std::atomic<unsigned> ran{0};
    TaskGroup outer(rt);
    outer.run(0, Task::Fn{[&rt, &ran] {
                  TaskGroup inner(rt);
                  for (unsigned c = 0; c < 16; ++c)
                      inner.run(c, Task::Fn{[&ran] {
                                    ran.fetch_add(
                                        1, std::memory_order_relaxed);
                                }});
                  inner.wait();
                  ran.fetch_add(1, std::memory_order_relaxed);
              }});
    outer.wait();
    EXPECT_EQ(ran.load(), 17u);
}

// --------------------------------------------------------------------
// Determinism across lane counts
// --------------------------------------------------------------------

/** A toy reduction whose result must not depend on the lane count:
 *  per-index values land in indexed slots, the reduction is serial. */
std::uint64_t
checksumWithLanes(unsigned lanes)
{
    Runtime rt(config(lanes));
    constexpr std::size_t kN = 4096;
    std::vector<std::uint64_t> slot(kN, 0);
    rt.parallelFor(0, kN, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            std::uint64_t x = 0x9E3779B97F4A7C15ull * (i + 1);
            x ^= x >> 29;
            slot[i] = x;
        }
    });
    TaskGroup group(rt);
    std::vector<std::uint64_t> partial(16, 0);
    for (unsigned p = 0; p < 16; ++p)
        group.run(p, Task::Fn{[&slot, &partial, p] {
                      const std::size_t chunk = kN / 16;
                      for (std::size_t i = p * chunk; i < (p + 1) * chunk;
                           ++i)
                          partial[p] += slot[i];
                  }});
    group.wait();
    // Canonical serial reduction order.
    return std::accumulate(partial.begin(), partial.end(),
                           std::uint64_t{0});
}

TEST(Runtime, ResultsAreIdenticalAcrossLaneCounts)
{
    const std::uint64_t one = checksumWithLanes(1);
    EXPECT_EQ(checksumWithLanes(2), one);
    EXPECT_EQ(checksumWithLanes(4), one);
    EXPECT_EQ(checksumWithLanes(7), one);
}

// --------------------------------------------------------------------
// parallelFor on the runtime directly
// --------------------------------------------------------------------

TEST(Runtime, ParallelForCoversEveryIndexExactlyOnce)
{
    Runtime rt(config(4));
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<unsigned>> hits(kN);
    rt.parallelFor(
        0, kN,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/7);
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(Runtime, NestedParallelForRunsInline)
{
    Runtime rt(config(4));
    std::atomic<unsigned> outer{0};
    std::atomic<unsigned> inner{0};
    rt.parallelFor(0, 8, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            outer.fetch_add(1, std::memory_order_relaxed);
            const std::thread::id self = std::this_thread::get_id();
            rt.parallelFor(0, 4, [&](std::size_t nlo, std::size_t nhi) {
                EXPECT_EQ(std::this_thread::get_id(), self);
                inner.fetch_add(static_cast<unsigned>(nhi - nlo),
                                std::memory_order_relaxed);
            });
        }
    });
    EXPECT_EQ(outer.load(), 8u);
    EXPECT_EQ(inner.load(), 32u);
}

TEST(Runtime, ParallelForPropagatesFirstException)
{
    Runtime rt(config(4));
    std::atomic<unsigned> ran{0};
    EXPECT_THROW(
        rt.parallelFor(0, 1000,
                       [&](std::size_t lo, std::size_t hi) {
                           ran.fetch_add(static_cast<unsigned>(hi - lo),
                                         std::memory_order_relaxed);
                           if (lo == 0)
                               throw std::runtime_error("chunk failed");
                       }),
        std::runtime_error);
    EXPECT_EQ(ran.load(), 1000u); // the range still completes
}

} // namespace
} // namespace ansmet::runtime
