/**
 * @file
 * Sampling-based preprocessing tests: threshold percentiles, entropy
 * and ET-frequency profiles (Figure 3's shapes), the dual-granularity
 * cost model and optimizer, and KL divergence.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "anns/dataset.h"
#include "et/profile.h"

namespace ansmet::et {
namespace {

using anns::DatasetId;

TEST(AccessCost, CoarseOnlyRange)
{
    // W=32, no prefix, nc=8 x tc=4 covers everything; nf unused.
    const DualParams dp{8, 4, 4};
    // 64 dims at 8 bits -> 512 bits/line -> 1 line per step.
    EXPECT_EQ(accessCostLines(1, 32, 0, 64, dp), 1u);
    EXPECT_EQ(accessCostLines(8, 32, 0, 64, dp), 1u);
    EXPECT_EQ(accessCostLines(9, 32, 0, 64, dp), 2u);
    EXPECT_EQ(accessCostLines(32, 32, 0, 64, dp), 4u);
    // Never terminated: full fetch.
    EXPECT_EQ(accessCostLines(33, 32, 0, 64, dp), 4u);
}

TEST(AccessCost, FineRangeAfterCoarse)
{
    // nc=8 x tc=2, then nf=2 for the rest (16 bits).
    const DualParams dp{8, 2, 2};
    const unsigned dims = 64;
    // Terminating at bit 17 needs 2 coarse + 1 fine step.
    // Coarse lines/step: 64 dims @ 8 bits = 1; fine: 64 @ 2 bits = 1.
    EXPECT_EQ(accessCostLines(17, 32, 0, dims, dp), 3u);
    EXPECT_EQ(accessCostLines(18, 32, 0, dims, dp), 3u);
    EXPECT_EQ(accessCostLines(19, 32, 0, dims, dp), 4u);
}

TEST(AccessCost, PrefixShiftsPositions)
{
    const DualParams dp{8, 4, 4};
    // pET inside the eliminated prefix still costs one step.
    EXPECT_EQ(accessCostLines(3, 32, 6, 64, dp),
              accessCostLines(7, 32, 6, 64, dp));
    EXPECT_GT(accessCostLines(20, 32, 0, 64, dp),
              accessCostLines(20, 32, 6, 64, dp));
}

TEST(AccessCost, HighDimDatasetsNeedMultipleLinesPerStep)
{
    const DualParams dp{8, 4, 4};
    // 960 dims at 8 bits = 15 lines per coarse step.
    EXPECT_EQ(accessCostLines(8, 32, 0, 960, dp), 15u);
    EXPECT_EQ(accessCostLines(16, 32, 0, 960, dp), 30u);
}

TEST(OptimizeDual, PrefersCoarseWhenTerminationIsLate)
{
    // Every pair terminates deep (bit 24 of 32): fine early steps
    // would waste fetches, so the optimizer should cover the first ~24
    // bits with coarse steps.
    std::vector<unsigned> positions(100, 24);
    const DualParams dp = optimizeDual(positions, 32, 0, 64);
    const unsigned coarse_covered = dp.nc * dp.tc;
    EXPECT_GE(coarse_covered + dp.nf, 24u);
    // Optimal cost: with 64 dims, 8-bit steps pack one line each, so
    // bit 24 is reachable in 3 lines and nothing can do better than
    // ceil(24 * 64 / 512) = 3.
    EXPECT_LE(accessCostLines(24, 32, 0, 64, dp), 3u);
}

TEST(OptimizeDual, PrefersFineWhenTerminationIsEarlyAndSpread)
{
    // Terminations spread over bits 2..9: small steps win.
    std::vector<unsigned> positions;
    for (unsigned i = 0; i < 100; ++i)
        positions.push_back(2 + i % 8);
    const DualParams dp = optimizeDual(positions, 32, 0, 64);

    // The chosen plan must beat a naive uniform-8 plan on cost.
    const DualParams naive{8, 4, 8};
    std::uint64_t chosen = 0, base = 0;
    for (const unsigned p : positions) {
        chosen += accessCostLines(p, 32, 0, 64, dp);
        base += accessCostLines(p, 32, 0, 64, naive);
    }
    EXPECT_LE(chosen, base);
}

TEST(OptimizeDual, RespectsPrefixBudget)
{
    std::vector<unsigned> positions(50, 12);
    const DualParams dp = optimizeDual(positions, 32, 26, 64);
    EXPECT_LE(dp.nc, 6u); // only 6 payload bits exist
}

TEST(KlDivergence, BasicProperties)
{
    const std::vector<double> p = {0.5, 0.3, 0.2};
    const std::vector<double> q = {0.1, 0.3, 0.6};
    EXPECT_NEAR(klDivergence(p, p), 0.0, 1e-9);
    EXPECT_GT(klDivergence(p, q), 0.0);
    // Asymmetric in general.
    EXPECT_NE(klDivergence(p, q), klDivergence(q, p));
}

class ProfileTest : public ::testing::Test
{
  protected:
    static const EtProfile &
    deepProfile()
    {
        static const EtProfile prof = [] {
            const auto ds = anns::makeDataset(DatasetId::kDeep, 2000, 10, 1);
            ProfileConfig cfg;
            cfg.maxPairs = 1000;
            return buildProfile(*ds.base, ds.metric(), cfg);
        }();
        return prof;
    }
};

TEST_F(ProfileTest, ThresholdIsLowPercentile)
{
    const auto &prof = deepProfile();
    EXPECT_GT(prof.threshold, 0.0);
    // DEEP vectors are unit norm: squared distances lie in [0, 4];
    // the 10th percentile must sit well below the maximum.
    EXPECT_LT(prof.threshold, 2.0);
}

TEST_F(ProfileTest, EntropyLowAtTopBitsHighInMiddle)
{
    const auto &prof = deepProfile();
    ASSERT_EQ(prof.prefixEntropy.size(), 32u);
    // The paper's low-entropy range: mostly-positive normalized fp32
    // shares sign+exponent prefixes.
    const double head = prof.prefixEntropy[2];
    const double mid = prof.prefixEntropy[11];
    EXPECT_LT(head, mid);
    // Entropy is non-decreasing in prefix length by definition.
    for (std::size_t i = 1; i < prof.prefixEntropy.size(); ++i)
        EXPECT_GE(prof.prefixEntropy[i], prof.prefixEntropy[i - 1] - 1e-9);
}

TEST_F(ProfileTest, EtFrequencyConcentratedInMiddleBits)
{
    const auto &prof = deepProfile();
    double head = 0.0, middle = 0.0;
    for (unsigned l = 0; l < 4; ++l)
        head += prof.etFrequency[l];
    for (unsigned l = 4; l < 20; ++l)
        middle += prof.etFrequency[l];
    EXPECT_GT(middle, head);
    const double total =
        std::accumulate(prof.etFrequency.begin(), prof.etFrequency.end(),
                        0.0);
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GT(total, 0.3) << "most pairs should early-terminate";
}

TEST_F(ProfileTest, CommonPrefixFound)
{
    const auto &prof = deepProfile();
    EXPECT_GT(prof.commonPrefix.length, 0u);
    EXPECT_LT(prof.commonPrefix.length, 32u);
}

TEST_F(ProfileTest, FetchDistributionIsNormalized)
{
    const auto &prof = deepProfile();
    const double total = std::accumulate(prof.fetchCountDist.begin(),
                                         prof.fetchCountDist.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(prof.expectedFetchLines(), 0.0);
}

TEST(Profile, SamplingConvergence)
{
    // More samples -> lower KL divergence to a high-sample reference
    // (the Figure 11(a) experiment in miniature).
    const auto ds = anns::makeDataset(DatasetId::kDeep, 3000, 10, 2);

    auto freq = [&](std::size_t samples, std::uint64_t seed) {
        ProfileConfig cfg;
        cfg.numSamples = samples;
        cfg.maxPairs = 2000;
        cfg.seed = seed;
        return buildProfile(*ds.base, ds.metric(), cfg).etFrequency;
    };

    const auto ref = freq(120, 99);
    const double kl_small = klDivergence(freq(5, 7), ref);
    const double kl_large = klDivergence(freq(80, 7), ref);
    EXPECT_LT(kl_large, kl_small);
}

} // namespace
} // namespace ansmet::et
