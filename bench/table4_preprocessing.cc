/**
 * @file
 * Table 4: ET preprocessing time (sampling + layout parameter search)
 * vs HNSW graph construction time for every dataset.
 *
 * Shape to reproduce: preprocessing is a negligible (<1%-ish) add-on
 * to the unavoidable graph construction cost.
 */

#include <chrono>

#include "anns/hnsw.h"
#include "bench_util.h"
#include "et/profile.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Table 4: preprocessing vs graph construction time",
           "Section 7.2, Table 4");

    TextTable t({"Dataset", "ET preproc (s)", "Graph constr (s)",
                 "Overhead"});

    for (const auto id : anns::allDatasets()) {
        // Fresh timings (the context cache would hide the build cost):
        // a reduced N keeps the bench quick while the *ratio* between
        // the two phases stays representative.
        auto cfg = experimentConfig(id);
        const auto ds = anns::makeDataset(id, cfg.numVectors / 2,
                                          8, cfg.seed + 100);

        const auto t0 = std::chrono::steady_clock::now();
        anns::HnswIndex index(*ds.base, ds.metric(), cfg.hnsw);
        const double graph_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        const auto t1 = std::chrono::steady_clock::now();
        const auto prof =
            et::buildProfile(*ds.base, ds.metric(), cfg.profile);
        const double preproc_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t1)
                .count();
        (void)prof;

        t.row()
            .cell(anns::datasetSpec(id).name)
            .cell(preproc_s, 3)
            .cell(graph_s, 3)
            .cellPct(preproc_s / (graph_s > 0 ? graph_s : 1e-9));
    }
    t.print();

    std::printf("\nPaper shape check: layout preprocessing adds a small\n"
                "fraction of the graph construction cost (paper: <1%% at\n"
                "billion scale, where construction dominates even more).\n");
    return 0;
}
