/**
 * @file
 * Figure 12 + the Section 5.3 replication study: impact of the vector
 * data partitioning scheme (vertical / hybrid S = 256 B..2 kB /
 * horizontal) on GIST, plus hot-vector replication's effect on load
 * imbalance, including a zipf-skewed (alpha = 2.0) query set.
 *
 * Shapes to reproduce: neither extreme wins — hybrid with S = 1 kB is
 * best; replication of the HNSW top layers cuts the load-imbalance
 * ratio (paper: 1.49x -> 1.05x uniform, 2.19x -> 1.09x zipf).
 */

#include "bench_util.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Figure 12: vector data partitioning schemes (GIST)",
           "Section 7.3, Figure 12 + Section 5.3");

    const auto &ctx = context(anns::DatasetId::kGist);

    struct Scheme
    {
        const char *name;
        unsigned subVectorBytes;
    };
    const Scheme schemes[] = {
        {"Vertical(64B)", 64},      {"Hybrid 256B", 256},
        {"Hybrid 512B", 512},       {"Hybrid 1kB", 1024},
        {"Hybrid 2kB", 2048},       {"Horizontal", ~0u},
    };

    struct Row
    {
        const char *name;
        unsigned ranksPerGroup;
        double qps;
        double imbalance;
    };
    std::vector<Row> rows;
    double ref_qps = 1.0;
    for (const auto &s : schemes) {
        core::SystemConfig cfg = ctx.systemConfig(core::Design::kNdpEtOpt);
        cfg.subVectorBytes = s.subVectorBytes;
        core::SystemModel model(cfg, *ctx.dataset().base,
                                ctx.dataset().metric(), &ctx.profile(),
                                ctx.hotVectors());
        const unsigned rpg = model.partitioner()->ranksPerGroup();
        const auto rs = model.run(ctx.traces());
        rows.push_back({s.name, rpg, rs.qps(), rs.loadImbalance});
        if (s.subVectorBytes == 1024)
            ref_qps = rs.qps();
    }

    TextTable t({"Scheme", "RanksPerGroup", "QPS", "Norm(1kB)",
                 "Imbalance"});
    for (const auto &r : rows) {
        t.row()
            .cell(r.name)
            .cell(std::uint64_t{r.ranksPerGroup})
            .cell(r.qps, 0)
            .cell(r.qps / ref_qps, 3)
            .cell(r.imbalance, 2);
    }
    t.print();
    std::printf("\n");

    std::printf("--- Section 5.3: hot-vector replication ---\n");
    TextTable r({"Queries", "Replication", "Imbalance", "ReplicatedBytes"});
    for (const bool zipf : {false, true}) {
        // Build a skewed workload when requested.
        const core::ExperimentContext *c = &ctx;
        std::unique_ptr<core::ExperimentContext> skewed;
        if (zipf) {
            auto cfg = experimentConfig(anns::DatasetId::kGist);
            cfg.zipfAlpha = 2.0;
            skewed = std::make_unique<core::ExperimentContext>(cfg);
            c = skewed.get();
        }
        for (const bool replicate : {false, true}) {
            core::SystemConfig cfg =
                c->systemConfig(core::Design::kNdpBase);
            cfg.replicateHot = replicate;
            core::SystemModel model(cfg, *c->dataset().base,
                                    c->dataset().metric(), &c->profile(),
                                    c->hotVectors());
            const std::uint64_t bytes =
                replicate ? model.partitioner()->replicationBytes() : 0;
            const auto rs = model.run(c->traces());
            r.row()
                .cell(zipf ? "zipf(a=2.0)" : "uniform")
                .cell(replicate ? "top-4 layers" : "none")
                .cell(rs.loadImbalance, 2)
                .cell(bytes);
        }
    }
    r.print();

    std::printf("\nPaper shape check: hybrid 1kB is the best scheme;\n"
                "replicating the (tiny) top HNSW layers pushes the\n"
                "imbalance ratio toward 1.0, with the biggest effect on\n"
                "the zipf-skewed query set.\n");
    return 0;
}
