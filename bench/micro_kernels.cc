/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels: distance
 * computation, sortable-key codecs, bound accumulation, layout
 * transformation, and per-comparison fetch simulation. These are the
 * loops the whole experiment pipeline spends its host time in.
 */

#include <benchmark/benchmark.h>

#include <cctype>
#include <string>
#include <vector>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/distance.h"
#include "anns/heap.h"
#include "anns/kernels.h"
#include "common/prng.h"
#include "common/simd.h"
#include "et/bounds.h"
#include "et/fetchsim.h"
#include "et/layout.h"
#include "et/profile.h"

namespace {

using namespace ansmet;

const anns::Dataset &
deep()
{
    static const anns::Dataset ds =
        anns::makeDataset(anns::DatasetId::kDeep, 2000, 8, 1);
    return ds;
}

const et::EtProfile &
deepProfile()
{
    static const et::EtProfile prof = [] {
        et::ProfileConfig cfg;
        cfg.numSamples = 50;
        cfg.maxPairs = 500;
        return et::buildProfile(*deep().base, deep().metric(), cfg);
    }();
    return prof;
}

void
BM_DistanceL2(benchmark::State &state)
{
    const auto &ds = deep();
    const auto &q = ds.queries[0];
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            anns::l2Sq(q.data(), *ds.base, v));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
    state.SetItemsProcessed(state.iterations() * ds.base->dims());
}
BENCHMARK(BM_DistanceL2);

void
BM_DistanceIp(benchmark::State &state)
{
    const auto &ds = deep();
    const auto &q = ds.queries[0];
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(anns::negIp(q.data(), *ds.base, v));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
    state.SetItemsProcessed(state.iterations() * ds.base->dims());
}
BENCHMARK(BM_DistanceIp);

void
BM_SortableKeyRoundTrip(benchmark::State &state)
{
    Prng rng(1);
    std::uint32_t x = static_cast<std::uint32_t>(rng.next());
    for (auto _ : state) {
        x = et::fromKey(anns::ScalarType::kFp32,
                        et::toKey(anns::ScalarType::kFp32, x) + 1);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_SortableKeyRoundTrip);

void
BM_BoundAccumulatorSweep(benchmark::State &state)
{
    const auto &ds = deep();
    const auto &vs = *ds.base;
    const auto &q = ds.queries[0];
    const unsigned w = et::keyBits(vs.type());
    const auto len = static_cast<unsigned>(state.range(0));

    for (auto _ : state) {
        et::BoundAccumulator acc(ds.metric(), q.data(), vs.dims(),
                                 deepProfile().globalRange);
        for (unsigned d = 0; d < vs.dims(); ++d) {
            const std::uint32_t key = et::toKey(vs.type(), vs.bitsAt(0, d));
            acc.update(d, et::intervalFromPrefix(vs.type(),
                                                 key >> (w - len), len));
        }
        benchmark::DoNotOptimize(acc.lowerBound());
    }
    state.SetItemsProcessed(state.iterations() * ds.base->dims());
}
BENCHMARK(BM_BoundAccumulatorSweep)->Arg(4)->Arg(16)->Arg(32);

void
BM_TransformVector(benchmark::State &state)
{
    const auto &ds = deep();
    const auto plan =
        et::FetchPlanSpec::heuristic(ds.base->type(), ds.base->dims());
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(et::transformVector(plan, *ds.base, v));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
}
BENCHMARK(BM_TransformVector);

void
BM_FetchSimulate(benchmark::State &state)
{
    const auto &ds = deep();
    const auto scheme = static_cast<et::EtScheme>(state.range(0));
    const et::FetchSimulator sim(*ds.base, ds.metric(), scheme,
                                 &deepProfile());
    const auto &q = ds.queries[0];
    const auto gt =
        anns::bruteForceKnn(ds.metric(), q.data(), *ds.base, 10);
    const double threshold = gt.back().dist;
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.simulate(q.data(), v, threshold));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
}
BENCHMARK(BM_FetchSimulate)
    ->Arg(static_cast<int>(et::EtScheme::kNone))
    ->Arg(static_cast<int>(et::EtScheme::kHeuristic))
    ->Arg(static_cast<int>(et::EtScheme::kOpt));

void
BM_ResultSetOffer(benchmark::State &state)
{
    Prng rng(3);
    for (auto _ : state) {
        anns::ResultSet rs(10);
        for (int i = 0; i < 256; ++i)
            rs.offer({rng.uniform(), static_cast<VectorId>(i)});
        benchmark::DoNotOptimize(rs.worst());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ResultSetOffer);

// --------------------------------------------------------------------
// Per-tier kernel benchmarks (registered dynamically, one set per ISA
// tier the build and CPU support). Names follow
//   kernel_<op>/<type-or-metric>/<tier>
// so tools/bench_diff.py --speedup can pair each SIMD entry with its
// scalar sibling. CI runs these with
//   --benchmark_filter='kernel_' --benchmark_out=BENCH_kernels.json
//   --benchmark_out_format=json
// and asserts the fp32 L2 batch speedup (see .github/workflows/ci.yml).
// --------------------------------------------------------------------

constexpr unsigned kKernelDims = 96;
constexpr std::size_t kKernelRows = 1024;
constexpr std::size_t kKernelBatch = 256;

struct KernelBenchData
{
    anns::VectorSet vs;
    std::vector<float> query;
    std::vector<VectorId> ids;

    explicit KernelBenchData(anns::ScalarType t)
        : vs(kKernelRows, kKernelDims, t), query(kKernelDims)
    {
        Prng rng(42);
        for (VectorId v = 0; v < kKernelRows; ++v) {
            for (unsigned d = 0; d < kKernelDims; ++d) {
                const float lo = t == anns::ScalarType::kUint8 ? 0.f : -8.f;
                const float hi = t == anns::ScalarType::kUint8 ? 255.f : 8.f;
                vs.set(v, d, static_cast<float>(rng.uniform(lo, hi)));
            }
        }
        for (unsigned d = 0; d < kKernelDims; ++d)
            query[d] = static_cast<float>(rng.uniform(-8.0, 8.0));
        for (std::size_t i = 0; i < kKernelBatch; ++i) {
            ids.push_back(static_cast<VectorId>(
                (i * 7 + 3) % kKernelRows));
        }
    }
};

const KernelBenchData &
kernelData(anns::ScalarType t)
{
    static const KernelBenchData u8(anns::ScalarType::kUint8);
    static const KernelBenchData i8(anns::ScalarType::kInt8);
    static const KernelBenchData f16(anns::ScalarType::kFp16);
    static const KernelBenchData f32(anns::ScalarType::kFp32);
    switch (t) {
      case anns::ScalarType::kUint8: return u8;
      case anns::ScalarType::kInt8:  return i8;
      case anns::ScalarType::kFp16:  return f16;
      case anns::ScalarType::kFp32:  return f32;
    }
    return f32;
}

void
BM_KernelRowDist(benchmark::State &state, const anns::KernelOps *ops,
                 anns::ScalarType t, bool l2)
{
    const KernelBenchData &data = kernelData(t);
    const unsigned ti = anns::typeIndex(t);
    const anns::RowDistFn fn = l2 ? ops->l2[ti] : ops->dot[ti];
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fn(data.query.data(), data.vs.raw(v), kKernelDims));
        v = (v + 1) % kKernelRows;
    }
    state.SetItemsProcessed(state.iterations() * kKernelDims);
}

void
BM_KernelBatchDist(benchmark::State &state, const anns::KernelOps *ops,
                   anns::ScalarType t, bool l2)
{
    const KernelBenchData &data = kernelData(t);
    const unsigned ti = anns::typeIndex(t);
    const anns::RowBatchFn fn = l2 ? ops->l2Batch[ti] : ops->dotBatch[ti];
    std::vector<double> out(kKernelBatch);
    for (auto _ : state) {
        fn(data.query.data(), data.vs.raw(0), data.vs.vectorBytes(),
           data.ids.data(), kKernelBatch, kKernelDims, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * kKernelBatch *
                            kKernelDims);
}

void
BM_KernelBound(benchmark::State &state, const anns::KernelOps *ops,
               bool l2)
{
    const KernelBenchData &data = kernelData(anns::ScalarType::kFp32);
    // Converged interval state: every call performs the full
    // intersect/contribute/delta arithmetic with zero net change, so
    // iterations time identical instruction streams.
    std::vector<double> lo(kKernelDims, -8.0), hi(kKernelDims, 8.0);
    std::vector<double> contrib(kKernelDims, 0.0);
    std::vector<double> nlo(kKernelDims), nhi(kKernelDims);
    Prng rng(7);
    for (unsigned d = 0; d < kKernelDims; ++d) {
        nlo[d] = rng.uniform(-8.0, 0.0);
        nhi[d] = rng.uniform(0.0, 8.0);
        const double q = data.query[d];
        if (l2) {
            contrib[d] = 0.0;
        } else {
            contrib[d] = q >= 0.0 ? hi[d] * q : lo[d] * q;
        }
    }
    const anns::BoundBatchFn fn = l2 ? ops->boundL2 : ops->boundIp;
    double total = 0.0;
    for (auto _ : state) {
        total += fn(data.query.data(), lo.data(), hi.data(),
                    contrib.data(), nlo.data(), nhi.data(), kKernelDims);
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * kKernelDims);
}

void
BM_KernelNormalize(benchmark::State &state, const anns::KernelOps *ops)
{
    const KernelBenchData &data = kernelData(anns::ScalarType::kFp32);
    std::vector<float> v = data.query;
    for (auto _ : state) {
        ops->normalize(v.data(), kKernelDims);
        benchmark::DoNotOptimize(v.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * kKernelDims);
}

void
registerKernelBenches()
{
    constexpr anns::ScalarType kTypes[] = {
        anns::ScalarType::kUint8, anns::ScalarType::kInt8,
        anns::ScalarType::kFp16, anns::ScalarType::kFp32};
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
        const anns::KernelOps *ops = anns::kernelsFor(level);
        if (!ops)
            continue;
        const std::string tier = simdLevelName(level);
        for (const anns::ScalarType t : kTypes) {
            std::string ty = anns::scalarName(t);
            for (char &c : ty)
                c = static_cast<char>(std::tolower(c));
            benchmark::RegisterBenchmark(
                ("kernel_l2/" + ty + "/" + tier).c_str(),
                BM_KernelRowDist, ops, t, true);
            benchmark::RegisterBenchmark(
                ("kernel_ip/" + ty + "/" + tier).c_str(),
                BM_KernelRowDist, ops, t, false);
            benchmark::RegisterBenchmark(
                ("kernel_l2_batch/" + ty + "/" + tier).c_str(),
                BM_KernelBatchDist, ops, t, true);
            benchmark::RegisterBenchmark(
                ("kernel_ip_batch/" + ty + "/" + tier).c_str(),
                BM_KernelBatchDist, ops, t, false);
        }
        benchmark::RegisterBenchmark(
            ("kernel_bound_l2/" + tier).c_str(), BM_KernelBound, ops,
            true);
        benchmark::RegisterBenchmark(
            ("kernel_bound_ip/" + tier).c_str(), BM_KernelBound, ops,
            false);
        benchmark::RegisterBenchmark(
            ("kernel_normalize/" + tier).c_str(), BM_KernelNormalize,
            ops);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerKernelBenches();
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
