/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels: distance
 * computation, sortable-key codecs, bound accumulation, layout
 * transformation, and per-comparison fetch simulation. These are the
 * loops the whole experiment pipeline spends its host time in.
 */

#include <benchmark/benchmark.h>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/distance.h"
#include "anns/heap.h"
#include "common/prng.h"
#include "et/bounds.h"
#include "et/fetchsim.h"
#include "et/layout.h"
#include "et/profile.h"

namespace {

using namespace ansmet;

const anns::Dataset &
deep()
{
    static const anns::Dataset ds =
        anns::makeDataset(anns::DatasetId::kDeep, 2000, 8, 1);
    return ds;
}

const et::EtProfile &
deepProfile()
{
    static const et::EtProfile prof = [] {
        et::ProfileConfig cfg;
        cfg.numSamples = 50;
        cfg.maxPairs = 500;
        return et::buildProfile(*deep().base, deep().metric(), cfg);
    }();
    return prof;
}

void
BM_DistanceL2(benchmark::State &state)
{
    const auto &ds = deep();
    const auto &q = ds.queries[0];
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            anns::l2Sq(q.data(), *ds.base, v));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
    state.SetItemsProcessed(state.iterations() * ds.base->dims());
}
BENCHMARK(BM_DistanceL2);

void
BM_DistanceIp(benchmark::State &state)
{
    const auto &ds = deep();
    const auto &q = ds.queries[0];
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(anns::negIp(q.data(), *ds.base, v));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
    state.SetItemsProcessed(state.iterations() * ds.base->dims());
}
BENCHMARK(BM_DistanceIp);

void
BM_SortableKeyRoundTrip(benchmark::State &state)
{
    Prng rng(1);
    std::uint32_t x = static_cast<std::uint32_t>(rng.next());
    for (auto _ : state) {
        x = et::fromKey(anns::ScalarType::kFp32,
                        et::toKey(anns::ScalarType::kFp32, x) + 1);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_SortableKeyRoundTrip);

void
BM_BoundAccumulatorSweep(benchmark::State &state)
{
    const auto &ds = deep();
    const auto &vs = *ds.base;
    const auto &q = ds.queries[0];
    const unsigned w = et::keyBits(vs.type());
    const auto len = static_cast<unsigned>(state.range(0));

    for (auto _ : state) {
        et::BoundAccumulator acc(ds.metric(), q.data(), vs.dims(),
                                 deepProfile().globalRange);
        for (unsigned d = 0; d < vs.dims(); ++d) {
            const std::uint32_t key = et::toKey(vs.type(), vs.bitsAt(0, d));
            acc.update(d, et::intervalFromPrefix(vs.type(),
                                                 key >> (w - len), len));
        }
        benchmark::DoNotOptimize(acc.lowerBound());
    }
    state.SetItemsProcessed(state.iterations() * ds.base->dims());
}
BENCHMARK(BM_BoundAccumulatorSweep)->Arg(4)->Arg(16)->Arg(32);

void
BM_TransformVector(benchmark::State &state)
{
    const auto &ds = deep();
    const auto plan =
        et::FetchPlanSpec::heuristic(ds.base->type(), ds.base->dims());
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(et::transformVector(plan, *ds.base, v));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
}
BENCHMARK(BM_TransformVector);

void
BM_FetchSimulate(benchmark::State &state)
{
    const auto &ds = deep();
    const auto scheme = static_cast<et::EtScheme>(state.range(0));
    const et::FetchSimulator sim(*ds.base, ds.metric(), scheme,
                                 &deepProfile());
    const auto &q = ds.queries[0];
    const auto gt =
        anns::bruteForceKnn(ds.metric(), q.data(), *ds.base, 10);
    const double threshold = gt.back().dist;
    VectorId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.simulate(q.data(), v, threshold));
        v = (v + 1) % static_cast<VectorId>(ds.base->size());
    }
}
BENCHMARK(BM_FetchSimulate)
    ->Arg(static_cast<int>(et::EtScheme::kNone))
    ->Arg(static_cast<int>(et::EtScheme::kHeuristic))
    ->Arg(static_cast<int>(et::EtScheme::kOpt));

void
BM_ResultSetOffer(benchmark::State &state)
{
    Prng rng(3);
    for (auto _ : state) {
        anns::ResultSet rs(10);
        for (int i = 0; i < 256; ++i)
            rs.offer({rng.uniform(), static_cast<VectorId>(i)});
        benchmark::DoNotOptimize(rs.worst());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ResultSetOffer);

} // namespace

BENCHMARK_MAIN();
