/**
 * @file
 * Macro-benchmark of the task runtime against the retired flat pool.
 *
 * Families, emitted into BENCH_runtime.json by CI
 * (`--benchmark_out=BENCH_runtime.json --benchmark_out_format=json`):
 *
 *  - runtime_chain/<tier>: fan-out/fan-in rounds of tiny tasks spread
 *    across all lanes ("task" = common/runtime/, "flat" = the old
 *    mutex/cv pool preserved in reference_flat_pool.h). Measures raw
 *    submission + dispatch throughput.
 *
 *  - runtime_steal/<tier>: the same rounds with every task homed on
 *    worker 0, so the task runtime serves almost everything through
 *    steals from one channel while the flat pool hammers its one lock
 *    either way. This is the gated pair; CI enforces
 *        python3 tools/bench_diff.py --speedup BENCH_runtime.json \
 *            --min-ratio 1.3 --require runtime_steal/task
 *
 *  - runtime_affinity/{local,hop}/task: informational (no flat
 *    sibling, bench_diff skips unpaired entries). Per-worker pipelines
 *    that repost themselves to the same worker vs. the next one,
 *    isolating the cost of a cross-channel hop.
 *
 * Both engines are built with the same lane count and use the same
 * atomic-counter completion protocol, so the measured delta is the
 * dispatch machinery, not the harness.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <cstdint>
#include <memory>
#include <utility>

#include "bench/reference_flat_pool.h"
#include "common/runtime/core_set.h"
#include "common/runtime/runtime.h"

namespace {

using namespace ansmet;

/** Lanes for both engines: the configured count, clamped so the bench
 *  is meaningful on one core (workers must exist) and does not drown a
 *  big CI runner in oversubscription noise. */
unsigned
benchLanes()
{
    const unsigned cfg = runtime::CoreSet::configuredLanes();
    return cfg < 2 ? 2 : (cfg > 8 ? 8 : cfg);
}

constexpr unsigned kTasksPerRound = 256;
constexpr unsigned kHopsPerPipe = 256;

/** Per-task payload: a few xorshift rounds, small enough that dispatch
 *  overhead dominates the measurement. */
inline std::uint64_t
spinWork(std::uint64_t x)
{
    for (unsigned i = 0; i < 64; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    return x | 1;
}

/** Completion-wait poll used identically by both tiers: brief pause
 *  spin, then yield so an oversubscribed host (one-core CI shard) can
 *  schedule the workers the waiter is waiting on. */
struct Waiter
{
    unsigned spins = 0;

    void
    poll()
    {
        if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
            __builtin_ia32_pause();
#endif
            return;
        }
        spins = 0;
        std::this_thread::yield();
    }
};

struct FlatEngine
{
    explicit FlatEngine(unsigned lanes) : pool(lanes) {}

    template <typename Fn>
    void
    post(unsigned, Fn fn)
    {
        pool.post(std::move(fn)); // no affinity concept: one shared queue
    }

    bench::FlatPool pool;
};

struct TaskEngine
{
    explicit TaskEngine(unsigned lanes)
        : rt(runtime::RuntimeConfig{runtime::CoreSet::identity(lanes)})
    {
    }

    template <typename Fn>
    void
    post(unsigned affinity, Fn fn)
    {
        rt.post(runtime::Task{runtime::Task::Fn{std::move(fn)}, affinity});
    }

    runtime::Runtime rt;
};

/** Continuations each task spawns from inside its worker, so workers
 *  are producers too — the multi-producer traffic where the flat
 *  pool's single lock actually contends. */
constexpr unsigned kChainDepth = 3;

struct RoundCounters
{
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> sink{0};
};

/** Run one payload, count it, and repost the continuation (same
 *  affinity) until the chain is spent. */
template <class Engine>
void
chainTask(Engine &eng, RoundCounters &c, unsigned affinity, unsigned t,
          unsigned depth)
{
    eng.post(affinity, [&eng, &c, affinity, t, depth] {
        c.sink.fetch_add(spinWork(0x9E3779B97F4A7C15ull + t + depth),
                         std::memory_order_relaxed);
        if (depth > 0)
            chainTask(eng, c, affinity, t, depth - 1);
        c.done.fetch_add(1, std::memory_order_release);
    });
}

/**
 * Fan-out/fan-in rounds of continuation chains. @p steal_heavy homes
 * every chain on worker 0 (ignored by FlatEngine); otherwise chains
 * round-robin across lanes.
 */
template <class Engine>
void
BM_Rounds(benchmark::State &state, bool steal_heavy)
{
    Engine eng(benchLanes());
    RoundCounters c;
    constexpr std::uint64_t kPerRound =
        std::uint64_t{kTasksPerRound} * (kChainDepth + 1);
    std::uint64_t items = 0;
    for (auto _ : state) {
        const std::uint64_t target =
            c.done.load(std::memory_order_relaxed) + kPerRound;
        for (unsigned t = 0; t < kTasksPerRound; ++t)
            chainTask(eng, c, steal_heavy ? 0 : t, t, kChainDepth);
        Waiter w;
        while (c.done.load(std::memory_order_acquire) < target)
            w.poll();
        items += kPerRound;
    }
    benchmark::DoNotOptimize(c.sink.load(std::memory_order_relaxed));
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}

// --------------------------------------------------------------------
// Affinity pipelines (task runtime only).
// --------------------------------------------------------------------

struct PipeCtx
{
    std::atomic<std::uint64_t> finished{0};
    std::atomic<std::uint64_t> sink{0};
};

/** One pipeline hop: do the payload, repost to the next worker (the
 *  same one for "local", the ring neighbour for "hop"). Reposting from
 *  inside a worker enqueues on the target channel — exactly the
 *  cross-channel traffic this family isolates. */
void
hopTask(runtime::Runtime &rt, const std::shared_ptr<PipeCtx> &ctx,
        unsigned worker, unsigned stride, unsigned remaining)
{
    ctx->sink.fetch_add(spinWork(worker * 0x9E3779B9u + remaining),
                        std::memory_order_relaxed);
    if (remaining == 0) {
        ctx->finished.fetch_add(1, std::memory_order_release);
        return;
    }
    const unsigned next = (worker + stride) % rt.numWorkers();
    rt.post(runtime::Task{
        runtime::Task::Fn{[&rt, ctx, next, stride, remaining] {
            hopTask(rt, ctx, next, stride, remaining - 1);
        }},
        next});
}

void
BM_Affinity(benchmark::State &state, unsigned stride)
{
    TaskEngine eng(benchLanes());
    const unsigned pipes = eng.rt.numWorkers();
    std::uint64_t items = 0;
    for (auto _ : state) {
        auto ctx = std::make_shared<PipeCtx>();
        for (unsigned w = 0; w < pipes; ++w)
            eng.post(w, [&rt = eng.rt, ctx, w, stride] {
                hopTask(rt, ctx, w, stride, kHopsPerPipe);
            });
        Waiter waiter;
        while (ctx->finished.load(std::memory_order_acquire) < pipes)
            waiter.poll();
        items += static_cast<std::uint64_t>(pipes) * kHopsPerPipe;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::RegisterBenchmark(
        "runtime_chain/flat",
        [](benchmark::State &st) { BM_Rounds<FlatEngine>(st, false); });
    benchmark::RegisterBenchmark(
        "runtime_chain/task",
        [](benchmark::State &st) { BM_Rounds<TaskEngine>(st, false); });
    benchmark::RegisterBenchmark(
        "runtime_steal/flat",
        [](benchmark::State &st) { BM_Rounds<FlatEngine>(st, true); });
    benchmark::RegisterBenchmark(
        "runtime_steal/task",
        [](benchmark::State &st) { BM_Rounds<TaskEngine>(st, true); });
    benchmark::RegisterBenchmark(
        "runtime_affinity/local/task",
        [](benchmark::State &st) { BM_Affinity(st, 0); });
    benchmark::RegisterBenchmark(
        "runtime_affinity/hop/task",
        [](benchmark::State &st) { BM_Affinity(st, 1); });
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
