/**
 * @file
 * Figure 6: performance of all nine designs across the seven datasets
 * at k = 1, 5, 10, normalized to CPU-Base.
 *
 * Shapes to reproduce: NDP-Base ~5x over CPU-Base (theoretical 8x
 * bandwidth); NDP-DimET ineffective on IP datasets (GloVe, Txt2Img);
 * NDP-BitET competitive only at high dimensionality (GIST); the full
 * NDP-ETOpt adds ~1.5x over NDP-Base with the largest win on GIST.
 */

#include "bench_util.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Figure 6: speedups of all designs (normalized to CPU-Base)",
           "Section 7.1, Figure 6");

    const auto designs = core::allDesigns();
    std::map<int, std::map<int, double>> geomean_acc; // k -> design -> sum log
    std::map<int, int> geomean_n;

    for (const std::size_t k : {std::size_t{1}, std::size_t{5},
                                std::size_t{10}}) {
        std::printf("--- k = %zu ---\n", k);
        std::vector<std::string> header = {"Dataset"};
        for (const auto d : designs)
            header.push_back(core::designName(d));
        TextTable table(header);

        for (const auto id : anns::allDatasets()) {
            const auto &ctx = context(id, k);
            table.row().cell(anns::datasetSpec(id).name);
            double base_qps = 0.0;
            for (const auto d : designs) {
                const auto rs = ctx.runDesign(d);
                const double qps = rs.qps();
                if (d == core::Design::kCpuBase)
                    base_qps = qps;
                const double speedup = qps / base_qps;
                table.cell(speedup, 2);
                geomean_acc[static_cast<int>(k)][static_cast<int>(d)] +=
                    std::log(speedup);
            }
            ++geomean_n[static_cast<int>(k)];
        }
        // Geomean row.
        table.row().cell("Geomean");
        for (const auto d : designs) {
            table.cell(std::exp(
                           geomean_acc[static_cast<int>(k)]
                                      [static_cast<int>(d)] /
                           geomean_n[static_cast<int>(k)]),
                       2);
        }
        table.print();
        std::printf("\n");
    }

    std::printf(
        "Paper shape check (k=10): NDP-Base >> CPU-Base; NDP-DimET ~=\n"
        "NDP-Base on GloVe/Txt2Img (IP metric defeats partial-dimension\n"
        "bounds); NDP-BitET strongest on GIST, weak on SIFT; NDP-ETOpt\n"
        "is the best design overall.\n");
    return 0;
}
