/**
 * @file
 * Figure 7: system energy of CPU-Base, CPU-ETOpt, NDP-Base, NDP-DimET,
 * NDP-BitET, and NDP-ETOpt across the datasets, normalized to
 * CPU-Base.
 *
 * Shapes to reproduce: NDP-Base cuts system energy sharply vs CPU-Base
 * (paper: -77.8%); early termination trims memory energy further.
 */

#include "bench_util.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Figure 7: normalized system energy", "Section 7.1, Figure 7");

    const std::vector<core::Design> designs = {
        core::Design::kCpuBase,  core::Design::kCpuEtOpt,
        core::Design::kNdpBase,  core::Design::kNdpDimEt,
        core::Design::kNdpBitEt, core::Design::kNdpEtOpt,
    };

    std::vector<std::string> header = {"Dataset"};
    for (const auto d : designs)
        header.push_back(core::designName(d));
    TextTable table(header);

    std::map<int, double> logsum;
    int n = 0;
    for (const auto id : anns::allDatasets()) {
        const auto &ctx = context(id);
        table.row().cell(anns::datasetSpec(id).name);
        double base = 0.0;
        for (const auto d : designs) {
            const auto rs = ctx.runDesign(d);
            const double e = rs.energy.totalNj();
            if (d == core::Design::kCpuBase)
                base = e;
            table.cell(e / base, 3);
            logsum[static_cast<int>(d)] += std::log(e / base);
        }
        ++n;
    }
    table.row().cell("Geomean");
    for (const auto d : designs)
        table.cell(std::exp(logsum[static_cast<int>(d)] / n), 3);
    table.print();

    // Component view for one dataset, to show where the savings come
    // from (core power vs DRAM I/O vs array energy).
    const auto &ctx = context(anns::DatasetId::kDeep);
    std::printf("\nDEEP energy components (nJ):\n");
    TextTable comp({"Design", "ACT/PRE", "RD/WR core", "channel I/O",
                    "refresh", "static+compute", "total"});
    for (const auto d : designs) {
        const auto rs = ctx.runDesign(d);
        const auto &e = rs.energy;
        comp.row()
            .cell(core::designName(d))
            .cell(e.actPreNj, 0)
            .cell(e.rdWrCoreNj, 0)
            .cell(e.ioNj, 0)
            .cell(e.refreshNj, 0)
            .cell(e.backgroundNj, 0)
            .cell(e.totalNj(), 0);
    }
    comp.print();

    std::printf("\nPaper shape check: NDP designs use far less system\n"
                "energy than CPU-Base (paper: -77.8%% for NDP-Base), and\n"
                "ET variants reduce memory energy further.\n");
    return 0;
}
