/**
 * @file
 * Shared helpers for the experiment binaries in bench/.
 *
 * Each binary regenerates one table or figure of the paper. Scale
 * knobs (vector counts, query counts) default to values that finish
 * in minutes on one machine; set ANSMET_SCALE=large for a longer,
 * higher-fidelity run or ANSMET_SCALE=quick for smoke tests.
 */

#ifndef ANSMET_BENCH_BENCH_UTIL_H
#define ANSMET_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/table.h"
#include "common/runtime/core_set.h"
#include "core/experiment.h"
#include "obs/trace.h"

namespace ansmet::bench {

/** Workload scale selected via the ANSMET_SCALE environment variable. */
enum class Scale { kQuick, kDefault, kLarge };

inline Scale
scale()
{
    const char *env = std::getenv("ANSMET_SCALE");
    if (!env)
        return Scale::kDefault;
    const std::string s = env;
    if (s == "quick")
        return Scale::kQuick;
    if (s == "large")
        return Scale::kLarge;
    return Scale::kDefault;
}

/**
 * ANSMET_QUIET=1 silences progress chatter and the end-of-run timing
 * line, leaving only the reproduced table/figure on stdout — what the
 * CI output-comparison jobs diff.
 */
inline bool
quiet()
{
    const char *env = std::getenv("ANSMET_QUIET");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Standard experiment configuration for a dataset at the bench scale. */
inline core::ExperimentConfig
experimentConfig(anns::DatasetId id, std::size_t k = 10)
{
    core::ExperimentConfig cfg;
    cfg.dataset = id;
    cfg.k = k;
    switch (scale()) {
      case Scale::kQuick:
        cfg.numVectors = 2000;
        cfg.numQueries = 16;
        cfg.hnsw.efConstruction = 60;
        break;
      case Scale::kDefault:
        cfg.numVectors = id == anns::DatasetId::kGist ? 3000 : 6000;
        cfg.numQueries = 32;
        cfg.hnsw.efConstruction = 100;
        cfg.profile.maxPairs = 1500;
        break;
      case Scale::kLarge:
        cfg.numVectors = 0; // dataset default (20k / 8k GIST)
        cfg.numQueries = 100;
        cfg.hnsw.efConstruction = 200;
        break;
    }
    return cfg;
}

/**
 * Process-wide cache of experiment contexts so one binary can touch
 * the same dataset at several k values without rebuilding.
 */
inline const core::ExperimentContext &
context(anns::DatasetId id, std::size_t k = 10)
{
    static std::map<std::pair<int, std::size_t>,
                    std::unique_ptr<core::ExperimentContext>>
        cache;
    const auto key = std::make_pair(static_cast<int>(id), k);
    auto it = cache.find(key);
    if (it == cache.end()) {
        if (!quiet())
            std::fprintf(stderr, "[bench] preparing %s (k=%zu)...\n",
                         anns::datasetSpec(id).name.c_str(), k);
        it = cache
                 .emplace(key, std::make_unique<core::ExperimentContext>(
                                   experimentConfig(id, k)))
                 .first;
    }
    return *it->second;
}

/** Start of the process, for the end-of-run timing line. */
inline std::chrono::steady_clock::time_point &
processStart()
{
    static auto t0 = std::chrono::steady_clock::now();
    return t0;
}

/**
 * Banner identifying the reproduced table/figure. Also arms an atexit
 * hook that reports total wall-clock and the thread-pool width, so
 * every bench binary prints a comparable timing line — the number the
 * ANSMET_THREADS speedup is measured on.
 */
inline void
banner(const char *what, const char *paper_ref)
{
    processStart(); // pin t0 at (or before) first output
    // Arm the trace writer up front (it reads ANSMET_TRACE once and
    // registers its atexit flush), so a run that never reaches an
    // instrumented span still emits a valid trace file with the final
    // metrics snapshot embedded. Goes to stderr: trace output must not
    // perturb the figure text the CI identity diff compares.
    if (obs::TraceWriter::instance().enabled() && !quiet()) {
        std::fprintf(stderr, "[obs] tracing to %s\n",
                     std::getenv("ANSMET_TRACE"));
    }
    std::printf("==========================================================\n");
    std::printf("ANSMET reproduction — %s\n", what);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("==========================================================\n\n");
    static bool armed = false;
    if (!armed && !quiet()) {
        armed = true;
        std::atexit([] {
            const double s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 processStart())
                                 .count();
            std::printf("\n[timing] total wall-clock: %.2f s "
                        "(ANSMET_THREADS=%u)\n",
                        s, runtime::CoreSet::configuredLanes());
        });
    }
}

} // namespace ansmet::bench

#endif // ANSMET_BENCH_BENCH_UTIL_H
