/**
 * @file
 * Figure 10: normalized access latency split into effectual (accepted
 * vectors) and ineffectual (rejected vectors) data fetches, for the
 * six NDP designs across the datasets.
 *
 * Shapes to reproduce: early termination raises fetch utilization
 * (paper: 6.0% -> 9.0% -> 11.1% from NDP-Base to NDP-ET to NDP-ETOpt),
 * yet substantial ineffectual fetches remain because thresholds are
 * loose early in each query.
 */

#include "bench_util.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Figure 10: effectual vs ineffectual access latency",
           "Section 7.2, Figure 10");

    const std::vector<core::Design> designs = {
        core::Design::kNdpBase,  core::Design::kNdpDimEt,
        core::Design::kNdpBitEt, core::Design::kNdpEt,
        core::Design::kNdpEtDual, core::Design::kNdpEtOpt,
    };

    std::printf("Per-dataset: total access latency normalized to "
                "NDP-Base, split by fetch kind.\n\n");

    std::map<int, double> util_logsum;
    int n = 0;
    for (const auto id : anns::allDatasets()) {
        const auto &ctx = context(id);
        std::printf("--- %s ---\n", anns::datasetSpec(id).name.c_str());
        TextTable t({"Design", "Effectual", "Ineffectual", "Backup",
                     "Total(norm)", "FetchUtilization"});
        double base_total = 0.0;
        double base_time = 0.0;
        for (const auto d : designs) {
            const auto rs = ctx.runDesign(d);
            const auto tot = rs.totals();
            // All lines take ~the same rank-local service time, so the
            // latency attribution follows the line counts scaled by
            // the measured distance-comparison time.
            const double lines_eff =
                static_cast<double>(tot.linesEffectual);
            const double lines_ineff =
                static_cast<double>(tot.linesIneffectual);
            const double lines_backup =
                static_cast<double>(tot.backupLines);
            const double lines_total =
                lines_eff + lines_ineff + lines_backup;
            const double time = static_cast<double>(tot.distComp.raw());
            if (d == core::Design::kNdpBase) {
                base_total = lines_total;
                base_time = time;
            }
            const double norm = time / base_time;
            const double util = lines_eff / lines_total;
            (void)base_total;
            t.row()
                .cell(core::designName(d))
                .cell(norm * (lines_eff / lines_total), 3)
                .cell(norm * (lines_ineff / lines_total), 3)
                .cell(norm * (lines_backup / lines_total), 3)
                .cell(norm, 3)
                .cellPct(util);
            if (d == core::Design::kNdpEtOpt || d == core::Design::kNdpBase) {
                util_logsum[static_cast<int>(d)] += std::log(util);
            }
        }
        t.print();
        std::printf("\n");
        ++n;
    }

    std::printf("Geomean fetch utilization: NDP-Base %.1f%%, "
                "NDP-ETOpt %.1f%% (paper: 6.0%% -> 11.1%%)\n",
                std::exp(util_logsum[static_cast<int>(
                    core::Design::kNdpBase)] / n) * 100,
                std::exp(util_logsum[static_cast<int>(
                    core::Design::kNdpEtOpt)] / n) * 100);
    return 0;
}
