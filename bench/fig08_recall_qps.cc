/**
 * @file
 * Figure 8: recall@10 vs QPS curves for SIFT and GIST under CPU-Base,
 * NDP-Base, and NDP-ETOpt, sweeping the result-queue size efSearch
 * (k' in the paper).
 *
 * Shapes to reproduce: ANSMET dominates at every accuracy point, and
 * the NDP-ETOpt / NDP-Base gap widens at *lower* recall (smaller k'
 * means tighter thresholds, which make early termination stronger).
 */

#include "bench_util.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Figure 8: recall@10 vs QPS", "Section 7.1, Figure 8");

    const std::vector<core::Design> designs = {
        core::Design::kCpuBase, core::Design::kNdpBase,
        core::Design::kNdpEtOpt};

    for (const auto id : {anns::DatasetId::kSift, anns::DatasetId::kGist}) {
        const auto &ctx = context(id);
        std::printf("--- %s ---\n", anns::datasetSpec(id).name.c_str());
        TextTable t({"efSearch", "recall@10", "CPU-Base QPS",
                     "NDP-Base QPS", "NDP-ETOpt QPS", "ETOpt/Base"});

        for (const std::size_t ef : {10, 20, 40, 80, 160, 320}) {
            const auto [traces, recall] = ctx.traceWithEf(ef);
            t.row().cell(std::uint64_t{ef}).cell(recall, 3);
            double base_qps = 0.0, ndp_qps = 0.0;
            for (const auto d : designs) {
                core::SystemConfig cfg = ctx.systemConfig(d);
                core::SystemModel model(cfg, *ctx.dataset().base,
                                        ctx.dataset().metric(),
                                        &ctx.profile(), ctx.hotVectors());
                const double qps = model.run(traces).qps();
                t.cell(qps, 0);
                if (d == core::Design::kNdpBase)
                    base_qps = qps;
                if (d == core::Design::kNdpEtOpt)
                    ndp_qps = qps;
            }
            t.cell(base_qps > 0 ? ndp_qps / base_qps : 0.0, 2);
        }
        t.print();
        std::printf("\n");
    }

    std::printf("Paper shape check: NDP-ETOpt > NDP-Base > CPU-Base at\n"
                "every recall point; the ETOpt advantage grows toward the\n"
                "low-recall (small k') end.\n");
    return 0;
}
