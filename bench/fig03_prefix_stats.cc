/**
 * @file
 * Figure 3: prefix entropy and early-termination frequency per prefix
 * bit length, for GIST, DEEP, BIGANN, and SPACEV.
 *
 * Shape to reproduce: a low-entropy head (common prefixes), a
 * high-termination middle band, and a tail of low-impact bits.
 */

#include "bench_util.h"
#include "et/profile.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Figure 3: prefix entropy & ET frequency vs prefix length",
           "Section 4.2, Figure 3");

    for (const auto id :
         {anns::DatasetId::kGist, anns::DatasetId::kDeep,
          anns::DatasetId::kBigann, anns::DatasetId::kSpacev}) {
        const auto &ctx = context(id);
        const auto &prof = ctx.profile();
        const unsigned w = et::keyBits(prof.type);

        std::printf("--- %s (%s, %u-bit keys) ---\n",
                    anns::datasetSpec(id).name.c_str(),
                    anns::scalarName(prof.type), w);
        TextTable t({"PrefixLen", "Entropy(bits)", "ETFrequency",
                     "Zone"});
        double max_h = 1e-9;
        for (const double h : prof.prefixEntropy)
            max_h = std::max(max_h, h);
        for (unsigned l = 1; l <= w; ++l) {
            const double h = prof.prefixEntropy[l - 1];
            const double f = prof.etFrequency[l - 1];
            const char *zone = h < 0.15 * max_h
                                   ? "low-entropy"
                                   : (f > 0.01 ? "high-termination"
                                               : "tail");
            t.row()
                .cell(std::uint64_t{l})
                .cell(h, 3)
                .cell(f, 4)
                .cell(zone);
        }
        t.print();

        // Where does the termination mass sit?
        double head = 0.0, mid = 0.0, tail = 0.0;
        for (unsigned l = 1; l <= w; ++l) {
            const double f = prof.etFrequency[l - 1];
            if (l <= w / 4)
                head += f;
            else if (l <= 3 * w / 4)
                mid += f;
            else
                tail += f;
        }
        std::printf("termination mass: head %.1f%%  middle %.1f%%  "
                    "tail %.1f%%  (paper: concentrated in the middle)\n\n",
                    head * 100, mid * 100, tail * 100);
    }
    return 0;
}
