/**
 * @file
 * Figure 9: per-query latency breakdown (index traversal, task
 * offloading, distance comparison, result collection) for CPU-Base,
 * NDP-Base, and NDP-ETOpt with conventional vs adaptive polling, on
 * SIFT. Normalized to NDP-Base.
 *
 * Shapes to reproduce: NDP-Base cuts total latency sharply vs
 * CPU-Base (paper: -72.8%); ET shrinks the distance-comparison
 * segment; adaptive polling reduces the collection overhead
 * (paper: -62% of the polling cost) toward the ideal zero-cost bound.
 */

#include "bench_util.h"
#include "ndp/polling.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Figure 9: latency breakdown with polling policies",
           "Section 7.2, Figure 9");

    const auto &ctx = context(anns::DatasetId::kSift);

    struct Config
    {
        const char *name;
        core::Design design;
        ndp::PollingMode polling;
    };
    const Config configs[] = {
        {"CPU-Base", core::Design::kCpuBase, ndp::PollingMode::kAdaptive},
        {"NDP-Base", core::Design::kNdpBase, ndp::PollingMode::kAdaptive},
        {"NDP-ETOpt+ConvPoll", core::Design::kNdpEtOpt,
         ndp::PollingMode::kConventional},
        {"NDP-ETOpt+AdaptPoll", core::Design::kNdpEtOpt,
         ndp::PollingMode::kAdaptive},
        {"NDP-ETOpt+Ideal", core::Design::kNdpEtOpt,
         ndp::PollingMode::kIdeal},
    };

    struct Row
    {
        const char *name;
        core::QueryStats tot;
        double queries;
    };
    std::vector<Row> rows;
    double ndp_base_latency = 1.0;
    for (const auto &c : configs) {
        core::SystemConfig cfg = ctx.systemConfig(c.design);
        cfg.polling.mode = c.polling;
        const auto rs = ctx.runDesign(cfg);
        rows.push_back(
            {c.name, rs.totals(),
             static_cast<double>(rs.queries.size())});
        if (std::string(c.name) == "NDP-Base") {
            const auto &t = rows.back().tot;
            ndp_base_latency = static_cast<double>(
                (t.traversal + t.offload + t.distComp + t.collect)
                    .raw());
        }
    }

    TextTable t({"Config", "IndexTraversal", "TaskOffloading",
                 "DistComparison", "ResultCollection", "Total(norm)",
                 "Polls/query"});
    for (const auto &r : rows) {
        const auto &tot = r.tot;
        const double total = static_cast<double>(
            (tot.traversal + tot.offload + tot.distComp + tot.collect)
                .raw());
        t.row()
            .cell(r.name)
            .cell(static_cast<double>(tot.traversal.raw()) /
                      ndp_base_latency,
                  3)
            .cell(static_cast<double>(tot.offload.raw()) /
                      ndp_base_latency,
                  3)
            .cell(static_cast<double>(tot.distComp.raw()) /
                      ndp_base_latency,
                  3)
            .cell(static_cast<double>(tot.collect.raw()) /
                      ndp_base_latency,
                  3)
            .cell(total / ndp_base_latency, 3)
            .cell(tot.polls / r.queries, 1);
    }
    t.print();

    std::printf("\nNote: rows are normalized to the NDP-Base total, so\n"
                "the CPU-Base row shows how much larger the CPU query\n"
                "latency is. Paper shape: adaptive polling cuts the\n"
                "ResultCollection segment vs the fixed 100 ns interval\n"
                "and approaches the ideal (zero collection) bound.\n");
    return 0;
}
