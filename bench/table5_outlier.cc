/**
 * @file
 * Table 5: impact of the allowed outlier fraction in common-prefix
 * elimination, on SPACEV at k = 10.
 *
 * For each fraction we report (a) with backup re-check (the lossless
 * default): speedup over the no-elimination design (NDP-ET+Dual),
 * space saved, extra backup space, extra backup accesses; and (b) the
 * accuracy loss if the backup copies are dropped and the conservative
 * recovered values are used as final distances.
 *
 * Shapes to reproduce: a small outlier budget (0.1%) lengthens the
 * prefix and improves both space and speed; an aggressive budget
 * (20%) backfires through backup traffic, and dropping the backups
 * at that point costs a lot of recall.
 */

#include "anns/bruteforce.h"
#include "bench_util.h"
#include "et/fetchsim.h"

namespace {

using namespace ansmet;

/**
 * Recall@10 when outlier vectors' distances are the conservative
 * recovered estimates (no backup re-check) — the Table 5(b) number.
 */
double
lossyRecall(const core::ExperimentContext &ctx, const et::EtProfile &prof)
{
    const auto &ds = ctx.dataset();
    const auto &vs = *ds.base;
    const et::FetchSimulator sim(vs, ds.metric(), et::EtScheme::kOpt,
                                 &prof);
    const auto &gt = ctx.groundTruth();

    double total = 0.0;
    for (std::size_t q = 0; q < ds.queries.size(); ++q) {
        anns::ResultSet rs(10);
        for (VectorId v = 0; v < static_cast<VectorId>(vs.size()); ++v) {
            const auto r = sim.simulate(
                ds.queries[q].data(), v,
                std::numeric_limits<double>::infinity());
            // Outlier vectors keep only their estimate; normal vectors
            // reconstruct exactly.
            rs.offer({r.estimate, v});
        }
        total += anns::recallAtK(rs.topIds(10), gt[q], 10);
    }
    return total / static_cast<double>(ds.queries.size());
}

} // namespace

int
main()
{
    using namespace ansmet::bench;

    banner("Table 5: outlier-aware common prefix elimination (SPACEV)",
           "Section 7.3, Table 5");

    const auto &ctx = context(anns::DatasetId::kSpacev);
    const auto &ds = ctx.dataset();

    // Baseline: dual-granularity without prefix elimination.
    const double base_qps =
        ctx.runDesign(core::Design::kNdpEtDual).qps();
    const double exact_recall = ctx.recall();

    ansmet::TextTable t({"Outlier%", "PrefixBits", "Speedup(a)",
                         "SavedSpace(a)", "ExtraSpace(a)",
                         "ExtraAccesses(a)", "AccLoss(b)"});

    for (const double frac : {0.0, 0.0001, 0.001, 0.01, 0.20}) {
        et::ProfileConfig pcfg = ctx.config().profile;
        pcfg.outlierFrac = frac;
        const auto prof =
            et::buildProfile(*ds.base, ds.metric(), pcfg);

        core::SystemConfig cfg = ctx.systemConfig(core::Design::kNdpEtOpt);
        core::SystemModel model(cfg, *ds.base, ds.metric(), &prof,
                                ctx.hotVectors());
        const auto rs = model.run(ctx.traces());
        const auto tot = rs.totals();

        const et::PrefixElimination pe(prof.commonPrefix, *ds.base);
        const double total_lines = static_cast<double>(
            tot.linesEffectual + tot.linesIneffectual);
        const double extra_acc =
            total_lines > 0
                ? static_cast<double>(tot.backupLines) / total_lines
                : 0.0;

        const double lossy = lossyRecall(ctx, prof);
        const double acc_loss =
            exact_recall > 0 ? (exact_recall - lossy) / exact_recall : 0.0;

        t.row()
            .cellPct(frac, 2)
            .cell(std::uint64_t{prof.commonPrefix.length})
            .cellPct(rs.qps() / base_qps - 1.0)
            .cellPct(pe.spaceSavedFraction())
            .cellPct(pe.extraSpaceFraction())
            .cellPct(extra_acc)
            .cellPct(acc_loss);
    }
    t.print();

    std::printf("\nPaper shape check: a ~0.1%% budget lengthens the prefix\n"
                "for more savings at negligible backup overhead; a 20%%\n"
                "budget floods the run with backup accesses, and without\n"
                "backups its accuracy collapses (paper: -34.7%% at 0.1%%\n"
                "no-backup, -76.5%% at 20%%).\n");
    return 0;
}
