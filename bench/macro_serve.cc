/**
 * @file
 * Open-loop serving sweep: offered load vs achieved QPS and per-phase
 * tail latency (p50/p99/p999) for the NDP-ETOpt design.
 *
 * Unlike the figure binaries (closed-loop batch replay, makespan-
 * centric), this measures the repo as a serving system: Poisson or
 * bursty arrivals with Zipf-skewed popularity feed the bounded
 * admission queue, and the table reports where the tail goes as the
 * offered load crosses saturation.
 *
 * Every reported number is a simulated quantity — a pure function of
 * (dataset seed, ANSMET_SEED, scale) — so CI can gate on an absolute
 * p99 bound with a margin instead of a noisy wall-clock measurement:
 *
 *     ./bench/macro_serve --out BENCH_serve.json
 *     tools/bench_diff.py --tail BENCH_serve.json \
 *         --gate 'total.p99<=60us'
 *
 * ANSMET_SEED selects the arrival schedule (default 1);
 * ANSMET_SERVE_PROCESS=bursty switches the arrival process.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/system.h"
#include "serve/engine.h"

namespace {

using namespace ansmet;

std::uint64_t
envSeed()
{
    const char *s = std::getenv("ANSMET_SEED");
    return s ? std::strtoull(s, nullptr, 10) : 1;
}

serve::ArrivalProcess
envProcess()
{
    const char *s = std::getenv("ANSMET_SERVE_PROCESS");
    return s && std::strcmp(s, "bursty") == 0
               ? serve::ArrivalProcess::kBursty
               : serve::ArrivalProcess::kPoisson;
}

struct SweepPoint
{
    double offeredQps;
    serve::ServeReport report;
};

void
appendPhaseJson(std::string &out, const serve::LatencyRecorder &lat,
                serve::Phase ph)
{
    const serve::PhaseSummary s = lat.summary(ph);
    out += "\"";
    out += serve::phaseName(ph);
    out += "\": {\"count\": " + std::to_string(s.count);
    out += ", \"p50_ps\": " + std::to_string(s.p50);
    out += ", \"p99_ps\": " + std::to_string(s.p99);
    out += ", \"p999_ps\": " + std::to_string(s.p999);
    out += ", \"max_ps\": " + std::to_string(s.max);
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.1f", s.mean);
    out += ", \"mean_ps\": ";
    out += mean;
    out += "}";
}

std::string
sweepJson(const std::vector<SweepPoint> &sweep, std::uint64_t seed,
          serve::ArrivalProcess process)
{
    std::string out = "{\n  \"schema\": \"ansmet-serve-v1\",\n";
    out += "  \"design\": \"NDP-ETOpt\",\n  \"dataset\": \"sift\",\n";
    out += "  \"seed\": " + std::to_string(seed) + ",\n";
    out += std::string("  \"process\": \"") +
           serve::arrivalProcessName(process) + "\",\n";
    out += "  \"sweep\": [";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &p = sweep[i];
        const auto &r = p.report;
        out += i ? ",\n    {" : "\n    {";
        char qps[64];
        std::snprintf(qps, sizeof qps,
                      "\"offered_qps\": %.1f, \"achieved_qps\": %.1f",
                      p.offeredQps, r.achievedQps());
        out += qps;
        out += ", \"offered\": " + std::to_string(r.offered);
        out += ", \"completed\": " + std::to_string(r.completed);
        out += ", \"dropped\": " + std::to_string(r.dropped);
        out += ", \"max_occupied_qshrs\": " +
               std::to_string(r.maxOccupiedQshrs);
        out += ", \"phases\": {";
        for (unsigned ph = 0; ph < serve::kNumPhases; ++ph) {
            if (ph)
                out += ", ";
            appendPhaseJson(out, r.latency,
                            static_cast<serve::Phase>(ph));
        }
        out += "}}";
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out BENCH_serve.json]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("online serving: offered-load sweep, tail latency",
                  "serving extension (DRIM-ANN-style SLO evaluation; "
                  "not a paper figure)");

    const core::ExperimentContext &ctx =
        bench::context(anns::DatasetId::kSift);
    const std::uint64_t seed = envSeed();
    const serve::ArrivalProcess process = envProcess();

    // Offered loads as multiples of the closed-loop batch throughput,
    // so the sweep brackets saturation at every ANSMET_SCALE: below
    // the knee, near it, and past it (queue pressure + drops).
    const core::RunStats batch =
        ctx.runDesign(core::Design::kNdpEtOpt);
    const double capacity = batch.qps();
    const double multipliers[] = {0.25, 0.5, 1.0, 2.0};
    const std::uint64_t num_queries =
        bench::scale() == bench::Scale::kQuick ? 96
        : bench::scale() == bench::Scale::kLarge ? 512
                                                 : 192;

    std::vector<SweepPoint> sweep;
    for (const double m : multipliers) {
        serve::ServeConfig cfg;
        cfg.load.offeredQps = capacity * m;
        cfg.load.numQueries = num_queries;
        cfg.load.process = process;
        cfg.load.zipfAlpha = 1.2;
        cfg.load.seed = seed;
        cfg.queueCapacity = 64;

        core::SystemModel model(
            ctx.systemConfig(core::Design::kNdpEtOpt),
            *ctx.dataset().base, ctx.dataset().metric(), &ctx.profile(),
            ctx.hotVectors());
        sweep.push_back({cfg.load.offeredQps,
                         serve::serve(model, ctx.traces(), cfg)});
    }

    std::printf("arrivals: %s, zipf alpha 1.2, seed %llu, %llu queries "
                "per point\nbatch capacity reference: %.0f qps\n\n",
                serve::arrivalProcessName(process),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(num_queries), capacity);

    TextTable table({"offered qps", "achieved qps", "done", "drop",
                     "queue p99 (us)", "total p50 (us)", "total p99 (us)",
                     "total p999 (us)"});
    for (const auto &p : sweep) {
        const auto total = p.report.latency.summary(serve::Phase::kTotal);
        const auto qw =
            p.report.latency.summary(serve::Phase::kQueueWait);
        table.row()
            .cell(p.offeredQps, 0)
            .cell(p.report.achievedQps(), 0)
            .cell(p.report.completed)
            .cell(p.report.dropped)
            .cell(static_cast<double>(qw.p99) * 1e-6, 1)
            .cell(static_cast<double>(total.p50) * 1e-6, 1)
            .cell(static_cast<double>(total.p99) * 1e-6, 1)
            .cell(static_cast<double>(total.p999) * 1e-6, 1);
    }
    table.print();

    std::printf("\nper-phase p99 at the highest load (us):\n");
    TextTable phases({"phase", "p50", "p99", "p999", "mean"});
    for (unsigned ph = 0; ph < serve::kNumPhases; ++ph) {
        const auto s = sweep.back().report.latency.summary(
            static_cast<serve::Phase>(ph));
        phases.row()
            .cell(serve::phaseName(static_cast<serve::Phase>(ph)))
            .cell(static_cast<double>(s.p50) * 1e-6, 1)
            .cell(static_cast<double>(s.p99) * 1e-6, 1)
            .cell(static_cast<double>(s.p999) * 1e-6, 1)
            .cell(s.mean * 1e-6, 1);
    }
    phases.print();

    if (out_path != nullptr) {
        std::FILE *f = std::fopen(out_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", out_path);
            return 2;
        }
        const std::string json = sweepJson(sweep, seed, process);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        if (!bench::quiet())
            std::fprintf(stderr, "[bench] wrote %s\n", out_path);
    }
    return 0;
}
