/**
 * @file
 * The retired flat thread pool, preserved verbatim (minus parallelFor)
 * as the baseline the runtime macrobenchmarks compare against — the
 * same role sim/reference_queue.h plays for the event queue.
 *
 * One mutex + condition variable guard a single shared task vector;
 * every submission and every pop serializes on that lock, which is
 * exactly the contention the per-worker MPSC channels remove. Do not
 * use outside bench/: production code goes through common/runtime/.
 */

#ifndef ANSMET_BENCH_REFERENCE_FLAT_POOL_H
#define ANSMET_BENCH_REFERENCE_FLAT_POOL_H

#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sync.h"

namespace ansmet::bench {

class FlatPool
{
  public:
    /** @param threads total lanes including the caller (>= 1), the
     *  same sizing convention the runtime uses. */
    explicit FlatPool(unsigned threads)
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads - 1);
        for (unsigned t = 0; t + 1 < threads; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~FlatPool()
    {
        {
            MutexLock lk(mu_);
            stop_ = true;
        }
        cv_.notifyAll();
        for (auto &w : workers_)
            w.join();
    }

    FlatPool(const FlatPool &) = delete;
    FlatPool &operator=(const FlatPool &) = delete;

    unsigned
    size() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /** Queue one task (runs inline when there are no workers). */
    void
    post(std::function<void()> task)
    {
        if (workers_.empty()) {
            task();
            return;
        }
        {
            MutexLock lk(mu_);
            ANSMET_CHECK(!stop_, "post on a stopped flat pool");
            tasks_.push_back(std::move(task));
        }
        cv_.notifyOne();
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                MutexLock lk(mu_);
                while (!stop_ && tasks_.empty())
                    cv_.wait(mu_);
                if (stop_ && tasks_.empty())
                    return;
                task = std::move(tasks_.back());
                tasks_.pop_back();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::vector<std::function<void()>> tasks_ ANSMET_GUARDED_BY(mu_);
    Mutex mu_;
    CondVar cv_;
    bool stop_ ANSMET_GUARDED_BY(mu_) = false;
};

} // namespace ansmet::bench

#endif // ANSMET_BENCH_REFERENCE_FLAT_POOL_H
