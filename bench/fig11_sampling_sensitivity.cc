/**
 * @file
 * Figure 11: sensitivity of the sampling-based ET preprocessing to
 * (a) the number of sampled vectors and (b) the distance-threshold
 * percentile, measured as KL divergence of the sampled ET-position
 * distribution against the "true" distribution obtained with real
 * queries on the full dataset. DEEP dataset, as in the paper.
 *
 * Shapes to reproduce: 50-100 samples suffice; the 10% percentile
 * threshold tracks the true distribution best (too small or too large
 * both diverge).
 */

#include "anns/bruteforce.h"
#include "bench_util.h"
#include "et/bounds.h"

namespace {

using namespace ansmet;

/**
 * The "true" ET-position distribution: real queries against the full
 * dataset with the converged kNN threshold (what the online search
 * would actually use).
 */
std::vector<double>
trueDistribution(const core::ExperimentContext &ctx)
{
    const auto &ds = ctx.dataset();
    const auto &vs = *ds.base;
    const unsigned w = et::keyBits(vs.type());
    std::vector<double> freq(w + 1, 0.0);
    std::size_t total = 0;

    Prng rng(123);
    for (const auto &q : ds.queries) {
        const auto gt = anns::bruteForceKnn(ds.metric(), q.data(), vs, 10);
        const double threshold = gt.back().dist;
        for (int i = 0; i < 200; ++i) {
            const auto v = static_cast<VectorId>(rng.below(vs.size()));
            et::BoundAccumulator acc(ds.metric(), q.data(), vs.dims(),
                                     ctx.profile().globalRange);
            unsigned pos = w + 1;
            for (unsigned len = 1; len <= w && pos > w; ++len) {
                for (unsigned d = 0; d < vs.dims(); ++d) {
                    const std::uint32_t key =
                        et::toKey(vs.type(), vs.bitsAt(v, d));
                    acc.update(d, et::intervalFromPrefix(
                                      vs.type(), key >> (w - len), len));
                }
                if (et::boundExceeds(acc.lowerBound(), threshold))
                    pos = len;
            }
            if (pos <= w)
                freq[pos - 1] += 1.0;
            else
                freq[w] += 1.0;
            ++total;
        }
    }
    for (auto &f : freq)
        f /= static_cast<double>(total);
    return freq;
}

std::vector<double>
sampledDistribution(const anns::Dataset &ds, std::size_t samples,
                    double percentile, std::uint64_t seed)
{
    et::ProfileConfig cfg;
    cfg.numSamples = samples;
    cfg.thresholdPercentile = percentile;
    cfg.maxPairs = 3000;
    cfg.seed = seed;
    const auto prof = et::buildProfile(*ds.base, ds.metric(), cfg);
    const unsigned w = et::keyBits(ds.base->type());
    std::vector<double> freq(w + 1, 0.0);
    for (const unsigned p : prof.etPositions)
        freq[std::min(p, w + 1) - 1] += 1.0;
    for (auto &f : freq)
        f /= static_cast<double>(prof.etPositions.size());
    return freq;
}

} // namespace

int
main()
{
    using namespace ansmet::bench;

    banner("Figure 11: sampling parameter sensitivity (KL divergence)",
           "Section 7.3, Figure 11");

    const auto &ctx = context(anns::DatasetId::kDeep);
    const auto truth = trueDistribution(ctx);

    std::printf("(a) number of sampled vectors (threshold fixed at the "
                "10%% percentile):\n");
    ansmet::TextTable ta({"#Samples", "KL divergence"});
    for (const std::size_t s : {5, 10, 50, 100}) {
        const auto dist =
            sampledDistribution(ctx.dataset(), s, 0.10, 7);
        ta.row().cell(std::uint64_t{s}).cell(
            ansmet::et::klDivergence(truth, dist), 3);
    }
    ta.print();

    std::printf("\n(b) threshold percentile (100 samples):\n");
    ansmet::TextTable tb({"Percentile", "KL divergence"});
    for (const double p : {0.02, 0.05, 0.10, 0.20, 0.50}) {
        const auto dist =
            sampledDistribution(ctx.dataset(), 100, p, 7);
        tb.row().cellPct(p, 0).cell(
            ansmet::et::klDivergence(truth, dist), 3);
    }
    tb.print();

    std::printf("\nPaper shape check: divergence falls with more samples\n"
                "(50-100 suffice), and the 10%% threshold percentile is\n"
                "closest to the true distribution.\n");
    return 0;
}
