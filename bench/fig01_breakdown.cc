/**
 * @file
 * Figure 1: CPU execution-time breakdown of IVF and HNSW on SIFT and
 * GIST — Index+Sort vs distance comparison, with the distance
 * comparison split into accepted and rejected vectors.
 *
 * The paper's observation to reproduce: distance comparison dominates,
 * and 50% to >90% of the comparisons are rejected.
 */

#include "anns/ivf.h"
#include "bench_util.h"
#include "core/system.h"
#include "core/trace.h"

namespace {

using namespace ansmet;
using namespace ansmet::bench;

struct Breakdown
{
    double indexSort;
    double accepted;
    double rejected;
};

/** CPU-Base run split by phase, with dist comp attributed by lines. */
Breakdown
hnswBreakdown(const core::ExperimentContext &ctx)
{
    const auto rs = ctx.runDesign(core::Design::kCpuBase);
    const auto t = rs.totals();
    const double dist = static_cast<double>(t.distComp.raw());
    const double lines_total =
        static_cast<double>(t.linesEffectual + t.linesIneffectual);
    const double acc_frac =
        lines_total > 0 ? t.linesEffectual / lines_total : 0.0;
    const double traversal = static_cast<double>(t.traversal.raw());
    const double total = traversal + dist;
    return {traversal / total, dist * acc_frac / total,
            dist * (1.0 - acc_frac) / total};
}

/** IVF breakdown from a functional trace + the same CPU timing model. */
Breakdown
ivfBreakdown(const core::ExperimentContext &ctx)
{
    const auto &ds = ctx.dataset();
    anns::IvfIndex ivf(*ds.base, ds.metric(), anns::IvfParams{});

    // nprobe chosen for ~the paper's >=80% recall operating point.
    const auto &gt = ctx.groundTruth();
    unsigned nprobe = 1;
    for (; nprobe <= ivf.numClusters(); nprobe *= 2) {
        double recall = 0.0;
        for (std::size_t q = 0; q < ds.queries.size(); ++q) {
            recall += anns::recallAtK(
                ivf.search(ds.queries[q].data(), 10, nprobe), gt[q], 10);
        }
        if (recall / static_cast<double>(ds.queries.size()) >= 0.80)
            break;
    }

    std::vector<core::QueryTrace> traces;
    for (const auto &q : ds.queries)
        traces.push_back(core::traceIvfQuery(ivf, q, 10, nprobe));

    core::SystemConfig cfg = ctx.systemConfig(core::Design::kCpuBase);
    core::SystemModel model(cfg, *ds.base, ds.metric(), &ctx.profile());
    const auto rs = model.run(traces);
    const auto t = rs.totals();
    const double dist = static_cast<double>(t.distComp.raw());
    const double lines_total =
        static_cast<double>(t.linesEffectual + t.linesIneffectual);
    const double acc_frac =
        lines_total > 0 ? t.linesEffectual / lines_total : 0.0;
    const double traversal = static_cast<double>(t.traversal.raw());
    const double total = traversal + dist;
    return {traversal / total, dist * acc_frac / total,
            dist * (1.0 - acc_frac) / total};
}

} // namespace

int
main()
{
    banner("Figure 1: performance breakdown of IVF and HNSW",
           "Section 3, Figure 1");

    TextTable table({"Config", "Index+Sort", "Dist.Comp(Accepted)",
                     "Dist.Comp(Rejected)", "RejectedShare"});

    for (const auto id : {anns::DatasetId::kSift, anns::DatasetId::kGist}) {
        const auto &ctx = context(id);
        const auto h = hnswBreakdown(ctx);
        table.row()
            .cell("HNSW-" + anns::datasetSpec(id).name)
            .cellPct(h.indexSort)
            .cellPct(h.accepted)
            .cellPct(h.rejected)
            .cellPct(h.rejected / (h.accepted + h.rejected));
        const auto i = ivfBreakdown(ctx);
        table.row()
            .cell("IVF-" + anns::datasetSpec(id).name)
            .cellPct(i.indexSort)
            .cellPct(i.accepted)
            .cellPct(i.rejected)
            .cellPct(i.rejected / (i.accepted + i.rejected));
    }
    table.print();

    std::printf("\nPaper shape check: distance comparison dominates the\n"
                "execution time, and 50%%-90%%+ of it is spent on rejected\n"
                "vectors.\n");
    return 0;
}
