/**
 * @file
 * Macro-benchmark of the simulator hot path.
 *
 * Two kinds of families, both emitted into BENCH_sim.json by CI
 * (`--benchmark_out=BENCH_sim.json --benchmark_out_format=json`):
 *
 *  - sim_queue/<workload>/<tier>: the same synthetic discrete-event
 *    workload driven through the production calendar queue ("opt",
 *    sim/event_queue.h) and the pre-overhaul heap queue ("ref",
 *    sim/reference_queue.h). tools/bench_diff.py --speedup pairs each
 *    opt entry with its ref sibling; CI gates
 *        python3 tools/bench_diff.py --speedup BENCH_sim.json \
 *            --min-ratio 2.0 --require sim_queue/replay/opt
 *    The delta mixture mimics the DRAM model: mostly short
 *    scheduleIn() hops, a tail of refresh/starvation-scale deltas, and
 *    a sliver beyond EventQueue::kHorizonTicks to exercise the
 *    overflow tier.
 *
 *  - sim_replay/<workload>/opt: an end-to-end fig06-style replay
 *    through the full SystemModel at several N, reporting true
 *    simulator events/sec (items/sec = delta of the sim.events
 *    counter). Informational: it has no ref sibling (the system model
 *    is hard-wired to the production queue), so bench_diff skips it
 *    when computing gated ratios.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.h"
#include "common/types.h"
#include "core/design.h"
#include "core/experiment.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/reference_queue.h"

namespace {

using namespace ansmet;

// --------------------------------------------------------------------
// Synthetic queue workloads (templated over the queue under test).
// --------------------------------------------------------------------

/**
 * DRAM-model-shaped delta mixture (ticks = ps), spending a single
 * Prng draw per event: 7 low bits select the band, the remaining 57
 * scale into it (multiply-shift; keeps the workload's own cost small
 * so the measured time is the queue, not the generator).
 */
TickDelta
drawDelta(std::uint64_t r)
{
    const std::uint64_t sel = r & 127;
    const std::uint64_t mag = r >> 7;
    const auto scale = [mag](std::uint64_t range) {
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(mag) * range) >> 57);
    };
    if (sel < 90)
        return TickDelta{100 + scale(4900)}; // tCK..row-cycle (~70%)
    if (sel < 122)
        return TickDelta{5'000 + scale(95'000)}; // queue/refresh (~25%)
    if (sel < 127)
        return TickDelta{200'000 + scale(1'800'000)}; // starvation scale
    // Past the calendar horizon: lands in the overflow heap.
    return sim::EventQueue::kHorizonTicks +
           TickDelta{1 + scale(20'000'000)};
}

/**
 * N self-rescheduling actors racing through a shared event budget.
 * Actor i draws deltas from its own Prng stream, so the executed
 * schedule is identical for every queue implementation. Callbacks
 * capture 24 bytes ([this, i, salt]) to match the simulator's real
 * event lambdas ([this, idx, when] in the DRAM controller) — beyond
 * libstdc++ std::function's 16-byte inline buffer, within the
 * production queue's 48-byte budget.
 */
template <class Queue>
class ReplayWorkload
{
  public:
    ReplayWorkload(unsigned actors, std::uint64_t events,
                   std::uint64_t seed)
        : events_left_(events)
    {
        rngs_.reserve(actors);
        for (unsigned i = 0; i < actors; ++i)
            rngs_.push_back(Prng::stream(seed, i));
        for (unsigned i = 0; i < actors; ++i)
            reschedule(i);
    }

    std::uint64_t
    run()
    {
        q_.run();
        return executed_ + (checksum_ & 1); // keep the salts live
    }

  private:
    void
    reschedule(unsigned i)
    {
        const std::uint64_t salt = rngs_[i].next();
        q_.scheduleIn(drawDelta(salt),
                      [this, i, salt] { fire(i, salt); });
    }

    void
    fire(unsigned i, std::uint64_t salt)
    {
        checksum_ ^= salt;
        ++executed_;
        if (events_left_ == 0)
            return;
        --events_left_;
        reschedule(i);
    }

    Queue q_;
    std::vector<Prng> rngs_;
    std::uint64_t events_left_;
    std::uint64_t executed_ = 0;
    std::uint64_t checksum_ = 0;
};

template <class Queue>
void
BM_Replay(benchmark::State &state, unsigned actors)
{
    // Large enough to amortize queue construction the way a real
    // simulation does (fig06 runs ~3e7 events per queue instance).
    constexpr std::uint64_t kEventsPerIter = 1u << 20;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        ReplayWorkload<Queue> w(actors, kEventsPerIter, 0xA11CEu);
        executed += w.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}

/**
 * Deschedule-heavy workload: every odd schedule cancels the previous
 * one, so half the queue is tombstones by the time it drains. The
 * reference queue pays a cancelled-list scan per pop here; the
 * production queue pays one flag write per cancel.
 */
template <class Queue>
void
BM_Cancel(benchmark::State &state)
{
    constexpr std::uint64_t kOps = 8192;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        Queue q;
        Prng rng(0xCA9CE1u);
        std::vector<std::uint64_t> handles;
        handles.reserve(kOps);
        for (std::uint64_t i = 0; i < kOps; ++i) {
            handles.push_back(q.scheduleCancelable(Tick{1 + rng.below(1'000'000)},
                                         [&executed] { ++executed; }));
            if (i & 1)
                q.deschedule(handles[i - 1]);
        }
        q.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}

template <class Queue>
void
registerQueueBenches(const char *tier)
{
    struct
    {
        const char *name;
        unsigned actors;
    } const sizes[] = {
        {"replay_narrow", 64},   // deep per-day heaps
        {"replay", 1024},        // DRAM-model-like concurrency (gated)
        {"replay_wide", 16384},  // sparse buckets, bitmap scans
    };
    for (const auto &s : sizes) {
        benchmark::RegisterBenchmark(
            ("sim_queue/" + std::string(s.name) + "/" + tier).c_str(),
            [actors = s.actors](benchmark::State &st) {
                BM_Replay<Queue>(st, actors);
            });
    }
    benchmark::RegisterBenchmark(
        ("sim_queue/cancel/" + std::string(tier)).c_str(),
        [](benchmark::State &st) { BM_Cancel<Queue>(st); });
}

// --------------------------------------------------------------------
// End-to-end replay through the full system model.
// --------------------------------------------------------------------

std::uint64_t
simEvents()
{
    const obs::Snapshot snap = obs::Registry::instance().snapshot();
    const auto it = snap.counters.find("sim.events");
    return it == snap.counters.end() ? 0 : it->second;
}

/** Small fig06-style context; the seed is distinct from every other
 *  bench/test configuration so the on-disk graph caches never collide. */
const core::ExperimentContext &
replayContext(std::size_t num_vectors)
{
    auto make = [num_vectors] {
        core::ExperimentConfig cfg;
        cfg.dataset = anns::DatasetId::kSift;
        cfg.numVectors = num_vectors;
        cfg.numQueries = 4;
        cfg.k = 10;
        cfg.efSearch = 50;
        cfg.seed = 7321;
        cfg.hnsw = anns::HnswParams{16, 60, 42};
        cfg.profile.numSamples = 50;
        cfg.profile.maxPairs = 800;
        return core::ExperimentContext(cfg);
    };
    static const core::ExperimentContext small = [&] {
        return core::ExperimentContext(make());
    }();
    // One cached context per supported N (currently two).
    static const core::ExperimentContext large = [&] {
        auto cfg = small.config();
        cfg.numVectors = 2400;
        return core::ExperimentContext(cfg);
    }();
    return num_vectors <= 1200 ? small : large;
}

void
BM_SimReplay(benchmark::State &state, core::Design design,
             std::size_t num_vectors)
{
    const core::ExperimentContext &ctx = replayContext(num_vectors);
    const std::uint64_t before = simEvents();
    for (auto _ : state) {
        core::SystemConfig cfg = ctx.systemConfig(design);
        core::SystemModel model(cfg, *ctx.dataset().base,
                                ctx.dataset().metric(), &ctx.profile(),
                                ctx.hotVectors());
        benchmark::DoNotOptimize(model.run(ctx.traces()).makespan);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(simEvents() - before));
}

void
registerReplayBenches()
{
    struct
    {
        const char *name;
        core::Design design;
        std::size_t numVectors;
    } const runs[] = {
        {"sim_replay/fig06_cpu/opt", core::Design::kCpuBase, 1200},
        {"sim_replay/fig06_ndp/opt", core::Design::kNdpEtOpt, 1200},
        {"sim_replay/fig06_ndp_2x/opt", core::Design::kNdpEtOpt, 2400},
    };
    for (const auto &r : runs) {
        benchmark::RegisterBenchmark(
            r.name,
            [design = r.design, n = r.numVectors](benchmark::State &st) {
                BM_SimReplay(st, design, n);
            })
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerQueueBenches<sim::ReferenceEventQueue>("ref");
    registerQueueBenches<sim::EventQueue>("opt");
    registerReplayBenches();
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
