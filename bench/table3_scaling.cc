/**
 * @file
 * Table 3: speedup of ANSMET (NDP-ETOpt) over CPU-Base with 8, 16,
 * 32, and 64 NDP units.
 *
 * Shapes to reproduce: near-linear scaling up to 32 units, then
 * saturation — the index algorithm's limited per-step parallelism
 * caps what extra ranks can contribute.
 */

#include "bench_util.h"

int
main()
{
    using namespace ansmet;
    using namespace ansmet::bench;

    banner("Table 3: speedup vs number of NDP units",
           "Section 7.2, Table 3");

    // Geomean across the datasets, matching the table's "ANSMET over
    // CPU-Base" framing.
    const unsigned unit_counts[] = {8, 16, 32, 64};
    const std::vector<anns::DatasetId> sets = {
        anns::DatasetId::kSift, anns::DatasetId::kDeep,
        anns::DatasetId::kGist};

    TextTable t({"Dataset", "CPU-Base", "8 units", "16 units", "32 units",
                 "64 units"});
    std::map<unsigned, double> logsum;
    for (const auto id : sets) {
        const auto &ctx = context(id);
        const double cpu = ctx.runDesign(core::Design::kCpuBase).qps();
        t.row().cell(anns::datasetSpec(id).name).cell("1.00x");
        for (const unsigned units : unit_counts) {
            core::SystemConfig cfg =
                ctx.systemConfig(core::Design::kNdpEtOpt);
            cfg.ndpUnits = units;
            const double qps = ctx.runDesign(cfg).qps();
            t.cell(qps / cpu, 2);
            logsum[units] += std::log(qps / cpu);
        }
    }
    t.row().cell("Geomean").cell("1.00x");
    for (const unsigned units : unit_counts)
        t.cell(std::exp(logsum[units] / static_cast<double>(sets.size())),
               2);
    t.print();

    std::printf("\nPaper shape check: speedup grows with NDP units and\n"
                "flattens from 32 to 64 (limited index-level parallelism;\n"
                "paper: 1.94x / 3.72x / 6.04x / 7.60x).\n");
    return 0;
}
