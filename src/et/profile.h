/**
 * @file
 * Sampling-based offline preprocessing (Section 4.2 and Figure 3).
 *
 * From a small sample (default 100 vectors, the paper's choice) we
 * derive everything the runtime needs:
 *  - the ET threshold: a percentile of the sampled pairwise distance
 *    distribution (default 10%);
 *  - per-prefix-length entropy and early-termination frequency
 *    (Figure 3's two curves);
 *  - the (mostly) common prefix to eliminate;
 *  - the dual-granularity fetch parameters (nC, TC, nF) minimizing the
 *    expected access cost under the paper's cost model;
 *  - the fetch-count distribution used by adaptive polling (Sec. 5.4).
 */

#ifndef ANSMET_ET_PROFILE_H
#define ANSMET_ET_PROFILE_H

#include <cstdint>
#include <vector>

#include "anns/distance.h"
#include "anns/vector.h"
#include "et/layout.h"
#include "et/prefix.h"

namespace ansmet::et {

/** Dual-granularity fetch parameters. */
struct DualParams
{
    unsigned nc = 8; //!< coarse bit step
    unsigned tc = 0; //!< number of coarse steps
    unsigned nf = 4; //!< fine bit step
};

/** Everything learned by preprocessing one dataset. */
struct EtProfile
{
    ScalarType type = ScalarType::kFp32;
    anns::Metric metric = anns::Metric::kL2;
    unsigned dims = 0;

    double threshold = 0.0;
    ValueInterval globalRange{0.0, 0.0};

    /** Index L-1 = statistics for prefix length L (1..W). */
    std::vector<double> prefixEntropy;
    std::vector<double> etFrequency;
    /** Raw pET samples; keyBits+1 means "never terminated". */
    std::vector<unsigned> etPositions;

    CommonPrefix commonPrefix;
    DualParams dualNoPrefix;   //!< for NDP-ET+Dual (no elimination)
    DualParams dualWithPrefix; //!< for NDP-ETOpt

    /** P(comparison fetches i 64 B lines) under the ETOpt plan. */
    std::vector<double> fetchCountDist;

    /** Expected lines per comparison (for adaptive polling). */
    double expectedFetchLines() const;
};

/** Preprocessing configuration (paper defaults). */
struct ProfileConfig
{
    std::size_t numSamples = 100;
    double thresholdPercentile = 0.10;
    double outlierFrac = 0.001;
    std::size_t maxPairs = 4000;
    std::uint64_t seed = 7;
};

/** Run the full preprocessing pass over @p vs. */
EtProfile buildProfile(const anns::VectorSet &vs, anns::Metric metric,
                       const ProfileConfig &cfg = {});

/**
 * Grid-search (nC, TC, nF) minimizing the summed access cost of the
 * sampled ET positions under the paper's cost formula (Section 4.2),
 * for a given eliminated-prefix length.
 */
DualParams optimizeDual(const std::vector<unsigned> &et_positions,
                        unsigned key_width, unsigned prefix_len,
                        unsigned dims);

/**
 * The paper's closed-form access-cost model: 64 B lines fetched before
 * the comparison at key-bit position @p p_et terminates (or
 * completes). Ignores the OlElm bitmap bit; the optimizer uses the
 * exact planCostLines() below.
 */
std::uint64_t accessCostLines(unsigned p_et, unsigned key_width,
                              unsigned prefix_len, unsigned dims,
                              const DualParams &dp);

/**
 * Exact per-plan cost: lines fetched until the plan's known bits reach
 * @p p_et (level granularity), or all lines if p_et > key_width.
 * Accounts for padding and metadata bits exactly.
 */
std::uint64_t planCostLines(const FetchPlanSpec &plan, unsigned p_et,
                            unsigned key_width);

/** Kullback-Leibler divergence D(p || q) with epsilon smoothing. */
double klDivergence(const std::vector<double> &p,
                    const std::vector<double> &q, double eps = 1e-6);

} // namespace ansmet::et

#endif // ANSMET_ET_PROFILE_H
