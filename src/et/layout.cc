#include "et/layout.h"

namespace ansmet::et {

std::vector<std::uint8_t>
transformVector(const FetchPlanSpec &spec, const anns::VectorSet &vs,
                VectorId v)
{
    ANSMET_ASSERT(spec.valid(), "invalid fetch plan");
    ANSMET_ASSERT(spec.dims == vs.dims() && spec.type == vs.type());

    std::vector<std::uint8_t> out;
    BitWriter writer(out);
    const unsigned w = keyBits(spec.type);

    unsigned consumed = spec.prefixLen;
    for (unsigned l = 0; l < spec.levels(); ++l) {
        const unsigned nbits = spec.steps[l];
        const unsigned epl = spec.elemsPerLine(l);
        for (unsigned d0 = 0; d0 < spec.dims; d0 += epl) {
            const unsigned d1 = std::min(d0 + epl, spec.dims);
            for (unsigned d = d0; d < d1; ++d) {
                const std::uint32_t key = toKey(spec.type, vs.bitsAt(v, d));
                writer.put(extractMsbFirst(key, w, consumed, nbits), nbits);
            }
            writer.align(512); // pad each 64 B line
        }
        consumed += nbits;
    }
    return out;
}

std::vector<std::uint32_t>
restoreKeys(const FetchPlanSpec &spec, const std::uint8_t *data,
            std::uint32_t common_prefix)
{
    const unsigned w = keyBits(spec.type);
    std::vector<std::uint32_t> keys(spec.dims, 0);

    if (spec.prefixLen > 0) {
        const std::uint32_t top = common_prefix
                                  << (w - spec.prefixLen);
        for (auto &k : keys)
            k = top;
    }

    BitReader reader(data, static_cast<std::uint64_t>(spec.totalLines()) *
                               512);
    unsigned consumed = spec.prefixLen;
    for (unsigned l = 0; l < spec.levels(); ++l) {
        const unsigned nbits = spec.steps[l];
        const unsigned epl = spec.elemsPerLine(l);
        for (unsigned d0 = 0; d0 < spec.dims; d0 += epl) {
            const unsigned d1 = std::min(d0 + epl, spec.dims);
            const std::uint64_t line_start = reader.pos();
            for (unsigned d = d0; d < d1; ++d) {
                const auto chunk =
                    static_cast<std::uint32_t>(reader.get(nbits));
                keys[d] |= chunk << (w - consumed - nbits);
            }
            reader.seek(line_start + 512); // skip line padding
        }
        consumed += nbits;
    }
    return keys;
}

} // namespace ansmet::et
