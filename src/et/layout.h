/**
 * @file
 * Bit-plane fetch plans and the transformed in-memory layout
 * (Section 4.2 of the paper).
 *
 * A FetchPlanSpec describes how a vector's bits are ordered in memory:
 * after an optional eliminated common prefix, level i stores the next
 * steps[i] most significant key bits of *every* dimension, packed into
 * 64 B lines of floor(512 / bits) elements each (with padding, exactly
 * the paper's m_i = |64*8 / n_i| rule). Fetching proceeds line by
 * line: level 0's lines first (covering all dims), then level 1's, and
 * so on, refining every dimension's known prefix.
 *
 * The plain/original layout is the degenerate plan with a single step
 * of the full key width: each line then holds complete elements of a
 * few dimensions, which is exactly the partial-dimension-only scheme
 * (NDP-DimET) when bound checks run per line, and NDP-Base without.
 */

#ifndef ANSMET_ET_LAYOUT_H
#define ANSMET_ET_LAYOUT_H

#include <numeric>
#include <vector>

#include "anns/vector.h"
#include "common/bitops.h"
#include "common/logging.h"
#include "common/types.h"
#include "et/sortable.h"

namespace ansmet::et {

/** How a vector's bits are chunked and ordered in memory. */
struct FetchPlanSpec
{
    ScalarType type = ScalarType::kFp32;
    unsigned dims = 0;
    unsigned prefixLen = 0;        //!< eliminated common-prefix bits
    std::vector<unsigned> steps;   //!< per-level key bits per element
    bool metaBitmap = false;       //!< ETOpt outlier bitmap in level 0

    /** Plain layout: whole elements, dimension-major. */
    static FetchPlanSpec
    full(ScalarType t, unsigned dims)
    {
        return {t, dims, 0, {keyBits(t)}, false};
    }

    /** NDP-ET heuristic: 4-bit chunks for ints, 8-bit for floats. */
    static FetchPlanSpec
    heuristic(ScalarType t, unsigned dims)
    {
        const unsigned chunk =
            (t == ScalarType::kUint8 || t == ScalarType::kInt8) ? 4 : 8;
        FetchPlanSpec spec{t, dims, 0, {}, false};
        for (unsigned got = 0; got < keyBits(t); got += chunk)
            spec.steps.push_back(std::min(chunk, keyBits(t) - got));
        return spec;
    }

    /** NDP-BitET: fixed single-bit steps (BitNN-style bit-serial). */
    static FetchPlanSpec
    bitSerial(ScalarType t, unsigned dims)
    {
        FetchPlanSpec spec{t, dims, 0, {}, false};
        spec.steps.assign(keyBits(t), 1);
        return spec;
    }

    /**
     * Dual-granularity: after @p prefix_len eliminated bits, @p tc
     * coarse steps of @p nc bits, then fine steps of @p nf bits.
     */
    static FetchPlanSpec
    dual(ScalarType t, unsigned dims, unsigned prefix_len, unsigned nc,
         unsigned tc, unsigned nf, bool meta_bitmap = false)
    {
        ANSMET_ASSERT(prefix_len < keyBits(t));
        FetchPlanSpec spec{t, dims, prefix_len, {}, meta_bitmap};
        unsigned remaining = keyBits(t) - prefix_len;
        for (unsigned i = 0; i < tc && remaining > 0; ++i) {
            const unsigned s = std::min(nc, remaining);
            spec.steps.push_back(s);
            remaining -= s;
        }
        while (remaining > 0) {
            const unsigned s = std::min(nf, remaining);
            spec.steps.push_back(s);
            remaining -= s;
        }
        return spec;
    }

    unsigned levels() const { return static_cast<unsigned>(steps.size()); }

    /** Storage bits per element in level @p l (incl. metadata bits). */
    unsigned
    levelElemBits(unsigned l) const
    {
        return steps[l] + (l == 0 && metaBitmap ? 1 : 0);
    }

    /** Elements per 64 B line in level @p l (the paper's m_i). */
    unsigned
    elemsPerLine(unsigned l) const
    {
        const unsigned b = levelElemBits(l);
        ANSMET_ASSERT(b > 0 && b <= 512);
        return 512 / b;
    }

    /** 64 B lines occupied by level @p l. */
    unsigned
    linesInLevel(unsigned l) const
    {
        return static_cast<unsigned>(divCeil(dims, elemsPerLine(l)));
    }

    /** Total 64 B lines per vector under this layout. */
    unsigned
    totalLines() const
    {
        unsigned total = 0;
        for (unsigned l = 0; l < levels(); ++l)
            total += linesInLevel(l);
        return total;
    }

    /** Key bits known per element once levels [0, l] are fetched. */
    unsigned
    knownBitsAfterLevel(unsigned l) const
    {
        unsigned known = prefixLen;
        for (unsigned i = 0; i <= l; ++i)
            known += steps[i];
        return known;
    }

    /** Sanity: steps must cover exactly the non-eliminated bits. */
    bool
    valid() const
    {
        const unsigned sum =
            std::accumulate(steps.begin(), steps.end(), 0u);
        return dims > 0 && sum + prefixLen == keyBits(type);
    }
};

/** One fetched line: which dims gained how many key bits. */
struct LineInfo
{
    unsigned level;
    unsigned dimBegin;
    unsigned dimEnd;        //!< exclusive
    unsigned knownBitsAfter; //!< per-element key prefix length after fetch
};

/** Walks a plan's lines in fetch order. */
class FetchCursor
{
  public:
    explicit FetchCursor(const FetchPlanSpec &spec) : spec_(&spec) {}

    bool done() const { return level_ >= spec_->levels(); }
    unsigned linesFetched() const { return lines_; }

    /** Fetch the next 64 B line. */
    LineInfo
    next()
    {
        ANSMET_ASSERT(!done());
        const unsigned epl = spec_->elemsPerLine(level_);
        LineInfo info;
        info.level = level_;
        info.dimBegin = dim_;
        info.dimEnd = std::min(dim_ + epl, spec_->dims);
        info.knownBitsAfter = spec_->knownBitsAfterLevel(level_);
        dim_ = info.dimEnd;
        if (dim_ >= spec_->dims) {
            dim_ = 0;
            ++level_;
        }
        ++lines_;
        return info;
    }

  private:
    const FetchPlanSpec *spec_;
    unsigned level_ = 0;
    unsigned dim_ = 0;
    unsigned lines_ = 0;
};

/**
 * Physically transform one vector into the bit-plane layout. The
 * result is padded to whole 64 B lines and contains, per level, the
 * next steps[level] key bits of each dimension (metadata bitmap
 * excluded here; the ETOpt encoder in prefix.h layers it on).
 */
std::vector<std::uint8_t> transformVector(const FetchPlanSpec &spec,
                                          const anns::VectorSet &vs,
                                          VectorId v);

/**
 * Restore the original element key values from a transformed buffer.
 * Exact inverse of transformVector for prefixLen == 0 plans; with a
 * common prefix, the prefix key bits must be supplied.
 */
std::vector<std::uint32_t> restoreKeys(const FetchPlanSpec &spec,
                                       const std::uint8_t *data,
                                       std::uint32_t common_prefix = 0);

} // namespace ansmet::et

#endif // ANSMET_ET_LAYOUT_H
