/**
 * @file
 * Monotone "sortable key" codecs.
 *
 * Early termination reasons about *bit prefixes* of element values
 * (Section 4.1). For that to be sound, the bit pattern must be
 * order-preserving MSB-first: for any two values a < b, key(a) <
 * key(b) as unsigned integers, and more-significant key bits must
 * matter more. The classic transforms achieve this:
 *
 *  - UINT8: identity;
 *  - INT8:  flip the sign bit (two's complement -> offset binary);
 *  - FP16/FP32: if the sign bit is set, invert all bits; otherwise set
 *    the sign bit (IEEE-754 total-order trick). The exponent then sits
 *    right below the MSB, which is exactly the paper's observation
 *    that "the exponent is fetched before the mantissa".
 *
 * All prefix/bound machinery operates on keys and converts interval
 * endpoints back to numeric values via keyToValue().
 */

#ifndef ANSMET_ET_SORTABLE_H
#define ANSMET_ET_SORTABLE_H

#include <cstdint>

#include "anns/scalar.h"
#include "common/bitops.h"

namespace ansmet::et {

using anns::ScalarType;

/** Bit width of the sortable key for @p t (same as the storage width). */
constexpr unsigned
keyBits(ScalarType t)
{
    return anns::scalarBits(t);
}

/** Map raw storage bits (LSB-aligned) to the sortable key. */
inline std::uint32_t
toKey(ScalarType t, std::uint32_t raw)
{
    switch (t) {
      case ScalarType::kUint8:
        return raw & 0xffu;
      case ScalarType::kInt8:
        return (raw ^ 0x80u) & 0xffu;
      case ScalarType::kFp16: {
        const std::uint32_t r = raw & 0xffffu;
        return (r & 0x8000u) ? (~r & 0xffffu) : (r | 0x8000u);
      }
      case ScalarType::kFp32:
        return (raw & 0x80000000u) ? ~raw : (raw | 0x80000000u);
    }
    return 0;
}

/** Inverse of toKey(). */
inline std::uint32_t
fromKey(ScalarType t, std::uint32_t key)
{
    switch (t) {
      case ScalarType::kUint8:
        return key & 0xffu;
      case ScalarType::kInt8:
        return (key ^ 0x80u) & 0xffu;
      case ScalarType::kFp16: {
        const std::uint32_t k = key & 0xffffu;
        return (k & 0x8000u) ? (k & 0x7fffu) : (~k & 0xffffu);
      }
      case ScalarType::kFp32:
        return (key & 0x80000000u) ? (key & 0x7fffffffu) : ~key;
    }
    return 0;
}

/** Numeric value of the element whose sortable key is @p key. */
inline double
keyToValue(ScalarType t, std::uint32_t key)
{
    const std::uint32_t raw = fromKey(t, key);
    switch (t) {
      case ScalarType::kUint8:
        return static_cast<double>(raw);
      case ScalarType::kInt8:
        return static_cast<double>(
            static_cast<std::int8_t>(static_cast<std::uint8_t>(raw)));
      case ScalarType::kFp16:
        return static_cast<double>(
            anns::halfToFloat(static_cast<std::uint16_t>(raw)));
      case ScalarType::kFp32:
        return static_cast<double>(anns::bitsToFloat(raw));
    }
    return 0.0;
}

/**
 * The closed interval of values an element can take given the top
 * @p prefix_len bits of its key.
 */
struct ValueInterval
{
    double lo;
    double hi;
};

/**
 * Clamp a key into the finite range of the type, so interval endpoints
 * never decode to infinities or NaNs (stored elements are always
 * finite, so clamping keeps the interval conservative).
 */
inline std::uint32_t
clampKeyFinite(ScalarType t, std::uint32_t key)
{
    if (t == ScalarType::kFp32) {
        const std::uint32_t max_key = toKey(t, 0x7f7fffffu); // +FLT_MAX
        const std::uint32_t min_key = toKey(t, 0xff7fffffu); // -FLT_MAX
        if (key > max_key)
            return max_key;
        if (key < min_key)
            return min_key;
        return key;
    }
    if (t == ScalarType::kFp16) {
        const std::uint32_t max_key = toKey(t, 0x7bffu); // +HALF_MAX
        const std::uint32_t min_key = toKey(t, 0xfbffu); // -HALF_MAX
        if (key > max_key)
            return max_key;
        if (key < min_key)
            return min_key;
        return key;
    }
    return key;
}

/** Interval implied by key prefix @p prefix (LSB-aligned) of length L. */
inline ValueInterval
intervalFromPrefix(ScalarType t, std::uint32_t prefix, unsigned prefix_len)
{
    const unsigned w = keyBits(t);
    const unsigned rest = w - prefix_len;
    const std::uint32_t lo_key =
        prefix_len == 0 ? 0 : (prefix << rest);
    const std::uint32_t hi_key =
        lo_key | static_cast<std::uint32_t>(maskLow(rest));
    return {keyToValue(t, clampKeyFinite(t, lo_key)),
            keyToValue(t, clampKeyFinite(t, hi_key))};
}

} // namespace ansmet::et

#endif // ANSMET_ET_SORTABLE_H
