#include "et/exact.h"

#include <limits>

#include "common/logging.h"

namespace ansmet::et {

std::vector<anns::Neighbor>
exactKnnEt(const FetchSimulator &sim, const float *query, std::size_t k,
           ExactScanStats *stats)
{
    anns::ResultSet rs(k);
    ExactScanStats local;
    const unsigned full = sim.fullLines();
    const auto n = static_cast<VectorId>(sim.datasetSize());

    for (VectorId v = 0; v < n; ++v) {
        const FetchResult r = sim.simulate(query, v, rs.worst());
        local.linesFetched += r.totalLines();
        local.linesFull += full;
        if (r.terminatedEarly) {
            ++local.terminated;
            continue; // provably outside the current top-k
        }
        rs.offer({r.exactDist, v});
    }

    if (stats) {
        stats->linesFetched += local.linesFetched;
        stats->linesFull += local.linesFull;
        stats->terminated += local.terminated;
    }
    return rs.sorted();
}

std::vector<unsigned>
kmeansAssignEt(const anns::VectorSet &vs, anns::Metric metric,
               const std::vector<float> &centroids, unsigned k,
               ExactScanStats *stats)
{
    ANSMET_ASSERT(k > 0 && centroids.size() ==
                               static_cast<std::size_t>(k) * vs.dims());
    const FetchSimulator sim(vs, metric, EtScheme::kHeuristic, nullptr);
    const unsigned full = sim.fullLines();

    std::vector<unsigned> assign(vs.size(), 0);
    ExactScanStats local;

    for (std::size_t v = 0; v < vs.size(); ++v) {
        double best = std::numeric_limits<double>::infinity();
        unsigned best_c = 0;
        for (unsigned c = 0; c < k; ++c) {
            const FetchResult r = sim.simulate(
                centroids.data() + static_cast<std::size_t>(c) * vs.dims(),
                static_cast<VectorId>(v), best);
            local.linesFetched += r.totalLines();
            local.linesFull += full;
            if (r.terminatedEarly) {
                ++local.terminated;
                continue; // provably not the nearest centroid
            }
            if (r.exactDist < best) {
                best = r.exactDist;
                best_c = c;
            }
        }
        assign[v] = best_c;
    }

    if (stats) {
        stats->linesFetched += local.linesFetched;
        stats->linesFull += local.linesFull;
        stats->terminated += local.terminated;
    }
    return assign;
}

} // namespace ansmet::et
