/**
 * @file
 * Conservative distance lower bounds from partially known vectors
 * (Section 4.1 of the paper).
 *
 * Each dimension of the search vector is known only as a value
 * interval (from the fetched key-prefix bits). The accumulator keeps a
 * per-dimension contribution and a running total:
 *
 *  - L2: the minimum of (v - q)^2 over the interval — 0 if q is inside,
 *    the squared gap to the nearer endpoint otherwise. An unfetched
 *    dimension contributes 0 (the paper's partial-dimension bound).
 *  - IP (distance = -sum v*q): the lower bound on distance is minus the
 *    *maximum* achievable dot contribution; unfetched dimensions fall
 *    back to the dataset's global value range, which is exactly why
 *    dimension-only ET is ineffective for IP (the paper's NDP-DimET
 *    observation) while bit-level prefixes restore tight bounds.
 *
 * Narrowing an interval can only tighten (raise) the bound, so updates
 * are incremental O(1).
 */

#ifndef ANSMET_ET_BOUNDS_H
#define ANSMET_ET_BOUNDS_H

#include <algorithm>
#include <cmath>
#include <vector>

#include "anns/distance.h"
#include "common/check.h"
#include "et/sortable.h"

namespace ansmet::et {

using anns::Metric;

/** Incremental distance lower-bound accumulator over value intervals. */
class BoundAccumulator
{
  public:
    /**
     * @param query full query vector (dims entries)
     * @param global_range dataset-wide [min, max] element value; only
     *        used for unfetched dimensions under IP
     */
    BoundAccumulator(Metric m, const float *query, unsigned dims,
                     ValueInterval global_range)
        : metric_(m), query_(query), dims_(dims), global_(global_range),
          interval_(dims, global_range), contrib_(dims)
    {
        for (unsigned d = 0; d < dims; ++d) {
            contrib_[d] = contribution(d, interval_[d]);
            total_ += contrib_[d];
        }
    }

    /**
     * Tighten dimension @p d with interval @p iv. The new knowledge is
     * intersected with everything already known about the dimension
     * (including the global range), so the bound only ever tightens —
     * a short bit prefix can imply a wider raw interval than the
     * dataset's value range, but the true value is in both.
     */
    void
    update(unsigned d, ValueInterval iv)
    {
        ANSMET_DCHECK(d < dims_, "bound update for dimension ", d,
                      " of ", dims_);
        ValueInterval &cur = interval_[d];
        cur.lo = std::max(cur.lo, iv.lo);
        cur.hi = std::min(cur.hi, iv.hi);
        ANSMET_DCHECK(cur.lo <= cur.hi,
                      "inconsistent interval knowledge for dimension ", d,
                      ": [", cur.lo, ", ", cur.hi, "]");
        const double c = contribution(d, cur);
        // Narrowing an interval can only tighten the bound: the L2
        // contribution (min gap^2) grows, the IP contribution (max dot
        // term, later negated) shrinks. Both formulas are monotone in
        // the endpoints, exactly, even in floating point.
        ANSMET_DCHECK(metric_ == Metric::kL2 ? c >= contrib_[d]
                                             : c <= contrib_[d],
                      "bound loosened by an update on dimension ", d);
        total_ += c - contrib_[d];
        contrib_[d] = c;
    }

    /** Current conservative lower bound on the distance. */
    double
    lowerBound() const
    {
        return metric_ == Metric::kL2 ? total_ : -total_;
    }

    /**
     * Contribution of dimension @p d if its value lies in @p iv.
     * For L2 this is min (v-q)^2; for IP it is max v*q.
     */
    double
    contribution(unsigned d, ValueInterval iv) const
    {
        const double q = query_[d];
        if (metric_ == Metric::kL2) {
            if (q < iv.lo) {
                const double gap = iv.lo - q;
                return gap * gap;
            }
            if (q > iv.hi) {
                const double gap = q - iv.hi;
                return gap * gap;
            }
            return 0.0;
        }
        return q >= 0.0 ? iv.hi * q : iv.lo * q;
    }

  private:
    Metric metric_;
    const float *query_;
    unsigned dims_;
    ValueInterval global_;
    std::vector<ValueInterval> interval_;
    std::vector<double> contrib_;
    double total_ = 0.0;
};

/**
 * Safe termination predicate: trips only when the bound clears the
 * threshold with a small relative margin, so floating-point summation
 * order can never reject a vector whose exact distance is (barely)
 * inside the threshold.
 */
inline bool
boundExceeds(double bound, double threshold)
{
    return bound >= threshold + 1e-9 * (1.0 + std::abs(threshold));
}

} // namespace ansmet::et

#endif // ANSMET_ET_BOUNDS_H
