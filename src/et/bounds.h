/**
 * @file
 * Conservative distance lower bounds from partially known vectors
 * (Section 4.1 of the paper).
 *
 * Each dimension of the search vector is known only as a value
 * interval (from the fetched key-prefix bits). The accumulator keeps a
 * per-dimension contribution and a running total:
 *
 *  - L2: the minimum of (v - q)^2 over the interval — 0 if q is inside,
 *    the squared gap to the nearer endpoint otherwise. An unfetched
 *    dimension contributes 0 (the paper's partial-dimension bound).
 *  - IP (distance = -sum v*q): the lower bound on distance is minus the
 *    *maximum* achievable dot contribution; unfetched dimensions fall
 *    back to the dataset's global value range, which is exactly why
 *    dimension-only ET is ineffective for IP (the paper's NDP-DimET
 *    observation) while bit-level prefixes restore tight bounds.
 *
 * Narrowing an interval can only tighten (raise) the bound, so updates
 * are incremental O(1). Intervals and contributions are stored as
 * structure-of-arrays so a whole fetch-step's worth of dimensions can
 * be tightened in one pass by the SIMD bound kernels (anns/kernels.h,
 * updateBatch below), and the accumulator is reusable via reset() so
 * the fetch simulator leases one per thread instead of allocating per
 * comparison.
 */

#ifndef ANSMET_ET_BOUNDS_H
#define ANSMET_ET_BOUNDS_H

#include <algorithm>
#include <cmath>
#include <vector>

#include "anns/distance.h"
#include "common/check.h"
#include "et/sortable.h"

namespace ansmet::et {

using anns::Metric;

/** Incremental distance lower-bound accumulator over value intervals. */
class BoundAccumulator
{
  public:
    /** Empty accumulator; reset() before use. */
    BoundAccumulator() = default;

    /**
     * @param query full query vector (dims entries)
     * @param global_range dataset-wide [min, max] element value; only
     *        used for unfetched dimensions under IP
     */
    BoundAccumulator(Metric m, const float *query, unsigned dims,
                     ValueInterval global_range)
    {
        reset(m, query, dims, global_range);
    }

    /**
     * Re-arm for a new comparison, reusing the existing storage (no
     * allocation once the capacity has grown to @p dims).
     */
    void
    reset(Metric m, const float *query, unsigned dims,
          ValueInterval global_range)
    {
        metric_ = m;
        query_ = query;
        dims_ = dims;
        global_ = global_range;
        lo_.assign(dims, global_range.lo);
        hi_.assign(dims, global_range.hi);
        contrib_.resize(dims);
        total_ = 0.0;
        for (unsigned d = 0; d < dims; ++d) {
            contrib_[d] = contribution(d, global_range);
            total_ += contrib_[d];
        }
    }

    /**
     * Tighten dimension @p d with interval @p iv. The new knowledge is
     * intersected with everything already known about the dimension
     * (including the global range), so the bound only ever tightens —
     * a short bit prefix can imply a wider raw interval than the
     * dataset's value range, but the true value is in both.
     */
    void
    update(unsigned d, ValueInterval iv)
    {
        ANSMET_DCHECK(d < dims_, "bound update for dimension ", d,
                      " of ", dims_);
        // Select semantics mirror the SIMD max/min instructions so the
        // scalar and batched paths store identical endpoints.
        const double lo = lo_[d] > iv.lo ? lo_[d] : iv.lo;
        const double hi = hi_[d] < iv.hi ? hi_[d] : iv.hi;
        ANSMET_DCHECK(lo <= hi,
                      "inconsistent interval knowledge for dimension ", d,
                      ": [", lo, ", ", hi, "]");
        lo_[d] = lo;
        hi_[d] = hi;
        const double c = contribution(d, {lo, hi});
        // Narrowing an interval can only tighten the bound: the L2
        // contribution (min gap^2) grows, the IP contribution (max dot
        // term, later negated) shrinks. Both formulas are monotone in
        // the endpoints, exactly, even in floating point.
        ANSMET_DCHECK(metric_ == Metric::kL2 ? c >= contrib_[d]
                                             : c <= contrib_[d],
                      "bound loosened by an update on dimension ", d);
        total_ += c - contrib_[d];
        contrib_[d] = c;
    }

    /**
     * Tighten the @p n consecutive dimensions starting at @p begin
     * with the intervals [nlo[i], nhi[i]] in one pass through the
     * active SIMD bound kernel. Dimensions that learned nothing this
     * step pass an infinite interval (intersection is then a no-op
     * and the delta is exactly zero). The per-step delta is summed in
     * the kernels' canonical blocked order, so the running total is
     * deterministic and identical across kernel tiers.
     */
    void
    updateBatch(unsigned begin, unsigned n, const double *nlo,
                const double *nhi)
    {
        ANSMET_DCHECK(begin + n <= dims_, "bound batch [", begin, ", ",
                      begin + n, ") of ", dims_);
        if (auditEnabled())
            auditBatch(begin, n, nlo, nhi);
        const anns::KernelOps &ops = anns::kernels();
        const auto fn =
            metric_ == Metric::kL2 ? ops.boundL2 : ops.boundIp;
        total_ += fn(query_ + begin, lo_.data() + begin,
                     hi_.data() + begin, contrib_.data() + begin, nlo,
                     nhi, n);
    }

    /** Current conservative lower bound on the distance. */
    double
    lowerBound() const
    {
        return metric_ == Metric::kL2 ? total_ : -total_;
    }

    unsigned dims() const { return dims_; }

    /**
     * Contribution of dimension @p d if its value lies in @p iv.
     * For L2 this is min (v-q)^2; for IP it is max v*q.
     */
    double
    contribution(unsigned d, ValueInterval iv) const
    {
        const double q = query_[d];
        if (metric_ == Metric::kL2) {
            if (q < iv.lo) {
                const double gap = iv.lo - q;
                return gap * gap;
            }
            if (q > iv.hi) {
                const double gap = q - iv.hi;
                return gap * gap;
            }
            return 0.0;
        }
        return q >= 0.0 ? iv.hi * q : iv.lo * q;
    }

  private:
    /**
     * Audit-mode pre-pass of updateBatch: the invariants the per-dim
     * update() DCHECKs, validated without touching state (the kernel
     * then performs the identical arithmetic), so audit mode never
     * changes the numbers a run produces.
     */
    void
    auditBatch(unsigned begin, unsigned n, const double *nlo,
               const double *nhi) const
    {
        for (unsigned i = 0; i < n; ++i) {
            const unsigned d = begin + i;
            const double lo = lo_[d] > nlo[i] ? lo_[d] : nlo[i];
            const double hi = hi_[d] < nhi[i] ? hi_[d] : nhi[i];
            ANSMET_DCHECK(lo <= hi,
                          "inconsistent interval knowledge for dimension ",
                          d, ": [", lo, ", ", hi, "]");
            const double c = contribution(d, {lo, hi});
            ANSMET_DCHECK(metric_ == Metric::kL2 ? c >= contrib_[d]
                                                 : c <= contrib_[d],
                          "bound loosened by an update on dimension ", d);
        }
    }

    Metric metric_ = Metric::kL2;
    const float *query_ = nullptr;
    unsigned dims_ = 0;
    ValueInterval global_{0.0, 0.0};
    // Structure-of-arrays interval knowledge, kernel-friendly.
    std::vector<double> lo_;
    std::vector<double> hi_;
    std::vector<double> contrib_;
    double total_ = 0.0;
};

/**
 * Safe termination predicate: trips only when the bound clears the
 * threshold with a small relative margin, so floating-point summation
 * order can never reject a vector whose exact distance is (barely)
 * inside the threshold.
 */
inline bool
boundExceeds(double bound, double threshold)
{
    return bound >= threshold + 1e-9 * (1.0 + std::abs(threshold));
}

} // namespace ansmet::et

#endif // ANSMET_ET_BOUNDS_H
