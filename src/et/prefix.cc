#include "et/prefix.h"

#include <algorithm>

#include "common/logging.h"

namespace ansmet::et {

CommonPrefix
findCommonPrefix(ScalarType t, const std::vector<std::uint32_t> &sample_keys,
                 double outlier_frac)
{
    CommonPrefix cp;
    cp.type = t;
    if (sample_keys.empty())
        return cp;

    const unsigned w = keyBits(t);
    const auto budget = static_cast<std::size_t>(
        outlier_frac * static_cast<double>(sample_keys.size()));

    std::uint32_t prefix = 0;
    for (unsigned len = 1; len <= w; ++len) {
        // Try extending with the majority next bit.
        const unsigned shift = w - len;
        std::size_t ones = 0;
        std::size_t candidates = 0;
        for (const std::uint32_t k : sample_keys) {
            // Only elements still matching the current prefix vote.
            if (len > 1 && (k >> (shift + 1)) != prefix)
                continue;
            ++candidates;
            ones += (k >> shift) & 1;
        }
        const unsigned bit = ones * 2 >= candidates ? 1 : 0;
        const std::uint32_t next = (prefix << 1) | bit;

        std::size_t mismatches = 0;
        for (const std::uint32_t k : sample_keys)
            if ((k >> shift) != next)
                ++mismatches;
        if (mismatches > budget)
            break;

        prefix = next;
        cp.length = len;
        cp.bits = prefix;
    }

    // Keeping at least 1 stored bit per element is required by the
    // layout (a 0-bit level is meaningless); also leave room for the
    // OlElm flag in the outlier-vector format.
    if (cp.length >= w) {
        cp.length = w - 1;
        cp.bits = prefix >> 1;
    }
    return cp;
}

PrefixElimination::PrefixElimination(const CommonPrefix &cp,
                                     const anns::VectorSet &vs)
    : cp_(cp), vs_(vs),
      meta_bits_(cp.length <= 1 ? 0 : bitsFor(cp.length - 1)),
      key_width_(keyBits(cp.type)),
      outlier_vec_(vs.size(), false),
      outlier_slot_(vs.size(), kNoSlot)
{
    ANSMET_ASSERT(cp.type == vs.type());
    ANSMET_ASSERT(cp.length < key_width_);

    std::vector<std::uint8_t> lens(vs.dims());
    for (std::size_t v = 0; v < vs.size(); ++v) {
        const auto id = static_cast<VectorId>(v);
        bool any_outlier = false;
        for (unsigned d = 0; d < vs.dims(); ++d) {
            const std::uint32_t key = toKey(cp.type, vs.bitsAt(id, d));
            const unsigned ml = matchedLen(key);
            lens[d] = static_cast<std::uint8_t>(ml);
            if (ml < cp.length) {
                any_outlier = true;
                ++num_outlier_elems_;
            }
        }
        if (any_outlier) {
            outlier_vec_[v] = true;
            outlier_slot_[v] =
                static_cast<std::uint32_t>(num_outlier_vecs_);
            match_len_.insert(match_len_.end(), lens.begin(),
                              lens.end());
            ++num_outlier_vecs_;
        }
    }
}

unsigned
PrefixElimination::matchedLen(std::uint32_t key) const
{
    const unsigned p = cp_.length;
    for (unsigned len = p; len > 0; --len) {
        const unsigned shift = key_width_ - len;
        if ((key >> shift) == (cp_.bits >> (p - len)))
            return len;
    }
    return 0;
}

unsigned
PrefixElimination::knownLen(VectorId v, unsigned d,
                            unsigned fetched_bits) const
{
    const unsigned p = cp_.length;
    if (!outlier_vec_[v]) {
        // Normal vector: every fetched bit extends the common prefix.
        return std::min(p + fetched_bits, key_width_);
    }

    // Outlier vector: the first storage bit is the OlElm flag.
    if (fetched_bits == 0)
        return 0;
    const unsigned payload_fetched = fetched_bits - 1;
    ANSMET_ASSERT(outlier_slot_[v] != kNoSlot);
    const unsigned ml =
        match_len_[std::size_t{outlier_slot_[v]} * vs_.dims() + d];

    if (ml >= p) {
        // Normal element inside an outlier vector: prefix applies, but
        // one budget bit went to OlElm.
        return std::min(p + payload_fetched, key_width_);
    }

    // Outlier element: matchLen field first, then key bits from
    // position ml. Nothing is known until the field is complete.
    if (payload_fetched < meta_bits_)
        return 0;
    if (payload_fetched == meta_bits_)
        return ml; // field complete: the matched prefix bits are known
    const unsigned data_bits = payload_fetched - meta_bits_;
    return std::min(ml + data_bits, maxKnownLen(v, d));
}

unsigned
PrefixElimination::maxKnownLen(VectorId v, unsigned d) const
{
    const unsigned p = cp_.length;
    const unsigned budget = key_width_ - p; // storage bits per element
    if (!outlier_vec_[v])
        return key_width_;

    const unsigned ml =
        match_len_[std::size_t{outlier_slot_[v]} * vs_.dims() + d];
    if (ml >= p)
        return std::min(p + (budget - 1), key_width_);
    if (budget <= 1 + meta_bits_)
        return ml;
    return std::min(ml + (budget - 1 - meta_bits_), key_width_);
}

double
PrefixElimination::spaceSavedFraction() const
{
    const double orig =
        static_cast<double>(key_width_) * vs_.dims();
    const double saved =
        static_cast<double>(cp_.length) * vs_.dims() -
        static_cast<double>(vs_.dims() + 1);
    return std::max(0.0, saved / orig);
}

double
PrefixElimination::extraSpaceFraction() const
{
    return static_cast<double>(num_outlier_vecs_) /
           static_cast<double>(vs_.size());
}

} // namespace ansmet::et
