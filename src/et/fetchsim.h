/**
 * @file
 * Per-comparison fetch simulation.
 *
 * Given a query, a database vector, and the threshold in force, the
 * FetchSimulator walks the vector's in-memory layout line by line,
 * updating the conservative lower bound after each 64 B fetch exactly
 * as the NDP distance-computing unit would, and reports how many lines
 * were fetched, whether early termination fired, and the final
 * accept/reject decision. One simulator instance is built per
 * (dataset, scheme); results are deterministic, so the timing layer
 * can share them across designs.
 */

#ifndef ANSMET_ET_FETCHSIM_H
#define ANSMET_ET_FETCHSIM_H

#include <map>
#include <memory>

#include "anns/distance.h"
#include "anns/vector.h"
#include "common/sync.h"
#include "et/bounds.h"
#include "et/layout.h"
#include "et/prefix.h"
#include "et/profile.h"

namespace ansmet::et {

/** Early-termination schemes evaluated in the paper (Section 6). */
enum class EtScheme : std::uint8_t
{
    kNone,      //!< fetch everything (CPU-Base / NDP-Base)
    kDimOnly,   //!< partial dimensions, full bits (NDP-DimET)
    kBitSerial, //!< fixed 1-bit steps (NDP-BitET, BitNN-style)
    kHeuristic, //!< hybrid 4-bit int / 8-bit float chunks (NDP-ET)
    kDual,      //!< + dual-granularity fetch (NDP-ET+Dual)
    kOpt,       //!< + common prefix elimination (NDP-ETOpt / ANSMET)
};

const char *schemeName(EtScheme s);

/** Outcome of simulating one comparison. */
struct FetchResult
{
    unsigned lines = 0;        //!< transformed-layout lines fetched
    unsigned backupLines = 0;  //!< outlier-backup re-check lines
    bool terminatedEarly = false;
    bool accepted = false;     //!< exact decision (lossless schemes)
    double exactDist = 0.0;
    /**
     * Final lower-bound estimate; for lossy no-backup operation this
     * is what the accept decision would be based on (Table 5b).
     */
    double estimate = 0.0;

    unsigned totalLines() const { return lines + backupLines; }
};

/** Simulates the fetch/bound loop of one ET scheme over a dataset. */
class FetchSimulator
{
  public:
    /**
     * @param profile preprocessing output; required for kDual/kOpt,
     *        optional otherwise (kNone..kHeuristic only need the
     *        global range for IP, which a null profile approximates
     *        with a wide interval)
     */
    FetchSimulator(const anns::VectorSet &vs, anns::Metric metric,
                   EtScheme scheme, const EtProfile *profile);

    /** Simulate one comparison against @p threshold. */
    FetchResult simulate(const float *query, VectorId v,
                         double threshold) const;

    /**
     * Simulate the rank-local part of a comparison when the vector is
     * vertically split: only dims [dim_begin, dim_end) are fetched by
     * this rank, and its local bound (partial distance of the
     * sub-vector, everything else conservatively open) is compared to
     * the full threshold — the paper's reduced-effectiveness local ET.
     */
    FetchResult simulateRange(const float *query, VectorId v,
                              double threshold, unsigned dim_begin,
                              unsigned dim_end) const;

    const FetchPlanSpec &plan() const { return plan_; }
    EtScheme scheme() const { return scheme_; }

    /** Number of vectors in the underlying set. */
    std::size_t datasetSize() const { return vs_.size(); }

    /** Lines per vector when nothing terminates (layout size). */
    unsigned fullLines() const { return plan_.totalLines(); }

    /** Lines of one uncompressed backup vector. */
    unsigned
    backupVectorLines() const
    {
        return static_cast<unsigned>(
            divCeil(static_cast<std::uint64_t>(vs_.dims()) *
                        keyBits(vs_.type()),
                    512));
    }

    /** Prefix-elimination state (kOpt only). */
    const PrefixElimination *prefixElimination() const { return pe_.get(); }

    /**
     * Plan for a sub-vector of @p dims dimensions (cached). Safe to
     * call concurrently: simulate()/simulateRange() are otherwise
     * pure, so the timing layer precomputes fetch results across
     * queries in parallel.
     */
    const FetchPlanSpec &subPlan(unsigned dims) const;

  private:
    /**
     * Whether this scheme performs bound checks at all. Matches the
     * paper's observation that partial-dimension-only ET (prior work)
     * "does not work for the inner-product metric" — unfetched
     * dimensions can contribute arbitrary negative values, and prior
     * designs have no mechanism to bound them, so NDP-DimET degrades
     * to NDP-Base on IP datasets (Figure 6, GloVe/Txt2Img).
     */
    bool
    checksBounds() const
    {
        if (scheme_ == EtScheme::kNone)
            return false;
        if (scheme_ == EtScheme::kDimOnly &&
            metric_ != anns::Metric::kL2) {
            return false;
        }
        return true;
    }

    const anns::VectorSet &vs_;
    anns::Metric metric_;
    EtScheme scheme_;
    const EtProfile *profile_;
    FetchPlanSpec plan_;
    ValueInterval global_range_;
    std::unique_ptr<PrefixElimination> pe_;
    // Lazily grown plan cache; entries are stable once inserted (the
    // map guarantees reference stability). The hot path is read-mostly
    // — a handful of distinct sub-vector sizes, millions of lookups —
    // so readers take the shared side and only a miss upgrades to the
    // exclusive side with a double-checked insert.
    mutable SharedMutex sub_plans_mu_;
    mutable std::map<unsigned, FetchPlanSpec> sub_plans_
        ANSMET_GUARDED_BY(sub_plans_mu_);
};

} // namespace ansmet::et

#endif // ANSMET_ET_FETCHSIM_H
