/**
 * @file
 * Early-terminated *exact* search (Section 4.1: "our approach has no
 * accuracy loss, and can even be used in accurate search algorithms
 * like kmeans and kNN").
 *
 * A brute-force kNN scan where each candidate's fetch is cut short as
 * soon as its conservative lower bound crosses the current kth-best
 * distance. The result is bit-identical to the plain scan; only the
 * amount of data touched changes.
 */

#ifndef ANSMET_ET_EXACT_H
#define ANSMET_ET_EXACT_H

#include <cstdint>
#include <vector>

#include "anns/heap.h"
#include "et/fetchsim.h"

namespace ansmet::et {

/** Statistics of one early-terminated exact scan. */
struct ExactScanStats
{
    std::uint64_t linesFetched = 0;
    std::uint64_t linesFull = 0; //!< what a plain scan would fetch
    std::uint64_t terminated = 0;

    double
    savedFraction() const
    {
        if (linesFull == 0)
            return 0.0;
        return 1.0 - static_cast<double>(linesFetched) /
                         static_cast<double>(linesFull);
    }
};

/**
 * Exact kNN with early termination.
 * @param sim a FetchSimulator over the dataset (any lossless scheme)
 * @param stats optional accounting of the data-touch savings
 * @return the exact k nearest neighbors, ascending by distance
 */
std::vector<anns::Neighbor>
exactKnnEt(const FetchSimulator &sim, const float *query, std::size_t k,
           ExactScanStats *stats = nullptr);

/**
 * One k-means assignment pass with early termination: for each vector
 * the candidate centroid's bound check prunes against the best
 * centroid distance so far. Returns the assignment; exact.
 *
 * @param centroids row-major [k x dims]
 */
std::vector<unsigned>
kmeansAssignEt(const anns::VectorSet &vs, anns::Metric metric,
               const std::vector<float> &centroids, unsigned k,
               ExactScanStats *stats = nullptr);

} // namespace ansmet::et

#endif // ANSMET_ET_EXACT_H
