#include "et/profile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/prng.h"
#include "et/bounds.h"

namespace ansmet::et {

double
EtProfile::expectedFetchLines() const
{
    double e = 0.0;
    for (std::size_t i = 0; i < fetchCountDist.size(); ++i)
        e += fetchCountDist[i] * static_cast<double>(i);
    return e;
}

namespace {

/** Sample pairwise distances; return the percentile threshold. */
double
sampleThreshold(const anns::VectorSet &vs, anns::Metric metric,
                const std::vector<VectorId> &sample, double percentile)
{
    std::vector<double> dists;
    std::vector<float> buf(vs.dims());
    for (std::size_t i = 0; i < sample.size(); ++i) {
        vs.toFloat(sample[i], buf.data());
        for (std::size_t j = 0; j < sample.size(); ++j) {
            if (i == j)
                continue;
            dists.push_back(
                anns::distance(metric, buf.data(), vs, sample[j]));
        }
    }
    ANSMET_ASSERT(!dists.empty());
    std::sort(dists.begin(), dists.end());
    auto idx = static_cast<std::size_t>(
        percentile * static_cast<double>(dists.size()));
    idx = std::min(idx, dists.size() - 1);
    return dists[idx];
}

/**
 * pET of one (query, vector) pair: the smallest uniform per-element
 * prefix length whose bound exceeds the threshold; W+1 if none.
 */
unsigned
etPosition(const anns::VectorSet &vs, anns::Metric metric, const float *q,
           VectorId v, double threshold, ValueInterval global_range)
{
    const unsigned w = keyBits(vs.type());
    const unsigned d = vs.dims();
    BoundAccumulator acc(metric, q, d, global_range);

    std::vector<std::uint32_t> keys(d);
    for (unsigned i = 0; i < d; ++i)
        keys[i] = toKey(vs.type(), vs.bitsAt(v, i));

    // One batched kernel pass per prefix length: stage every
    // dimension's refined interval, then tighten them all at once.
    std::vector<double> nlo(d), nhi(d);
    for (unsigned len = 1; len <= w; ++len) {
        const unsigned shift = w - len;
        for (unsigned i = 0; i < d; ++i) {
            const ValueInterval iv =
                intervalFromPrefix(vs.type(), keys[i] >> shift, len);
            nlo[i] = iv.lo;
            nhi[i] = iv.hi;
        }
        acc.updateBatch(0, d, nlo.data(), nhi.data());
        if (acc.lowerBound() >= threshold)
            return len;
    }
    return w + 1;
}

} // namespace

std::uint64_t
accessCostLines(unsigned p_et, unsigned key_width, unsigned prefix_len,
                unsigned dims, const DualParams &dp)
{
    const unsigned payload = key_width - prefix_len;
    const std::uint64_t mc = 512 / dp.nc;
    const std::uint64_t mf = 512 / dp.nf;
    const std::uint64_t lines_c = divCeil(dims, mc);
    const std::uint64_t lines_f = divCeil(dims, mf);

    const unsigned coarse_bits = std::min(dp.nc * dp.tc, payload);
    const unsigned fine_bits = payload - coarse_bits;
    const std::uint64_t full_cost =
        lines_c * divCeil(coarse_bits, dp.nc) +
        lines_f * divCeil(fine_bits, dp.nf);

    if (p_et > key_width)
        return full_cost; // never terminates: fetch everything

    // Bits needed beyond the eliminated prefix (at least one step).
    const unsigned need =
        p_et > prefix_len ? p_et - prefix_len : 1;

    if (need <= coarse_bits) {
        return std::min<std::uint64_t>(lines_c * divCeil(need, dp.nc),
                                       full_cost);
    }
    const std::uint64_t cost =
        lines_c * divCeil(coarse_bits, dp.nc) +
        lines_f * divCeil(need - coarse_bits, dp.nf);
    return std::min(cost, full_cost);
}

std::uint64_t
planCostLines(const FetchPlanSpec &plan, unsigned p_et, unsigned key_width)
{
    if (p_et > key_width)
        return plan.totalLines();
    std::uint64_t lines = 0;
    for (unsigned l = 0; l < plan.levels(); ++l) {
        lines += plan.linesInLevel(l);
        if (plan.knownBitsAfterLevel(l) >= p_et)
            return lines;
    }
    return lines;
}

DualParams
optimizeDual(const std::vector<unsigned> &et_positions, unsigned key_width,
             unsigned prefix_len, unsigned dims)
{
    ANSMET_ASSERT(prefix_len < key_width);
    const unsigned payload = key_width - prefix_len;

    static const unsigned kCoarse[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
    static const unsigned kFine[] = {1, 2, 3, 4, 6, 8};

    // The key-bit position histogram lets each candidate plan be
    // costed in O(W) instead of O(#samples).
    std::vector<std::uint64_t> at(key_width + 2, 0);
    for (const unsigned p : et_positions)
        ++at[std::min<unsigned>(p, key_width + 1)];

    // Dummy scalar type of the right width for plan construction.
    const ScalarType t = key_width == 8
                             ? ScalarType::kUint8
                             : (key_width == 16 ? ScalarType::kFp16
                                                : ScalarType::kFp32);
    const bool meta = prefix_len > 0;

    DualParams best{std::min(payload, 8u), 0, std::min(payload, 4u)};
    std::uint64_t best_cost = ~std::uint64_t{0};

    for (const unsigned nc : kCoarse) {
        if (nc > payload)
            continue;
        const unsigned max_tc =
            static_cast<unsigned>(divCeil(payload, nc));
        for (const unsigned nf : kFine) {
            if (nf > nc)
                continue;
            for (unsigned tc = 0; tc <= max_tc; ++tc) {
                // tc == max_tc with nf unused is the "uniform nc" plan.
                const DualParams dp{nc, tc, nf};
                const FetchPlanSpec plan = FetchPlanSpec::dual(
                    t, dims, prefix_len, nc, tc, nf, meta);
                std::uint64_t cost = 0;
                for (unsigned p = 1; p <= key_width + 1; ++p) {
                    if (at[p])
                        cost += at[p] * planCostLines(plan, p, key_width);
                }
                if (cost < best_cost) {
                    best_cost = cost;
                    best = dp;
                }
            }
        }
    }
    return best;
}

double
klDivergence(const std::vector<double> &p, const std::vector<double> &q,
             double eps)
{
    const std::size_t n = std::max(p.size(), q.size());
    double kl = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double pi = (i < p.size() ? p[i] : 0.0) + eps;
        const double qi = (i < q.size() ? q[i] : 0.0) + eps;
        kl += pi * std::log(pi / qi);
    }
    return kl;
}

EtProfile
buildProfile(const anns::VectorSet &vs, anns::Metric metric,
             const ProfileConfig &cfg)
{
    EtProfile prof;
    prof.type = vs.type();
    prof.metric = metric;
    prof.dims = vs.dims();
    const unsigned w = keyBits(vs.type());

    // Global element value range over the full set (needed for a sound
    // IP bound on unfetched dimensions).
    double lo = vs.at(0, 0), hi = lo;
    for (std::size_t v = 0; v < vs.size(); ++v) {
        for (unsigned d = 0; d < vs.dims(); ++d) {
            const double x = vs.at(static_cast<VectorId>(v), d);
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
    }
    prof.globalRange = {lo, hi};

    // Sample vectors.
    Prng rng(cfg.seed);
    const std::size_t ns = std::min(cfg.numSamples, vs.size());
    std::vector<VectorId> sample;
    while (sample.size() < ns) {
        const auto v = static_cast<VectorId>(rng.below(vs.size()));
        if (std::find(sample.begin(), sample.end(), v) == sample.end())
            sample.push_back(v);
    }

    prof.threshold = sampleThreshold(vs, metric, sample,
                                     cfg.thresholdPercentile);

    // Prefix entropy per length (Figure 3, blue curve).
    std::vector<std::uint32_t> keys;
    keys.reserve(sample.size() * vs.dims());
    for (const VectorId v : sample)
        for (unsigned d = 0; d < vs.dims(); ++d)
            keys.push_back(toKey(vs.type(), vs.bitsAt(v, d)));

    // Sorted run-length counting: summation order is ascending prefix
    // value, so the floating-point entropy sum is schedule- and
    // hash-independent (iterating an unordered_map here would make the
    // sum depend on bucket order).
    prof.prefixEntropy.resize(w);
    std::vector<std::uint32_t> shifted(keys.size());
    for (unsigned len = 1; len <= w; ++len) {
        for (std::size_t i = 0; i < keys.size(); ++i)
            shifted[i] = keys[i] >> (w - len);
        std::sort(shifted.begin(), shifted.end());
        double h = 0.0;
        for (std::size_t i = 0; i < shifted.size();) {
            std::size_t j = i + 1;
            while (j < shifted.size() && shifted[j] == shifted[i])
                ++j;
            const double p = static_cast<double>(j - i) /
                             static_cast<double>(keys.size());
            h -= p * std::log2(p);
            i = j;
        }
        prof.prefixEntropy[len - 1] = h; // raw entropy in bits
    }

    // ET positions over sampled (query, vector) pairs (Figure 3, red).
    std::vector<float> qbuf(vs.dims());
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < sample.size() && pairs < cfg.maxPairs; ++i) {
        vs.toFloat(sample[i], qbuf.data());
        for (std::size_t j = 0; j < sample.size() && pairs < cfg.maxPairs;
             ++j) {
            if (i == j)
                continue;
            prof.etPositions.push_back(
                etPosition(vs, metric, qbuf.data(), sample[j],
                           prof.threshold, prof.globalRange));
            ++pairs;
        }
    }

    prof.etFrequency.assign(w, 0.0);
    for (const unsigned p : prof.etPositions)
        if (p <= w)
            prof.etFrequency[p - 1] += 1.0;
    for (auto &f : prof.etFrequency)
        f /= static_cast<double>(prof.etPositions.size());

    // Common prefix from the sample.
    prof.commonPrefix = findCommonPrefix(vs.type(), keys, cfg.outlierFrac);

    // Dual-granularity parameters, with and without elimination.
    prof.dualNoPrefix = optimizeDual(prof.etPositions, w, 0, vs.dims());
    prof.dualWithPrefix = optimizeDual(prof.etPositions, w,
                                       prof.commonPrefix.length, vs.dims());

    // Fetch-count distribution under the ETOpt plan (for polling).
    const FetchPlanSpec plan = FetchPlanSpec::dual(
        vs.type(), vs.dims(), prof.commonPrefix.length,
        prof.dualWithPrefix.nc, prof.dualWithPrefix.tc,
        prof.dualWithPrefix.nf, prof.commonPrefix.length > 0);
    const unsigned max_lines = plan.totalLines();
    prof.fetchCountDist.assign(max_lines + 1, 0.0);
    for (const unsigned p : prof.etPositions) {
        const auto lines = static_cast<std::size_t>(
            std::min<std::uint64_t>(planCostLines(plan, p, w), max_lines));
        prof.fetchCountDist[lines] += 1.0;
    }
    for (auto &f : prof.fetchCountDist)
        f /= static_cast<double>(prof.etPositions.size());

    return prof;
}

} // namespace ansmet::et
