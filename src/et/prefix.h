/**
 * @file
 * Offline common-prefix elimination with outlier handling
 * (Section 4.2, Figure 4 of the paper).
 *
 * A single (mostly) common key prefix of length P is chosen from the
 * sampling set so that at most outlier_frac of the sampled *elements*
 * mismatch it. Storage then keeps only the remaining W-P bits per
 * element; the prefix itself lives in the NDP unit's configuration.
 *
 * Vectors whose elements all match are "normal". A vector with any
 * mismatching element is an "outlier vector" (OlVec bit set): each of
 * its elements spends 1 bit on an OlElm flag, and outlier elements
 * re-purpose their W-P-1 remaining bits as
 *   [ matchLen : ceil(log2 P) bits ][ key bits from position matchLen ],
 * dropping as many low bits as no longer fit. Dropped bits make the
 * recovered value an interval, so a final in-bound result on an
 * outlier vector must be re-checked against an uncompressed backup
 * copy (the paper's default, no accuracy loss) unless the caller opts
 * into lossy mode (Table 5 row b).
 */

#ifndef ANSMET_ET_PREFIX_H
#define ANSMET_ET_PREFIX_H

#include <cstdint>
#include <vector>

#include "anns/vector.h"
#include "common/bitops.h"
#include "et/sortable.h"

namespace ansmet::et {

/** The shared key prefix kept on-chip. */
struct CommonPrefix
{
    ScalarType type = ScalarType::kFp32;
    unsigned length = 0;      //!< P, in bits
    std::uint32_t bits = 0;   //!< LSB-aligned P-bit prefix value
};

/**
 * Find the longest prefix such that at most @p outlier_frac of
 * @p sample_keys mismatch it. The prefix is grown greedily bit by bit,
 * always following the majority next bit.
 */
CommonPrefix findCommonPrefix(ScalarType t,
                              const std::vector<std::uint32_t> &sample_keys,
                              double outlier_frac);

/**
 * Dataset-wide prefix-elimination state: classification of every
 * vector/element and the progressive "how many key bits are known
 * after f fetched storage bits" model used by the fetch simulator.
 */
class PrefixElimination
{
  public:
    /**
     * @param cp prefix chosen from the sampling set
     * @param vs the full vector set (classified eagerly)
     */
    PrefixElimination(const CommonPrefix &cp, const anns::VectorSet &vs);

    const CommonPrefix &prefix() const { return cp_; }

    /** Bits of the matchLen field in the outlier element format. */
    unsigned metaBits() const { return meta_bits_; }

    bool
    vectorIsOutlier(VectorId v) const
    {
        return outlier_vec_[v];
    }

    /**
     * Key-prefix bits of element (v, d) known once @p fetched_bits of
     * its transformed storage (W - P bits budget) have arrived.
     */
    unsigned knownLen(VectorId v, unsigned d, unsigned fetched_bits) const;

    /** knownLen at full fetch (equals key width iff losslessly stored). */
    unsigned maxKnownLen(VectorId v, unsigned d) const;

    /** Number of outlier vectors (those with backup copies). */
    std::size_t numOutlierVectors() const { return num_outlier_vecs_; }

    /** Number of outlier elements across the set. */
    std::size_t numOutlierElements() const { return num_outlier_elems_; }

    /**
     * Fraction of the original data size saved by elimination:
     * (P*D - (D+1)) bits per vector over W*D, not counting backups.
     */
    double spaceSavedFraction() const;

    /** Backup storage as a fraction of the original data size. */
    double extraSpaceFraction() const;

  private:
    /** Leading key bits matching the common prefix (0..P). */
    unsigned matchedLen(std::uint32_t key) const;

    CommonPrefix cp_;
    const anns::VectorSet &vs_;
    unsigned meta_bits_;
    unsigned key_width_;
    std::vector<bool> outlier_vec_;
    // matchLen per element, stored only for outlier vectors as a dense
    // side table: outlier_slot_[v] is the vector's ordinal among the
    // outliers (kNoSlot for normal vectors) and match_len_ holds
    // dims() bytes per slot, in slot order. Slot order is id order, so
    // lookup is O(1) and any walk over the table is deterministic.
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    std::vector<std::uint32_t> outlier_slot_;
    std::vector<std::uint8_t> match_len_;
    std::size_t num_outlier_vecs_ = 0;
    std::size_t num_outlier_elems_ = 0;
};

} // namespace ansmet::et

#endif // ANSMET_ET_PREFIX_H
