#include "et/fetchsim.h"

#include <limits>
#include <mutex>

#include "common/check.h"
#include "obs/metrics.h"

namespace ansmet::et {

namespace {

struct EtMetrics
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter comparisons = reg.counter("et.comparisons");
    obs::Counter linesFetched = reg.counter("et.lines_fetched");
    obs::Counter linesSkipped = reg.counter("et.lines_skipped");
    obs::Counter terminations = reg.counter("et.terminations");
    obs::Counter boundSteps = reg.counter("et.bound_steps");
    obs::Counter backupLines = reg.counter("et.backup_lines");
};

EtMetrics &
etMetrics()
{
    static EtMetrics m;
    return m;
}

/**
 * One comparison's metric deltas, accumulated locally and published
 * in a single batch on scope exit: simulateRange runs on thread-pool
 * workers during precompute, and per-line shard traffic there would
 * be measurable.
 */
struct ComparisonRecord
{
    unsigned totalLines;
    unsigned lines = 0;
    unsigned boundSteps = 0;
    unsigned backupLines = 0;
    bool terminated = false;

    explicit ComparisonRecord(unsigned total) : totalLines(total) {}

    ~ComparisonRecord()
    {
        EtMetrics &m = etMetrics();
        m.comparisons.inc();
        m.linesFetched.add(lines);
        m.linesSkipped.add(totalLines - lines);
        m.boundSteps.add(boundSteps);
        m.backupLines.add(backupLines);
        if (terminated)
            m.terminations.inc();
    }
};

} // namespace

const char *
schemeName(EtScheme s)
{
    switch (s) {
      case EtScheme::kNone:      return "None";
      case EtScheme::kDimOnly:   return "DimET";
      case EtScheme::kBitSerial: return "BitET";
      case EtScheme::kHeuristic: return "ET";
      case EtScheme::kDual:      return "ET+Dual";
      case EtScheme::kOpt:       return "ETOpt";
    }
    return "?";
}

namespace {

/**
 * Per-thread comparison scratch: a reusable bound accumulator plus the
 * interval staging arrays the batched bound kernel consumes. One-time
 * allocation per thread; simulate() then runs allocation-free no
 * matter how many comparisons it performs.
 */
struct SimScratch
{
    BoundAccumulator acc;
    std::vector<double> nlo;
    std::vector<double> nhi;

    void
    arm(unsigned dims)
    {
        if (nlo.size() < dims) {
            nlo.resize(dims);
            nhi.resize(dims);
        }
    }
};

thread_local SimScratch t_scratch;

FetchPlanSpec
planFor(EtScheme s, ScalarType t, unsigned dims, const EtProfile *prof)
{
    switch (s) {
      case EtScheme::kNone:
      case EtScheme::kDimOnly:
        return FetchPlanSpec::full(t, dims);
      case EtScheme::kBitSerial:
        return FetchPlanSpec::bitSerial(t, dims);
      case EtScheme::kHeuristic:
        return FetchPlanSpec::heuristic(t, dims);
      case EtScheme::kDual: {
        ANSMET_ASSERT(prof, "kDual needs a profile");
        const DualParams &dp = prof->dualNoPrefix;
        return FetchPlanSpec::dual(t, dims, 0, dp.nc, dp.tc, dp.nf);
      }
      case EtScheme::kOpt: {
        ANSMET_ASSERT(prof, "kOpt needs a profile");
        const DualParams &dp = prof->dualWithPrefix;
        // The OlElm bitmap is only needed when a prefix is eliminated
        // (no prefix -> no outliers to flag).
        return FetchPlanSpec::dual(t, dims, prof->commonPrefix.length,
                                   dp.nc, dp.tc, dp.nf,
                                   prof->commonPrefix.length > 0);
      }
    }
    ANSMET_PANIC("unknown scheme");
}

} // namespace

FetchSimulator::FetchSimulator(const anns::VectorSet &vs,
                               anns::Metric metric, EtScheme scheme,
                               const EtProfile *profile)
    : vs_(vs), metric_(metric), scheme_(scheme), profile_(profile),
      plan_(planFor(scheme, vs.type(), vs.dims(), profile)),
      global_range_{-std::numeric_limits<double>::max() / 4,
                    std::numeric_limits<double>::max() / 4}
{
    ANSMET_ASSERT(plan_.valid());
    if (profile)
        global_range_ = profile->globalRange;
    if (scheme == EtScheme::kOpt) {
        pe_ = std::make_unique<PrefixElimination>(profile->commonPrefix,
                                                  vs);
    }
}

const FetchPlanSpec &
FetchSimulator::subPlan(unsigned dims) const
{
    if (dims == vs_.dims())
        return plan_;
    {
        // Read-mostly fast path: after warm-up every lookup lands here
        // and proceeds concurrently with every other reader.
        ReaderLock lk(sub_plans_mu_);
        const auto it = sub_plans_.find(dims);
        if (it != sub_plans_.end())
            return it->second;
    }
    WriterLock lk(sub_plans_mu_);
    // Double-checked: another thread may have built the plan between
    // the two lock acquisitions.
    auto it = sub_plans_.find(dims);
    if (it == sub_plans_.end()) {
        FetchPlanSpec plan;
        if ((scheme_ == EtScheme::kDual || scheme_ == EtScheme::kOpt) &&
            profile_) {
            // Line packing depends on the sub-vector dimensionality, so
            // the offline pass re-optimizes (nC, TC, nF) per sub-vector
            // size rather than inheriting the full-vector parameters.
            const unsigned prefix = scheme_ == EtScheme::kOpt
                                        ? profile_->commonPrefix.length
                                        : 0;
            const DualParams dp = optimizeDual(
                profile_->etPositions, keyBits(vs_.type()), prefix, dims);
            plan = FetchPlanSpec::dual(vs_.type(), dims, prefix, dp.nc,
                                       dp.tc, dp.nf,
                                       scheme_ == EtScheme::kOpt &&
                                           prefix > 0);
        } else {
            plan = planFor(scheme_, vs_.type(), dims, profile_);
        }
        it = sub_plans_.emplace(dims, std::move(plan)).first;
    }
    return it->second;
}

FetchResult
FetchSimulator::simulate(const float *query, VectorId v,
                         double threshold) const
{
    return simulateRange(query, v, threshold, 0, vs_.dims());
}

FetchResult
FetchSimulator::simulateRange(const float *query, VectorId v,
                              double threshold, unsigned dim_begin,
                              unsigned dim_end) const
{
    ANSMET_CHECK(dim_begin < dim_end && dim_end <= vs_.dims(),
                 "bad dimension range [", dim_begin, ", ", dim_end, ")");
    const FetchPlanSpec &plan = subPlan(dim_end - dim_begin);

    FetchResult res;
    res.exactDist = anns::distance(metric_, query, vs_, v);
    res.accepted = res.exactDist < threshold;

    const unsigned w = keyBits(vs_.type());
    ComparisonRecord rec(plan.totalLines());

    if (!checksBounds()) {
        // Plain full fetch of the sub-vector.
        res.lines = plan.totalLines();
        res.estimate = res.exactDist;
        rec.lines = res.lines;
        return res;
    }

    // The local bound covers only this rank's dims; all others keep
    // their conservative initial contribution. The accumulator and the
    // interval staging arrays are leased from the per-thread scratch,
    // so a comparison allocates nothing.
    SimScratch &scratch = t_scratch;
    scratch.arm(vs_.dims());
    BoundAccumulator &acc = scratch.acc;
    acc.reset(metric_, query, vs_.dims(), global_range_);
    double *const nlo = scratch.nlo.data();
    double *const nhi = scratch.nhi.data();
    FetchCursor cursor(plan);

    // The eliminated common prefix is known on-chip before any fetch
    // for normal vectors; outlier vectors reveal nothing up front.
    const bool is_outlier = pe_ && pe_->vectorIsOutlier(v);
    if (pe_ && !is_outlier && plan.prefixLen > 0) {
        for (unsigned d = dim_begin; d < dim_end; ++d) {
            const ValueInterval iv = intervalFromPrefix(
                vs_.type(), toKey(vs_.type(), vs_.bitsAt(v, d)) >>
                                (w - plan.prefixLen),
                plan.prefixLen);
            nlo[d - dim_begin] = iv.lo;
            nhi[d - dim_begin] = iv.hi;
        }
        acc.updateBatch(dim_begin, dim_end - dim_begin, nlo, nhi);
    }

    // Each fetch step may only tighten the conservative bound; a
    // decreasing bound would mean the accumulator forgot knowledge and
    // early termination is no longer trustworthy.
    double prev_bound = acc.lowerBound();

    while (!cursor.done()) {
        const LineInfo info = cursor.next();
        ++res.lines;
        rec.lines = res.lines;
        ++rec.boundSteps;
        ANSMET_DCHECK(res.lines <= plan.totalLines(),
                      "fetch cursor overran the layout: ", res.lines,
                      " of ", plan.totalLines());

        // Stage the whole line's intervals, then tighten them in one
        // batched kernel pass. A dimension that learned nothing keeps
        // an infinite interval: the intersection is a no-op and its
        // delta is exactly zero, so skipped dims cost nothing.
        for (unsigned sd = info.dimBegin; sd < info.dimEnd; ++sd) {
            const unsigned d = dim_begin + sd;
            const unsigned slot = sd - info.dimBegin;
            unsigned known = info.knownBitsAfter;
            if (pe_) {
                const unsigned fetched =
                    info.knownBitsAfter - plan.prefixLen;
                known = pe_->knownLen(v, d, fetched);
            }
            if (known == 0) {
                nlo[slot] = -std::numeric_limits<double>::infinity();
                nhi[slot] = std::numeric_limits<double>::infinity();
                continue;
            }
            const std::uint32_t key = toKey(vs_.type(), vs_.bitsAt(v, d));
            const ValueInterval iv =
                intervalFromPrefix(vs_.type(), key >> (w - known), known);
            nlo[slot] = iv.lo;
            nhi[slot] = iv.hi;
        }
        acc.updateBatch(dim_begin + info.dimBegin,
                        info.dimEnd - info.dimBegin, nlo, nhi);

        ANSMET_DCHECK(acc.lowerBound() >= prev_bound,
                      "lower bound regressed across a fetch step: ",
                      acc.lowerBound(), " < ", prev_bound);
        prev_bound = acc.lowerBound();

        if (boundExceeds(acc.lowerBound(), threshold)) {
            res.terminatedEarly = true;
            rec.terminated = true;
            res.estimate = acc.lowerBound();
            // Lossless-vs-exact agreement: the schemes are designed so
            // termination never rejects a vector the exact comparison
            // accepts. This is THE correctness claim of the paper.
            ANSMET_CHECK(!res.accepted,
                         "early termination rejected an accepted vector");
            return res;
        }
    }

    res.estimate = acc.lowerBound();
    // A full fetch of a non-outlier vector reveals every stored bit, so
    // the accumulated bound must still lie below the exact distance (up
    // to summation-order noise); anything larger would have made a
    // lossy reject possible.
    ANSMET_DCHECK(is_outlier ||
                      res.estimate <=
                          res.exactDist +
                              1e-6 * (1.0 + std::abs(res.exactDist)),
                  "final bound ", res.estimate, " exceeds exact distance ",
                  res.exactDist);

    // In-bound result on an outlier vector: the dropped low bits make
    // the estimate inexact, so re-check this rank's share of the
    // uncompressed backup copy.
    if (is_outlier) {
        res.backupLines = static_cast<unsigned>(
            divCeil(static_cast<std::uint64_t>(dim_end - dim_begin) *
                        keyBits(vs_.type()),
                    512));
        rec.backupLines = res.backupLines;
    }

    return res;
}

} // namespace ansmet::et
