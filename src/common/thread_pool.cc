#include "common/thread_pool.h"

#include <cstdlib>
#include <string>

#include "common/check.h"

namespace ansmet {

namespace {

// Set while a thread is executing pool work; nested parallel calls on
// such a thread run inline instead of re-entering the pool.
thread_local bool tls_in_pool_work = false;

} // namespace

unsigned
ThreadPool::configuredThreads()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only config knob,
    // queried before any pool thread exists; nothing mutates the env.
    if (const char *env = std::getenv("ANSMET_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
        ANSMET_WARN("ignoring invalid ANSMET_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(configuredThreads());
    return pool;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = configuredThreads();
    workers_.reserve(threads - 1);
    for (unsigned t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(mu_);
        stop_ = true;
    }
    cv_.notifyAll();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::hasChunksLocked() const
{
    return for_job_ &&
           for_job_->next.load(std::memory_order_relaxed) < for_job_->end;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    if (workers_.empty() || tls_in_pool_work) {
        // Inline fallback: no workers, or a nested submission from a
        // worker that must not wait on pool capacity.
        task();
        return;
    }
    {
        MutexLock lk(mu_);
        ANSMET_CHECK(!stop_, "submit on a stopped thread pool");
        tasks_.push_back(std::move(task));
    }
    cv_.notifyOne();
}

void
ThreadPool::runChunks(ForJob &job)
{
    ANSMET_DCHECK(job.grain > 0 && job.body,
                  "parallelFor job published without chunks");
    const bool was_in_pool = tls_in_pool_work;
    tls_in_pool_work = true;
    for (;;) {
        const std::size_t i =
            job.next.fetch_add(job.grain, std::memory_order_relaxed);
        if (i >= job.end)
            break;
        const std::size_t hi = std::min(i + job.grain, job.end);
        try {
            (*job.body)(i, hi);
        } catch (...) {
            MutexLock lk(job.error_mu);
            if (!job.error)
                job.error = std::current_exception();
            // Keep claiming chunks so the range always completes and
            // other participants are not left spinning; only the first
            // error is reported.
        }
    }
    tls_in_pool_work = was_in_pool;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<ForJob> job;
        std::function<void()> task;
        {
            MutexLock lk(mu_);
            while (!stop_ && tasks_.empty() && !hasChunksLocked())
                cv_.wait(mu_);
            if (stop_ && tasks_.empty() && !hasChunksLocked())
                return;
            if (!tasks_.empty()) {
                task = std::move(tasks_.back());
                tasks_.pop_back();
            } else if (hasChunksLocked()) {
                job = for_job_;
                // A job is unpublished before its completion flag is
                // set, so a claimable job can never be finished.
                ANSMET_DCHECK(!job->done.load(std::memory_order_relaxed),
                              "worker claimed a completed parallelFor job");
                job->active.fetch_add(1, std::memory_order_relaxed);
            } else {
                continue;
            }
        }
        if (task) {
            const bool was = tls_in_pool_work;
            tls_in_pool_work = true;
            task();
            tls_in_pool_work = was;
            continue;
        }
        runChunks(*job);
        // acq_rel: the last worker's decrement publishes its chunk
        // writes to the waiter's acquire load in parallelFor().
        if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            MutexLock lk(job->done_mu);
            job->done_cv.notifyAll();
        }
    }
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)> &body,
    std::size_t grain)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    if (workers_.empty() || tls_in_pool_work || n == 1) {
        // Single-thread fallback and nested calls: plain serial loop.
        body(begin, end);
        return;
    }
    if (grain == 0)
        grain = std::max<std::size_t>(1, n / (8 * size()));

    auto job = std::make_shared<ForJob>();
    job->end = n;
    job->grain = grain;
    // Chunk indices are offsets from `begin` so the atomic cursor can
    // start at zero.
    const std::function<void(std::size_t, std::size_t)> shifted =
        [&body, begin](std::size_t lo, std::size_t hi) {
            body(begin + lo, begin + hi);
        };
    job->body = &shifted;

    {
        MutexLock lk(mu_);
        ANSMET_CHECK(!for_job_, "concurrent top-level parallelFor calls "
                                "on one pool are not supported");
        for_job_ = job;
    }
    cv_.notifyAll();

    // The caller participates: it claims chunks like any worker, which
    // is what makes a busy pool degrade to inline execution.
    runChunks(*job);

    {
        // Unpublish, then wait for workers still running claimed chunks.
        MutexLock lk(mu_);
        for_job_.reset();
    }
    {
        MutexLock lk(job->done_mu);
        // acquire: pairs with the workers' fetch_sub(acq_rel) so their
        // chunk writes are visible once the count drains to zero.
        while (job->active.load(std::memory_order_acquire) != 0)
            job->done_cv.wait(job->done_mu);
    }
    ANSMET_DCHECK(!job->done.load(std::memory_order_relaxed),
                  "parallelFor job completed twice");
    job->done.store(true, std::memory_order_relaxed);
    // Every chunk must have been claimed before the job is torn down;
    // a short cursor here would mean iterations were silently dropped.
    ANSMET_CHECK(job->next.load(std::memory_order_relaxed) >= job->end,
                 "parallelFor finished with unclaimed iterations");
    std::exception_ptr error;
    {
        MutexLock lk(job->error_mu);
        error = job->error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace ansmet
