#include "common/thread_pool.h"

namespace ansmet {

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool{GlobalTag{}};
    return pool;
}

} // namespace ansmet
