/**
 * @file
 * Fundamental scalar types shared by every module.
 */

#ifndef ANSMET_COMMON_TYPES_H
#define ANSMET_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace ansmet {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A value no event can be scheduled at. */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Physical byte address inside the simulated memory system. */
using Addr = std::uint64_t;

/** Identifier of a vector in the database. */
using VectorId = std::uint32_t;

constexpr VectorId kInvalidVector = std::numeric_limits<VectorId>::max();

/** Picoseconds per nanosecond, for readability at call sites. */
constexpr Tick kTicksPerNs = 1000;

/** Convert a frequency in GHz to the clock period in ticks (ps). */
constexpr Tick
periodFromGHz(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz);
}

/** Size of one DRAM burst / cacheline in bytes throughout the system. */
constexpr std::uint32_t kLineBytes = 64;

} // namespace ansmet

#endif // ANSMET_COMMON_TYPES_H
