/**
 * @file
 * Fundamental scalar types shared by every module.
 */

#ifndef ANSMET_COMMON_TYPES_H
#define ANSMET_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace ansmet {

/**
 * A span of simulated time in picoseconds.
 *
 * TickDelta is the *linear* half of the unit model: deltas add,
 * subtract, and scale by dimensionless counts (cycles, lines, ...).
 * Construction from a raw integer is explicit so a byte count or a
 * queue depth can never silently become a duration.
 */
class TickDelta
{
  public:
    constexpr TickDelta() = default;
    constexpr explicit TickDelta(std::uint64_t ps) : ps_(ps) {}

    /** Escape hatch: the raw picosecond count, for printing/stats. */
    constexpr std::uint64_t raw() const { return ps_; }

    constexpr TickDelta &operator+=(TickDelta o)
    {
        ps_ += o.ps_;
        return *this;
    }
    constexpr TickDelta &operator-=(TickDelta o)
    {
        ps_ -= o.ps_;
        return *this;
    }

    friend constexpr TickDelta operator+(TickDelta a, TickDelta b)
    {
        return TickDelta{a.ps_ + b.ps_};
    }
    friend constexpr TickDelta operator-(TickDelta a, TickDelta b)
    {
        return TickDelta{a.ps_ - b.ps_};
    }
    friend constexpr TickDelta operator*(TickDelta d, std::uint64_t n)
    {
        return TickDelta{d.ps_ * n};
    }
    friend constexpr TickDelta operator*(std::uint64_t n, TickDelta d)
    {
        return TickDelta{n * d.ps_};
    }
    friend constexpr TickDelta operator/(TickDelta d, std::uint64_t n)
    {
        return TickDelta{d.ps_ / n};
    }
    /** Ratio of two spans is a dimensionless count. */
    friend constexpr std::uint64_t operator/(TickDelta a, TickDelta b)
    {
        return a.ps_ / b.ps_;
    }
    friend constexpr TickDelta operator%(TickDelta a, TickDelta b)
    {
        return TickDelta{a.ps_ % b.ps_};
    }

    friend constexpr bool operator==(TickDelta a, TickDelta b)
    {
        return a.ps_ == b.ps_;
    }
    friend constexpr bool operator!=(TickDelta a, TickDelta b)
    {
        return a.ps_ != b.ps_;
    }
    friend constexpr bool operator<(TickDelta a, TickDelta b)
    {
        return a.ps_ < b.ps_;
    }
    friend constexpr bool operator<=(TickDelta a, TickDelta b)
    {
        return a.ps_ <= b.ps_;
    }
    friend constexpr bool operator>(TickDelta a, TickDelta b)
    {
        return a.ps_ > b.ps_;
    }
    friend constexpr bool operator>=(TickDelta a, TickDelta b)
    {
        return a.ps_ >= b.ps_;
    }

  private:
    std::uint64_t ps_ = 0;
};

/**
 * An absolute point on the simulated picosecond timeline.
 *
 * Tick is the *affine* half of the unit model: points do not add
 * (deleted below), only `Tick + TickDelta -> Tick` and
 * `Tick - Tick -> TickDelta` are unit-sound. Construction from a raw
 * integer is explicit; `.raw()` is the audited escape hatch for
 * printing, histograms, and bucket math.
 */
class Tick
{
  public:
    constexpr Tick() = default;
    constexpr explicit Tick(std::uint64_t ps) : ps_(ps) {}

    /** Escape hatch: the raw picosecond count, for printing/stats. */
    constexpr std::uint64_t raw() const { return ps_; }

    constexpr Tick &operator+=(TickDelta d)
    {
        ps_ += d.raw();
        return *this;
    }
    constexpr Tick &operator-=(TickDelta d)
    {
        ps_ -= d.raw();
        return *this;
    }

    friend constexpr Tick operator+(Tick t, TickDelta d)
    {
        return Tick{t.ps_ + d.raw()};
    }
    friend constexpr Tick operator+(TickDelta d, Tick t)
    {
        return Tick{d.raw() + t.ps_};
    }
    friend constexpr Tick operator-(Tick t, TickDelta d)
    {
        return Tick{t.ps_ - d.raw()};
    }
    friend constexpr TickDelta operator-(Tick a, Tick b)
    {
        return TickDelta{a.ps_ - b.ps_};
    }

    friend constexpr bool operator==(Tick a, Tick b)
    {
        return a.ps_ == b.ps_;
    }
    friend constexpr bool operator!=(Tick a, Tick b)
    {
        return a.ps_ != b.ps_;
    }
    friend constexpr bool operator<(Tick a, Tick b)
    {
        return a.ps_ < b.ps_;
    }
    friend constexpr bool operator<=(Tick a, Tick b)
    {
        return a.ps_ <= b.ps_;
    }
    friend constexpr bool operator>(Tick a, Tick b)
    {
        return a.ps_ > b.ps_;
    }
    friend constexpr bool operator>=(Tick a, Tick b)
    {
        return a.ps_ >= b.ps_;
    }

    // Unit-unsound operations. Deleted (not just absent) so the
    // compiler names the violated contract in its diagnostic.
    friend Tick operator+(Tick, Tick) = delete;
    friend Tick operator*(Tick, Tick) = delete;
    friend Tick operator*(Tick, std::uint64_t) = delete;
    friend Tick operator*(std::uint64_t, Tick) = delete;
    friend Tick operator/(Tick, Tick) = delete;
    friend Tick operator/(Tick, std::uint64_t) = delete;

  private:
    std::uint64_t ps_ = 0;
};

/** Stream a Tick as its raw picosecond count (logging, gtest). */
template <typename Stream>
Stream &
operator<<(Stream &os, Tick t)
{
    os << t.raw();
    return os;
}

/** Stream a TickDelta as its raw picosecond count. */
template <typename Stream>
Stream &
operator<<(Stream &os, TickDelta d)
{
    os << d.raw();
    return os;
}

/** A value no event can be scheduled at. */
constexpr Tick kMaxTick{std::numeric_limits<std::uint64_t>::max()};

/** Physical byte address inside the simulated memory system. */
using Addr = std::uint64_t;

/** Identifier of a vector in the database. */
using VectorId = std::uint32_t;

constexpr VectorId kInvalidVector = std::numeric_limits<VectorId>::max();

/** Picoseconds per nanosecond, for readability at call sites. */
constexpr TickDelta kTicksPerNs{1000};

/** Convert a frequency in GHz to the clock period in ticks (ps). */
constexpr TickDelta
periodFromGHz(double ghz)
{
    return TickDelta{static_cast<std::uint64_t>(1000.0 / ghz)};
}

/** Size of one DRAM burst / cacheline in bytes throughout the system. */
constexpr std::uint32_t kLineBytes = 64;

// The unit types are owned by the simulator core; re-export them so
// call sites can say sim::Tick / sim::TickDelta explicitly.
namespace sim {
using ansmet::Tick;
using ansmet::TickDelta;
} // namespace sim

} // namespace ansmet

#endif // ANSMET_COMMON_TYPES_H
