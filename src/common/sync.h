/**
 * @file
 * Synchronization primitives with Clang thread-safety annotations.
 *
 * Every locking contract in this codebase used to live only in
 * comments ("guarded by mu_") and was checked only dynamically, by
 * whatever interleavings TSan happened to see. Clang's Thread Safety
 * Analysis turns those comments into compile errors: a field declared
 * ANSMET_GUARDED_BY(mu_) cannot be touched without holding mu_, a
 * helper declared ANSMET_REQUIRES(mu_) cannot be called without it,
 * and `-Wthread-safety -Werror` (added automatically for Clang builds,
 * enforced by the thread-safety CI job) makes the whole contract a
 * standing compile-time race detector.
 *
 * Usage mirrors Abseil's mutex discipline:
 *
 *   class Pool {
 *     void put(T *t) { MutexLock lk(mu_); free_.push_back(t); }
 *     bool emptyLocked() const ANSMET_REQUIRES(mu_);
 *     Mutex mu_;
 *     std::vector<T *> free_ ANSMET_GUARDED_BY(mu_);
 *   };
 *
 * Off-Clang (GCC here) every macro expands to nothing and the wrapper
 * types are thin zero-overhead shims over the std primitives, so the
 * annotations cost nothing at runtime anywhere and nothing at compile
 * time off-Clang.
 *
 * This header is deliberately the only place in src/ allowed to name
 * std::mutex / std::shared_mutex / std::condition_variable directly;
 * tools/ansmet_lint.py rule R4 (ansmet-rawsync) enforces that every
 * other file uses these wrappers, which is what keeps the annotation
 * coverage from silently eroding.
 */

#ifndef ANSMET_COMMON_SYNC_H
#define ANSMET_COMMON_SYNC_H

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------
// Annotation macros (no-ops off-Clang).
// ---------------------------------------------------------------------

#if defined(__clang__)
#define ANSMET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ANSMET_THREAD_ANNOTATION(x) // not supported by this compiler
#endif

/** Marks a class as a lockable capability ("mutex", "shared_mutex"). */
#define ANSMET_CAPABILITY(name) ANSMET_THREAD_ANNOTATION(capability(name))

/** Marks an RAII class that acquires in its ctor, releases in its dtor. */
#define ANSMET_SCOPED_CAPABILITY ANSMET_THREAD_ANNOTATION(scoped_lockable)

/** Data member that may only be touched while holding @p x. */
#define ANSMET_GUARDED_BY(x) ANSMET_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by @p x. */
#define ANSMET_PT_GUARDED_BY(x) ANSMET_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capabilities held. */
#define ANSMET_REQUIRES(...) \
    ANSMET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that must be called with at least shared (reader) access. */
#define ANSMET_REQUIRES_SHARED(...) \
    ANSMET_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the capability and does not release it. */
#define ANSMET_ACQUIRE(...) \
    ANSMET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Shared-mode counterpart of ANSMET_ACQUIRE. */
#define ANSMET_ACQUIRE_SHARED(...) \
    ANSMET_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function that releases a held capability. */
#define ANSMET_RELEASE(...) \
    ANSMET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Shared-mode counterpart of ANSMET_RELEASE. */
#define ANSMET_RELEASE_SHARED(...) \
    ANSMET_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function that acquires the capability only when it returns @p ret. */
#define ANSMET_TRY_ACQUIRE(...) \
    ANSMET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must be called WITHOUT the capabilities held (it
 *  acquires them itself; calling with them held would deadlock). */
#define ANSMET_EXCLUDES(...) \
    ANSMET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the named capability. */
#define ANSMET_RETURN_CAPABILITY(x) \
    ANSMET_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Policy: not
 * used anywhere in src/ (the acceptance bar for the annotation layer);
 * kept defined so tests can exercise deliberately-racy fixtures.
 */
#define ANSMET_NO_THREAD_SAFETY_ANALYSIS \
    ANSMET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ansmet {

class CondVar;

// ---------------------------------------------------------------------
// Annotated primitives.
// ---------------------------------------------------------------------

/** Exclusive mutex; identical to std::mutex at runtime. */
class ANSMET_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ANSMET_ACQUIRE() { mu_.lock(); }
    void unlock() ANSMET_RELEASE() { mu_.unlock(); }
    bool try_lock() ANSMET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/** Reader/writer mutex; identical to std::shared_mutex at runtime. */
class ANSMET_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() ANSMET_ACQUIRE() { mu_.lock(); }
    void unlock() ANSMET_RELEASE() { mu_.unlock(); }
    void lock_shared() ANSMET_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() ANSMET_RELEASE_SHARED() { mu_.unlock_shared(); }

  private:
    std::shared_mutex mu_;
};

/** std::lock_guard<Mutex> with scoped-capability annotations. */
class ANSMET_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ANSMET_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() ANSMET_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/** Scoped shared (reader) lock over a SharedMutex. */
class ANSMET_SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &mu) ANSMET_ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lock_shared();
    }
    ~ReaderLock() ANSMET_RELEASE() { mu_.unlock_shared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mu_;
};

/** Scoped exclusive (writer) lock over a SharedMutex. */
class ANSMET_SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &mu) ANSMET_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~WriterLock() ANSMET_RELEASE() { mu_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mu_;
};

/**
 * Condition variable bound to ansmet::Mutex.
 *
 * wait() takes the Mutex itself (annotated ANSMET_REQUIRES, so the
 * analysis proves the caller holds it) rather than a std lock object;
 * the temporary std::unique_lock built inside wait() adopts and then
 * releases ownership purely to satisfy std::condition_variable's
 * interface, and is invisible to the analysis. Callers loop over their
 * predicate explicitly:
 *
 *   MutexLock lk(mu_);
 *   while (!readyLocked())
 *       cv_.wait(mu_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mu, block, reacquire before returning. */
    void
    wait(Mutex &mu) ANSMET_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
        cv_.wait(lk);
        lk.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace ansmet

#endif // ANSMET_COMMON_SYNC_H
