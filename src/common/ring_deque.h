/**
 * @file
 * Growable power-of-two ring buffer with deque front/back semantics.
 *
 * Replacement for `std::deque` in simulation hot loops (NDP QSHR task
 * FIFOs, DRAM bus-transfer queues): std::deque allocates and frees a
 * node block as its size crosses chunk boundaries, which shows up as
 * steady-state allocator traffic. RingDeque keeps one contiguous
 * buffer that only ever grows, so a warmed-up queue never touches the
 * allocator again (see DESIGN.md, "Hot-path allocation rules").
 *
 * T must be default-constructible and movable. pop_front() resets the
 * vacated element to a default-constructed T, so resources held by
 * moved-from elements (e.g. callbacks) are released eagerly.
 */

#ifndef ANSMET_COMMON_RING_DEQUE_H
#define ANSMET_COMMON_RING_DEQUE_H

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ansmet {

template <typename T>
class RingDeque
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T &
    front()
    {
        ANSMET_DCHECK(count_ > 0, "front() on empty RingDeque");
        return buf_[head_];
    }

    const T &
    front() const
    {
        ANSMET_DCHECK(count_ > 0, "front() on empty RingDeque");
        return buf_[head_];
    }

    T &
    back()
    {
        ANSMET_DCHECK(count_ > 0, "back() on empty RingDeque");
        return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
    }

    const T &
    back() const
    {
        ANSMET_DCHECK(count_ > 0, "back() on empty RingDeque");
        return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
    }

    void
    push_back(T v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
        ++count_;
    }

    void
    pop_front()
    {
        ANSMET_DCHECK(count_ > 0, "pop_front() on empty RingDeque");
        buf_[head_] = T{}; // release the slot's resources now
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_front();
        head_ = 0;
    }

  private:
    void
    grow()
    {
        const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_; //!< size is always zero or a power of two
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace ansmet

#endif // ANSMET_COMMON_RING_DEQUE_H
