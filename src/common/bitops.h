/**
 * @file
 * Small bit-manipulation helpers used by the ET codecs and layouts.
 */

#ifndef ANSMET_COMMON_BITOPS_H
#define ANSMET_COMMON_BITOPS_H

#include <bit>
#include <cstdint>
#include <vector>

namespace ansmet {

/** A mask with the low @p n bits set; n may be 0..64. */
constexpr std::uint64_t
maskLow(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Extract @p len bits of @p value starting @p hi_off bits below the MSB
 * of a @p width -bit quantity. Bits are numbered MSB-first, matching the
 * fetch order of the early-termination layout.
 */
constexpr std::uint64_t
extractMsbFirst(std::uint64_t value, unsigned width, unsigned hi_off,
                unsigned len)
{
    const unsigned shift = width - hi_off - len;
    return (value >> shift) & maskLow(len);
}

/** Round @p x up to the next multiple of @p m (m > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t x, std::uint64_t m)
{
    return (x + m - 1) / m * m;
}

/** Ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True if @p x is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t x)
{
    return static_cast<unsigned>(std::countr_zero(x));
}

/** Number of bits needed to represent values 0..x (at least 1). */
constexpr unsigned
bitsFor(std::uint64_t x)
{
    unsigned b = 1;
    while ((std::uint64_t{1} << b) <= x && b < 64)
        ++b;
    return b;
}

/**
 * An append-only MSB-first bit stream writer over a byte buffer, used to
 * serialize transformed vector layouts.
 */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<std::uint8_t> &buf) : buf_(buf) {}

    /** Append the low @p len bits of @p value, MSB of the field first. */
    void
    put(std::uint64_t value, unsigned len)
    {
        for (unsigned i = 0; i < len; ++i) {
            const unsigned bit =
                static_cast<unsigned>((value >> (len - 1 - i)) & 1);
            if (bit_pos_ == 0)
                buf_.push_back(0);
            if (bit)
                buf_.back() |= static_cast<std::uint8_t>(0x80u >> bit_pos_);
            bit_pos_ = (bit_pos_ + 1) & 7;
        }
    }

    /** Pad with zero bits up to the next multiple of @p align bits. */
    void
    align(unsigned align_bits)
    {
        const std::uint64_t pos = bitLength();
        const std::uint64_t target = roundUp(pos, align_bits);
        for (std::uint64_t i = pos; i < target; ++i)
            put(0, 1);
    }

    std::uint64_t
    bitLength() const
    {
        return buf_.size() * 8 - (bit_pos_ == 0 ? 0 : (8 - bit_pos_));
    }

  private:
    std::vector<std::uint8_t> &buf_;
    unsigned bit_pos_ = 0;
};

/** MSB-first bit stream reader, the counterpart of BitWriter. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::uint64_t bit_len)
        : data_(data), bit_len_(bit_len)
    {}

    /** Read @p len bits; reading past the end is a panic. */
    std::uint64_t
    get(unsigned len)
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < len; ++i) {
            const std::uint64_t byte = pos_ >> 3;
            const unsigned off = static_cast<unsigned>(pos_ & 7);
            v = (v << 1) | ((data_[byte] >> (7 - off)) & 1);
            ++pos_;
        }
        return v;
    }

    void seek(std::uint64_t bit_pos) { pos_ = bit_pos; }
    std::uint64_t pos() const { return pos_; }
    std::uint64_t size() const { return bit_len_; }
    bool exhausted() const { return pos_ >= bit_len_; }

  private:
    const std::uint8_t *data_;
    std::uint64_t bit_len_;
    std::uint64_t pos_ = 0;
};

} // namespace ansmet

#endif // ANSMET_COMMON_BITOPS_H
