#include "logging.h"

#include <exception>

namespace ansmet {
namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // NOLINTNEXTLINE(concurrency-mt-unsafe): terminating on a fatal
    // error; a racing second fatal path at worst double-runs atexit.
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    std::fflush(stdout);
}

} // namespace detail
} // namespace ansmet
