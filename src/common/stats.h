/**
 * @file
 * Lightweight statistics: named counters, scalar stats, and histograms.
 *
 * Components own a StatGroup; the experiment runner collects and prints
 * them. This mirrors the gem5 stats package at a much smaller scale.
 */

#ifndef ANSMET_COMMON_STATS_H
#define ANSMET_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logging.h"

namespace ansmet {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Mean/min/max accumulator for a sampled scalar. */
class ScalarStat
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        sum_sq_ += v * v;
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    variance() const
    {
        if (count_ < 2)
            return 0.0;
        const double m = mean();
        return sum_sq_ / count_ - m * m;
    }

    void
    reset()
    {
        sum_ = sum_sq_ = min_ = max_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 1) {}

    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), buckets_(buckets, 0)
    {
        ANSMET_ASSERT(hi > lo && buckets > 0);
    }

    void
    sample(double v)
    {
        ++total_;
        if (v < lo_) {
            ++underflow_;
        } else if (v >= hi_) {
            ++overflow_;
        } else {
            const auto idx = static_cast<std::size_t>(
                (v - lo_) / (hi_ - lo_) * buckets_.size());
            ++buckets_[idx < buckets_.size() ? idx : buckets_.size() - 1];
        }
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    double bucketLo(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * i / buckets_.size();
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named, ordered collection of counters/scalars owned by a component.
 * Registration returns references that stay valid for the group's
 * lifetime (values live in node-stable maps).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &n) { return counters_[n]; }
    ScalarStat &scalar(const std::string &n) { return scalars_[n]; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, ScalarStat> &scalars() const
    {
        return scalars_;
    }
    const std::string &name() const { return name_; }

    void
    reset()
    {
        for (auto &[k, c] : counters_)
            c.reset();
        for (auto &[k, s] : scalars_)
            s.reset();
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, ScalarStat> scalars_;
};

} // namespace ansmet

#endif // ANSMET_COMMON_STATS_H
