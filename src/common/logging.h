/**
 * @file
 * Error and status reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef ANSMET_COMMON_LOGGING_H
#define ANSMET_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

namespace ansmet {

namespace detail {

/** Concatenate a parameter pack into a single string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

#define ANSMET_PANIC(...) \
    ::ansmet::detail::panicImpl(__FILE__, __LINE__, \
                                ::ansmet::detail::concat(__VA_ARGS__))

#define ANSMET_FATAL(...) \
    ::ansmet::detail::fatalImpl(__FILE__, __LINE__, \
                                ::ansmet::detail::concat(__VA_ARGS__))

#define ANSMET_WARN(...) \
    ::ansmet::detail::warnImpl(::ansmet::detail::concat(__VA_ARGS__))

#define ANSMET_INFORM(...) \
    ::ansmet::detail::informImpl(::ansmet::detail::concat(__VA_ARGS__))

/** panic() if @p cond does not hold. Cheap enough to keep in release. */
#define ANSMET_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ansmet::detail::panicImpl(__FILE__, __LINE__, \
                ::ansmet::detail::concat("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace ansmet

#endif // ANSMET_COMMON_LOGGING_H
