/**
 * @file
 * Topology-ordered core set for the task runtime.
 *
 * A CoreSet names the logical CPUs the runtime may occupy, in the
 * order workers are created — which is also the victim order for work
 * stealing, so "adjacent in the set" should mean "cheap to steal from"
 * (same core complex / NUMA node). The set comes from the ANSMET_CORES
 * environment variable, a comma-separated list of core ids and ranges
 * ("0,2,4-7", "6-4" enumerates downward); when unset, the runtime
 * falls back to an identity set sized by ANSMET_THREADS (or hardware
 * concurrency), and workers float unpinned. Only an explicit
 * ANSMET_CORES pins worker threads to their cores.
 *
 * Lane 0 is always the *caller's* lane: a CoreSet of size n yields
 * n - 1 worker threads (on cores_[1..n-1]) plus the submitting thread,
 * mirroring the historical ThreadPool sizing where ANSMET_THREADS
 * counts total execution lanes including the caller.
 */

#ifndef ANSMET_COMMON_RUNTIME_CORE_SET_H
#define ANSMET_COMMON_RUNTIME_CORE_SET_H

#include <vector>

namespace ansmet::runtime {

class CoreSet
{
  public:
    /** Empty set; configured() or identity() make useful ones. */
    CoreSet() = default;

    /**
     * ANSMET_CORES if set and valid (pinned, in the given order);
     * otherwise identity(configuredLanes()) (unpinned).
     */
    static CoreSet configured();

    /** Cores 0..n-1 (clamped to >= 1), unpinned. */
    static CoreSet identity(unsigned n);

    /**
     * Parse an explicit spec like "0,2,4-7". Duplicate ids keep their
     * first position. Returns an empty set when nothing parses (the
     * caller decides the fallback).
     */
    static CoreSet parse(const char *spec);

    /** Total execution lanes (worker threads + the caller), >= 1. */
    unsigned size() const { return static_cast<unsigned>(cores_.size()); }

    /** Logical core id of lane @p lane (lane 0 = the caller). */
    unsigned operator[](unsigned lane) const { return cores_[lane]; }

    /** Whether worker threads should be pinned to their cores. */
    bool pinned() const { return pinned_; }

    /**
     * ANSMET_THREADS if set (clamped to >= 1), else hardware
     * concurrency. This is the historical ThreadPool sizing knob and
     * still governs the unpinned fallback.
     */
    static unsigned configuredLanes();

  private:
    std::vector<unsigned> cores_;
    bool pinned_ = false;
};

} // namespace ansmet::runtime

#endif // ANSMET_COMMON_RUNTIME_CORE_SET_H
