/**
 * @file
 * The unit of work the runtime schedules.
 *
 * A Task is a small-buffer callable (reusing sim::InlineFunction, so a
 * capture that outgrows the inline budget is a compile error, not a
 * heap allocation per task) plus an affinity hint naming the lane the
 * submitter wants it to run on. The hint is exactly that — a hint:
 * with stealing enabled an idle worker may run a task homed elsewhere,
 * which is why every caller of the runtime must keep task results
 * placement-independent (write to task-indexed slots, seed PRNGs per
 * item — the same contract parallelFor callers already honor).
 *
 * Tasks may belong to a TaskGroup; the worker signals the group after
 * the callable returns (or stores the first exception into it), which
 * is what TaskGroup::wait() joins on.
 */

#ifndef ANSMET_COMMON_RUNTIME_TASK_H
#define ANSMET_COMMON_RUNTIME_TASK_H

#include <cstdint>

#include "sim/inline_callback.h"

namespace ansmet::runtime {

class TaskGroup;

/** Affinity wildcard: let the runtime pick a lane (round-robin). */
inline constexpr std::uint32_t kAnyLane = 0xffffffffu;

struct Task
{
    /**
     * Inline capture budget. 48 bytes matches the event queue's
     * callback budget: enough for a shared_ptr plus a few indices,
     * deliberately too small for accidental by-value containers.
     */
    static constexpr std::size_t kInlineBytes = 48;
    using Fn = sim::InlineFunction<void(), kInlineBytes>;

    Task() = default;
    Task(Fn fn_, std::uint32_t affinity_, TaskGroup *group_ = nullptr)
        : fn(std::move(fn_)), group(group_), affinity(affinity_)
    {
    }

    Fn fn;
    TaskGroup *group = nullptr;
    std::uint32_t affinity = kAnyLane;

    explicit operator bool() const { return static_cast<bool>(fn); }
};

} // namespace ansmet::runtime

#endif // ANSMET_COMMON_RUNTIME_TASK_H
