/**
 * @file
 * Bounded lock-free task channel (fixed-capacity ring).
 *
 * Each runtime Worker owns one channel. The common traffic pattern is
 * MPSC — any thread produces into a worker's channel, the owning
 * worker consumes — but the pop side must also admit the occasional
 * *foreign* consumer: an idle worker stealing from a dry neighbour, or
 * a producer draining a full channel under backpressure. The cell
 * sequence-number design (Vyukov's bounded queue) makes both ends
 * multi-participant safe without any extra mode, so steals reuse the
 * exact pop path the owner uses.
 *
 * Memory-ordering contract (the justification -Wthread-safety cannot
 * see; lint rule R4 keeps raw sync out, these atomics are the whole
 * synchronization story):
 *
 *  - `seq` per cell carries the payload handoff: the producer's
 *    release store of seq = pos + 1 publishes the moved-in value to
 *    the consumer's acquire load, and the consumer's release store of
 *    seq = pos + capacity publishes the *emptied* cell back to the
 *    producer that will reuse it one lap later.
 *  - `head_` / `tail_` are claim cursors only: relaxed loads feed a
 *    CAS whose success (acq_rel) makes each position claimed exactly
 *    once; payload visibility never rides on them.
 *  - head_ and tail_ live on separate cache lines so producers and
 *    consumers do not false-share their claim counters.
 *
 * Capacity is rounded up to a power of two (index masking). push/pop
 * never block and never spuriously fail: tryPush returns false only
 * when the ring is genuinely full, tryPop only when it is empty.
 */

#ifndef ANSMET_COMMON_RUNTIME_MPSC_CHANNEL_H
#define ANSMET_COMMON_RUNTIME_MPSC_CHANNEL_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "common/check.h"

namespace ansmet::runtime {

/**
 * Destructive-interference padding granularity. A fixed 64 rather than
 * std::hardware_destructive_interference_size: the latter varies with
 * -mtune and compiler version (GCC warns about exactly that), and 64
 * is the line size on every target this simulator models.
 */
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class MpscChannel
{
  public:
    explicit MpscChannel(std::size_t capacity)
    {
        ANSMET_CHECK(capacity >= 2, "channel capacity must be >= 2");
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscChannel(const MpscChannel &) = delete;
    MpscChannel &operator=(const MpscChannel &) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /** Multi-producer push; false iff the ring is full. The result
     *  must be checked (lint R11): on false the value was NOT
     *  enqueued (it is left intact in @p value for a retry), so a
     *  dropped result is a silently lost task. */
    [[nodiscard]] bool
    tryPush(T &&value)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                       static_cast<std::ptrdiff_t>(pos);
            if (dif == 0) {
                // Cell is free for this lap; claim the position. CAS
                // success needs no stronger order: the payload handoff
                // is published by the seq store below.
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed,
                        std::memory_order_relaxed)) {
                    cell.value = std::move(value);
                    cell.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
                // CAS failure reloaded pos; retry with it.
            } else if (dif < 0) {
                // One full lap behind: the consumer of this cell has
                // not emptied it yet — the ring is full.
                return false;
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Consumer pop (owner or stealer); false iff the ring is empty.
     * Safe from any thread: the cell sequence admits multiple
     * consumers even though the steady-state pattern is MPSC.
     */
    bool
    tryPop(T &out)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const std::ptrdiff_t dif =
                static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(pos + 1);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed,
                        std::memory_order_relaxed)) {
                    out = std::move(cell.value);
                    // Hand the emptied cell to the producer that will
                    // claim it next lap.
                    cell.seq.store(pos + mask_ + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false; // nothing published at this position
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Cheap emptiness probe for idle/park decisions. May race with
     * concurrent pushes (a false "empty" is tolerated only because
     * the eventcount protocol re-checks after announcing the park;
     * see Runtime's parking comments).
     */
    bool
    probablyEmpty() const
    {
        const std::size_t pos = head_.load(std::memory_order_acquire);
        const std::size_t seq =
            cells_[pos & mask_].seq.load(std::memory_order_acquire);
        return static_cast<std::ptrdiff_t>(seq) -
                   static_cast<std::ptrdiff_t>(pos + 1) <
               0;
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq;
        T value;
    };

    std::unique_ptr<Cell[]> cells_;
    std::size_t mask_ = 0;
    /** Producer claim cursor; own cache line (see header comment). */
    alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
    /** Consumer claim cursor; own cache line. */
    alignas(kCacheLine) std::atomic<std::size_t> head_{0};
};

} // namespace ansmet::runtime

#endif // ANSMET_COMMON_RUNTIME_MPSC_CHANNEL_H
