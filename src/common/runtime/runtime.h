/**
 * @file
 * Task-based affinity-aware runtime — the execution engine behind all
 * host-side parallelism.
 *
 * Replaces the flat work-stealing ThreadPool (one global mutex/cv
 * handoff) with per-worker bounded MPSC channels: one Worker per core
 * of a topology-ordered CoreSet, each owning a fixed-capacity
 * lock-free ring (mpsc_channel.h). Producers push tasks to the channel
 * named by the task's affinity hint; a worker drains its own channel
 * first and steals — in victim order, its topological neighbours
 * first — only when the local channel is dry. Idle workers spin
 * briefly, then park on an eventcount, so a saturated runtime never
 * touches a lock and an idle one never burns a core.
 *
 * Determinism contract (the same one ThreadPool callers already
 * honor, now stated for tasks too): task *results* must not depend on
 * which lane ran the task or in which order independent tasks ran —
 * write to task-indexed slots, draw randomness from per-item
 * common::Prng streams, reduce in a canonical serial order. Under
 * that contract every figure is bitwise identical for any
 * ANSMET_THREADS / ANSMET_CORES setting, which CI asserts.
 *
 * Sizing mirrors the historical pool: a CoreSet of size n means n
 * execution lanes — n-1 worker threads plus the submitting caller
 * (parallelFor's caller claims chunks like any worker). A one-lane
 * runtime spawns nothing and runs every entry point inline on the
 * caller; that is the ANSMET_THREADS=1 reference path.
 *
 * Shutdown is drain-then-join: shutdown() (or the destructor) stops
 * admission — posting afterwards is a fatal ANSMET_CHECK — and workers
 * exit only once every channel is empty, so no accepted task is ever
 * dropped.
 */

#ifndef ANSMET_COMMON_RUNTIME_RUNTIME_H
#define ANSMET_COMMON_RUNTIME_RUNTIME_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "common/runtime/core_set.h"
#include "common/runtime/mpsc_channel.h"
#include "common/runtime/task.h"
#include "common/sync.h"

namespace ansmet::runtime {

class Worker;

struct RuntimeConfig
{
    /** Lanes and victim order; empty = CoreSet::configured(). */
    CoreSet cores;
    /** Per-worker channel capacity (rounded up to a power of two). */
    std::size_t channelCapacity = 1024;
    /**
     * Whether dry workers steal from their neighbours. Disabling makes
     * task placement exactly follow affinity hints (used by placement
     * tests and useful when debugging locality).
     */
    bool steal = true;
};

class Runtime
{
  public:
    explicit Runtime(RuntimeConfig cfg = {});
    ~Runtime(); // shutdown(): drain-then-join

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Process-wide runtime, sized by CoreSet::configured() at first use. */
    static Runtime &global();

    /** Execution lanes: worker threads + the calling thread, >= 1. */
    unsigned lanes() const { return numWorkers() + 1; }

    /** Worker threads (lanes() - 1). */
    unsigned numWorkers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Submit one task. The affinity hint selects the home channel
     * (affinity % numWorkers(); kAnyLane round-robins). Never drops:
     * when the home channel is full, a worker-producer runs the task
     * inline (depth-first) and an external producer helps drain the
     * channel, then retries. Fatal if called after shutdown(). With no
     * workers (one-lane runtime) the task runs inline on the caller.
     *
     * A task without a TaskGroup must not throw (fatal if it does);
     * group tasks report their first exception through wait().
     */
    void post(Task task);

    /**
     * Run body(begin, end) over [begin, end) split into chunks of
     * @p grain iterations (0 = auto). Blocks until every iteration has
     * run; the first exception from any chunk is rethrown here. The
     * caller participates, claiming chunks like a worker. Nested calls
     * from inside runtime work run the whole range inline — identical
     * semantics (and chunk layout) to the retired ThreadPool.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t, std::size_t)> &body,
                     std::size_t grain = 0);

    /**
     * Stop admission, drain every channel, join the workers.
     * Idempotent; the destructor calls it.
     */
    void shutdown();

    /**
     * Worker index (0-based) of the calling thread within the runtime
     * that employs it, or kAnyLane when the caller is not a runtime
     * worker. Test/diagnostic hook.
     */
    static std::uint32_t currentWorker();

    /** Whether the calling thread is inside runtime-executed work. */
    static bool inRuntimeWork();

  private:
    friend class Worker;
    friend class TaskGroup;

    /** Ported ThreadPool::ForJob: chunk cursor shared by all lanes. */
    struct ForJob
    {
        std::size_t end = 0;
        std::size_t grain = 1;
        const std::function<void(std::size_t, std::size_t)> *body = nullptr;
        // Chunk-claim cursor and participant count. Both seq_cst: the
        // caller's completion test is "my claims exhausted the cursor
        // AND active == 0", and the single-total-order guarantee is
        // what proves a late runner can never claim a real chunk after
        // the caller observed that state (see runnerChunks()).
        std::atomic<std::size_t> next{0};
        std::atomic<unsigned> active{0};
        std::exception_ptr error ANSMET_GUARDED_BY(error_mu);
        Mutex error_mu;
        Mutex done_mu; //!< done_cv's mutex (predicate state is `active`)
        CondVar done_cv;
    };

    /** Run one task on the calling thread (flags it as runtime work). */
    void runTask(Task &task);

    /** Steal one task for worker @p thief, victim order thief+1, ... */
    bool stealFor(unsigned thief, Task &out);

    /** Pop one task from any channel and run it; false when all dry. */
    bool helpOnce();

    /** Any channel has (probably) work; used by park decisions. */
    bool hasWork() const;

    /** Wake parked workers after a push (eventcount fast path). */
    void signalWork();

    /** Park the calling worker until work or shutdown is signalled. */
    void parkIdle();

    /** Claim-and-run chunks, bracketed by the active participant count. */
    static void runnerChunks(ForJob &job);
    /** The claim loop itself (caller and runners share it). */
    static void runChunksImpl(ForJob &job);

    RuntimeConfig cfg_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Round-robin cursor for kAnyLane submissions. relaxed: any lane
     *  is correct, the counter only spreads load. */
    std::atomic<std::uint32_t> rr_{0};
    /** Admission gate. Release store in shutdown() pairs with workers'
     *  acquire loads so they observe it after their final dry check. */
    std::atomic<bool> stopping_{false};

    // Eventcount parking (see parkIdle()/signalWork() for the Dekker
    // handshake that makes a push and a park never miss each other).
    std::atomic<unsigned> parked_{0};
    std::uint64_t wake_epoch_ ANSMET_GUARDED_BY(park_mu_) = 0;
    Mutex park_mu_;
    CondVar park_cv_;
};

/**
 * Fork-join task group: run() submits, wait() joins. The waiter helps
 * (drains runtime channels) while the group is outstanding, so a
 * saturated runtime cannot deadlock it; the first exception thrown by
 * any task in the group is rethrown from wait().
 */
class TaskGroup
{
  public:
    explicit TaskGroup(Runtime &rt) : rt_(rt) {}
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task into the group with the given affinity hint. */
    void run(std::uint32_t affinity, Task::Fn fn);

    /** Block until every run() task finished; rethrows first error. */
    void wait();

  private:
    friend class Runtime;

    void finishOne();
    void captureError(); // stores std::current_exception() (first wins)

    Runtime &rt_;
    /** Outstanding tasks. fetch_sub(acq_rel) on completion pairs with
     *  the waiter's acquire load, publishing every task's writes. */
    std::atomic<std::size_t> pending_{0};
    std::exception_ptr error_ ANSMET_GUARDED_BY(error_mu_);
    Mutex error_mu_;
    Mutex done_mu_; //!< done_cv_'s mutex (predicate state is pending_)
    CondVar done_cv_;
};

/** Convenience: Runtime::global().parallelFor(...). */
inline void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t, std::size_t)> &body,
            std::size_t grain = 0)
{
    Runtime::global().parallelFor(begin, end, body, grain);
}

} // namespace ansmet::runtime

#endif // ANSMET_COMMON_RUNTIME_RUNTIME_H
