#include "common/runtime/runtime.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "common/runtime/worker.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace ansmet::runtime {

namespace {

/** Polls before an idle worker parks / an idle waiter sleeps. Short on
 *  purpose: oversubscribed hosts (CI runners) should yield the core
 *  quickly, and the eventcount makes parking cheap to undo. */
constexpr unsigned kIdleSpins = 256;

// Worker index of the calling thread (kAnyLane for non-workers) and
// the "inside runtime work" flag that makes nested parallel sections
// run inline. Both are process-wide across Runtime instances on
// purpose: a private runtime's worker entering the global runtime must
// still take the inline path (the determinism tests' runSerial trick
// relies on exactly that).
thread_local std::uint32_t tls_worker_index = kAnyLane;
thread_local bool tls_in_runtime_work = false;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

void
pinToCore(unsigned core)
{
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core, &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0)
        ANSMET_WARN("failed to pin runtime worker to its core");
#else
    (void)core;
#endif
}

} // namespace

// ---------------------------------------------------------------------------
// Worker

void
Worker::start()
{
    thread_ = std::thread([this] { loop(); });
}

void
Worker::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Worker::loop()
{
    tls_worker_index = index_;
    if (pin_)
        pinToCore(core_);
    unsigned spins = 0;
    for (;;) {
        // Load stop *before* the dry sweep: exiting requires a sweep
        // that started after stop was visible, and the acquire pairs
        // with shutdown()'s store so every pre-shutdown push is
        // visible to that sweep — this is the drain guarantee.
        const bool stop = rt_.stopping_.load(std::memory_order_acquire);
        Task task;
        if (channel_.tryPop(task) || rt_.stealFor(index_, task)) {
            spins = 0;
            rt_.runTask(task);
            continue;
        }
        if (stop)
            return;
        if (++spins < kIdleSpins) {
            cpuRelax();
            continue;
        }
        spins = 0;
        rt_.parkIdle();
    }
}

// ---------------------------------------------------------------------------
// Runtime

Runtime::Runtime(RuntimeConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.cores.size() == 0)
        cfg_.cores = CoreSet::configured();
    const unsigned lanes = cfg_.cores.size();
    workers_.reserve(lanes - 1);
    for (unsigned w = 0; w + 1 < lanes; ++w)
        workers_.push_back(std::make_unique<Worker>(
            *this, w, cfg_.cores[w + 1], cfg_.cores.pinned(),
            cfg_.channelCapacity));
    // Start only after every channel exists: a worker's first steal
    // sweep touches all of them.
    for (auto &w : workers_)
        w->start();
}

Runtime::~Runtime() { shutdown(); }

Runtime &
Runtime::global()
{
    static Runtime rt;
    return rt;
}

std::uint32_t
Runtime::currentWorker()
{
    return tls_worker_index;
}

bool
Runtime::inRuntimeWork()
{
    return tls_in_runtime_work;
}

void
Runtime::runTask(Task &task)
{
    const bool was = tls_in_runtime_work;
    tls_in_runtime_work = true;
    if (task.group != nullptr) {
        TaskGroup *group = task.group;
        try {
            task.fn();
        } catch (...) {
            group->captureError();
        }
        tls_in_runtime_work = was;
        // Last touch of the group: after finishOne() the waiter may
        // destroy it (see TaskGroup::finishOne for the handshake).
        group->finishOne();
        return;
    }
    try {
        task.fn();
    } catch (...) {
        ANSMET_CHECK(false, "ungrouped runtime task threw an exception");
    }
    tls_in_runtime_work = was;
}

bool
Runtime::stealFor(unsigned thief, Task &out)
{
    if (!cfg_.steal)
        return false;
    const unsigned nw = numWorkers();
    // Victim order: topological neighbours first (CoreSet order), so a
    // steal preferably stays within the same core complex.
    for (unsigned k = 1; k < nw; ++k)
        if (workers_[(thief + k) % nw]->channel().tryPop(out))
            return true;
    return false;
}

bool
Runtime::helpOnce()
{
    Task task;
    for (auto &w : workers_) {
        if (w->channel().tryPop(task)) {
            runTask(task);
            return true;
        }
    }
    return false;
}

bool
Runtime::hasWork() const
{
    for (const auto &w : workers_)
        if (!w->channel().probablyEmpty())
            return true;
    return false;
}

void
Runtime::post(Task task)
{
    ANSMET_CHECK(!stopping_.load(std::memory_order_acquire),
                 "post on a stopped runtime");
    if (workers_.empty()) {
        // One-lane runtime: no channels, no parking — pure inline.
        runTask(task);
        return;
    }
    const unsigned nw = numWorkers();
    const unsigned home =
        task.affinity == kAnyLane
            ? rr_.fetch_add(1, std::memory_order_relaxed) % nw
            : task.affinity % nw;
    MpscChannel<Task> &ch = workers_[home]->channel();
    while (!ch.tryPush(std::move(task))) {
        // Bounded channel full. Never drop, never block on a lock:
        // a worker-producer runs the task inline (depth-first, the
        // same degradation a nested parallel section takes); an
        // external producer helps drain the home channel and retries.
        // (tryPush leaves `task` intact when it fails.)
        if (tls_in_runtime_work) {
            runTask(task);
            return;
        }
        if (cfg_.steal) {
            Task other;
            if (ch.tryPop(other)) {
                runTask(other);
                continue;
            }
        }
        cpuRelax();
    }
    signalWork();
}

void
Runtime::signalWork()
{
    // Store-buffer Dekker with parkIdle(). This side: push (done by
    // the caller), fence, load parked_. Worker side: store parked_,
    // fence, probe channels. The two seq_cst fences guarantee at
    // least one side observes the other — so either this producer
    // sees the parked worker (and bumps the epoch below), or the
    // parking worker's re-check sees the push. A push and a park can
    // never miss each other.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) == 0)
        return;
    {
        MutexLock lk(park_mu_);
        ++wake_epoch_;
    }
    park_cv_.notifyAll();
}

void
Runtime::parkIdle()
{
    std::uint64_t epoch = 0;
    {
        MutexLock lk(park_mu_);
        epoch = wake_epoch_;
    }
    // Announce the park, then re-check — the other half of the Dekker
    // handshake in signalWork(). The epoch was read *before* the
    // announce, so a producer that saw parked_ > 0 after our announce
    // necessarily bumps past `epoch` and the sleep predicate below
    // falls through.
    parked_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (hasWork() || stopping_.load(std::memory_order_acquire)) {
        parked_.fetch_sub(1, std::memory_order_relaxed);
        return;
    }
    {
        MutexLock lk(park_mu_);
        while (wake_epoch_ == epoch &&
               !stopping_.load(std::memory_order_relaxed) && !hasWork())
            park_cv_.wait(park_mu_);
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
}

void
Runtime::shutdown()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true,
                                           std::memory_order_seq_cst))
        return; // idempotent
    if (workers_.empty())
        return;
    {
        MutexLock lk(park_mu_);
        ++wake_epoch_;
    }
    park_cv_.notifyAll();
    // Drain-then-join: each worker exits only after a dry sweep that
    // started with stop already visible (see Worker::loop), and post()
    // rejects new work, so every accepted task has run by now.
    for (auto &w : workers_)
        w->join();
}

// ---------------------------------------------------------------------------
// parallelFor (ported ThreadPool chunk-claiming loop)

void
Runtime::runChunksImpl(ForJob &job)
{
    ANSMET_DCHECK(job.grain > 0 && job.body,
                  "parallelFor job published without chunks");
    const bool was_in_work = tls_in_runtime_work;
    tls_in_runtime_work = true;
    for (;;) {
        const std::size_t i =
            job.next.fetch_add(job.grain, std::memory_order_seq_cst);
        if (i >= job.end)
            break;
        const std::size_t hi = std::min(i + job.grain, job.end);
        try {
            (*job.body)(i, hi);
        } catch (...) {
            MutexLock lk(job.error_mu);
            if (!job.error)
                job.error = std::current_exception();
            // Keep claiming chunks so the range always completes and
            // other participants are not left spinning; only the first
            // error is reported.
        }
    }
    tls_in_runtime_work = was_in_work;
}

void
Runtime::runnerChunks(ForJob &job)
{
    // The seq_cst choreography that keeps the caller's stack frame
    // (which owns the chunk body) safe: a runner increments `active`
    // before its first cursor claim, both seq_cst. The caller's
    // completion test — own claims exhausted the cursor, then
    // active == 0 (seq_cst load) — therefore orders, in the single
    // total order, any runner claim that could still see a real chunk
    // *before* that load, which forces the load to observe the
    // runner's increment and keeps the caller waiting. A runner whose
    // claim lands after the cursor is exhausted never dereferences
    // the body at all (the job itself is shared_ptr-kept).
    job.active.fetch_add(1, std::memory_order_seq_cst);
    runChunksImpl(job);
    if (job.active.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        MutexLock lk(job.done_mu);
        job.done_cv.notifyAll();
    }
}

void
Runtime::parallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)> &body,
    std::size_t grain)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    if (workers_.empty() || tls_in_runtime_work || n == 1) {
        // One-lane runtime and nested calls: plain serial loop.
        body(begin, end);
        return;
    }
    if (grain == 0)
        grain = std::max<std::size_t>(1, n / (8 * lanes()));

    auto job = std::make_shared<ForJob>();
    job->end = n;
    job->grain = grain;
    // Chunk indices are offsets from `begin` so the atomic cursor can
    // start at zero.
    const std::function<void(std::size_t, std::size_t)> shifted =
        [&body, begin](std::size_t lo, std::size_t hi) {
            body(begin + lo, begin + hi);
        };
    job->body = &shifted;

    // One runner per worker, homed on its channel (affinity = w):
    // every lane gets the chance to claim chunks without a steal.
    const unsigned nw = numWorkers();
    for (unsigned w = 0; w < nw; ++w)
        post(Task{Task::Fn{[job] { runnerChunks(*job); }}, w});

    // The caller participates: it claims chunks like any worker, which
    // is what makes a busy runtime degrade to inline execution.
    runnerChunks(*job);

    {
        MutexLock lk(job->done_mu);
        // seq_cst: see runnerChunks(). Also pairs with the runners'
        // decrements so their chunk writes are visible once the count
        // drains to zero.
        while (job->active.load(std::memory_order_seq_cst) != 0)
            job->done_cv.wait(job->done_mu);
    }
    // Every chunk must have been claimed before the job is torn down;
    // a short cursor here would mean iterations were silently dropped.
    ANSMET_CHECK(job->next.load(std::memory_order_relaxed) >= job->end,
                 "parallelFor finished with unclaimed iterations");
    std::exception_ptr error;
    {
        MutexLock lk(job->error_mu);
        error = job->error;
    }
    if (error)
        std::rethrow_exception(error);
}

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::~TaskGroup()
{
    ANSMET_DCHECK(pending_.load(std::memory_order_acquire) == 0,
                  "TaskGroup destroyed with outstanding tasks");
}

void
TaskGroup::run(std::uint32_t affinity, Task::Fn fn)
{
    // Increment before post: the task may run inline (one-lane runtime
    // or backpressure) and finishOne() inside the call.
    pending_.fetch_add(1, std::memory_order_relaxed);
    rt_.post(Task{std::move(fn), affinity, this});
}

void
TaskGroup::captureError()
{
    MutexLock lk(error_mu_);
    if (!error_)
        error_ = std::current_exception();
}

void
TaskGroup::finishOne()
{
    // The decrement happens while holding done_mu_. That is what makes
    // the lock-free fast path in wait() safe: pending_ can only be
    // observed as 0 from inside this critical section, so a waiter
    // that saw 0 and then takes/releases done_mu_ cannot return (and
    // destroy the group) while the finishing thread still touches it.
    MutexLock lk(done_mu_);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        done_cv_.notifyAll();
}

void
TaskGroup::wait()
{
    const bool in_work = Runtime::inRuntimeWork();
    // A worker-waiter must help: its own channel may hold this very
    // group's tasks (or tasks the group transitively needs), and with
    // one worker nobody else would ever pop them. An external waiter
    // helps only when stealing is on — with steal=false the runtime
    // promises strict affinity placement, so outsiders keep hands off.
    const bool help = in_work || rt_.cfg_.steal;
    unsigned spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (help && rt_.helpOnce()) {
            spins = 0;
            continue;
        }
        if (in_work || ++spins < kIdleSpins) {
            // Never park a worker inside a group wait; keep polling.
            cpuRelax();
            continue;
        }
        spins = 0;
        MutexLock lk(done_mu_);
        if (pending_.load(std::memory_order_acquire) != 0)
            done_cv_.wait(done_mu_);
    }
    // Fence out a finisher still inside finishOne()'s critical
    // section before the caller may destroy the group.
    { MutexLock lk(done_mu_); }
    std::exception_ptr error;
    {
        MutexLock lk(error_mu_);
        error = error_;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace ansmet::runtime
