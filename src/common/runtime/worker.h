/**
 * @file
 * One runtime worker: a thread plus the MPSC channel it owns.
 *
 * The worker loop is strictly local-first: drain the own channel, then
 * steal in victim order (topological neighbours first), then
 * spin-then-park on the runtime's eventcount. Workers are the only
 * place in the tree (besides the ThreadPool adapter) allowed to own a
 * raw std::thread — lint rule R4 routes everyone else through the
 * runtime.
 */

#ifndef ANSMET_COMMON_RUNTIME_WORKER_H
#define ANSMET_COMMON_RUNTIME_WORKER_H

#include <cstddef>
#include <thread>

#include "common/runtime/mpsc_channel.h"
#include "common/runtime/task.h"

namespace ansmet::runtime {

class Runtime;

class Worker
{
  public:
    /**
     * @param rt        owning runtime (outlives the worker).
     * @param index     worker index, 0-based; also the channel id.
     * @param core      logical CPU this worker is homed on.
     * @param pin       whether to actually set thread affinity.
     * @param capacity  channel capacity (power-of-two rounded).
     */
    Worker(Runtime &rt, unsigned index, unsigned core, bool pin,
           std::size_t capacity)
        : rt_(rt), index_(index), core_(core), pin_(pin), channel_(capacity)
    {
    }

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    /** Spawn the thread; separate from the ctor so every Worker (and
     *  thus every channel) exists before any loop can steal. */
    void start();

    /** Join the thread (runtime signals stop first). */
    void join();

    MpscChannel<Task> &channel() { return channel_; }
    const MpscChannel<Task> &channel() const { return channel_; }

    unsigned index() const { return index_; }
    unsigned core() const { return core_; }

  private:
    void loop();

    Runtime &rt_;
    unsigned index_;
    unsigned core_;
    bool pin_;
    MpscChannel<Task> channel_;
    std::thread thread_;
};

} // namespace ansmet::runtime

#endif // ANSMET_COMMON_RUNTIME_WORKER_H
