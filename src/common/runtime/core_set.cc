#include "common/runtime/core_set.h"

#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.h"

namespace ansmet::runtime {

unsigned
CoreSet::configuredLanes()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only config knob,
    // queried before any runtime thread exists; nothing mutates the env.
    if (const char *env = std::getenv("ANSMET_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
        ANSMET_WARN("ignoring invalid ANSMET_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

CoreSet
CoreSet::identity(unsigned n)
{
    CoreSet cs;
    if (n == 0)
        n = 1;
    cs.cores_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        cs.cores_.push_back(i);
    return cs;
}

CoreSet
CoreSet::parse(const char *spec)
{
    CoreSet cs;
    if (spec == nullptr)
        return cs;
    const std::string s(spec);
    std::size_t pos = 0;
    auto push_unique = [&cs](unsigned core) {
        for (const unsigned c : cs.cores_)
            if (c == core)
                return;
        cs.cores_.push_back(core);
    };
    while (pos < s.size()) {
        std::size_t used = 0;
        long lo = -1;
        try {
            lo = std::stol(s.substr(pos), &used, 10);
        } catch (...) {
            return CoreSet{}; // junk token: reject the whole spec
        }
        if (lo < 0)
            return CoreSet{};
        pos += used;
        long hi = lo;
        if (pos < s.size() && s[pos] == '-') {
            ++pos;
            try {
                hi = std::stol(s.substr(pos), &used, 10);
            } catch (...) {
                return CoreSet{};
            }
            if (hi < 0)
                return CoreSet{};
            pos += used;
        }
        if (lo <= hi) {
            for (long c = lo; c <= hi; ++c)
                push_unique(static_cast<unsigned>(c));
        } else {
            for (long c = lo; c >= hi; --c)
                push_unique(static_cast<unsigned>(c));
        }
        if (pos < s.size()) {
            if (s[pos] != ',')
                return CoreSet{};
            ++pos;
        }
    }
    cs.pinned_ = !cs.cores_.empty();
    return cs;
}

CoreSet
CoreSet::configured()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only config knob,
    // queried before any runtime thread exists; nothing mutates the env.
    if (const char *env = std::getenv("ANSMET_CORES")) {
        CoreSet cs = parse(env);
        if (cs.size() > 0)
            return cs;
        ANSMET_WARN("ignoring invalid ANSMET_CORES value");
    }
    return identity(configuredLanes());
}

} // namespace ansmet::runtime
