/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * paper-style rows and series.
 */

#ifndef ANSMET_COMMON_TABLE_H
#define ANSMET_COMMON_TABLE_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace ansmet {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Start a new row. */
    TextTable &
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    TextTable &
    cell(const std::string &s)
    {
        rows_.back().push_back(s);
        return *this;
    }

    TextTable &
    cell(double v, int precision = 3)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(precision) << v;
        rows_.back().push_back(oss.str());
        return *this;
    }

    TextTable &
    cell(std::uint64_t v)
    {
        rows_.back().push_back(std::to_string(v));
        return *this;
    }

    TextTable &
    cellPct(double frac, int precision = 1)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(precision) << frac * 100.0
            << "%";
        rows_.back().push_back(oss.str());
        return *this;
    }

    /** Render with columns padded to the widest cell. */
    std::string
    str() const
    {
        std::vector<std::size_t> widths(header_.size(), 0);
        auto widen = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
                widths[i] = std::max(widths[i], r[i].size());
        };
        widen(header_);
        for (const auto &r : rows_)
            widen(r);

        std::ostringstream oss;
        auto emit = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < widths.size(); ++i) {
                const std::string &c = i < r.size() ? r[i] : std::string();
                oss << std::left << std::setw(static_cast<int>(widths[i]) + 2)
                    << c;
            }
            oss << "\n";
        };
        emit(header_);
        std::vector<std::string> rule;
        for (auto w : widths)
            rule.push_back(std::string(w, '-'));
        emit(rule);
        for (const auto &r : rows_)
            emit(r);
        return oss.str();
    }

    void print() const { std::fputs(str().c_str(), stdout); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ansmet

#endif // ANSMET_COMMON_TABLE_H
