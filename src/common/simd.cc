#include "common/simd.h"

#include <cstring>

namespace ansmet {

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::kScalar: return "scalar";
      case SimdLevel::kAvx2:   return "avx2";
      case SimdLevel::kAvx512: return "avx512";
    }
    return "?";
}

namespace {

#if defined(__x86_64__) || defined(__i386__)

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("f16c");
}

bool
cpuHasAvx512()
{
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl");
}

#else

bool cpuHasAvx2() { return false; }
bool cpuHasAvx512() { return false; }

#endif

} // namespace

bool
simdLevelSupported(SimdLevel level)
{
    switch (level) {
      case SimdLevel::kScalar:
        return true;
      case SimdLevel::kAvx2:
        return cpuHasAvx2();
      case SimdLevel::kAvx512:
        // The AVX-512 kernels fall back to F16C for half decode, so
        // they need the AVX2-tier features as well.
        return cpuHasAvx2() && cpuHasAvx512();
    }
    return false;
}

SimdLevel
bestSimdLevel()
{
    if (simdLevelSupported(SimdLevel::kAvx512))
        return SimdLevel::kAvx512;
    if (simdLevelSupported(SimdLevel::kAvx2))
        return SimdLevel::kAvx2;
    return SimdLevel::kScalar;
}

bool
parseSimdLevel(const char *name, SimdLevel *out)
{
    if (!name)
        return false;
    for (unsigned i = 0; i < kNumSimdLevels; ++i) {
        const auto level = static_cast<SimdLevel>(i);
        if (std::strcmp(name, simdLevelName(level)) == 0) {
            *out = level;
            return true;
        }
    }
    return false;
}

} // namespace ansmet
