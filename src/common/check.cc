#include "common/check.h"

#include <cstdlib>

namespace ansmet {

namespace check_detail {

namespace {

bool
auditInit()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only config knob,
    // queried once under the static-init guard; nothing mutates the env.
    if (const char *env = std::getenv("ANSMET_AUDIT"))
        return env[0] != '\0' && env[0] != '0';
#if defined(ANSMET_AUDIT_DEFAULT_ON) || !defined(NDEBUG)
    return true;
#else
    return false;
#endif
}

} // namespace

bool &
auditFlag()
{
    static bool flag = auditInit();
    return flag;
}

} // namespace check_detail

void
setAuditEnabled(bool on)
{
    check_detail::auditFlag() = on;
}

} // namespace ansmet
