/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component takes an explicit Prng so that a run is a
 * pure function of its seeds; simulations must never read global
 * randomness.
 */

#ifndef ANSMET_COMMON_PRNG_H
#define ANSMET_COMMON_PRNG_H

#include <cmath>
#include <cstdint>

namespace ansmet {

/**
 * xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64. Fast,
 * high-quality, and trivially reproducible across platforms.
 */
class Prng
{
  public:
    explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : s_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free multiply-shift; bias is negligible for our use.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal via Box-Muller (cached second value). */
    double
    gaussian()
    {
        if (has_cached_) {
            has_cached_ = false;
            return cached_;
        }
        double u1 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586 * u2;
        cached_ = r * std::sin(theta);
        has_cached_ = true;
        return r * std::cos(theta);
    }

    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /**
     * Zipf-distributed integer in [0, n) with exponent @p alpha, via
     * inverse-CDF on precomputed weights is too slow for large n, so we
     * use rejection sampling (Devroye).
     */
    std::uint64_t
    zipf(std::uint64_t n, double alpha)
    {
        // Rejection method valid for alpha > 1.
        const double b = std::pow(2.0, alpha - 1.0);
        while (true) {
            const double u = uniform();
            const double v = uniform();
            const double x = std::floor(std::pow(u, -1.0 / (alpha - 1.0)));
            const double t = std::pow(1.0 + 1.0 / x, alpha - 1.0);
            if (v * x * (t - 1.0) / (b - 1.0) <= t / b &&
                x <= static_cast<double>(n)) {
                return static_cast<std::uint64_t>(x) - 1;
            }
        }
    }

    /**
     * Independent child generator for stream @p index, derived purely
     * from (seed, index). Parallel code hands stream i to work item i
     * (not to thread i), so the drawn values are a function of the
     * partitioning of work, never of the thread schedule.
     */
    static Prng
    stream(std::uint64_t seed, std::uint64_t index)
    {
        return Prng(seed ^ mix(index + 1));
    }

    /** splitmix64 finalizer; good avalanche for stream separation. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
    double cached_ = 0.0;
    bool has_cached_ = false;
};

} // namespace ansmet

#endif // ANSMET_COMMON_PRNG_H
