/**
 * @file
 * Work-stealing thread pool shared by the functional layers.
 *
 * The pool parallelizes the embarrassingly parallel host-side work —
 * ground truth, graph construction, query tracing, replay precompute —
 * while the event-driven timing model itself stays serial (its whole
 * point is a deterministic global event order). Sizing comes from the
 * ANSMET_THREADS environment variable (default: hardware concurrency);
 * ANSMET_THREADS=1 degrades every entry point to plain inline
 * execution, which is the reference behavior the determinism tests
 * compare against.
 *
 * parallelFor() hands out chunks of the index range from a shared
 * atomic cursor, so threads that finish early immediately steal the
 * remaining iterations from slower ones; submit() queues individual
 * tasks. Calls nested inside a worker run inline (serially) rather
 * than deadlocking on pool capacity.
 */

#ifndef ANSMET_COMMON_THREAD_POOL_H
#define ANSMET_COMMON_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace ansmet {

class ThreadPool
{
  public:
    /**
     * @param threads total execution lanes including the caller;
     *        0 = configuredThreads(). 1 means no worker threads are
     *        spawned and everything runs inline.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes (worker threads + the calling thread), >= 1. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

    /** ANSMET_THREADS if set (clamped to >= 1), else hardware concurrency. */
    static unsigned configuredThreads();

    /** Process-wide pool sized by configuredThreads() at first use. */
    static ThreadPool &global();

    /**
     * Run body(begin, end) over [begin, end) split into chunks of
     * @p grain iterations (0 = auto). Blocks until every iteration has
     * run. The first exception thrown by any chunk is rethrown on the
     * calling thread once all in-flight chunks drain. Chunk-to-thread
     * assignment is dynamic; callers must make iterations independent
     * and write only to iteration-indexed slots so the result is
     * identical to a serial run.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t, std::size_t)> &body,
                     std::size_t grain = 0);

    /** Queue one task; the future reports its result or exception. */
    template <typename Fn>
    auto
    submit(Fn fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

  private:
    struct ForJob
    {
        // end/grain/body are written once, before the job is published
        // under the pool's mu_, and are immutable from then on — the
        // publishing store/load of for_job_ is what orders them.
        std::size_t end = 0;
        std::size_t grain = 1;
        const std::function<void(std::size_t, std::size_t)> *body = nullptr;
        // Chunk-claim cursor. relaxed: fetch_add only needs atomicity
        // (each index is claimed exactly once); visibility of the
        // chunk bodies' writes is ordered by `active`, not by `next`.
        std::atomic<std::size_t> next{0};
        // Workers running claimed chunks. fetch_sub(acq_rel) on exit +
        // the waiter's acquire load make every chunk's writes visible
        // to the caller once active reaches 0.
        std::atomic<unsigned> active{0};
        std::exception_ptr error ANSMET_GUARDED_BY(error_mu);
        Mutex error_mu;
        // Audit-only completion flag read by DCHECKs from both sides
        // of the teardown handshake. relaxed: the real ordering is mu_
        // (unpublish) and done_mu/active (completion wait).
        std::atomic<bool> done{false};
        Mutex done_mu; //!< done_cv's mutex (predicate state is `active`)
        CondVar done_cv;
    };

    void enqueue(std::function<void()> task);
    void workerLoop();
    static void runChunks(ForJob &job);

    /** A published parallelFor job with unclaimed chunks remains. */
    bool hasChunksLocked() const ANSMET_REQUIRES(mu_);

    std::vector<std::thread> workers_;
    std::shared_ptr<ForJob> for_job_ ANSMET_GUARDED_BY(mu_);
    std::vector<std::function<void()>> tasks_ ANSMET_GUARDED_BY(mu_);
    Mutex mu_;
    CondVar cv_;
    bool stop_ ANSMET_GUARDED_BY(mu_) = false;
};

/** Convenience: ThreadPool::global().parallelFor(...). */
inline void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t, std::size_t)> &body,
            std::size_t grain = 0)
{
    ThreadPool::global().parallelFor(begin, end, body, grain);
}

} // namespace ansmet

#endif // ANSMET_COMMON_THREAD_POOL_H
