/**
 * @file
 * Thin adapter over the task runtime (common/runtime/) that keeps the
 * historical ThreadPool API: parallelFor over index ranges, submit()
 * returning a future, ANSMET_THREADS sizing including the caller.
 *
 * The flat mutex/cv pool this class used to be lives on only as the
 * benchmark baseline (bench/reference_flat_pool.h); all execution now
 * goes through Runtime's per-worker MPSC channels. Semantics callers
 * rely on are preserved exactly: nested calls from inside pool work
 * run inline (so submit().get() inside a parallelFor cannot deadlock),
 * a one-lane pool spawns nothing, chunk-to-thread assignment is
 * dynamic so iteration bodies must stay placement-independent.
 */

#ifndef ANSMET_COMMON_THREAD_POOL_H
#define ANSMET_COMMON_THREAD_POOL_H

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <utility>

#include "common/runtime/runtime.h"

namespace ansmet {

class ThreadPool
{
  public:
    /**
     * @param threads total execution lanes including the caller;
     *        0 = configuredThreads(). 1 means no worker threads are
     *        spawned and everything runs inline.
     */
    explicit ThreadPool(unsigned threads = 0)
    {
        runtime::RuntimeConfig cfg;
        cfg.cores = threads == 0 ? runtime::CoreSet::configured()
                                 : runtime::CoreSet::identity(threads);
        owned_ = std::make_unique<runtime::Runtime>(std::move(cfg));
    }

    ~ThreadPool() = default; // owned runtime drains-then-joins

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes (worker threads + the calling thread), >= 1. */
    unsigned size() const { return rt().lanes(); }

    /** ANSMET_THREADS if set (clamped to >= 1), else hardware concurrency. */
    static unsigned
    configuredThreads()
    {
        return runtime::CoreSet::configuredLanes();
    }

    /** Adapter over the process-wide Runtime::global() — the same
     *  workers serve both this facade and direct runtime users. */
    static ThreadPool &global();

    /**
     * Run body(begin, end) over [begin, end) split into chunks of
     * @p grain iterations (0 = auto). Blocks until every iteration has
     * run. The first exception thrown by any chunk is rethrown on the
     * calling thread once all in-flight chunks drain. Chunk-to-thread
     * assignment is dynamic; callers must make iterations independent
     * and write only to iteration-indexed slots so the result is
     * identical to a serial run.
     */
    void
    parallelFor(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t, std::size_t)> &body,
                std::size_t grain = 0)
    {
        rt().parallelFor(begin, end, body, grain);
    }

    /** Queue one task; the future reports its result or exception. */
    template <typename Fn>
    auto
    submit(Fn fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> fut = task->get_future();
        if (rt().numWorkers() == 0 || runtime::Runtime::inRuntimeWork()) {
            // Inline fallback: no workers, or a nested submission from
            // inside pool work that must not wait on queue capacity
            // (the caller may block on the future immediately).
            (*task)();
            return fut;
        }
        rt().post(runtime::Task{runtime::Task::Fn{[task] { (*task)(); }},
                                runtime::kAnyLane});
        return fut;
    }

  private:
    struct GlobalTag
    {
    };
    explicit ThreadPool(GlobalTag) {} // facade over Runtime::global()

    runtime::Runtime &
    rt() const
    {
        return owned_ ? *owned_ : runtime::Runtime::global();
    }

    std::unique_ptr<runtime::Runtime> owned_; // null = global facade
};

/** Convenience: ThreadPool::global().parallelFor(...). */
inline void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t, std::size_t)> &body,
            std::size_t grain = 0)
{
    ThreadPool::global().parallelFor(begin, end, body, grain);
}

} // namespace ansmet

#endif // ANSMET_COMMON_THREAD_POOL_H
