/**
 * @file
 * Invariant-audit layer: ANSMET_CHECK and ANSMET_DCHECK.
 *
 * ANSMET_CHECK(cond, ...) is always on. It is for invariants whose
 * violation means simulator state is corrupt and continuing would
 * silently falsify results (lossless-ET agreement, DRAM timing,
 * event-queue ordering at scheduling boundaries). Failure panics with
 * the formatted message, file, and line.
 *
 * ANSMET_DCHECK(cond, ...) is the hot-path variant. The condition is
 * evaluated only when the audit mode is enabled, so release runs pay a
 * single predictable branch per site. Audit mode defaults to on in
 * Debug builds and in builds configured with -DANSMET_AUDIT=ON (the
 * sanitizer CI presets do this); any build can flip it at runtime with
 * the ANSMET_AUDIT environment variable (ANSMET_AUDIT=1 enables,
 * ANSMET_AUDIT=0 disables). Tests force it with setAuditEnabled().
 *
 * Both macros evaluate their condition at most once and their message
 * arguments only on failure.
 */

#ifndef ANSMET_COMMON_CHECK_H
#define ANSMET_COMMON_CHECK_H

#include "common/logging.h"

namespace ansmet {

namespace check_detail {

/** Cached audit flag; initialized once from ANSMET_AUDIT / build type. */
bool &auditFlag();

} // namespace check_detail

/** Whether ANSMET_DCHECK sites are evaluated in this process. */
inline bool
auditEnabled()
{
    return check_detail::auditFlag();
}

/** Force the audit mode, overriding environment and build default. */
void setAuditEnabled(bool on);

/** Fatal always-on invariant check. */
#define ANSMET_CHECK(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ansmet::detail::panicImpl(__FILE__, __LINE__, \
                ::ansmet::detail::concat("check failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

/** Audit-mode invariant check; skipped unless auditEnabled(). */
#define ANSMET_DCHECK(cond, ...) \
    do { \
        if (::ansmet::auditEnabled() && !(cond)) { \
            ::ansmet::detail::panicImpl(__FILE__, __LINE__, \
                ::ansmet::detail::concat("dcheck failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace ansmet

#endif // ANSMET_COMMON_CHECK_H
