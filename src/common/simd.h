/**
 * @file
 * Runtime CPU ISA detection for the SIMD kernel layer.
 *
 * The kernel registry (src/anns/kernels.h) compiles one translation
 * unit per ISA tier and picks a table once at startup. This header
 * answers the two questions that decision needs: what the CPU running
 * this process supports, and how to name/parse tiers for the
 * ANSMET_KERNEL environment override.
 *
 * Detection is deliberately conservative: a tier is "supported" only
 * when every feature its kernels use is present (AVX2 additionally
 * needs F16C for the fp16 decode; AVX-512 needs F/BW/DQ/VL). On
 * non-x86 builds every query degrades to scalar.
 */

#ifndef ANSMET_COMMON_SIMD_H
#define ANSMET_COMMON_SIMD_H

#include <cstdint>

namespace ansmet {

/** Kernel ISA tiers, ordered weakest to strongest. */
enum class SimdLevel : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

constexpr unsigned kNumSimdLevels = 3;

/** Lower-case tier name ("scalar" / "avx2" / "avx512"). */
const char *simdLevelName(SimdLevel level);

/** Whether the CPU this process runs on can execute @p level kernels. */
bool simdLevelSupported(SimdLevel level);

/** Strongest tier the current CPU supports. */
SimdLevel bestSimdLevel();

/**
 * Parse a tier name (as accepted by ANSMET_KERNEL). Returns false and
 * leaves @p out untouched if @p name is not a known tier.
 */
bool parseSimdLevel(const char *name, SimdLevel *out);

} // namespace ansmet

#endif // ANSMET_COMMON_SIMD_H
