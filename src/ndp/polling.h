/**
 * @file
 * Result polling policies (Section 5.4 of the paper).
 *
 * The host cannot know when an NDP task finishes: early termination
 * makes latency data dependent. Conventional polling probes a QSHR on
 * a fixed interval, paying channel bandwidth and discovery delay.
 * ANSMET's adaptive polling predicts the completion time from the
 * fetch-count distribution measured during sampling preprocessing and
 * probes just-in-time, re-probing on a short backoff if the prediction
 * was early. An ideal (zero-cost notification) mode bounds what any
 * policy could achieve (Figure 9's comparison).
 */

#ifndef ANSMET_NDP_POLLING_H
#define ANSMET_NDP_POLLING_H

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace ansmet::ndp {

enum class PollingMode : std::uint8_t
{
    kConventional, //!< fixed-interval probing (100 ns in the paper)
    kAdaptive,     //!< sampled-distribution prediction
    kIdeal,        //!< zero-cost completion notification (upper bound)
};

const char *pollingModeName(PollingMode m);

/** Polling policy configuration. */
struct PollingParams
{
    PollingMode mode = PollingMode::kAdaptive;
    TickDelta conventionalInterval = 100 * kTicksPerNs;
    /** Backoff between re-probes after an early adaptive poll. */
    TickDelta adaptiveBackoff = 25 * kTicksPerNs;
};

/**
 * Predicts NDP batch completion latency from the preprocessing
 * fetch-count distribution.
 */
class PollingEstimator
{
  public:
    /**
     * @param fetch_dist P(task fetches i lines), from EtProfile
     * @param per_line the average rank-local latency of one 64 B fetch
     * @param fixed fixed per-task overhead (QSHR lookup + compute)
     */
    PollingEstimator(const std::vector<double> &fetch_dist,
                     TickDelta per_line, TickDelta fixed)
        : per_line_(per_line), fixed_(fixed)
    {
        ANSMET_CHECK(!fetch_dist.empty(),
                     "polling estimator needs a fetch-count distribution");
        double e = 0.0;
        double mass = 0.0;
        for (std::size_t i = 0; i < fetch_dist.size(); ++i) {
            ANSMET_DCHECK(fetch_dist[i] >= 0.0,
                          "negative fetch-count probability at ", i);
            e += fetch_dist[i] * static_cast<double>(i);
            mass += fetch_dist[i];
        }
        ANSMET_DCHECK(mass > 1.0 - 1e-6 && mass < 1.0 + 1e-6,
                      "fetch-count distribution mass is ", mass,
                      ", expected 1");
        expected_lines_ = e;
    }

    /** Expected completion of @p tasks sequential tasks on one QSHR. */
    TickDelta
    expectedLatency(std::size_t tasks) const
    {
        ANSMET_DCHECK(tasks > 0,
                      "completion prediction for an empty QSHR batch");
        const double per_task =
            expected_lines_ * static_cast<double>(per_line_.raw()) +
            static_cast<double>(fixed_.raw());
        return TickDelta{static_cast<std::uint64_t>(
            per_task * static_cast<double>(tasks))};
    }

    double expectedLines() const { return expected_lines_; }

  private:
    TickDelta per_line_;
    TickDelta fixed_;
    double expected_lines_ = 0.0;
};

} // namespace ansmet::ndp

#endif // ANSMET_NDP_POLLING_H
