/**
 * @file
 * Rank-level NDP unit (Section 5.1/5.2, Figure 5 of the paper).
 *
 * One NDP unit sits in the DIMM buffer chip next to each rank. It
 * holds 32 QSHRs (query status handling registers), each carrying one
 * query and up to 8 in-order comparison tasks, and a 16-wide distance
 * computing unit at 1.2 GHz. Tasks within a QSHR run sequentially;
 * different QSHRs overlap, so the rank's bank-level parallelism stays
 * busy. Each task fetches its (transformed-layout) lines one after
 * another — the next fetch depends on the bound check of the previous
 * one, which is the essence of early termination — computes the bound
 * increment on the compute unit, and stops early when the fetch
 * simulator determined termination.
 *
 * The *number* of lines a task fetches is decided functionally by
 * et::FetchSimulator; this class models the time and energy it takes.
 */

#ifndef ANSMET_NDP_NDP_UNIT_H
#define ANSMET_NDP_NDP_UNIT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ring_deque.h"
#include "common/stats.h"
#include "dram/controller.h"
#include "sim/event_queue.h"
#include "sim/inline_callback.h"

namespace ansmet::ndp {

/** NDP unit microarchitecture parameters (Table 1). */
struct NdpParams
{
    double freqGHz = 1.2;
    unsigned numQshrs = 32;
    unsigned tasksPerQshr = 8;
    unsigned computeLanes = 16; //!< 32-bit multipliers/adders
    unsigned qshrLookupCycles = 1;
    /**
     * Outstanding line fetches per task. The bound check gates
     * *future* fetches, but the QSHR keeps a small window of issued
     * lines in flight (they hit different banks of the local rank), so
     * a task is not one-full-DRAM-round-trip per line.
     */
    unsigned fetchPipelineDepth = 4;

    TickDelta period() const { return periodFromGHz(freqGHz); }
};

/** One offloaded comparison task (one vector against one query). */
struct NdpTask
{
    std::uint64_t startLine = 0; //!< rank-local line address
    unsigned lines = 0;          //!< lines to fetch (ET-resolved)
    /**
     * Distance-unit cycles to consume one 64 B line. The 16 x 32-bit
     * datapath digests 512 bits per couple of cycles for full-width
     * elements, and partial-bit planes are processed bit-serially at
     * the same rate (BitNN-style), so this is small and roughly layout
     * independent — matching the paper's note that shrinking the
     * compute unit is unnecessary.
     */
    unsigned computeCyclesPerLine = 2;
    /** Completion: the task's result is ready in the QSHR. Inline-only
     *  capture makes NdpTask move-only and allocation-free. */
    sim::InlineFunction<void(Tick), 40> onComplete;
};

/** A rank plus its buffer-chip NDP logic. */
class NdpUnit
{
  public:
    NdpUnit(sim::EventQueue &eq, const NdpParams &np,
            const dram::TimingParams &tp, const dram::OrgParams &org,
            unsigned unit_id);

    /**
     * Enqueue a task on @p qshr. Tasks on the same QSHR execute in
     * order; the caller is responsible for QSHR allocation (the host
     * program tracks QSHR ids explicitly, per the paper).
     *
     * Each QSHR holds at most tasksPerQshr (8) architectural task
     * slots. Submissions beyond that are backpressured into a staging
     * queue (modelling the host-side instruction buffer the paper's
     * runtime drains into free slots) and refill the QSHR in FIFO
     * order as slots free up. Because a QSHR executes its tasks
     * strictly serially either way, staging is timing-neutral; it only
     * bounds the architectural occupancy and surfaces backpressure in
     * the stats.
     */
    void submit(unsigned qshr, NdpTask task);

    /** Architectural occupancy of @p qshr: queued tasks in its slots
     *  (including the executing one). Never exceeds tasksPerQshr. */
    unsigned occupiedSlots(unsigned qshr) const;

    /** Tasks waiting in @p qshr's staging queue for a free slot. */
    unsigned stagedTasks(unsigned qshr) const;

    /** Submissions that found all task slots full and had to stage. */
    std::uint64_t backpressureEvents() const
    {
        return backpressure_events_;
    }

    unsigned id() const { return id_; }
    dram::MemController &rankController() { return *ctrl_; }
    const dram::MemController &rankController() const { return *ctrl_; }

    /** Total 64 B lines fetched by this unit. */
    std::uint64_t linesFetched() const { return lines_fetched_; }

    /** Ticks the compute unit spent busy (for energy). */
    TickDelta computeBusy() const { return compute_busy_; }

    std::uint64_t tasksCompleted() const { return tasks_completed_; }

  private:
    struct QshrState
    {
        RingDeque<NdpTask> fifo;      //!< architectural slots (<= 8)
        RingDeque<NdpTask> staged;    //!< backpressured submissions
        bool active = false;
        unsigned linesToIssue = 0;   //!< lines not yet sent to DRAM
        unsigned linesInFlight = 0;  //!< issued, data not yet consumed
        std::uint64_t nextLine = 0;
        Tick headStart{};            //!< when the head task began
    };

    void startNext(unsigned qshr);
    void issueWindow(unsigned qshr);
    void lineArrived(unsigned qshr, Tick when);

    sim::EventQueue &eq_;
    NdpParams np_;
    std::unique_ptr<dram::MemController> ctrl_;
    dram::OrgParams org_;
    std::vector<QshrState> qshrs_;
    unsigned id_;

    Tick compute_free_at_{};
    TickDelta compute_busy_{};
    std::uint64_t lines_fetched_ = 0;
    std::uint64_t tasks_completed_ = 0;
    std::uint64_t backpressure_events_ = 0;
};

} // namespace ansmet::ndp

#endif // ANSMET_NDP_NDP_UNIT_H
