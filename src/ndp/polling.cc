#include "ndp/polling.h"

namespace ansmet::ndp {

const char *
pollingModeName(PollingMode m)
{
    switch (m) {
      case PollingMode::kConventional: return "ConvPoll";
      case PollingMode::kAdaptive:     return "AdaptPoll";
      case PollingMode::kIdeal:        return "IdealPoll";
    }
    return "?";
}

} // namespace ansmet::ndp
