#include "ndp/ndp_unit.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ansmet::ndp {

namespace {

struct NdpMetrics
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter tasks = reg.counter("ndp.tasks_completed");
    obs::Counter lines = reg.counter("ndp.lines_fetched");
    obs::Counter backpressure = reg.counter("ndp.backpressure_staged");
    obs::Histogram taskLines = reg.histogram("ndp.task_lines", 16);
    obs::Histogram taskLatency =
        reg.histogram("ndp.task_latency_ps", 48);
    obs::Histogram slotOccupancy =
        reg.histogram("ndp.qshr_slot_occupancy", 8);
};

NdpMetrics &
ndpMetrics()
{
    static NdpMetrics m;
    return m;
}

} // namespace

NdpUnit::NdpUnit(sim::EventQueue &eq, const NdpParams &np,
                 const dram::TimingParams &tp, const dram::OrgParams &org,
                 unsigned unit_id)
    : eq_(eq), np_(np),
      ctrl_(std::make_unique<dram::MemController>(
          eq, tp, org, 1, "ndp_rank" + std::to_string(unit_id))),
      org_(org),
      qshrs_(np.numQshrs),
      id_(unit_id)
{
}

void
NdpUnit::submit(unsigned qshr, NdpTask task)
{
    ANSMET_CHECK(qshr < qshrs_.size(), "bad QSHR id ", qshr, " (unit has ",
                 qshrs_.size(), ")");
    // A zero-line task would stall the QSHR forever waiting for a line
    // that was never issued; callers clamp with max(1, lines).
    ANSMET_DCHECK(task.lines >= 1, "zero-line task submitted to QSHR ",
                  qshr);
    QshrState &q = qshrs_[qshr];
    // An inactive QSHR must hold no half-executed task state; anything
    // else means a slot was recycled without completing (double free).
    ANSMET_DCHECK(q.active ||
                      (q.fifo.empty() && q.staged.empty() &&
                       q.linesToIssue == 0 && q.linesInFlight == 0),
                  "idle QSHR ", qshr, " holds stale task state");
    ndpMetrics().slotOccupancy.sample(q.fifo.size());
    if (q.fifo.size() >= np_.tasksPerQshr) {
        // All architectural slots busy: stage host-side until one
        // frees. Execution order is unchanged (strict FIFO per QSHR).
        q.staged.push_back(std::move(task));
        ++backpressure_events_;
        ndpMetrics().backpressure.inc();
        return;
    }
    q.fifo.push_back(std::move(task));
    if (!q.active)
        startNext(qshr);
}

unsigned
NdpUnit::occupiedSlots(unsigned qshr) const
{
    ANSMET_CHECK(qshr < qshrs_.size(), "bad QSHR id ", qshr);
    return static_cast<unsigned>(qshrs_[qshr].fifo.size());
}

unsigned
NdpUnit::stagedTasks(unsigned qshr) const
{
    ANSMET_CHECK(qshr < qshrs_.size(), "bad QSHR id ", qshr);
    return static_cast<unsigned>(qshrs_[qshr].staged.size());
}

void
NdpUnit::startNext(unsigned qshr)
{
    QshrState &q = qshrs_[qshr];
    ANSMET_DCHECK(q.linesToIssue == 0 && q.linesInFlight == 0,
                  "QSHR ", qshr, " started a task with fetches in flight");
    ANSMET_DCHECK(q.fifo.size() <= np_.tasksPerQshr,
                  "QSHR ", qshr, " exceeds its ", np_.tasksPerQshr,
                  " task slots");
    ANSMET_DCHECK(q.fifo.size() == np_.tasksPerQshr || q.staged.empty(),
                  "QSHR ", qshr, " staged tasks while slots were free");
    if (q.fifo.empty()) {
        q.active = false;
        return;
    }
    q.active = true;
    q.headStart = eq_.now();
    const NdpTask &t = q.fifo.front();
    q.linesToIssue = std::max(1u, t.lines);
    q.linesInFlight = 0;
    q.nextLine = t.startLine;
    // QSHR lookup + command generation latency before the first fetch.
    eq_.scheduleIn(
        static_cast<std::uint64_t>(np_.qshrLookupCycles) * np_.period(),
        [this, qshr] { issueWindow(qshr); });
}

void
NdpUnit::issueWindow(unsigned qshr)
{
    QshrState &q = qshrs_[qshr];
    ANSMET_DCHECK(q.active, "fetch issue on inactive QSHR ", qshr);
    while (q.linesToIssue > 0 &&
           q.linesInFlight < np_.fetchPipelineDepth) {
        dram::Request req;
        req.addr = dram::mapLine(q.nextLine, org_);
        req.isWrite = false;
        req.onComplete = [this, qshr](Tick when) {
            lineArrived(qshr, when);
        };
        ++q.nextLine;
        --q.linesToIssue;
        ++q.linesInFlight;
        ++lines_fetched_;
        ndpMetrics().lines.inc();
        ctrl_->enqueue(0, std::move(req));
    }
}

void
NdpUnit::lineArrived(unsigned qshr, Tick when)
{
    QshrState &q = qshrs_[qshr];
    ANSMET_CHECK(q.active && q.linesInFlight > 0,
                 "line arrival on QSHR ", qshr, " with no fetch outstanding");
    ANSMET_DCHECK(!q.fifo.empty(), "line arrival on QSHR ", qshr,
                  " with no task");
    ANSMET_DCHECK(q.linesInFlight <= np_.fetchPipelineDepth,
                  "fetch window overflow on QSHR ", qshr);
    --q.linesInFlight;

    // The distance computing unit consumes the line, plus one cycle
    // for the bound comparison; the comparison gates further issue.
    const NdpTask &t = q.fifo.front();
    const std::uint64_t cycles =
        std::max(1u, t.computeCyclesPerLine) + 1;
    const Tick start = std::max(when, compute_free_at_);
    const Tick end = start + cycles * np_.period();
    ANSMET_DCHECK(end > start, "compute occupancy must advance");
    compute_free_at_ = end;
    compute_busy_ += end - start;

    if (q.linesToIssue > 0) {
        eq_.schedule(end, [this, qshr] { issueWindow(qshr); });
        return;
    }
    if (q.linesInFlight > 0)
        return; // wait for the stragglers

    // Task complete at the end of the final bound/distance computation.
    eq_.schedule(end, [this, qshr, end] {
        QshrState &qs = qshrs_[qshr];
        ANSMET_CHECK(qs.active && !qs.fifo.empty(),
                     "task completion on empty QSHR ", qshr,
                     " (slot double free)");
        ANSMET_DCHECK(qs.linesToIssue == 0 && qs.linesInFlight == 0,
                      "task completed on QSHR ", qshr,
                      " with fetches outstanding");
        NdpTask done = std::move(qs.fifo.front());
        qs.fifo.pop_front();
        // The freed slot immediately re-fills from the staging queue,
        // preserving FIFO order across the backpressure boundary.
        if (!qs.staged.empty()) {
            qs.fifo.push_back(std::move(qs.staged.front()));
            qs.staged.pop_front();
        }
        ++tasks_completed_;
        NdpMetrics &m = ndpMetrics();
        m.tasks.inc();
        m.taskLines.sample(std::max(1u, done.lines));
        m.taskLatency.sample((end - qs.headStart).raw());
        obs::TraceWriter::instance().span(
            "ndp_task", obs::ndpLaneTid(id_, qshr), qs.headStart, end);
        if (done.onComplete)
            done.onComplete(end);
        startNext(qshr);
    });
}

} // namespace ansmet::ndp
