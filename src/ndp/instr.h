/**
 * @file
 * NDP instruction encodings (Figure 5(e) of the paper).
 *
 * Instructions ride on regular DDR commands to reserved addresses: one
 * 64 B WRITE each for configure and set-search, up to 16 WRITEs for a
 * 1 kB set-query, and a READ for poll. The structs below carry the
 * architectural payloads; the timing cost of each instruction is one
 * buffer-chip bus transfer on the host channel (see
 * MemController::enqueueBusTransfer).
 */

#ifndef ANSMET_NDP_INSTR_H
#define ANSMET_NDP_INSTR_H

#include <array>
#include <cstdint>

#include "anns/distance.h"
#include "anns/scalar.h"
#include "common/types.h"

namespace ansmet::ndp {

/** configure: broadcast once per (re)configuration. */
struct ConfigureInstr
{
    anns::ScalarType elemType;
    std::uint16_t dims;
    anns::Metric metric;
    // Early-termination parameters.
    std::uint8_t commonPrefixLen;
    std::uint32_t commonPrefixBits;
    std::uint8_t nc;
    std::uint8_t tc;
    std::uint8_t nf;
};

/** set-query: one 64 B slice of the query vector into a QSHR. */
struct SetQueryInstr
{
    std::uint8_t qshrId;
    std::uint8_t seq; //!< which 64 B slice (0..15 for 1 kB)
};

/** One comparison task inside a set-search payload. */
struct SearchTaskDesc
{
    std::uint32_t vectorAddr; //!< rank-local line address
    float distThreshold;
};

/** set-search: up to 8 tasks in one 64 B WRITE. */
struct SetSearchInstr
{
    std::uint8_t qshrId;
    std::uint8_t numTasks; //!< 1..8
    std::array<SearchTaskDesc, 8> tasks;
};

/** poll: DDR READ returning the QSHR's result array. */
struct PollInstr
{
    std::uint8_t qshrId;
};

/** Bytes of query data one set-query WRITE carries. */
constexpr unsigned kSetQueryBytes = 64;

/** Max query bytes a QSHR holds (256-dim FP32 / 512-dim UINT8). */
constexpr unsigned kQshrQueryBytes = 1024;

/** WRITEs needed to load a query of @p bytes into a QSHR. */
constexpr unsigned
setQueryWrites(unsigned bytes)
{
    return (bytes + kSetQueryBytes - 1) / kSetQueryBytes;
}

} // namespace ansmet::ndp

#endif // ANSMET_NDP_INSTR_H
