/**
 * @file
 * Bounded admission queue + slot scheduler for the serving engine.
 *
 * Arrivals enter a bounded FIFO; when full, the arrival is dropped and
 * counted (open-loop load does not block). Admission packs in-flight
 * queries onto the session slots of core::SystemModel, each of which
 * owns `qshrsPerQuery` of the NDP units' QSHRs — so the invariant
 * "occupied QSHRs <= numQshrs" (the paper's 32 query slots) is
 * enforced here, by capping in-flight queries at
 * numQshrs / qshrsPerQuery, and is checked on every admit.
 *
 * Policy: strict FIFO admission onto the lowest free slot. FIFO gives
 * the no-starvation bound the property tests assert (a query waits at
 * most the drain time of the arrivals ahead of it, regardless of Zipf
 * skew); lowest-free-slot keeps slot assignment deterministic.
 *
 * Driven only from simulation callbacks (one thread); not thread-safe
 * by design.
 */

#ifndef ANSMET_SERVE_ADMISSION_H
#define ANSMET_SERVE_ADMISSION_H

#include <cstdint>
#include <deque>
#include <optional>
#include <set>

#include "common/types.h"
#include "obs/metrics.h"

namespace ansmet::serve {

struct AdmissionConfig
{
    std::size_t queueCapacity = 64; //!< waiting arrivals before drops
    unsigned numQshrs = 32;         //!< QSHRs per NDP unit (paper: 32)
    unsigned qshrsPerQuery = 2;     //!< SystemConfig::qshrsPerQuery
    /** Extra cap on in-flight queries; 0 = QSHR-derived bound only. */
    unsigned maxInFlightCap = 0;
};

class AdmissionScheduler
{
  public:
    explicit AdmissionScheduler(const AdmissionConfig &cfg);

    /** One admitted query bound to a slot. */
    struct Admitted
    {
        unsigned slot = 0;
        std::uint64_t queryId = 0;
        std::size_t traceIdx = 0;
        Tick enqueuedAt{};
    };

    /** Concurrent in-flight query bound: numQshrs / qshrsPerQuery. */
    unsigned maxInFlight() const { return max_in_flight_; }

    /**
     * Offer an arrival to the queue. Returns false (and counts a
     * drop) when the queue is full; the result must be checked (lint
     * R11) — a caller that ignores it cannot tell an enqueued query
     * from a dropped one. Offering a query id that is already queued
     * or in flight is a caller bug and CHECK-fails: admitting one
     * query twice would double-free its slot.
     */
    [[nodiscard]] bool tryOffer(std::uint64_t queryId,
                                std::size_t traceIdx, Tick now);

    /**
     * Admit the longest-waiting queued query onto the lowest free
     * slot, or nullopt when the queue is empty or every slot is
     * occupied. Never exceeds maxInFlight() in-flight queries. The
     * result carries the slot binding; discarding it would leak the
     * slot (lint R11).
     */
    [[nodiscard]] std::optional<Admitted> admitNext(Tick now);

    /** Return @p slot to the free pool when its query completes. */
    void release(unsigned slot, std::uint64_t queryId);

    std::size_t queueDepth() const { return queue_.size(); }
    unsigned inFlight() const { return in_flight_; }
    /** QSHRs occupied right now = inFlight * qshrsPerQuery. */
    unsigned occupiedQshrs() const { return in_flight_ * cfg_.qshrsPerQuery; }
    /** High-water mark of occupiedQshrs() over the run. */
    unsigned maxOccupiedQshrs() const { return max_occupied_qshrs_; }
    std::uint64_t offered() const { return offered_; }
    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t dropped() const { return dropped_; }

  private:
    AdmissionConfig cfg_;
    unsigned max_in_flight_;
    std::deque<Admitted> queue_;
    std::uint64_t free_slots_; //!< bitmask, bit s = slot s free
    unsigned in_flight_ = 0;
    unsigned max_occupied_qshrs_ = 0;
    std::uint64_t offered_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t dropped_ = 0;
    /** Ids queued or in flight; guards against double admission.
     *  Ordered set: lookups only today, but should anyone iterate it,
     *  the order is the id order, not hash-bucket order (R9). */
    std::set<std::uint64_t> live_ids_;

    obs::Counter m_admitted_;
    obs::Counter m_dropped_;
    obs::Gauge m_queue_depth_;
    obs::Gauge m_occupied_qshrs_;
};

} // namespace ansmet::serve

#endif // ANSMET_SERVE_ADMISSION_H
