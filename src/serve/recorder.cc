#include "serve/recorder.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace ansmet::serve {

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kTraverse: return "traverse";
    case Phase::kOffload: return "offload";
    case Phase::kCompute: return "compute";
    case Phase::kCollect: return "collect";
    case Phase::kTotal: return "total";
    }
    return "?";
}

LatencyRecorder::LatencyRecorder()
{
    obs::Registry &reg = obs::Registry::instance();
    for (unsigned p = 0; p < kNumPhases; ++p) {
        hists_[p] = reg.histogram(
            std::string("serve.") + phaseName(static_cast<Phase>(p)) +
                "_ps",
            48);
    }
}

void
LatencyRecorder::record(Phase phase, std::uint64_t ps)
{
    const auto p = static_cast<unsigned>(phase);
    ANSMET_DCHECK(p < kNumPhases);
    samples_[p].push_back(ps);
    hists_[p].sample(ps);
}

std::size_t
LatencyRecorder::count(Phase phase) const
{
    return samples_[static_cast<unsigned>(phase)].size();
}

const std::vector<std::uint64_t> &
LatencyRecorder::samples(Phase phase) const
{
    return samples_[static_cast<unsigned>(phase)];
}

std::uint64_t
LatencyRecorder::exactQuantile(Phase phase, double q) const
{
    const auto &s = samples_[static_cast<unsigned>(phase)];
    if (s.empty())
        return 0;
    std::vector<std::uint64_t> sorted(s);
    std::sort(sorted.begin(), sorted.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    rank = rank < 1 ? 1 : std::min(rank, sorted.size());
    return sorted[rank - 1];
}

PhaseSummary
LatencyRecorder::summary(Phase phase) const
{
    const auto &s = samples_[static_cast<unsigned>(phase)];
    PhaseSummary out;
    out.count = s.size();
    if (s.empty())
        return out;
    std::vector<std::uint64_t> sorted(s);
    std::sort(sorted.begin(), sorted.end());
    auto rank = [&](double q) {
        auto r = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(sorted.size())));
        r = r < 1 ? 1 : std::min(r, sorted.size());
        return sorted[r - 1];
    };
    out.p50 = rank(0.50);
    out.p99 = rank(0.99);
    out.p999 = rank(0.999);
    out.max = sorted.back();
    double sum = 0.0;
    for (std::uint64_t v : sorted)
        sum += static_cast<double>(v);
    out.mean = sum / static_cast<double>(sorted.size());
    return out;
}

} // namespace ansmet::serve
