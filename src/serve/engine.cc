#include "serve/engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace ansmet::serve {

namespace {

/**
 * Per-serve driver. Lives on the stack of serve() for the duration of
 * the event loop; every callback it schedules is descheduled-by-
 * completion before serve() returns (the loop drains fully).
 */
class Driver
{
  public:
    Driver(core::SystemModel &sys,
           const std::vector<core::QueryTrace> &traces,
           std::vector<Arrival> arrivals, AdmissionScheduler &adm,
           ServeReport &report)
        : sys_(sys), adm_(adm), report_(report),
          arrivals_(std::move(arrivals))
    {
        sys_.beginSession(traces, adm.maxInFlight());
        // Open-loop: every arrival is on the calendar before the run
        // starts; service backlog never delays an arrival.
        auto &eq = sys_.eventQueue();
        for (std::size_t i = 0; i < arrivals_.size(); ++i) {
            eq.schedule(arrivals_[i].at,
                        [this, i] { onArrival(arrivals_[i]); });
        }
    }

    void
    run()
    {
        sys_.eventQueue().run();
        report_.run = sys_.endSession();
        report_.offered = adm_.offered();
        report_.admitted = adm_.admitted();
        report_.dropped = adm_.dropped();
        report_.maxOccupiedQshrs = adm_.maxOccupiedQshrs();
        report_.makespan = report_.run.makespan;
    }

  private:
    void
    onArrival(const Arrival &a)
    {
        const Tick now = sys_.eventQueue().now();
        // A dropped arrival enqueues nothing, so there is nothing to
        // pump: every slot release already pumps for itself.
        if (adm_.tryOffer(a.queryId, a.traceIdx, now))
            pump();
    }

    /** Admit while a slot and a queued arrival are both available. */
    void
    pump()
    {
        while (auto adm = adm_.admitNext(sys_.eventQueue().now()))
            launch(*adm);
    }

    void
    launch(const AdmissionScheduler::Admitted &a)
    {
        const Tick now = sys_.eventQueue().now();
        const TickDelta wait = now - a.enqueuedAt;
        obs::TraceWriter::instance().span(
            "queue_wait", static_cast<std::uint32_t>(a.queryId),
            a.enqueuedAt, now);
        sys_.submit(a.slot, a.traceIdx,
                    [this, a, wait](const core::QueryStats &qs) {
                        onDone(a, wait, qs);
                    });
    }

    void
    onDone(const AdmissionScheduler::Admitted &a, TickDelta wait,
           const core::QueryStats &qs)
    {
        auto &lat = report_.latency;
        lat.record(Phase::kQueueWait, wait.raw());
        lat.record(Phase::kTraverse, qs.traversal.raw());
        lat.record(Phase::kOffload, qs.offload.raw());
        lat.record(Phase::kCompute, qs.distComp.raw());
        lat.record(Phase::kCollect, qs.collect.raw());
        lat.record(Phase::kTotal, (wait + qs.latency()).raw());
        ++report_.completed;

        ServedQuery sq;
        sq.queryId = a.queryId;
        sq.traceIdx = a.traceIdx;
        sq.queueWait = wait;
        sq.stats = qs;
        report_.queries.push_back(sq);

        adm_.release(a.slot, a.queryId);
        // The freed slot may immediately take the next queued arrival
        // at this same tick.
        pump();
    }

    core::SystemModel &sys_;
    AdmissionScheduler &adm_;
    ServeReport &report_;
    std::vector<Arrival> arrivals_;
};

} // namespace

ServeReport
serve(core::SystemModel &sys,
      const std::vector<core::QueryTrace> &traces, const ServeConfig &cfg)
{
    ANSMET_CHECK(!traces.empty(), "serve: empty trace set");

    LoadGenConfig load = cfg.load;
    load.numTraces = traces.size();

    const core::SystemConfig &sc = sys.config();
    AdmissionConfig ac;
    ac.queueCapacity = cfg.queueCapacity;
    ac.numQshrs = sc.ndpParams.numQshrs;
    ac.qshrsPerQuery = std::max(1u, sc.qshrsPerQuery);
    ac.maxInFlightCap = cfg.maxInFlight;
    // CPU designs have no QSHRs to pack; bound by host cores instead.
    if (!isNdp(sc.design)) {
        ac.numQshrs = sc.concurrentQueries;
        ac.qshrsPerQuery = 1;
    }

    ServeReport report;
    AdmissionScheduler adm(ac);
    Driver driver(sys, traces, generateArrivals(load), adm, report);
    driver.run();
    return report;
}

} // namespace ansmet::serve
