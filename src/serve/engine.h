/**
 * @file
 * The online query-serving engine: open-loop arrivals scheduled on the
 * simulator's event queue, a bounded admission queue packing in-flight
 * queries onto the SystemModel session slots (and through them the NDP
 * QSHRs), and per-phase tail-latency recording.
 *
 * Determinism contract: the whole serve runs inside the event-driven
 * simulation — arrivals at pre-generated ticks, admission and
 * completion inline in event callbacks — so the report is a pure
 * function of (system, traces, config). ANSMET_THREADS and
 * ANSMET_CORES only parallelize the pure fetch precompute and must not
 * change a single sample; tests/test_serve.cc holds that line.
 */

#ifndef ANSMET_SERVE_ENGINE_H
#define ANSMET_SERVE_ENGINE_H

#include <cstdint>
#include <vector>

#include "core/system.h"
#include "serve/admission.h"
#include "serve/loadgen.h"
#include "serve/recorder.h"

namespace ansmet::serve {

struct ServeConfig
{
    LoadGenConfig load;
    std::size_t queueCapacity = 64;
    /**
     * Cap on concurrent in-flight queries; 0 = derive from the system
     * (min of concurrentQueries and numQshrs / qshrsPerQuery, i.e.
     * exactly the paper's 32-QSHR budget).
     */
    unsigned maxInFlight = 0;
};

/** One per-query serving outcome, in completion order. */
struct ServedQuery
{
    std::uint64_t queryId = 0;
    std::size_t traceIdx = 0;
    TickDelta queueWait{};
    core::QueryStats stats;
};

/** Whole-serve outcome. */
struct ServeReport
{
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t completed = 0;
    unsigned maxOccupiedQshrs = 0;
    TickDelta makespan{}; //!< first arrival scheduled at tick 0

    /** Completed queries per second of simulated time. */
    double
    achievedQps() const
    {
        if (makespan == TickDelta{})
            return 0.0;
        return static_cast<double>(completed) /
               (static_cast<double>(makespan.raw()) * 1e-12);
    }

    std::vector<ServedQuery> queries; //!< completion order
    LatencyRecorder latency;
    core::RunStats run; //!< underlying session stats (energy etc.)
};

/**
 * Serve @p traces through @p sys under the offered load in @p cfg.
 * Consumes the model's single session; @p sys must be freshly
 * constructed.
 */
ServeReport serve(core::SystemModel &sys,
                  const std::vector<core::QueryTrace> &traces,
                  const ServeConfig &cfg);

} // namespace ansmet::serve

#endif // ANSMET_SERVE_ENGINE_H
