/**
 * @file
 * Per-phase latency recorder for the serving engine.
 *
 * Every completed query contributes one sample per phase (queue wait,
 * traverse, offload, compute, collect, end-to-end total), recorded
 * twice on purpose:
 *
 *  - raw samples kept in-recorder for *exact* nearest-rank quantiles —
 *    the p50/p99/p999 the bench reports and CI gates on must not carry
 *    bucketing error;
 *  - a log2 histogram per phase in the obs metrics registry
 *    ("serve.<phase>_ps"), so serving latency shows up in metric
 *    snapshots and trace-file dumps like every other subsystem, at the
 *    documented 2x bucket-bound accuracy.
 *
 * The recorder is driven only from simulation callbacks (one thread);
 * it is not thread-safe and does not need to be.
 */

#ifndef ANSMET_SERVE_RECORDER_H
#define ANSMET_SERVE_RECORDER_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace ansmet::serve {

/** Latency phases of one served query. */
enum class Phase : unsigned
{
    kQueueWait = 0, //!< arrival (enqueue) to admission on a slot
    kTraverse,      //!< index reads + step overhead + heap ops
    kOffload,       //!< NDP instruction transfer
    kCompute,       //!< distance comparison (CPU or NDP)
    kCollect,       //!< result polling / collection
    kTotal,         //!< arrival to completion (queue wait included)
};

constexpr unsigned kNumPhases = 6;

const char *phaseName(Phase p);

/** Order statistics of one phase's samples, in picoseconds. */
struct PhaseSummary
{
    std::size_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
};

class LatencyRecorder
{
  public:
    LatencyRecorder();

    /** Record one @p ps sample for @p phase. */
    void record(Phase phase, std::uint64_t ps);

    /** Samples recorded for @p phase so far. */
    std::size_t count(Phase phase) const;

    /**
     * Exact q-quantile (0 < q <= 1) of @p phase by nearest rank:
     * sorted[ceil(q * n) - 1]. 0 when no samples.
     */
    std::uint64_t exactQuantile(Phase phase, double q) const;

    /** p50/p99/p999/max/mean of @p phase. */
    PhaseSummary summary(Phase phase) const;

    /** The raw samples of @p phase in recording (completion) order. */
    const std::vector<std::uint64_t> &samples(Phase phase) const;

  private:
    std::array<std::vector<std::uint64_t>, kNumPhases> samples_;
    std::array<obs::Histogram, kNumPhases> hists_;
};

} // namespace ansmet::serve

#endif // ANSMET_SERVE_RECORDER_H
