#include "serve/loadgen.h"

#include <cmath>

#include "common/check.h"
#include "common/prng.h"

namespace ansmet::serve {

namespace {

/** Exponential draw with mean 1/@p rate, in ticks (rate is per tick). */
TickDelta
exponential(Prng &rng, double rate)
{
    double u = rng.uniform();
    if (u < 1e-300)
        u = 1e-300;
    const double ticks = -std::log(u) / rate;
    // At least one tick apart so arrival order is total and stable.
    return TickDelta{static_cast<std::uint64_t>(
        std::max(1.0, std::round(ticks)))};
}

} // namespace

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    }
    return "?";
}

std::vector<Arrival>
generateArrivals(const LoadGenConfig &cfg)
{
    ANSMET_CHECK(cfg.offeredQps > 0.0, "loadgen: offeredQps must be > 0");
    ANSMET_CHECK(cfg.numTraces > 0, "loadgen: empty trace set");
    ANSMET_CHECK(cfg.zipfAlpha > 1.0,
                 "loadgen: zipfAlpha must be > 1 (rejection sampler)");

    // Offered rate in arrivals per simulated tick (tick = 1 ps).
    const double rate = cfg.offeredQps * 1e-12;

    // Independent streams per concern: adding e.g. an extra popularity
    // draw must not shift every subsequent arrival time.
    Prng arrivals = Prng::stream(cfg.seed, 0);
    Prng popularity = Prng::stream(cfg.seed, 1);
    Prng modulation = Prng::stream(cfg.seed, 2);

    // Two-state MMPP rates and mean dwells. With burst fraction f and
    // factor B, the quiet rate (1 - f*B)/(1 - f) * rate keeps the
    // time-weighted average at the offered rate.
    double rate_high = rate;
    double rate_low = rate;
    double dwell_high_ticks = 0.0;
    double dwell_low_ticks = 0.0;
    if (cfg.process == ArrivalProcess::kBursty) {
        const double f = cfg.burstFraction;
        ANSMET_CHECK(f > 0.0 && f < 1.0,
                     "loadgen: burstFraction must be in (0, 1)");
        ANSMET_CHECK(cfg.burstFactor * f < 1.0,
                     "loadgen: burstFactor * burstFraction must be < 1 "
                     "to keep the quiet-state rate positive");
        rate_high = rate * cfg.burstFactor;
        rate_low = rate * (1.0 - f * cfg.burstFactor) / (1.0 - f);
        dwell_high_ticks =
            cfg.meanBurstNs * static_cast<double>(kTicksPerNs.raw());
        dwell_low_ticks = dwell_high_ticks * (1.0 - f) / f;
    }

    std::vector<Arrival> out;
    out.reserve(cfg.numQueries);

    Tick now{};
    bool bursting = false;
    // Tick at which the current modulation state ends (kBursty only).
    Tick state_end{};
    if (cfg.process == ArrivalProcess::kBursty)
        state_end = now + exponential(modulation, 1.0 / dwell_low_ticks);

    for (std::uint64_t q = 0; q < cfg.numQueries; ++q) {
        if (cfg.process == ArrivalProcess::kPoisson) {
            now += exponential(arrivals, rate);
        } else {
            // Draw in the current state; if the gap crosses the state
            // boundary, restart the (memoryless) draw from the switch
            // point in the new state.
            for (;;) {
                const double r = bursting ? rate_high : rate_low;
                const Tick cand = now + exponential(arrivals, r);
                if (cand <= state_end) {
                    now = cand;
                    break;
                }
                now = state_end;
                bursting = !bursting;
                const double dwell =
                    bursting ? dwell_high_ticks : dwell_low_ticks;
                state_end =
                    now + exponential(modulation, 1.0 / dwell);
            }
        }
        Arrival a;
        a.at = now;
        a.queryId = q;
        a.traceIdx = cfg.numTraces == 1
                         ? 0
                         : static_cast<std::size_t>(popularity.zipf(
                               cfg.numTraces, cfg.zipfAlpha));
        out.push_back(a);
    }
    return out;
}

} // namespace ansmet::serve
