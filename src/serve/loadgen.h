/**
 * @file
 * Open-loop load generation for the serving engine: arrival times from
 * a Poisson or bursty (two-state MMPP) process, query identity from a
 * Zipf popularity draw over the trace set.
 *
 * Open-loop means arrivals are independent of service: the schedule is
 * generated up front as a pure function of the config (seed included),
 * and queries arrive at their scheduled ticks whether or not the
 * system has capacity — saturation shows up as queue wait and drops,
 * exactly the regime closed-loop batch replay can't measure. The
 * schedule is bitwise reproducible for a given config on any thread or
 * core configuration (the generator never touches global randomness;
 * see common/prng.h).
 */

#ifndef ANSMET_SERVE_LOADGEN_H
#define ANSMET_SERVE_LOADGEN_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ansmet::serve {

/** Arrival-time process shape. */
enum class ArrivalProcess
{
    kPoisson, //!< exponential inter-arrivals at the offered rate
    /**
     * Two-state Markov-modulated Poisson process: exponential dwell
     * times alternate between a high-rate burst state and a low-rate
     * quiet state, with the long-run average held at the offered
     * rate. Models the flash-crowd traffic a p999 gate exists for.
     */
    kBursty,
};

const char *arrivalProcessName(ArrivalProcess p);

/** Configuration of one generated arrival schedule. */
struct LoadGenConfig
{
    double offeredQps = 10000.0; //!< long-run average arrival rate
    std::uint64_t numQueries = 256;
    std::size_t numTraces = 1; //!< popularity domain: traces [0, n)
    ArrivalProcess process = ArrivalProcess::kPoisson;

    /**
     * Burst-state rate multiplier (kBursty). The quiet-state rate is
     * derived so the time-weighted average stays at offeredQps, which
     * requires burstFactor * burstFraction < 1.
     */
    double burstFactor = 8.0;
    double burstFraction = 0.1; //!< long-run fraction of time bursting
    double meanBurstNs = 2.0e6; //!< mean dwell in the burst state

    /**
     * Zipf exponent of the query-popularity draw (> 1; the rejection
     * sampler in Prng::zipf requires it). Larger = more skew; trace 0
     * is the hottest. With one trace every arrival replays it.
     */
    double zipfAlpha = 1.2;

    std::uint64_t seed = 1; //!< ANSMET_SEED; the only entropy source
};

/** One scheduled query arrival. */
struct Arrival
{
    Tick at{};
    std::size_t traceIdx = 0;
    std::uint64_t queryId = 0; //!< dense arrival index; unique per run
};

/**
 * Generate the full arrival schedule: numQueries arrivals in
 * nondecreasing tick order with Zipf-drawn trace indices. Pure
 * function of @p cfg.
 */
std::vector<Arrival> generateArrivals(const LoadGenConfig &cfg);

} // namespace ansmet::serve

#endif // ANSMET_SERVE_LOADGEN_H
