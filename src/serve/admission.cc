#include "serve/admission.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace ansmet::serve {

AdmissionScheduler::AdmissionScheduler(const AdmissionConfig &cfg)
    : cfg_(cfg)
{
    ANSMET_CHECK(cfg.queueCapacity > 0,
                 "admission: queue capacity must be > 0");
    ANSMET_CHECK(cfg.qshrsPerQuery > 0 &&
                     cfg.qshrsPerQuery <= cfg.numQshrs,
                 "admission: qshrsPerQuery out of range");
    max_in_flight_ = cfg.numQshrs / cfg.qshrsPerQuery;
    if (cfg.maxInFlightCap != 0)
        max_in_flight_ = std::min(max_in_flight_, cfg.maxInFlightCap);
    ANSMET_CHECK(max_in_flight_ > 0,
                 "admission: config admits no query at all");
    // Slot allocation uses one 64-bit mask; the paper's 32 QSHRs give
    // at most 32 slots, far under the mask width.
    ANSMET_CHECK(max_in_flight_ <= 64,
                 "admission: more than 64 concurrent slots unsupported");
    free_slots_ = max_in_flight_ == 64
                      ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << max_in_flight_) - 1;

    obs::Registry &reg = obs::Registry::instance();
    m_admitted_ = reg.counter("serve.admitted");
    m_dropped_ = reg.counter("serve.dropped");
    m_queue_depth_ = reg.gauge("serve.queue_depth");
    m_occupied_qshrs_ = reg.gauge("serve.occupied_qshrs");
}

bool
AdmissionScheduler::tryOffer(std::uint64_t queryId, std::size_t traceIdx,
                             Tick now)
{
    ++offered_;
    ANSMET_CHECK(live_ids_.insert(queryId).second,
                 "admission: query id ", queryId,
                 " offered while already queued or in flight");
    if (queue_.size() >= cfg_.queueCapacity) {
        live_ids_.erase(queryId);
        ++dropped_;
        m_dropped_.inc();
        return false;
    }
    Admitted a;
    a.queryId = queryId;
    a.traceIdx = traceIdx;
    a.enqueuedAt = now;
    queue_.push_back(a);
    m_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    return true;
}

std::optional<AdmissionScheduler::Admitted>
AdmissionScheduler::admitNext(Tick)
{
    if (queue_.empty() || free_slots_ == 0)
        return std::nullopt;
    Admitted a = queue_.front();
    queue_.pop_front();
    a.slot = static_cast<unsigned>(std::countr_zero(free_slots_));
    free_slots_ &= free_slots_ - 1;
    ++in_flight_;
    ++admitted_;
    ANSMET_CHECK(occupiedQshrs() <= cfg_.numQshrs,
                 "admission: occupied QSHRs ", occupiedQshrs(),
                 " exceed the ", cfg_.numQshrs, " available");
    max_occupied_qshrs_ = std::max(max_occupied_qshrs_, occupiedQshrs());
    m_admitted_.inc();
    m_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    m_occupied_qshrs_.set(occupiedQshrs());
    return a;
}

void
AdmissionScheduler::release(unsigned slot, std::uint64_t queryId)
{
    ANSMET_CHECK(slot < max_in_flight_, "admission: slot out of range");
    const std::uint64_t bit = std::uint64_t{1} << slot;
    ANSMET_CHECK((free_slots_ & bit) == 0,
                 "admission: releasing slot ", slot, " twice");
    ANSMET_CHECK(live_ids_.erase(queryId) == 1,
                 "admission: releasing unknown query id ", queryId);
    free_slots_ |= bit;
    ANSMET_CHECK(in_flight_ > 0);
    --in_flight_;
    m_occupied_qshrs_.set(occupiedQshrs());
}

} // namespace ansmet::serve
