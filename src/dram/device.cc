#include "dram/device.h"

#include <algorithm>

#include "common/check.h"

namespace ansmet::dram {

const char *
commandName(Command c)
{
    switch (c) {
      case Command::kAct: return "ACT";
      case Command::kPre: return "PRE";
      case Command::kRd:  return "RD";
      case Command::kWr:  return "WR";
      case Command::kRef: return "REF";
    }
    return "?";
}

RankDevice::RankDevice(const TimingParams &tp, const OrgParams &org)
    : tp_(tp), org_(org), banks_(org.banksPerRank()),
      nextRefreshAt_(Tick{} + tp.cycles(tp.tREFI))
{
}

RankDevice::Bank &
RankDevice::bank(const BankAddr &a)
{
    ANSMET_DCHECK(a.flatBank(org_.banksPerGroup) < banks_.size(),
                  "bank address out of range: bg=", a.bankGroup,
                  " bank=", a.bank);
    return banks_[a.flatBank(org_.banksPerGroup)];
}

const RankDevice::Bank &
RankDevice::bank(const BankAddr &a) const
{
    ANSMET_DCHECK(a.flatBank(org_.banksPerGroup) < banks_.size(),
                  "bank address out of range: bg=", a.bankGroup,
                  " bank=", a.bank);
    return banks_[a.flatBank(org_.banksPerGroup)];
}

void
RankDevice::catchUpRefresh(Tick now)
{
    while (nextRefreshAt_ <= now) {
        // All-bank refresh: banks close, rank blocks for tRFC.
        const Tick start = std::max(nextRefreshAt_, refreshBlockedUntil_);
        const Tick end = start + tp_.cycles(tp_.tRFC);
        ANSMET_DCHECK(end > start, "refresh must advance the blocked window");
        for (auto &b : banks_) {
            b.openRow.reset();
            b.actAllowedAt = std::max(b.actAllowedAt, end);
        }
        refreshBlockedUntil_ = end;
        nextRefreshAt_ += tp_.cycles(tp_.tREFI);
        ++num_refreshes_;
        if (tracing_)
            trace_.push_back({Command::kRef, 0, 0, 0, start});
    }
}

Tick
RankDevice::rankActConstraint(unsigned bank_group, Tick now) const
{
    Tick t = now;
    if (anyAct_) {
        const unsigned rrd =
            bank_group == lastActBg_ ? tp_.tRRD_L : tp_.tRRD_S;
        t = std::max(t, lastActAt_ + tp_.cycles(rrd));
    }
    if (actWindow_.size() >= 4)
        t = std::max(t, actWindow_.front() + tp_.cycles(tp_.tFAW));
    return std::max(t, refreshBlockedUntil_);
}

Tick
RankDevice::rankColConstraint(unsigned bank_group, bool is_write,
                              Tick now) const
{
    Tick t = std::max(now, refreshBlockedUntil_);
    if (anyCol_) {
        const unsigned ccd =
            bank_group == lastColBg_ ? tp_.tCCD_L : tp_.tCCD_S;
        t = std::max(t, lastColAt_ + tp_.cycles(ccd));
    }
    if (!is_write)
        t = std::max(t, writeRecoveryUntil_);
    return t;
}

Tick
RankDevice::earliestAct(const BankAddr &a, Tick now) const
{
    const Bank &b = bank(a);
    ANSMET_CHECK(!b.openRow, "ACT to a bank with an open row");
    return std::max(b.actAllowedAt, rankActConstraint(a.bankGroup, now));
}

Tick
RankDevice::earliestPre(const BankAddr &a, Tick now) const
{
    const Bank &b = bank(a);
    return std::max({b.preAllowedAt, now, refreshBlockedUntil_});
}

Tick
RankDevice::earliestCol(const BankAddr &a, bool is_write, Tick now) const
{
    const Bank &b = bank(a);
    return std::max(b.colAllowedAt,
                    rankColConstraint(a.bankGroup, is_write, now));
}

void
RankDevice::issueAct(const BankAddr &a, Tick t)
{
    Bank &b = bank(a);
    ANSMET_CHECK(t >= earliestAct(a, t), "ACT timing violation at ", t);
    b.openRow = a.row;
    b.colAllowedAt = t + tp_.cycles(tp_.tRCD);
    b.preAllowedAt = t + tp_.cycles(tp_.tRAS);
    b.actAllowedAt = t + tp_.cycles(tp_.tRC);

    lastActAt_ = t;
    lastActBg_ = a.bankGroup;
    anyAct_ = true;
    actWindow_.push_back(t);
    if (actWindow_.size() > 4)
        actWindow_.pop_front();

    ++num_acts_;
    record(Command::kAct, a, t);
}

void
RankDevice::issuePre(const BankAddr &a, Tick t)
{
    Bank &b = bank(a);
    ANSMET_DCHECK(t >= earliestPre(a, t), "PRE timing violation at ", t);
    b.openRow.reset();
    b.actAllowedAt = std::max(b.actAllowedAt, t + tp_.cycles(tp_.tRP));
    record(Command::kPre, a, t);
}

Tick
RankDevice::issueCol(const BankAddr &a, bool is_write, Tick t)
{
    Bank &b = bank(a);
    ANSMET_CHECK(b.openRow && *b.openRow == a.row,
                 "column command to a closed/incorrect row");
    ANSMET_DCHECK(t >= earliestCol(a, is_write, t),
                  "column timing violation at ", t);

    const unsigned latency = is_write ? tp_.tCWL : tp_.tCL;
    const Tick data_start = t + tp_.cycles(latency);
    const Tick data_end = data_start + tp_.cycles(tp_.tBL);

    if (is_write) {
        // Write recovery gates both PRE (tWR) and subsequent reads (tWTR).
        b.preAllowedAt =
            std::max(b.preAllowedAt, data_end + tp_.cycles(tp_.tWR));
        writeRecoveryUntil_ =
            std::max(writeRecoveryUntil_, data_end + tp_.cycles(tp_.tWTR));
        ++num_writes_;
    } else {
        b.preAllowedAt =
            std::max(b.preAllowedAt, t + tp_.cycles(tp_.tRTP));
        ++num_reads_;
    }

    lastColAt_ = t;
    lastColBg_ = a.bankGroup;
    lastColWasWrite_ = is_write;
    anyCol_ = true;

    record(is_write ? Command::kWr : Command::kRd, a, t);
    return data_end;
}

std::optional<unsigned>
RankDevice::openRow(const BankAddr &a) const
{
    return bank(a).openRow;
}

void
RankDevice::record(Command c, const BankAddr &a, Tick t)
{
    if (tracing_)
        trace_.push_back({c, a.bankGroup, a.bank, a.row, t});
}

} // namespace ansmet::dram
