/**
 * @file
 * DRAM request/command vocabulary shared by device and controllers.
 */

#ifndef ANSMET_DRAM_TYPES_H
#define ANSMET_DRAM_TYPES_H

#include <cstdint>

#include "common/types.h"
#include "sim/inline_callback.h"

namespace ansmet::dram {

/** DRAM command set (all-bank refresh only). */
enum class Command : std::uint8_t { kAct, kPre, kRd, kWr, kRef };

const char *commandName(Command c);

/** Decoded location of a 64 B line inside one rank. */
struct BankAddr
{
    unsigned bankGroup = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned column = 0;

    unsigned
    flatBank(unsigned banks_per_group) const
    {
        return bankGroup * banks_per_group + bank;
    }

    bool
    operator==(const BankAddr &o) const
    {
        return bankGroup == o.bankGroup && bank == o.bank && row == o.row &&
               column == o.column;
    }
};

/** A 64 B memory request presented to a controller. */
struct Request
{
    /** Completion callback; inline-only capture (move-only request).
     *  The budget is deliberately below the event queue's 48-byte one:
     *  a Request::Callback can never be re-captured inside an event
     *  lambda, so completion state must be pooled, not nested. */
    using Callback = sim::InlineFunction<void(Tick finish), 40>;

    BankAddr addr;
    bool isWrite = false;
    Tick arrival{};
    Callback onComplete;
};

} // namespace ansmet::dram

#endif // ANSMET_DRAM_TYPES_H
