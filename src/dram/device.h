/**
 * @file
 * Timing model of one DRAM rank: per-bank state machines plus
 * rank-level constraints (tRRD, tFAW, column-to-column spacing,
 * refresh).
 *
 * The device answers "when could command X issue?" and mutates state
 * when the controller commits to issuing it. It owns no queues and
 * makes no policy decisions; those live in MemController.
 */

#ifndef ANSMET_DRAM_DEVICE_H
#define ANSMET_DRAM_DEVICE_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "dram/params.h"
#include "dram/types.h"

namespace ansmet::dram {

/** Optional trace of issued commands, consumed by the timing checker. */
struct CommandRecord
{
    Command cmd;
    unsigned bankGroup;
    unsigned bank;
    unsigned row;
    Tick tick;
};

/** One rank's worth of banks and rank-wide timing state. */
class RankDevice
{
  public:
    RankDevice(const TimingParams &tp, const OrgParams &org);

    /** Earliest tick an ACT to @p a could issue, at or after @p now. */
    Tick earliestAct(const BankAddr &a, Tick now) const;

    /** Earliest tick a PRE to @p a could issue. */
    Tick earliestPre(const BankAddr &a, Tick now) const;

    /**
     * Earliest tick a RD/WR to @p a could issue. Requires the row to be
     * open (checked by caller via openRow()).
     */
    Tick earliestCol(const BankAddr &a, bool is_write, Tick now) const;

    /** Commit an ACT at @p t (must satisfy earliestAct). */
    void issueAct(const BankAddr &a, Tick t);

    /** Commit a PRE at @p t. */
    void issuePre(const BankAddr &a, Tick t);

    /**
     * Commit a RD/WR at @p t.
     * @return the tick at which the data burst completes.
     */
    Tick issueCol(const BankAddr &a, bool is_write, Tick t);

    /** Row currently open in the bank of @p a, if any. */
    std::optional<unsigned> openRow(const BankAddr &a) const;

    /**
     * Apply all refreshes whose deadline is <= @p now. All banks are
     * force-closed and the rank is blocked for tRFC per refresh. Called
     * by the controller before making scheduling decisions.
     */
    void catchUpRefresh(Tick now);

    /** Enable command tracing for timing verification in tests. */
    void enableTrace() { tracing_ = true; }
    const std::vector<CommandRecord> &trace() const { return trace_; }

    /** Counters for the power model. */
    std::uint64_t numActs() const { return num_acts_; }
    std::uint64_t numReads() const { return num_reads_; }
    std::uint64_t numWrites() const { return num_writes_; }
    std::uint64_t numRefreshes() const { return num_refreshes_; }

    const TimingParams &timing() const { return tp_; }
    const OrgParams &org() const { return org_; }

  private:
    struct Bank
    {
        std::optional<unsigned> openRow;
        Tick actAllowedAt{};
        Tick preAllowedAt{};
        Tick colAllowedAt{};    //!< from tRCD after ACT
    };

    Bank &bank(const BankAddr &a);
    const Bank &bank(const BankAddr &a) const;

    /** Rank-level earliest ACT considering tRRD and tFAW. */
    Tick rankActConstraint(unsigned bank_group, Tick now) const;

    /** Rank-level earliest column command (tCCD_S/L, tWTR). */
    Tick rankColConstraint(unsigned bank_group, bool is_write,
                           Tick now) const;

    void record(Command c, const BankAddr &a, Tick t);

    TimingParams tp_;
    OrgParams org_;
    std::vector<Bank> banks_;

    // Rank-level history.
    Tick lastActAt_{};
    unsigned lastActBg_ = ~0u;
    bool anyAct_ = false;
    std::deque<Tick> actWindow_;          //!< for tFAW (last 4 ACTs)
    Tick lastColAt_{};
    unsigned lastColBg_ = ~0u;
    bool lastColWasWrite_ = false;
    bool anyCol_ = false;
    Tick writeRecoveryUntil_{};           //!< WR data end + tWTR, gates RD
    Tick refreshBlockedUntil_{};
    Tick nextRefreshAt_;

    bool tracing_ = false;
    std::vector<CommandRecord> trace_;

    std::uint64_t num_acts_ = 0;
    std::uint64_t num_reads_ = 0;
    std::uint64_t num_writes_ = 0;
    std::uint64_t num_refreshes_ = 0;
};

} // namespace ansmet::dram

#endif // ANSMET_DRAM_DEVICE_H
