/**
 * @file
 * Command-count based DRAM energy model.
 *
 * Energy = sum over ranks of (ACT/PRE pairs, reads, writes, refreshes)
 * times per-event energies, plus background power integrated over the
 * simulated time. Channel I/O energy is charged only for transfers
 * that cross the DQ bus to the host, which is how NDP saves I/O power.
 */

#ifndef ANSMET_DRAM_POWER_H
#define ANSMET_DRAM_POWER_H

#include <cstdint>

#include "dram/device.h"
#include "dram/params.h"

namespace ansmet::dram {

/** Accumulated energy in nanojoules, by component. */
struct EnergyBreakdown
{
    double actPreNj = 0.0;
    double rdWrCoreNj = 0.0;
    double ioNj = 0.0;
    double refreshNj = 0.0;
    double backgroundNj = 0.0;

    double
    totalNj() const
    {
        return actPreNj + rdWrCoreNj + ioNj + refreshNj + backgroundNj;
    }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        actPreNj += o.actPreNj;
        rdWrCoreNj += o.rdWrCoreNj;
        ioNj += o.ioNj;
        refreshNj += o.refreshNj;
        backgroundNj += o.backgroundNj;
        return *this;
    }
};

/** Compute one rank's energy for a run of @p elapsed ticks. */
inline EnergyBreakdown
rankEnergy(const RankDevice &dev, const EnergyParams &ep,
           TickDelta elapsed, std::uint64_t host_transfers)
{
    EnergyBreakdown e;
    e.actPreNj = static_cast<double>(dev.numActs()) * ep.actPreEnergyNj;
    e.rdWrCoreNj =
        static_cast<double>(dev.numReads()) * ep.rdCoreEnergyNj +
        static_cast<double>(dev.numWrites()) * ep.wrCoreEnergyNj;
    e.ioNj = static_cast<double>(host_transfers) * ep.ioEnergyNj;
    e.refreshNj =
        static_cast<double>(dev.numRefreshes()) * ep.refreshEnergyNj;
    // mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-6 nJ
    e.backgroundNj =
        ep.backgroundMwPerRank * static_cast<double>(elapsed.raw()) * 1e-6;
    return e;
}

} // namespace ansmet::dram

#endif // ANSMET_DRAM_POWER_H
