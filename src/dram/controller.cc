#include "dram/controller.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ansmet::dram {

namespace {

struct DramMetrics
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter reads = reg.counter("dram.reads");
    obs::Counter writes = reg.counter("dram.writes");
    obs::Counter rowActivates = reg.counter("dram.row_activates");
    obs::Counter rowConflicts = reg.counter("dram.row_conflicts");
    obs::Counter busTransfers = reg.counter("dram.bus_transfers");
    obs::Histogram queueDepth = reg.histogram("dram.queue_depth", 16);
    obs::Histogram queueLatency =
        reg.histogram("dram.queue_latency_ps", 48);
};

DramMetrics &
dramMetrics()
{
    static DramMetrics m;
    return m;
}

/** Sample one queue-depth trace point per this many enqueues; the
 *  full-rate track would dominate the trace file. */
constexpr std::uint64_t kQueueSampleStride = 64;

} // namespace

MemController::MemController(sim::EventQueue &eq, const TimingParams &tp,
                             const OrgParams &org, unsigned num_ranks,
                             std::string name)
    : eq_(eq), tp_(tp), org_(org),
      starvation_limit_(tp.cycles(2000)),
      stats_(std::move(name))
{
    ANSMET_CHECK(num_ranks >= 1, "controller needs at least one rank");
    for (unsigned r = 0; r < num_ranks; ++r)
        ranks_.push_back(std::make_unique<RankDevice>(tp_, org_));
}

void
MemController::enqueue(unsigned rank, Request req)
{
    ANSMET_CHECK(rank < ranks_.size(), "bad rank ", rank);
    req.arrival = eq_.now();
    std::uint32_t idx;
    if (pend_free_.empty()) {
        pend_pool_.emplace_back();
        idx = static_cast<std::uint32_t>(pend_pool_.size() - 1);
    } else {
        idx = pend_free_.back();
        pend_free_.pop_back();
    }
    Pending &p = pend_pool_[idx];
    p.rank = rank;
    p.req = std::move(req);
    p.order = next_order_++;
    queue_.push_back(idx);
    ++stats_.counter(p.req.isWrite ? "writes" : "reads");
    DramMetrics &m = dramMetrics();
    (p.req.isWrite ? m.writes : m.reads).inc();
    m.queueDepth.sample(queue_.size());
    if (obs_enq_++ % kQueueSampleStride == 0) {
        auto &tw = obs::TraceWriter::instance();
        if (tw.enabled()) {
            tw.counter(stats_.name() + ".bankq", obs::dramLaneTid(0),
                       eq_.now(),
                       static_cast<std::int64_t>(queue_.size()));
        }
    }
    scheduleKick(eq_.now());
}

MemController::Candidate
MemController::nextCommand(const Pending &p, Tick now) const
{
    const RankDevice &dev = *ranks_[p.rank];
    const BankAddr &a = p.req.addr;
    const auto open = dev.openRow(a);

    if (open && *open == a.row) {
        // Row hit: column command, also gated by the shared data bus.
        Tick t = dev.earliestCol(a, p.req.isWrite, now);
        const TickDelta data_latency =
            tp_.cycles(p.req.isWrite ? tp_.tCWL : tp_.tCL);
        if (data_bus_free_at_ - Tick{} > data_latency &&
            t + data_latency < data_bus_free_at_) {
            t = data_bus_free_at_ - data_latency;
        }
        return {p.req.isWrite ? Command::kWr : Command::kRd, t, true};
    }
    if (open) {
        // Row conflict: precharge first.
        return {Command::kPre, dev.earliestPre(a, now), false};
    }
    // Bank closed: activate.
    return {Command::kAct, dev.earliestAct(a, now), false};
}

void
MemController::issueFor(Pending &p, const Candidate &c, Tick t)
{
    RankDevice &dev = *ranks_[p.rank];
    switch (c.cmd) {
      case Command::kAct:
        dev.issueAct(p.req.addr, t);
        ++stats_.counter("acts");
        dramMetrics().rowActivates.inc();
        break;
      case Command::kPre:
        // A precharge on this path always means an open-row conflict
        // (closed banks go straight to kAct).
        dev.issuePre(p.req.addr, t);
        ++stats_.counter("pres");
        dramMetrics().rowConflicts.inc();
        break;
      case Command::kRd:
      case Command::kWr: {
        const Tick data_end = dev.issueCol(p.req.addr, p.req.isWrite, t);
        const Tick data_start = data_end - tp_.cycles(tp_.tBL);
        ANSMET_CHECK(data_start >= data_bus_free_at_,
                     "data bus overlap at ", data_start);
        data_bus_free_at_ = data_end;
        data_bus_busy_ += tp_.cycles(tp_.tBL);
        stats_.scalar("queue_latency")
            .sample(static_cast<double>((t - p.req.arrival).raw()));
        dramMetrics().queueLatency.sample((t - p.req.arrival).raw());
        scheduleCompletion(data_end, std::move(p.req.onComplete));
        break;
      }
      case Command::kRef:
        ANSMET_PANIC("REF issued through issueFor");
    }
}

void
MemController::enqueueBusTransfer(bool is_write, Request::Callback cb)
{
    bus_queue_.push_back(BusTransfer{is_write, eq_.now(), std::move(cb)});
    ++stats_.counter(is_write ? "bus_writes" : "bus_reads");
    dramMetrics().busTransfers.inc();
    scheduleKick(eq_.now());
}

bool
MemController::serveBusTransfers(Tick now, Tick before)
{
    while (!bus_queue_.empty() && bus_queue_.front().arrival <= before) {
        const Tick tc = std::max(now, cmd_bus_free_at_);
        const unsigned latency =
            bus_queue_.front().isWrite ? tp_.tCWL : tp_.tCL;
        const TickDelta data_latency = tp_.cycles(latency);
        Tick t = tc;
        if (data_bus_free_at_ - Tick{} > data_latency &&
            t + data_latency < data_bus_free_at_) {
            t = data_bus_free_at_ - data_latency;
        }
        if (t > now) {
            scheduleKick(t);
            return true;
        }
        const Tick data_end = t + data_latency + tp_.cycles(tp_.tBL);
        ANSMET_DCHECK(t + data_latency >= data_bus_free_at_,
                      "buffer-chip transfer overlaps a data burst");
        data_bus_free_at_ = data_end;
        data_bus_busy_ += tp_.cycles(tp_.tBL);
        cmd_bus_free_at_ = t + tp_.tCK;
        Request::Callback cb = std::move(bus_queue_.front().cb);
        bus_queue_.pop_front();
        scheduleCompletion(data_end, std::move(cb));
    }
    return false;
}

void
MemController::scheduleCompletion(Tick when, Request::Callback cb)
{
    if (!cb)
        return;
    std::uint32_t idx;
    if (done_free_.empty()) {
        done_pool_.emplace_back();
        idx = static_cast<std::uint32_t>(done_pool_.size() - 1);
    } else {
        idx = done_free_.back();
        done_free_.pop_back();
    }
    done_pool_[idx] = std::move(cb);
    eq_.schedule(when, [this, idx, when] {
        Request::Callback done = std::move(done_pool_[idx]);
        done_free_.push_back(idx);
        done(when);
    });
}

void
MemController::kick()
{
    const Tick now = eq_.now();

    for (auto &r : ranks_)
        r->catchUpRefresh(now);

    // Age-fair arbitration between buffer-chip transfers and bank
    // requests: a transfer goes first only if it is not younger than
    // the oldest queued bank request.
    const Tick oldest_bank =
        queue_.empty() ? kMaxTick : pend_pool_[queue_.front()].req.arrival;
    serveBusTransfers(now, oldest_bank);

    while (!queue_.empty()) {
        const Tick tc = std::max(now, cmd_bus_free_at_);
        if (tc > now) {
            scheduleKick(tc);
            return;
        }

        // FR-FCFS with an age cap: serve the oldest request's command
        // unconditionally if it has been starving; otherwise prefer the
        // oldest ready row hit, then the oldest request's prep command.
        Pending *chosen = nullptr;
        std::size_t chosen_qi = 0;
        Candidate chosen_cmd{};
        Tick soonest = kMaxTick;

        const bool starving =
            now - pend_pool_[queue_.front()].req.arrival >
            starvation_limit_;

        for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
            if (starving && qi != 0)
                continue;
            Pending &p = pend_pool_[queue_[qi]];
            const Candidate c = nextCommand(p, tc);
            soonest = std::min(soonest, std::max(c.earliest, tc));
            if (c.earliest <= tc) {
                if (c.isColumn) {
                    chosen = &p;
                    chosen_qi = qi;
                    chosen_cmd = c;
                    break; // oldest ready column command wins
                }
                if (!chosen) {
                    chosen = &p;
                    chosen_qi = qi;
                    chosen_cmd = c;
                }
            }
            if (starving)
                break;
        }

        if (!chosen) {
            // No eligible bank command can issue now: let waiting
            // transfers (even younger ones) use the idle bus, and make
            // sure the retry strictly advances time.
            serveBusTransfers(now, kMaxTick);
            if (soonest != kMaxTick)
                scheduleKick(std::max(soonest, now + tp_.tCK));
            return;
        }

        issueFor(*chosen, chosen_cmd, tc);
        cmd_bus_free_at_ = tc + tp_.tCK;

        if (chosen_cmd.isColumn) {
            // Retire the request: recycle its pool node and drop its
            // queue position (an index move, not a struct move).
            pend_free_.push_back(queue_[chosen_qi]);
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(chosen_qi));
        }
    }

    // Bank queue drained: flush any remaining buffer-chip transfers.
    serveBusTransfers(eq_.now() > now ? eq_.now() : now, kMaxTick);
}

void
MemController::scheduleKick(Tick when)
{
    ANSMET_DCHECK(when >= eq_.now(), "scheduler kick in the past: ", when);
    if (kick_at_ <= when)
        return; // an earlier (or equal) kick is already pending
    kick_at_ = when;
    const std::uint64_t gen = ++kick_gen_;
    eq_.schedule(when, [this, gen] {
        if (gen != kick_gen_)
            return; // superseded by a more recent schedule
        kick_at_ = kMaxTick;
        kick();
    });
}

BankAddr
mapLine(std::uint64_t line, const OrgParams &org)
{
    // Bank-group interleave at line granularity: consecutive lines
    // rotate across bank groups (so streams pace at tCCD_S, not
    // tCCD_L), wrap back into the same open rows for long streams,
    // and only cross banks/rows at large strides.
    BankAddr a;
    a.bankGroup = static_cast<unsigned>(line % org.bankGroups);
    line /= org.bankGroups;
    a.column = static_cast<unsigned>(line % org.columns);
    line /= org.columns;
    a.bank = static_cast<unsigned>(line % org.banksPerGroup);
    line /= org.banksPerGroup;
    a.row = static_cast<unsigned>(line % org.rows);
    return a;
}

} // namespace ansmet::dram
