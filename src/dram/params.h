/**
 * @file
 * DDR5 device timing and energy parameters.
 *
 * The defaults model DDR5-4800 with the paper's RCD-CAS-RP = 40-40-40
 * configuration (Table 1): 4 channels x 2 DIMMs x 4 ranks, 8 bank
 * groups x 4 banks per rank. All timings are in memory-controller
 * cycles at 2400 MHz (tCK = 416 ps, data moves at 4800 MT/s).
 */

#ifndef ANSMET_DRAM_PARAMS_H
#define ANSMET_DRAM_PARAMS_H

#include <cstdint>

#include "common/types.h"

namespace ansmet::dram {

/** Device timing constraints, in controller clock cycles. */
struct TimingParams
{
    TickDelta tCK{416};    //!< clock period in ticks (ps)

    unsigned tRCD = 40;    //!< ACT -> column command
    unsigned tCL = 40;     //!< RD -> first data beat
    unsigned tCWL = 38;    //!< WR -> first data beat
    unsigned tRP = 40;     //!< PRE -> ACT
    unsigned tRAS = 76;    //!< ACT -> PRE
    unsigned tRC = 116;    //!< ACT -> ACT same bank
    unsigned tBL = 8;      //!< data burst duration (16 beats / 2)
    unsigned tCCD_S = 8;   //!< column-to-column, different bank group
    unsigned tCCD_L = 12;  //!< column-to-column, same bank group
    unsigned tRRD_S = 8;   //!< ACT-to-ACT, different bank group
    unsigned tRRD_L = 12;  //!< ACT-to-ACT, same bank group
    unsigned tFAW = 32;    //!< four-activate window
    unsigned tRTP = 18;    //!< RD -> PRE
    unsigned tWR = 72;     //!< end of write burst -> PRE
    unsigned tWTR = 20;    //!< end of write burst -> RD
    unsigned tREFI = 9360; //!< refresh interval (3.9 us)
    unsigned tRFC = 984;   //!< refresh cycle time (410 ns)

    TickDelta
    cycles(unsigned c) const
    {
        return static_cast<std::uint64_t>(c) * tCK;
    }
};

/** Organization of the memory system. */
struct OrgParams
{
    unsigned channels = 4;
    unsigned dimmsPerChannel = 2;
    unsigned ranksPerDimm = 4;
    unsigned bankGroups = 8;
    unsigned banksPerGroup = 4;
    unsigned rows = 1 << 16;
    unsigned columns = 1 << 10;   //!< 64 B lines per row

    unsigned ranksPerChannel() const { return dimmsPerChannel * ranksPerDimm; }
    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }
    unsigned totalRanks() const { return channels * ranksPerChannel(); }

    /** Bytes addressable in one rank. */
    std::uint64_t
    rankBytes() const
    {
        return std::uint64_t{banksPerRank()} * rows * columns * kLineBytes;
    }
};

/**
 * Energy parameters, derived from DRAM datasheet IDD approximations and
 * the paper's component budgets (Table 1). Values are per-event or
 * static power; the absolute scale only matters for cross-design
 * ratios.
 */
struct EnergyParams
{
    double actPreEnergyNj = 2.0;   //!< one ACT+PRE pair
    double rdCoreEnergyNj = 2.0;   //!< 64 B read, array + internal bus
    double wrCoreEnergyNj = 2.2;   //!< 64 B write
    double ioEnergyNj = 1.2;       //!< 64 B transfer over the channel DQ bus
    double refreshEnergyNj = 48.0; //!< one all-bank refresh
    double backgroundMwPerRank = 60.0;  //!< standby/active background
    double ndpUnitActiveMw = 300.0;     //!< paper: 16-wide compute @ 300 mW
    double cpuCoreActiveW = 7.0;        //!< paper: 7 W per core
};

} // namespace ansmet::dram

#endif // ANSMET_DRAM_PARAMS_H
