/**
 * @file
 * FR-FCFS memory controller over one or more ranks sharing a command
 * bus and a data (DQ) bus.
 *
 * Used in two configurations:
 *  - channel mode: 8 ranks (2 DIMMs x 4) behind one channel bus — the
 *    host CPU path;
 *  - rank mode: 1 rank with its own internal bus — the per-rank NDP
 *    path, which is where DIMM-based NDP gets its bandwidth advantage.
 */

#ifndef ANSMET_DRAM_CONTROLLER_H
#define ANSMET_DRAM_CONTROLLER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ring_deque.h"
#include "common/stats.h"
#include "dram/device.h"
#include "dram/params.h"
#include "dram/types.h"
#include "sim/event_queue.h"

namespace ansmet::dram {

/** FR-FCFS, open-page controller. */
class MemController
{
  public:
    MemController(sim::EventQueue &eq, const TimingParams &tp,
                  const OrgParams &org, unsigned num_ranks,
                  std::string name);

    /** Enqueue a 64 B request for @p rank. Completion via callback. */
    void enqueue(unsigned rank, Request req);

    /**
     * Enqueue a 64 B transfer that targets the DIMM buffer chip rather
     * than a DRAM bank (the NDP instruction path: set-query/set-search
     * writes and poll reads). It occupies the command slot and the DQ
     * bus for one burst but touches no bank state.
     */
    void enqueueBusTransfer(bool is_write, Request::Callback cb);

    /** Number of requests not yet issued their column command. */
    std::size_t queueDepth() const { return queue_.size(); }

    RankDevice &rankDevice(unsigned r) { return *ranks_[r]; }
    const RankDevice &rankDevice(unsigned r) const { return *ranks_[r]; }
    unsigned numRanks() const { return static_cast<unsigned>(ranks_.size()); }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Ticks during which the data bus carried a burst (utilization). */
    TickDelta dataBusBusy() const { return data_bus_busy_; }

  private:
    struct Pending
    {
        unsigned rank;
        Request req;
        std::uint64_t order;
    };

    /** The next command a pending request needs, and when it could go. */
    struct Candidate
    {
        Command cmd;
        Tick earliest;
        bool isColumn;
    };

    Candidate nextCommand(const Pending &p, Tick now) const;
    void kick();
    void scheduleKick(Tick when);
    void issueFor(Pending &p, const Candidate &c, Tick t);

    struct BusTransfer
    {
        bool isWrite = false;
        Tick arrival{};
        Request::Callback cb;
    };

    /** Serve pending buffer-chip transfers not younger than @p before.
     *  @return true if the caller should re-kick later (bus busy). */
    bool serveBusTransfers(Tick now, Tick before);

    /**
     * Fire @p cb at @p when through a pooled completion node: the
     * callback itself is too large for an inline event capture by
     * design, so it parks in done_pool_ and the event carries only the
     * pool index. The pool reaches steady state after warmup — no
     * per-completion allocation.
     */
    void scheduleCompletion(Tick when, Request::Callback cb);

    sim::EventQueue &eq_;
    TimingParams tp_;
    OrgParams org_;
    std::vector<std::unique_ptr<RankDevice>> ranks_;
    /** Pending-node pool; queue_ holds pool indices in arrival order. */
    std::vector<Pending> pend_pool_;
    std::vector<std::uint32_t> pend_free_;
    std::vector<std::uint32_t> queue_;
    RingDeque<BusTransfer> bus_queue_;
    std::vector<Request::Callback> done_pool_;
    std::vector<std::uint32_t> done_free_;
    std::uint64_t next_order_ = 0;

    Tick cmd_bus_free_at_{};
    Tick data_bus_free_at_{};
    TickDelta data_bus_busy_{};

    /**
     * Earliest pending kick and its generation. Superseded kick events
     * (older generations) are no-ops when they fire, so at most one
     * scheduler invocation is ever live per controller.
     */
    Tick kick_at_ = kMaxTick;
    std::uint64_t kick_gen_ = 0;

    /** Age (ticks) past which the oldest request preempts row hits. */
    TickDelta starvation_limit_;

    StatGroup stats_;

    /** Enqueue count for stride-sampling the obs queue-depth track. */
    std::uint64_t obs_enq_ = 0;
};

/**
 * Map a linear 64 B line index within one rank onto (bank group, bank,
 * row, column). Consecutive lines fill one row before moving to the
 * next bank group, so streaming reads are row hits while independent
 * streams land in different bank groups.
 */
BankAddr mapLine(std::uint64_t line, const OrgParams &org);

} // namespace ansmet::dram

#endif // ANSMET_DRAM_CONTROLLER_H
