/**
 * @file
 * Per-query trace spans exported in Chrome trace_event JSON format
 * (load the file in chrome://tracing or https://ui.perfetto.dev).
 *
 * Spans are recorded against simulated time (Tick = picoseconds) and
 * mapped onto trace rows as:
 *
 *   pid  — one simulated run (SystemModel::run for one design); set
 *          with TraceWriter::beginRun("NDP-ETOpt/sift") so the many
 *          runs of a figure binary don't overlap on one timeline;
 *   tid  — a lane inside the run: query index for query-stage spans,
 *          a derived (unit, qshr) id for NDP task spans, a controller
 *          id for DRAM counter tracks.
 *
 * Recording is active only when the process was started with
 * ANSMET_TRACE=<path>; otherwise every call is a cheap early-out.
 * Events buffer in memory (bounded by ANSMET_TRACE_LIMIT, default
 * 2'000'000; overflow is counted, never silent) and flush to the path
 * at process exit or on TraceWriter::flush(). The flushed JSON also
 * embeds the full metrics Snapshot under "metrics".
 *
 * Like the metrics registry, the layer compiles to no-ops under
 * -DANSMET_OBS=OFF and never feeds back into simulated behaviour.
 */

#ifndef ANSMET_OBS_TRACE_H
#define ANSMET_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.h"

namespace ansmet::obs {

/** One "k":"v" argument attached to a trace event. */
struct TraceArg
{
    std::string_view key;
    std::int64_t value = 0;
};

#ifndef ANSMET_OBS_DISABLED

class TraceWriter
{
  public:
    /** The singleton; reads ANSMET_TRACE / ANSMET_TRACE_LIMIT once. */
    static TraceWriter &instance();

    /** True when ANSMET_TRACE is set — callers may skip building
     *  event arguments entirely when tracing is off. */
    bool enabled() const { return enabled_; }

    /**
     * Start a new run scope: subsequent events carry a fresh pid
     * labelled @p name via process_name metadata. Returns the pid so
     * nested helpers can stamp events explicitly if needed.
     */
    std::uint32_t beginRun(std::string_view name);

    /** Complete ("X") span on (current pid, @p tid) covering
     *  [start, end] in simulated time. */
    void span(std::string_view name, std::uint32_t tid, Tick start,
              Tick end, const TraceArg *args = nullptr,
              std::size_t numArgs = 0);

    /** Counter ("C") track sample at @p when. */
    void counter(std::string_view name, std::uint32_t tid, Tick when,
                 std::int64_t value);

    /** Instant ("i") event at @p when. */
    void instant(std::string_view name, std::uint32_t tid, Tick when);

    /** Name the @p tid row inside the current run. */
    void nameThread(std::uint32_t tid, std::string_view name);

    /** Write the trace file now (also runs automatically at exit).
     *  Idempotent per accumulated state; later events re-flush. */
    void flush();

    /** Events dropped because the buffer hit ANSMET_TRACE_LIMIT. */
    std::uint64_t dropped() const;

    ~TraceWriter() = delete;

  private:
    TraceWriter();
    struct Impl;
    Impl &impl() const;
    bool enabled_ = false;
};

/** tid convention for NDP task rows: one lane per (unit, qshr). */
inline std::uint32_t
ndpLaneTid(unsigned unit, unsigned qshr)
{
    return 10000 + unit * 64 + qshr;
}

/** tid convention for DRAM controller counter tracks. */
inline std::uint32_t
dramLaneTid(unsigned controller)
{
    return 20000 + controller;
}

#else // ANSMET_OBS_DISABLED ------------------------------------------

class TraceWriter
{
  public:
    static TraceWriter &
    instance()
    {
        static TraceWriter t;
        return t;
    }

    bool enabled() const { return false; }
    std::uint32_t beginRun(std::string_view) { return 0; }
    void span(std::string_view, std::uint32_t, Tick, Tick,
              const TraceArg * = nullptr, std::size_t = 0)
    {
    }
    void counter(std::string_view, std::uint32_t, Tick, std::int64_t) {}
    void instant(std::string_view, std::uint32_t, Tick) {}
    void nameThread(std::uint32_t, std::string_view) {}
    void flush() {}
    std::uint64_t dropped() const { return 0; }
};

inline std::uint32_t
ndpLaneTid(unsigned unit, unsigned qshr)
{
    return 10000 + unit * 64 + qshr;
}

inline std::uint32_t
dramLaneTid(unsigned controller)
{
    return 20000 + controller;
}

#endif // ANSMET_OBS_DISABLED

} // namespace ansmet::obs

#endif // ANSMET_OBS_TRACE_H
