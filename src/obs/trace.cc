#include "obs/trace.h"

#ifndef ANSMET_OBS_DISABLED

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace ansmet::obs {

namespace {

constexpr std::uint64_t kDefaultEventLimit = 2'000'000;

struct Event
{
    enum class Type : std::uint8_t { kSpan, kCounter, kInstant, kMeta };
    Type type;
    std::string name;
    std::uint32_t pid;
    std::uint32_t tid;
    Tick start;
    Tick end;         // spans only
    std::int64_t value; // counters only
    std::vector<std::pair<std::string, std::int64_t>> args;
};

/** Ticks are picoseconds; trace_event "ts"/"dur" are microseconds. */
double
us(Tick t)
{
    return static_cast<double>(t.raw()) / 1e6;
}

double
us(TickDelta d)
{
    return static_cast<double>(d.raw()) / 1e6;
}

void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    out += buf;
}

} // namespace

struct TraceWriter::Impl
{
    Mutex mu;
    // path/limit are written once in the TraceWriter constructor
    // (inside the static-init guard, before any recording call can
    // exist) and read-only afterwards.
    std::string path;
    std::uint64_t limit = kDefaultEventLimit;
    std::vector<Event> events ANSMET_GUARDED_BY(mu);
    // Overflow tally. relaxed: monotonic counter read only for
    // reporting; no other data is ordered by it.
    std::atomic<std::uint64_t> dropped{0};
    // The run scope events are stamped with. Atomic rather than
    // mu-guarded: event builders read it before taking mu (the
    // annotation retrofit caught this as an unlocked read). relaxed:
    // beginRun happens-before the events of its run via the caller's
    // sequencing; cross-thread stamping tolerates last-writer-wins.
    std::atomic<std::uint32_t> currentPid{0};
    std::uint32_t nextPid ANSMET_GUARDED_BY(mu) = 1;

    std::uint32_t
    pid() const
    {
        return currentPid.load(std::memory_order_relaxed);
    }

    bool
    push(Event e) ANSMET_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        if (events.size() >= limit) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        events.push_back(std::move(e));
        return true;
    }
};

TraceWriter::Impl &
TraceWriter::impl() const
{
    // NOLINTNEXTLINE(ansmet-rawnew): leaked singleton; atexit-safe.
    static Impl *impl = new Impl;
    return *impl;
}

TraceWriter::TraceWriter()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only config knob,
    // queried once under the static-init guard; env is not mutated.
    const char *path = std::getenv("ANSMET_TRACE");
    if (path == nullptr || *path == '\0')
        return;
    Impl &i = impl();
    i.path = path;
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only config knob,
    // queried once under the static-init guard; env is not mutated.
    if (const char *lim = std::getenv("ANSMET_TRACE_LIMIT")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(lim, &end, 10);
        if (end != lim && v > 0)
            i.limit = v;
    }
    enabled_ = true;
    std::atexit([] { TraceWriter::instance().flush(); });
}

TraceWriter &
TraceWriter::instance()
{
    // NOLINTNEXTLINE(ansmet-rawnew): leaked singleton; atexit-safe.
    static TraceWriter *writer = new TraceWriter;
    return *writer;
}

std::uint32_t
TraceWriter::beginRun(std::string_view name)
{
    if (!enabled_)
        return 0;
    Impl &i = impl();
    std::uint32_t pid;
    {
        MutexLock lock(i.mu);
        pid = i.nextPid++;
        i.currentPid.store(pid, std::memory_order_relaxed);
    }
    Event e;
    e.type = Event::Type::kMeta;
    e.name = "process_name";
    e.pid = pid;
    e.tid = 0;
    e.start = Tick{};
    e.args.emplace_back("name", 0);
    // Metadata carries a string arg; reuse the name field of a second
    // slot to avoid widening TraceArg for this one case.
    e.args.back().first = std::string(name);
    i.push(std::move(e));
    return pid;
}

void
TraceWriter::span(std::string_view name, std::uint32_t tid, Tick start,
                  Tick end, const TraceArg *args, std::size_t numArgs)
{
    if (!enabled_)
        return;
    ANSMET_DCHECK(end >= start, "obs: span '", name,
                  "' ends before it starts");
    Impl &i = impl();
    Event e;
    e.type = Event::Type::kSpan;
    e.name = std::string(name);
    e.pid = i.pid();
    e.tid = tid;
    e.start = start;
    e.end = end;
    for (std::size_t a = 0; a < numArgs; ++a)
        e.args.emplace_back(std::string(args[a].key), args[a].value);
    i.push(std::move(e));
}

void
TraceWriter::counter(std::string_view name, std::uint32_t tid, Tick when,
                     std::int64_t value)
{
    if (!enabled_)
        return;
    Impl &i = impl();
    Event e;
    e.type = Event::Type::kCounter;
    e.name = std::string(name);
    e.pid = i.pid();
    e.tid = tid;
    e.start = when;
    e.value = value;
    i.push(std::move(e));
}

void
TraceWriter::instant(std::string_view name, std::uint32_t tid, Tick when)
{
    if (!enabled_)
        return;
    Impl &i = impl();
    Event e;
    e.type = Event::Type::kInstant;
    e.name = std::string(name);
    e.pid = i.pid();
    e.tid = tid;
    e.start = when;
    i.push(std::move(e));
}

void
TraceWriter::nameThread(std::uint32_t tid, std::string_view name)
{
    if (!enabled_)
        return;
    Impl &i = impl();
    Event e;
    e.type = Event::Type::kMeta;
    e.name = "thread_name";
    e.pid = i.pid();
    e.tid = tid;
    e.start = Tick{};
    e.args.emplace_back(std::string(name), 0);
    i.push(std::move(e));
}

std::uint64_t
TraceWriter::dropped() const
{
    return impl().dropped.load(std::memory_order_relaxed);
}

void
TraceWriter::flush()
{
    if (!enabled_)
        return;
    Impl &i = impl();
    MutexLock lock(i.mu);

    std::string out;
    out.reserve(i.events.size() * 96 + 4096);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    for (const Event &e : i.events) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"name\":";
        appendJsonString(out, e.name);
        out += ",\"pid\":";
        out += std::to_string(e.pid);
        out += ",\"tid\":";
        out += std::to_string(e.tid);
        switch (e.type) {
        case Event::Type::kSpan:
            out += ",\"ph\":\"X\",\"ts\":";
            appendDouble(out, us(e.start));
            out += ",\"dur\":";
            appendDouble(out, us(e.end - e.start));
            if (!e.args.empty()) {
                out += ",\"args\":{";
                for (std::size_t a = 0; a < e.args.size(); ++a) {
                    if (a)
                        out += ",";
                    appendJsonString(out, e.args[a].first);
                    out += ":";
                    out += std::to_string(e.args[a].second);
                }
                out += "}";
            }
            break;
        case Event::Type::kCounter:
            out += ",\"ph\":\"C\",\"ts\":";
            appendDouble(out, us(e.start));
            out += ",\"args\":{\"value\":";
            out += std::to_string(e.value);
            out += "}";
            break;
        case Event::Type::kInstant:
            out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
            appendDouble(out, us(e.start));
            break;
        case Event::Type::kMeta:
            out += ",\"ph\":\"M\",\"ts\":0,\"args\":{\"name\":";
            appendJsonString(out, e.args.empty() ? std::string_view{}
                                                 : e.args[0].first);
            out += "}";
            break;
        }
        out += "}";
    }
    out += "\n],\n\"otherData\":{\"droppedEvents\":";
    out += std::to_string(i.dropped.load(std::memory_order_relaxed));
    out += "},\n\"metrics\":";
    out += Registry::instance().snapshotJson();
    out += "}\n";

    std::FILE *f = std::fopen(i.path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr,
                     "ansmet: cannot open ANSMET_TRACE path '%s'\n",
                     i.path.c_str());
        return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
}

} // namespace ansmet::obs

#endif // ANSMET_OBS_DISABLED
