#include "obs/metrics.h"

#ifndef ANSMET_OBS_DISABLED

#include <cstdio>
#include <memory>
#include <unordered_map>

#include "common/check.h"
#include "common/sync.h"

namespace ansmet::obs {

namespace {

/** Formats without locale interference (metrics names are ASCII). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
Snapshot::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        out += std::to_string(v);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        out += std::to_string(v);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": {\"count\": ";
        out += std::to_string(h.count);
        out += ", \"sum\": ";
        out += std::to_string(h.sum);
        out += ", \"buckets\": [";
        // Trailing zero buckets are elided to keep files compact; the
        // log2 bucket index is implicit in the position.
        std::size_t last = h.buckets.size();
        while (last > 0 && h.buckets[last - 1] == 0)
            --last;
        for (std::size_t i = 0; i < last; ++i) {
            if (i)
                out += ", ";
            out += std::to_string(h.buckets[i]);
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

namespace {

enum class Kind { kCounter, kHistogram };

struct MetricInfo
{
    Kind kind;
    std::uint32_t slot;    //!< first shard slot
    std::uint32_t buckets; //!< histogram bucket count (0 for counters)
};

} // namespace

struct Registry::Impl
{
    mutable Mutex mu;
    std::unordered_map<std::string, MetricInfo> metrics
        ANSMET_GUARDED_BY(mu);
    // Gauge cells are individually heap-owned atomics: the map is
    // guarded, but a handle's pointer into it escapes the lock on
    // purpose (relaxed last-writer-wins set/add, no merging).
    std::unordered_map<std::string,
                       std::unique_ptr<std::atomic<std::int64_t>>>
        gauges ANSMET_GUARDED_BY(mu);
    std::vector<std::unique_ptr<detail::Shard>> shards
        ANSMET_GUARDED_BY(mu);
    std::uint32_t nextSlot ANSMET_GUARDED_BY(mu) = 0;

    std::uint32_t
    allocate(std::string_view name, Kind kind, std::uint32_t slots,
             std::uint32_t buckets) ANSMET_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        auto it = metrics.find(std::string(name));
        if (it != metrics.end()) {
            ANSMET_CHECK(it->second.kind == kind &&
                             it->second.buckets == buckets,
                         "obs: metric '", name,
                         "' re-registered with a different kind or shape");
            return it->second.slot;
        }
        ANSMET_CHECK(nextSlot + slots <= detail::kShardSlots,
                     "obs: shard capacity exhausted (",
                     detail::kShardSlots, " slots); raise kShardSlots");
        std::uint32_t slot = nextSlot;
        nextSlot += slots;
        metrics.emplace(std::string(name),
                        MetricInfo{kind, slot, buckets});
        return slot;
    }
};

Registry::Impl &
Registry::impl() const
{
    // NOLINTNEXTLINE(ansmet-rawnew): leaked singleton; atexit-safe.
    static Impl *impl = new Impl;
    return *impl;
}

Registry &
Registry::instance()
{
    // NOLINTNEXTLINE(ansmet-rawnew): leaked singleton; atexit-safe.
    static Registry *reg = new Registry;
    return *reg;
}

namespace detail {

Shard &
newShard()
{
    // Registry-owned so snapshot() sees the shard and the storage
    // outlives the recording thread (handles cache a raw pointer and
    // may flush from atexit handlers after thread teardown).
    Registry::Impl &i = Registry::instance().impl();
    auto shard = std::make_unique<Shard>();
    Shard &ref = *shard;
    MutexLock lock(i.mu);
    i.shards.push_back(std::move(shard));
    return ref;
}

} // namespace detail

Counter
Registry::counter(std::string_view name)
{
    return Counter(impl().allocate(name, Kind::kCounter, 1, 0));
}

Gauge
Registry::gauge(std::string_view name)
{
    Impl &i = impl();
    MutexLock lock(i.mu);
    auto &cell = i.gauges[std::string(name)];
    if (!cell)
        cell = std::make_unique<std::atomic<std::int64_t>>(0);
    return Gauge(cell.get());
}

Histogram
Registry::histogram(std::string_view name, unsigned buckets)
{
    ANSMET_CHECK(buckets >= 1 && buckets <= 64,
                 "obs: histogram bucket count ", buckets, " out of range");
    std::uint32_t slot = impl().allocate(name, Kind::kHistogram,
                                         buckets + 1, buckets);
    return Histogram(slot, buckets);
}

namespace {

/**
 * Seqlock read-side retry bound per shard. A tight-loop histogram
 * writer can keep a shard's epoch moving indefinitely, so an unbounded
 * reader could starve; past this many attempts snapshot() accepts the
 * possibly-torn view — exactly the pre-epoch behaviour, and still
 * slot-atomic, so counters are exact either way and only a histogram's
 * bucket/sum pairing can be skewed by in-flight samples.
 */
constexpr unsigned kSnapshotRetries = 64;

} // namespace

Snapshot
Registry::snapshot() const
{
    Impl &i = impl();
    MutexLock lock(i.mu);

    // Merge every shard slot-wise first, then slice per metric. Each
    // shard is read under its seqlock epoch: even before, unchanged
    // after => no multi-slot write (histogram sample) was in flight,
    // so bucket counts and sums are mutually consistent.
    std::vector<std::uint64_t> merged(i.nextSlot, 0);
    std::vector<std::uint64_t> scratch(i.nextSlot, 0);
    for (const auto &shard : i.shards) {
        for (unsigned attempt = 0;; ++attempt) {
            const std::uint64_t e1 =
                shard->epoch.load(std::memory_order_acquire);
            if ((e1 & 1) == 0) {
                for (std::uint32_t s = 0; s < i.nextSlot; ++s)
                    scratch[s] =
                        shard->slots[s].load(std::memory_order_relaxed);
                std::atomic_thread_fence(std::memory_order_acquire);
                if (shard->epoch.load(std::memory_order_relaxed) == e1)
                    break;
            }
            if (attempt >= kSnapshotRetries) {
                for (std::uint32_t s = 0; s < i.nextSlot; ++s)
                    scratch[s] =
                        shard->slots[s].load(std::memory_order_relaxed);
                break;
            }
        }
        for (std::uint32_t s = 0; s < i.nextSlot; ++s)
            merged[s] += scratch[s];
    }

    Snapshot snap;
    for (const auto &[name, info] : i.metrics) {
        if (info.kind == Kind::kCounter) {
            snap.counters[name] = merged[info.slot];
        } else {
            HistogramData h;
            h.buckets.assign(merged.begin() + info.slot,
                             merged.begin() + info.slot + info.buckets);
            for (std::uint64_t b : h.buckets)
                h.count += b;
            h.sum = merged[info.slot + info.buckets];
            snap.histograms[name] = std::move(h);
        }
    }
    for (const auto &[name, cell] : i.gauges)
        snap.gauges[name] = cell->load(std::memory_order_relaxed);
    return snap;
}

std::string
Registry::snapshotJson() const
{
    return snapshot().toJson();
}

void
Registry::reset()
{
    Impl &i = impl();
    MutexLock lock(i.mu);
    for (const auto &shard : i.shards)
        for (auto &slot : shard->slots)
            slot.store(0, std::memory_order_relaxed);
    for (const auto &[name, cell] : i.gauges)
        cell->store(0, std::memory_order_relaxed);
}

} // namespace ansmet::obs

#else // ANSMET_OBS_DISABLED

namespace ansmet::obs {

std::string
Snapshot::toJson() const
{
    return "{}";
}

} // namespace ansmet::obs

#endif
