/**
 * @file
 * Low-overhead metrics registry: process-wide named counters, gauges,
 * and fixed-bucket (log2) histograms.
 *
 * Design constraints (see DESIGN.md, "Observability layer"):
 *  - recording on a hot path is one relaxed atomic add into a
 *    thread-local shard — no locks, no allocation, no contention;
 *  - shards are owned by the registry and merged only on snapshot(),
 *    so concurrent writers never synchronize with each other;
 *  - the whole layer compiles to no-ops under -DANSMET_OBS=OFF
 *    (ANSMET_OBS_DISABLED), and recording never feeds back into any
 *    simulated quantity, so figure output is bitwise identical with
 *    observability on or off.
 *
 * Handles are tiny value types: obtain them once (typically via a
 * function-local static) and record through them ever after:
 *
 *   static obs::Counter c = obs::Registry::instance().counter("x.y");
 *   c.add(n);
 */

#ifndef ANSMET_OBS_METRICS_H
#define ANSMET_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#ifndef ANSMET_OBS_DISABLED
#include <array>
#include <atomic>
#endif

namespace ansmet::obs {

/** Merged histogram state: log2 buckets plus a value sum. */
struct HistogramData
{
    /** bucket 0 = value 0; bucket i>=1 = values in [2^(i-1), 2^i),
     *  with the last bucket absorbing everything larger. */
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    double mean() const
    {
        return count ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
    }
};

/** Point-in-time merged view of every registered metric. */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramData> histograms;

    /** Stable, machine-readable JSON rendering. */
    std::string toJson() const;
};

#ifndef ANSMET_OBS_DISABLED

namespace detail {

/** Slots per thread shard; registration past this capacity panics. */
constexpr std::uint32_t kShardSlots = 4096;

struct Shard
{
    // relaxed everywhere: each slot is written by exactly one thread
    // (the shard owner) and merged by snapshot() under the registry
    // mutex; slight cross-slot skew in a snapshot taken mid-recording
    // is accepted by contract, so no ordering is needed.
    std::array<std::atomic<std::uint64_t>, kShardSlots> slots{};
};

/** Allocate this thread's shard and register it (metrics.cc). */
Shard &newShard();

inline Shard &
shard()
{
    thread_local Shard *s = &newShard();
    return *s;
}

} // namespace detail

/** Monotonic event counter (per-thread sharded). */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n)
    {
        detail::shard().slots[slot_].fetch_add(n,
                                               std::memory_order_relaxed);
    }
    void inc() { add(1); }

  private:
    friend class Registry;
    explicit Counter(std::uint32_t slot) : slot_(slot) {}
    std::uint32_t slot_ = 0;
};

/**
 * Last-value metric (queue depths, configuration echoes). Stored as a
 * single registry-owned atomic: set/add are rare relative to counter
 * traffic and need cross-thread last-writer semantics, not merging.
 * relaxed: a gauge value orders nothing else; last-writer-wins with
 * atomicity is the whole contract.
 */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(std::int64_t v)
    {
        if (cell_)
            cell_->store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        if (cell_)
            cell_->fetch_add(d, std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    explicit Gauge(std::atomic<std::int64_t> *cell) : cell_(cell) {}
    std::atomic<std::int64_t> *cell_ = nullptr;
};

/** Fixed-bucket log2 histogram (per-thread sharded). */
class Histogram
{
  public:
    Histogram() = default;

    void
    sample(std::uint64_t v)
    {
        detail::Shard &s = detail::shard();
        s.slots[first_ + bucketOf(v)].fetch_add(
            1, std::memory_order_relaxed);
        s.slots[first_ + buckets_].fetch_add(v,
                                             std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    Histogram(std::uint32_t first, std::uint32_t buckets)
        : first_(first), buckets_(buckets)
    {
    }

    std::uint32_t
    bucketOf(std::uint64_t v) const
    {
        if (v == 0)
            return 0;
        std::uint32_t w = 0;
        while (v != 0) {
            ++w;
            v >>= 1;
        }
        return w < buckets_ ? w : buckets_ - 1;
    }

    std::uint32_t first_ = 0;   //!< bucket slots, then one sum slot
    std::uint32_t buckets_ = 1;
};

/** Process-wide metric registry. */
class Registry
{
  public:
    /** The singleton (leaky; safe from atexit handlers). */
    static Registry &instance();

    /**
     * Register (or fetch) a metric by name. Idempotent: the same name
     * always returns a handle to the same storage; re-registering a
     * name as a different metric kind panics.
     */
    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    Histogram histogram(std::string_view name, unsigned buckets = 40);

    /** Merge all shards into one consistent-enough view. Concurrent
     *  recording is allowed; each slot is read atomically. */
    Snapshot snapshot() const;

    /** snapshot().toJson() convenience. */
    std::string snapshotJson() const;

    /**
     * Zero every slot and gauge (tests and run-scoped collection).
     * Racy against concurrent writers by design — callers quiesce
     * recording threads first.
     */
    void reset();

    ~Registry() = delete;

  private:
    friend detail::Shard &detail::newShard();
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

#else // ANSMET_OBS_DISABLED ------------------------------------------

class Counter
{
  public:
    void add(std::uint64_t) {}
    void inc() {}
};

class Gauge
{
  public:
    void set(std::int64_t) {}
    void add(std::int64_t) {}
};

class Histogram
{
  public:
    void sample(std::uint64_t) {}
};

class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry r;
        return r;
    }

    Counter counter(std::string_view) { return {}; }
    Gauge gauge(std::string_view) { return {}; }
    Histogram histogram(std::string_view, unsigned = 40) { return {}; }
    Snapshot snapshot() const { return {}; }
    std::string snapshotJson() const { return "{}"; }
    void reset() {}
};

#endif // ANSMET_OBS_DISABLED

} // namespace ansmet::obs

#endif // ANSMET_OBS_METRICS_H
