/**
 * @file
 * Low-overhead metrics registry: process-wide named counters, gauges,
 * and fixed-bucket (log2) histograms.
 *
 * Design constraints (see DESIGN.md, "Observability layer"):
 *  - recording on a hot path is one relaxed atomic add into a
 *    thread-local shard — no locks, no allocation, no contention;
 *  - shards are owned by the registry and merged only on snapshot(),
 *    so concurrent writers never synchronize with each other;
 *  - the whole layer compiles to no-ops under -DANSMET_OBS=OFF
 *    (ANSMET_OBS_DISABLED), and recording never feeds back into any
 *    simulated quantity, so figure output is bitwise identical with
 *    observability on or off.
 *
 * Handles are tiny value types: obtain them once (typically via a
 * function-local static) and record through them ever after:
 *
 *   static obs::Counter c = obs::Registry::instance().counter("x.y");
 *   c.add(n);
 */

#ifndef ANSMET_OBS_METRICS_H
#define ANSMET_OBS_METRICS_H

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#ifndef ANSMET_OBS_DISABLED
#include <array>
#include <atomic>
#endif

namespace ansmet::obs {

/** Merged histogram state: log2 buckets plus a value sum. */
struct HistogramData
{
    /** bucket 0 = value 0; bucket i>=1 = values in [2^(i-1), 2^i),
     *  with the last bucket absorbing everything larger. */
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    double mean() const
    {
        return count ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
    }

    /**
     * Approximate q-quantile (0 < q <= 1) by nearest rank over the
     * log2 buckets, returned as the inclusive upper bound of the
     * bucket holding that rank (0 for the zero bucket, 2^i - 1 for
     * bucket i). For samples below the last bucket's absorption point
     * the estimate e brackets the true sample v as e/2 < v <= e — the
     * log2 error bound the recorder tests assert. Returns 0 when
     * empty.
     */
    [[nodiscard]] std::uint64_t
    quantile(double q) const
    {
        if (count == 0)
            return 0;
        auto rank = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(count)));
        rank = rank < 1 ? 1 : (rank > count ? count : rank);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            seen += buckets[i];
            if (seen >= rank)
                return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
        }
        return 0; // unreachable: count == sum of buckets
    }
};

/** Point-in-time merged view of every registered metric. */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramData> histograms;

    /** Stable, machine-readable JSON rendering. */
    std::string toJson() const;
};

#ifndef ANSMET_OBS_DISABLED

namespace detail {

/** Slots per thread shard; registration past this capacity panics. */
constexpr std::uint32_t kShardSlots = 4096;

struct Shard
{
    // relaxed everywhere: each slot is written by exactly one thread
    // (the shard owner) and merged by snapshot() under the registry
    // mutex. Single-slot metrics (counters) are exact in any snapshot
    // on their own; multi-slot updates (a histogram sample touches a
    // bucket slot and the sum slot) are bracketed by `epoch` so
    // snapshot() can detect and retry past a mid-sample read instead
    // of tearing bucket against sum.
    std::array<std::atomic<std::uint64_t>, kShardSlots> slots{};

    // Seqlock-style write epoch: odd while the shard owner is inside a
    // multi-slot update. Counters skip it (their one fetch_add is
    // atomic on its own), so the common hot path stays a single RMW.
    std::atomic<std::uint64_t> epoch{0};
};

/** Allocate this thread's shard and register it (metrics.cc). */
Shard &newShard();

inline Shard &
shard()
{
    thread_local Shard *s = &newShard();
    return *s;
}

} // namespace detail

/** Monotonic event counter (per-thread sharded). */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n)
    {
        detail::shard().slots[slot_].fetch_add(n,
                                               std::memory_order_relaxed);
    }
    void inc() { add(1); }

  private:
    friend class Registry;
    explicit Counter(std::uint32_t slot) : slot_(slot) {}
    std::uint32_t slot_ = 0;
};

/**
 * Last-value metric (queue depths, configuration echoes). Stored as a
 * single registry-owned atomic: set/add are rare relative to counter
 * traffic and need cross-thread last-writer semantics, not merging.
 * relaxed: a gauge value orders nothing else; last-writer-wins with
 * atomicity is the whole contract.
 */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(std::int64_t v)
    {
        if (cell_)
            cell_->store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        if (cell_)
            cell_->fetch_add(d, std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    explicit Gauge(std::atomic<std::int64_t> *cell) : cell_(cell) {}
    std::atomic<std::int64_t> *cell_ = nullptr;
};

/** Fixed-bucket log2 histogram (per-thread sharded). */
class Histogram
{
  public:
    Histogram() = default;

    void
    sample(std::uint64_t v)
    {
        detail::Shard &s = detail::shard();
        // Seqlock write side: the entry increment is acq_rel so the
        // slot adds cannot appear before it, the exit increment is
        // release so they cannot appear after it; the adds themselves
        // stay relaxed. snapshot() retries any shard it catches with
        // an odd or moving epoch.
        s.epoch.fetch_add(1, std::memory_order_acq_rel);
        s.slots[first_ + bucketOf(v)].fetch_add(
            1, std::memory_order_relaxed);
        s.slots[first_ + buckets_].fetch_add(v,
                                             std::memory_order_relaxed);
        s.epoch.fetch_add(1, std::memory_order_release);
    }

  private:
    friend class Registry;
    Histogram(std::uint32_t first, std::uint32_t buckets)
        : first_(first), buckets_(buckets)
    {
    }

    std::uint32_t
    bucketOf(std::uint64_t v) const
    {
        if (v == 0)
            return 0;
        std::uint32_t w = 0;
        while (v != 0) {
            ++w;
            v >>= 1;
        }
        return w < buckets_ ? w : buckets_ - 1;
    }

    std::uint32_t first_ = 0;   //!< bucket slots, then one sum slot
    std::uint32_t buckets_ = 1;
};

/** Process-wide metric registry. */
class Registry
{
  public:
    /** The singleton (leaky; safe from atexit handlers). */
    static Registry &instance();

    /**
     * Register (or fetch) a metric by name. Idempotent: the same name
     * always returns a handle to the same storage; re-registering a
     * name as a different metric kind panics.
     */
    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    Histogram histogram(std::string_view name, unsigned buckets = 40);

    /** Merge all shards into one consistent-enough view. Concurrent
     *  recording is allowed; each slot is read atomically. */
    Snapshot snapshot() const;

    /** snapshot().toJson() convenience. */
    std::string snapshotJson() const;

    /**
     * Zero every slot and gauge (tests and run-scoped collection).
     * Racy against concurrent writers by design — callers quiesce
     * recording threads first.
     */
    void reset();

    ~Registry() = delete;

  private:
    friend detail::Shard &detail::newShard();
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

#else // ANSMET_OBS_DISABLED ------------------------------------------

class Counter
{
  public:
    void add(std::uint64_t) {}
    void inc() {}
};

class Gauge
{
  public:
    void set(std::int64_t) {}
    void add(std::int64_t) {}
};

class Histogram
{
  public:
    void sample(std::uint64_t) {}
};

class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry r;
        return r;
    }

    Counter counter(std::string_view) { return {}; }
    Gauge gauge(std::string_view) { return {}; }
    Histogram histogram(std::string_view, unsigned = 40) { return {}; }
    Snapshot snapshot() const { return {}; }
    std::string snapshotJson() const { return "{}"; }
    void reset() {}
};

#endif // ANSMET_OBS_DISABLED

} // namespace ansmet::obs

#endif // ANSMET_OBS_METRICS_H
