/**
 * @file
 * Scalar element types supported by the vector database (Table 2 of the
 * paper uses UINT8, INT8, and FP32; FP16 is supported for completeness)
 * plus IEEE-754 half-precision conversion helpers.
 */

#ifndef ANSMET_ANNS_SCALAR_H
#define ANSMET_ANNS_SCALAR_H

#include <cstdint>
#include <cstring>

#include "common/logging.h"

namespace ansmet::anns {

/** Element data type of a vector set. */
enum class ScalarType : std::uint8_t { kUint8, kInt8, kFp16, kFp32 };

/** Bit width of one element. */
constexpr unsigned
scalarBits(ScalarType t)
{
    switch (t) {
      case ScalarType::kUint8:
      case ScalarType::kInt8:
        return 8;
      case ScalarType::kFp16:
        return 16;
      case ScalarType::kFp32:
        return 32;
    }
    return 0;
}

constexpr unsigned
scalarBytes(ScalarType t)
{
    return scalarBits(t) / 8;
}

const char *scalarName(ScalarType t);

/** Convert a float to IEEE-754 binary16 (round-to-nearest-even). */
std::uint16_t floatToHalf(float f);

/** Reinterpret a float's bits as uint32. */
inline std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

inline float
bitsToFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/**
 * Convert IEEE-754 binary16 to float. Inline so the distance kernels'
 * fp16 loops stay a straight-line decode the compiler can vectorize.
 */
inline float
halfToFloat(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u)
                               << 16;
    const std::uint32_t exp = (h >> 10) & 0x1f;
    const std::uint32_t mant = h & 0x3ffu;

    if (exp == 0) {
        if (mant == 0)
            return bitsToFloat(sign);
        // Subnormal: normalize.
        std::uint32_t m = mant;
        std::int32_t e = -14;
        while (!(m & 0x400u)) {
            m <<= 1;
            --e;
        }
        m &= 0x3ffu;
        return bitsToFloat(sign |
                           (static_cast<std::uint32_t>(e + 127) << 23) |
                           (m << 13));
    }
    if (exp == 31) {
        return bitsToFloat(sign | 0x7f800000u | (mant << 13));
    }
    return bitsToFloat(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

} // namespace ansmet::anns

#endif // ANSMET_ANNS_SCALAR_H
