/**
 * @file
 * Scalar element types supported by the vector database (Table 2 of the
 * paper uses UINT8, INT8, and FP32; FP16 is supported for completeness)
 * plus IEEE-754 half-precision conversion helpers.
 */

#ifndef ANSMET_ANNS_SCALAR_H
#define ANSMET_ANNS_SCALAR_H

#include <cstdint>
#include <cstring>

#include "common/logging.h"

namespace ansmet::anns {

/** Element data type of a vector set. */
enum class ScalarType : std::uint8_t { kUint8, kInt8, kFp16, kFp32 };

/** Bit width of one element. */
constexpr unsigned
scalarBits(ScalarType t)
{
    switch (t) {
      case ScalarType::kUint8:
      case ScalarType::kInt8:
        return 8;
      case ScalarType::kFp16:
        return 16;
      case ScalarType::kFp32:
        return 32;
    }
    return 0;
}

constexpr unsigned
scalarBytes(ScalarType t)
{
    return scalarBits(t) / 8;
}

const char *scalarName(ScalarType t);

/** Convert a float to IEEE-754 binary16 (round-to-nearest-even). */
std::uint16_t floatToHalf(float f);

/** Convert IEEE-754 binary16 to float. */
float halfToFloat(std::uint16_t h);

/** Reinterpret a float's bits as uint32. */
inline std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

inline float
bitsToFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace ansmet::anns

#endif // ANSMET_ANNS_SCALAR_H
