/**
 * @file
 * Exact k-nearest-neighbor search by linear scan, used as ground truth
 * for recall measurements and in tests.
 */

#ifndef ANSMET_ANNS_BRUTEFORCE_H
#define ANSMET_ANNS_BRUTEFORCE_H

#include <vector>

#include "anns/distance.h"
#include "anns/heap.h"
#include "anns/vector.h"

namespace ansmet::anns {

/** Exact k nearest neighbors of @p query, ascending by distance. */
std::vector<Neighbor> bruteForceKnn(Metric m, const float *query,
                                    const VectorSet &vs, std::size_t k);

/** Ground truth for a batch of queries. */
std::vector<std::vector<Neighbor>>
bruteForceAll(Metric m, const std::vector<std::vector<float>> &queries,
              const VectorSet &vs, std::size_t k);

/**
 * recall@k: fraction of the exact k nearest neighbors present in
 * @p result (the paper's accuracy metric, Figure 8).
 */
double recallAtK(const std::vector<VectorId> &result,
                 const std::vector<Neighbor> &ground_truth, std::size_t k);

/** Mean recall@k over a batch. */
double meanRecall(const std::vector<std::vector<VectorId>> &results,
                  const std::vector<std::vector<Neighbor>> &gt,
                  std::size_t k);

} // namespace ansmet::anns

#endif // ANSMET_ANNS_BRUTEFORCE_H
