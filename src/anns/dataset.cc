#include "anns/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ansmet::anns {

std::vector<DatasetId>
allDatasets()
{
    return {DatasetId::kSift,  DatasetId::kBigann, DatasetId::kSpacev,
            DatasetId::kDeep,  DatasetId::kGlove,  DatasetId::kTxt2img,
            DatasetId::kGist};
}

const DatasetSpec &
datasetSpec(DatasetId id)
{
    static const DatasetSpec specs[] = {
        {DatasetId::kSift, "SIFT", Metric::kL2, ScalarType::kUint8, 128,
         20000, 200},
        {DatasetId::kBigann, "BigANN", Metric::kL2, ScalarType::kUint8, 128,
         20000, 200},
        {DatasetId::kSpacev, "SPACEV", Metric::kL2, ScalarType::kInt8, 100,
         20000, 200},
        {DatasetId::kDeep, "DEEP", Metric::kL2, ScalarType::kFp32, 96,
         20000, 200},
        {DatasetId::kGlove, "GloVe", Metric::kIp, ScalarType::kFp32, 100,
         20000, 200},
        {DatasetId::kTxt2img, "Txt2Img", Metric::kIp, ScalarType::kFp32, 200,
         20000, 200},
        {DatasetId::kGist, "GIST", Metric::kL2, ScalarType::kFp32, 960,
         8000, 100},
    };
    for (const auto &s : specs)
        if (s.id == id)
            return s;
    ANSMET_PANIC("unknown dataset id");
}

namespace {

/**
 * Per-dataset element model. Cluster centers are drawn from the base
 * distribution; points perturb the center with relative noise, which
 * yields the clustered geometry real ANNS workloads have.
 */
struct ElementModel
{
    // Draw one element of a cluster center.
    float (*center)(Prng &);
    // Draw one element of a point around a center element.
    float (*point)(Prng &, float c);
    // Post-process a full vector (e.g. normalization).
    void (*post)(std::vector<float> &);
};

float
centerSiftLike(Prng &rng)
{
    // Gradient histograms: heavily skewed toward small values (real
    // SIFT bins concentrate below ~60 with a thin tail to 218), so the
    // top one or two bit planes carry little discrimination — the
    // reason the paper's NDP-BitET loses on SIFT.
    const double u = rng.uniform();
    return static_cast<float>(std::min(255.0, -30.0 * std::log(1.0 - u)));
}

float
pointSiftLike(Prng &rng, float c)
{
    const double v = c + rng.gaussian(0.0, 18.0);
    return static_cast<float>(std::clamp(v, 0.0, 255.0));
}

float
centerSpacev(Prng &rng)
{
    // SPACEV-like INT8 text embeddings after a non-negative quantizer:
    // values in [0, 64) with the mass below 32. Table 5 of the paper
    // implies exactly this structure — all elements share 2 sortable
    // key bits (values < 64), and a 0.1% outlier budget buys a third
    // (values < 32 with rare excursions).
    return static_cast<float>(std::clamp(rng.gaussian(16.0, 4.0),
                                         0.0, 63.0));
}

float
pointSpacev(Prng &rng, float c)
{
    return static_cast<float>(std::clamp(c + rng.gaussian(0.0, 3.0),
                                         0.0, 63.0));
}

float
centerDeep(Prng &rng)
{
    // Non-negative small magnitudes (post-ReLU CNN features before
    // normalization): |N(0, 1)|, giving the low-entropy sign+exponent
    // head of Figure 3.
    return static_cast<float>(std::abs(rng.gaussian()));
}

float
pointDeep(Prng &rng, float c)
{
    // ReLU-like: perturbations never cross below zero (real DEEP
    // features are non-negative and sparse at zero).
    return static_cast<float>(std::max(0.0, c + rng.gaussian(0.0, 0.35)));
}

void
postNormalize(std::vector<float> &v)
{
    normalizeL2(v.data(), static_cast<unsigned>(v.size()));
}

float
centerSigned(Prng &rng)
{
    return static_cast<float>(rng.gaussian(0.0, 1.0));
}

float
pointSigned(Prng &rng, float c)
{
    return static_cast<float>(c + rng.gaussian(0.0, 0.45));
}

float
centerGist(Prng &rng)
{
    // GIST energies live in [0, 1) with small typical magnitude.
    const double v = std::abs(rng.gaussian(0.06, 0.08));
    return static_cast<float>(std::min(v, 0.999));
}

float
pointGist(Prng &rng, float c)
{
    // Fold at zero (energies are positive) instead of clamping, so the
    // fp32 exponents stay in a narrow band with a long common prefix,
    // as in the real GIST descriptors (Figure 3).
    const double v = std::abs(c + rng.gaussian(0.0, 0.025));
    return static_cast<float>(std::min(v, 0.999));
}

void
postNone(std::vector<float> &)
{
}

ElementModel
modelFor(DatasetId id)
{
    switch (id) {
      case DatasetId::kSift:
      case DatasetId::kBigann:
        return {centerSiftLike, pointSiftLike, postNone};
      case DatasetId::kSpacev:
        return {centerSpacev, pointSpacev, postNone};
      case DatasetId::kDeep:
        return {centerDeep, pointDeep, postNormalize};
      case DatasetId::kGlove:
      case DatasetId::kTxt2img:
        return {centerSigned, pointSigned, postNormalize};
      case DatasetId::kGist:
        return {centerGist, pointGist, postNone};
    }
    ANSMET_PANIC("unknown dataset id");
}

} // namespace

Dataset
makeDataset(DatasetId id, std::size_t n, std::size_t q, std::uint64_t seed,
            double zipf_alpha)
{
    const DatasetSpec &spec = datasetSpec(id);
    if (n == 0)
        n = spec.defaultVectors;
    if (q == 0)
        q = spec.defaultQueries;

    Prng rng(seed * 0x10001 + static_cast<std::uint64_t>(id));
    const ElementModel model = modelFor(id);
    const unsigned dims = spec.dims;

    // Cluster centers: enough for realistic local structure.
    const std::size_t num_clusters =
        std::max<std::size_t>(16, static_cast<std::size_t>(std::sqrt(
                                      static_cast<double>(n))));
    std::vector<std::vector<float>> centers(num_clusters);
    for (auto &c : centers) {
        c.resize(dims);
        for (unsigned d = 0; d < dims; ++d)
            c[d] = model.center(rng);
    }

    Dataset ds;
    ds.spec = spec;
    ds.base = std::make_unique<VectorSet>(n, dims, spec.type);

    std::vector<float> buf(dims);
    for (std::size_t v = 0; v < n; ++v) {
        const auto &c = centers[rng.below(num_clusters)];
        for (unsigned d = 0; d < dims; ++d)
            buf[d] = model.point(rng, c[d]);
        model.post(buf);
        for (unsigned d = 0; d < dims; ++d)
            ds.base->set(static_cast<VectorId>(v), d, buf[d]);
    }

    // Queries: perturbations of base vectors (uniform or zipf-skewed),
    // so they are in-distribution, like real benchmark query sets.
    ds.queries.reserve(q);
    for (std::size_t i = 0; i < q; ++i) {
        const std::size_t pick =
            zipf_alpha > 1.0 ? std::min<std::size_t>(rng.zipf(n, zipf_alpha),
                                                     n - 1)
                             : rng.below(n);
        std::vector<float> query(dims);
        ds.base->toFloat(static_cast<VectorId>(pick), query.data());
        for (unsigned d = 0; d < dims; ++d) {
            const float base_val = query[d];
            query[d] = model.point(rng, base_val);
        }
        model.post(query);
        ds.queries.push_back(std::move(query));
    }
    return ds;
}

} // namespace ansmet::anns
