/**
 * @file
 * Instrumentation hooks for ANNS searches.
 *
 * The functional search (HNSW or IVF) reports every distance
 * comparison with the threshold in force when its batch was issued.
 * The timing layer (src/core) replays these events against a hardware
 * model; Figure 1's breakdown and the ET fetch simulation both consume
 * them.
 */

#ifndef ANSMET_ANNS_OBSERVER_H
#define ANSMET_ANNS_OBSERVER_H

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace ansmet::anns {

/** Which phase of the search issued a batch of comparisons. */
enum class StepKind : std::uint8_t
{
    kUpperGreedy,  //!< HNSW upper-layer greedy descent
    kBaseBeam,     //!< HNSW base-layer beam search
    kCentroidScan, //!< IVF centroid ranking
    kClusterScan,  //!< IVF posting-list scan
};

/** Search instrumentation callback interface. All hooks default to no-ops. */
class SearchObserver
{
  public:
    virtual ~SearchObserver() = default;

    /**
     * A new batch of comparisons begins (one popped vertex in HNSW, one
     * cluster chunk in IVF).
     * @param kind phase of the search
     * @param index_bytes bytes of index structure (adjacency / posting
     *        list) the host reads to discover the batch
     * @param ident the popped vertex / scanned cluster id, so the
     *        timing layer can model index-data cache locality
     */
    virtual void beginStep(StepKind kind, std::size_t index_bytes,
                           std::uint64_t ident)
    {
        (void)kind;
        (void)index_bytes;
        (void)ident;
    }

    /**
     * One distance comparison.
     * @param v the database vector
     * @param threshold the result-set bound when the batch was issued
     *        (+inf while the result set is not yet full)
     * @param dist the exact distance
     * @param accepted dist < threshold, i.e. the fetch was effectual
     */
    virtual void onCompare(VectorId v, double threshold, double dist,
                           bool accepted)
    {
        (void)v;
        (void)threshold;
        (void)dist;
        (void)accepted;
    }

    /** Host-side heap/bookkeeping operations in the current step. */
    virtual void onHeapOps(unsigned n) { (void)n; }
};

/** Shared default no-op observer. */
SearchObserver &nullObserver();

} // namespace ansmet::anns

#endif // ANSMET_ANNS_OBSERVER_H
