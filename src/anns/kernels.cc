/**
 * @file
 * Kernel registry: the scalar reference table and the runtime dispatch
 * that picks the startup tier from CPU detection + ANSMET_KERNEL.
 *
 * Built with -ffp-contract=off (see src/anns/CMakeLists.txt) so the
 * compiler cannot fuse the reference loops' multiply-adds; contraction
 * would break the bitwise parity contract with the intrinsic tiers.
 */

#include "anns/kernels.h"

#include <cmath>
#include <cstdlib>

#include "anns/kernels_impl.h"
#include "common/logging.h"

namespace ansmet::anns {

namespace kernel_detail {

// Active dispatch table. release on store / acquire on load: readers
// that see the pointer must also see the pointed-to table fully
// initialized. The shipped tables are constant-initialized statics, so
// this is conservative today, but it keeps a dynamically registered
// table (tests install tiers via setKernelLevel) publication-safe.
std::atomic<const KernelOps *> g_active{nullptr};

namespace {

void
scalarNormalize(float *v, unsigned d)
{
    const double n = scalarDot<ScalarType::kFp32>(
        v, reinterpret_cast<const std::uint8_t *>(v), d);
    if (n <= 0.0)
        return;
    const float inv = static_cast<float>(1.0 / std::sqrt(n));
    for (unsigned i = 0; i < d; ++i)
        v[i] *= inv;
}

constexpr KernelOps
makeScalarOps()
{
    KernelOps ops;
    ops.level = SimdLevel::kScalar;
    ops.l2[typeIndex(ScalarType::kUint8)] = scalarL2<ScalarType::kUint8>;
    ops.l2[typeIndex(ScalarType::kInt8)] = scalarL2<ScalarType::kInt8>;
    ops.l2[typeIndex(ScalarType::kFp16)] = scalarL2<ScalarType::kFp16>;
    ops.l2[typeIndex(ScalarType::kFp32)] = scalarL2<ScalarType::kFp32>;
    ops.dot[typeIndex(ScalarType::kUint8)] = scalarDot<ScalarType::kUint8>;
    ops.dot[typeIndex(ScalarType::kInt8)] = scalarDot<ScalarType::kInt8>;
    ops.dot[typeIndex(ScalarType::kFp16)] = scalarDot<ScalarType::kFp16>;
    ops.dot[typeIndex(ScalarType::kFp32)] = scalarDot<ScalarType::kFp32>;
    ops.l2Batch[typeIndex(ScalarType::kUint8)] =
        rowBatch<scalarL2<ScalarType::kUint8>>;
    ops.l2Batch[typeIndex(ScalarType::kInt8)] =
        rowBatch<scalarL2<ScalarType::kInt8>>;
    ops.l2Batch[typeIndex(ScalarType::kFp16)] =
        rowBatch<scalarL2<ScalarType::kFp16>>;
    ops.l2Batch[typeIndex(ScalarType::kFp32)] =
        rowBatch<scalarL2<ScalarType::kFp32>>;
    ops.dotBatch[typeIndex(ScalarType::kUint8)] =
        rowBatch<scalarDot<ScalarType::kUint8>>;
    ops.dotBatch[typeIndex(ScalarType::kInt8)] =
        rowBatch<scalarDot<ScalarType::kInt8>>;
    ops.dotBatch[typeIndex(ScalarType::kFp16)] =
        rowBatch<scalarDot<ScalarType::kFp16>>;
    ops.dotBatch[typeIndex(ScalarType::kFp32)] =
        rowBatch<scalarDot<ScalarType::kFp32>>;
    ops.normalize = scalarNormalize;
    ops.boundL2 = scalarBound<true>;
    ops.boundIp = scalarBound<false>;
    return ops;
}

const KernelOps g_scalar_ops = makeScalarOps();

} // namespace

const KernelOps *
scalarKernels()
{
    return &g_scalar_ops;
}

const KernelOps &
resolveKernels()
{
    static const KernelOps *resolved = [] {
        SimdLevel level = bestSimdLevel();
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only config knob,
        // queried once under the static-init guard; env is not mutated.
        if (const char *env = std::getenv("ANSMET_KERNEL")) {
            SimdLevel want;
            if (!parseSimdLevel(env, &want)) {
                ANSMET_WARN("ANSMET_KERNEL=", env,
                            " is not scalar|avx2|avx512; using ",
                            simdLevelName(level));
            } else if (!kernelsFor(want)) {
                ANSMET_WARN("ANSMET_KERNEL=", env,
                            " unavailable on this CPU/build; using ",
                            simdLevelName(level));
            } else {
                level = want;
            }
        }
        // Walk down to the strongest tier that was actually compiled
        // in (a non-x86 or old-compiler build may only have scalar).
        const KernelOps *ops = kernelsFor(level);
        if (!ops && level == SimdLevel::kAvx512)
            ops = kernelsFor(SimdLevel::kAvx2);
        if (!ops)
            ops = scalarKernels();
        // Keep any table a pre-resolution setKernelLevel() installed.
        // acq_rel: release publishes `ops` on success, acquire makes a
        // concurrently installed table visible on failure.
        const KernelOps *expected = nullptr;
        g_active.compare_exchange_strong(expected, ops,
                                         std::memory_order_acq_rel);
        return g_active.load(std::memory_order_acquire);
    }();
    return *resolved;
}

} // namespace kernel_detail

const KernelOps *
kernelsFor(SimdLevel level)
{
    if (!simdLevelSupported(level))
        return nullptr;
    switch (level) {
      case SimdLevel::kScalar:
        return kernel_detail::scalarKernels();
      case SimdLevel::kAvx2:
        return kernel_detail::avx2Kernels();
      case SimdLevel::kAvx512:
        return kernel_detail::avx512Kernels();
    }
    return nullptr;
}

bool
setKernelLevel(SimdLevel level)
{
    const KernelOps *ops = kernelsFor(level);
    if (!ops)
        return false;
    kernel_detail::g_active.store(ops, std::memory_order_release);
    return true;
}

} // namespace ansmet::anns
