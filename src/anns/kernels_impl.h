/**
 * @file
 * Private shared pieces of the kernel translation units: the typed
 * element loader, the canonical 16-lane reduction, and the scalar
 * reference loops. The SIMD TUs reuse the scalar loops for tails (the
 * final d % 16 elements) so every tier performs bit-identical math —
 * see kernels.h for the canonical-order contract.
 *
 * Not installed API: include only from kernels*.cc.
 */

#ifndef ANSMET_ANNS_KERNELS_IMPL_H
#define ANSMET_ANNS_KERNELS_IMPL_H

#include <cmath>
#include <cstring>

#include "anns/kernels.h"
#include "anns/scalar.h"

namespace ansmet::anns::kernel_detail {

constexpr unsigned kLanes = 16;

/**
 * Single typed-load helper shared by every kernel: element @p i of a
 * raw row, widened to double. All four scalar types route through
 * here, so there is exactly one place that defines the (exact)
 * element-to-double conversion.
 */
template <ScalarType T>
inline double
loadElem(const std::uint8_t *raw, unsigned i)
{
    if constexpr (T == ScalarType::kUint8) {
        return static_cast<double>(raw[i]);
    } else if constexpr (T == ScalarType::kInt8) {
        return static_cast<double>(static_cast<std::int8_t>(raw[i]));
    } else if constexpr (T == ScalarType::kFp16) {
        std::uint16_t h;
        std::memcpy(&h, raw + i * 2u, 2);
        return static_cast<double>(halfToFloat(h));
    } else {
        float f;
        std::memcpy(&f, raw + i * 4u, 4);
        return static_cast<double>(f);
    }
}

/** Canonical reduction of the 16 lane accumulators (see kernels.h). */
inline double
reduceLanes(const double *l)
{
    double c[4];
    for (unsigned j = 0; j < 4; ++j)
        c[j] = (l[j] + l[j + 8]) + (l[j + 4] + l[j + 12]);
    return (c[0] + c[2]) + (c[1] + c[3]);
}

/** Accumulate L2 terms of elements [begin, end) into the lanes. */
template <ScalarType T>
inline void
l2Tail(const float *q, const std::uint8_t *raw, unsigned begin,
       unsigned end, double *lanes)
{
    for (unsigned i = begin; i < end; ++i) {
        const double diff = static_cast<double>(q[i]) - loadElem<T>(raw, i);
        lanes[i % kLanes] += diff * diff;
    }
}

/** Accumulate dot terms of elements [begin, end) into the lanes. */
template <ScalarType T>
inline void
dotTail(const float *q, const std::uint8_t *raw, unsigned begin,
        unsigned end, double *lanes)
{
    for (unsigned i = begin; i < end; ++i)
        lanes[i % kLanes] += static_cast<double>(q[i]) * loadElem<T>(raw, i);
}

template <ScalarType T>
double
scalarL2(const float *q, const std::uint8_t *raw, unsigned d)
{
    double lanes[kLanes] = {};
    l2Tail<T>(q, raw, 0, d, lanes);
    return reduceLanes(lanes);
}

template <ScalarType T>
double
scalarDot(const float *q, const std::uint8_t *raw, unsigned d)
{
    double lanes[kLanes] = {};
    dotTail<T>(q, raw, 0, d, lanes);
    return reduceLanes(lanes);
}

/**
 * Bound-update step for one element (select semantics match the SIMD
 * max/min and blend instructions exactly; see BoundBatchFn).
 * @return the new contribution of the element.
 */
inline double
boundStepL2(double q, double lo, double hi)
{
    if (q < lo) {
        const double gap = lo - q;
        return gap * gap;
    }
    if (q > hi) {
        const double gap = q - hi;
        return gap * gap;
    }
    return 0.0;
}

inline double
boundStepIp(double q, double lo, double hi)
{
    return q >= 0.0 ? hi * q : lo * q;
}

/** Scalar tail of the bound-update kernels over elements [begin, end). */
template <bool IsL2>
inline void
boundTail(const float *q, double *lo, double *hi, double *contrib,
          const double *nlo, const double *nhi, unsigned begin,
          unsigned end, double *lanes)
{
    for (unsigned i = begin; i < end; ++i) {
        const double l = lo[i] > nlo[i] ? lo[i] : nlo[i];
        const double h = hi[i] < nhi[i] ? hi[i] : nhi[i];
        lo[i] = l;
        hi[i] = h;
        const double qd = static_cast<double>(q[i]);
        const double c = IsL2 ? boundStepL2(qd, l, h) : boundStepIp(qd, l, h);
        lanes[i % kLanes] += c - contrib[i];
        contrib[i] = c;
    }
}

template <bool IsL2>
double
scalarBound(const float *q, double *lo, double *hi, double *contrib,
            const double *nlo, const double *nhi, unsigned n)
{
    double lanes[kLanes] = {};
    boundTail<IsL2>(q, lo, hi, contrib, nlo, nhi, 0, n, lanes);
    return reduceLanes(lanes);
}

/** Batch driver shared by the tiers: per-row distance over an id list. */
template <RowDistFn Fn>
void
rowBatch(const float *q, const std::uint8_t *base, std::size_t stride,
         const VectorId *ids, std::size_t n, unsigned d, double *out)
{
    for (std::size_t i = 0; i < n; ++i) {
#if defined(__GNUC__)
        if (i + 1 < n) {
            __builtin_prefetch(
                base + static_cast<std::size_t>(ids[i + 1]) * stride);
        }
#endif
        out[i] = Fn(q, base + static_cast<std::size_t>(ids[i]) * stride, d);
    }
}

} // namespace ansmet::anns::kernel_detail

#endif // ANSMET_ANNS_KERNELS_IMPL_H
