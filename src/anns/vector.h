/**
 * @file
 * Typed dense vector storage.
 *
 * A VectorSet holds N vectors of D elements in their native scalar
 * type. Values are exposed both as floats (for distance computation)
 * and as raw element bit patterns (for the early-termination codecs).
 */

#ifndef ANSMET_ANNS_VECTOR_H
#define ANSMET_ANNS_VECTOR_H

#include <cstdint>
#include <vector>

#include "anns/scalar.h"
#include "common/logging.h"
#include "common/types.h"

namespace ansmet::anns {

/** Dense N x D matrix of a single scalar type. */
class VectorSet
{
  public:
    VectorSet(std::size_t n, unsigned dims, ScalarType type)
        : n_(n), dims_(dims), type_(type),
          data_(n * dims * scalarBytes(type), 0)
    {
        ANSMET_ASSERT(dims > 0);
    }

    std::size_t size() const { return n_; }
    unsigned dims() const { return dims_; }
    ScalarType type() const { return type_; }

    /** Bytes occupied by one vector. */
    std::size_t vectorBytes() const { return dims_ * scalarBytes(type_); }

    /** Raw storage of vector @p v. */
    const std::uint8_t *
    raw(VectorId v) const
    {
        return data_.data() + static_cast<std::size_t>(v) * vectorBytes();
    }

    std::uint8_t *
    raw(VectorId v)
    {
        return data_.data() + static_cast<std::size_t>(v) * vectorBytes();
    }

    /** Element (v, d) as a float regardless of the storage type. */
    float
    at(VectorId v, unsigned d) const
    {
        const std::uint8_t *p = raw(v) + d * scalarBytes(type_);
        switch (type_) {
          case ScalarType::kUint8:
            return static_cast<float>(*p);
          case ScalarType::kInt8:
            return static_cast<float>(static_cast<std::int8_t>(*p));
          case ScalarType::kFp16: {
            std::uint16_t h;
            std::memcpy(&h, p, 2);
            return halfToFloat(h);
          }
          case ScalarType::kFp32: {
            float f;
            std::memcpy(&f, p, 4);
            return f;
          }
        }
        return 0.0f;
    }

    /** Element (v, d) as its raw bit pattern, LSB-aligned. */
    std::uint32_t
    bitsAt(VectorId v, unsigned d) const
    {
        const std::uint8_t *p = raw(v) + d * scalarBytes(type_);
        switch (type_) {
          case ScalarType::kUint8:
          case ScalarType::kInt8:
            return *p;
          case ScalarType::kFp16: {
            std::uint16_t h;
            std::memcpy(&h, p, 2);
            return h;
          }
          case ScalarType::kFp32: {
            std::uint32_t u;
            std::memcpy(&u, p, 4);
            return u;
          }
        }
        return 0;
    }

    /**
     * Store @p value into element (v, d), clamping/rounding to the
     * storage type.
     */
    void
    set(VectorId v, unsigned d, float value)
    {
        std::uint8_t *p = raw(v) + d * scalarBytes(type_);
        switch (type_) {
          case ScalarType::kUint8: {
            const float c = value < 0.f ? 0.f :
                            (value > 255.f ? 255.f : value);
            *p = static_cast<std::uint8_t>(c + 0.5f);
            break;
          }
          case ScalarType::kInt8: {
            const float c = value < -128.f ? -128.f :
                            (value > 127.f ? 127.f : value);
            const auto i = static_cast<std::int8_t>(
                c >= 0 ? c + 0.5f : c - 0.5f);
            *p = static_cast<std::uint8_t>(i);
            break;
          }
          case ScalarType::kFp16: {
            const std::uint16_t h = floatToHalf(value);
            std::memcpy(p, &h, 2);
            break;
          }
          case ScalarType::kFp32:
            std::memcpy(p, &value, 4);
            break;
        }
    }

    /** Copy vector @p v into a float buffer of dims() entries. */
    void
    toFloat(VectorId v, float *out) const
    {
        for (unsigned d = 0; d < dims_; ++d)
            out[d] = at(v, d);
    }

    std::vector<float>
    toFloat(VectorId v) const
    {
        std::vector<float> out(dims_);
        toFloat(v, out.data());
        return out;
    }

  private:
    std::size_t n_;
    unsigned dims_;
    ScalarType type_;
    std::vector<std::uint8_t> data_;
};

} // namespace ansmet::anns

#endif // ANSMET_ANNS_VECTOR_H
