/**
 * @file
 * Synthetic dataset generators standing in for the paper's seven
 * billion-scale benchmarks (Table 2).
 *
 * Each generator reproduces the *distributional fingerprint* that the
 * ANSMET techniques are sensitive to — element type, dimensionality,
 * metric, clustered structure, and (critically for early termination)
 * the per-element bit-prefix entropy profile:
 *
 *  - SIFT / BigANN : 128-dim UINT8 gradient-histogram-like (skewed
 *    toward small magnitudes, full 8-bit range) — L2;
 *  - SPACEV        : 100-dim INT8 roughly zero-centered — L2;
 *  - DEEP          : 96-dim FP32, mostly-positive unit-normalized CNN
 *    features whose exponents concentrate (low-entropy high bits) — L2;
 *  - GloVe         : 100-dim FP32 signed word embeddings, normalized
 *    offline so IP == cosine — IP;
 *  - Txt2Img       : 200-dim FP32 signed cross-modal embeddings — IP;
 *  - GIST          : 960-dim FP32 in [0,1) with small magnitudes
 *    (strong common prefixes) — L2.
 *
 * Vector counts are scaled down (default 20k / 8k for GIST) so a full
 * experiment sweep finishes on one machine; see DESIGN.md section 2.
 */

#ifndef ANSMET_ANNS_DATASET_H
#define ANSMET_ANNS_DATASET_H

#include <memory>
#include <string>
#include <vector>

#include "anns/distance.h"
#include "anns/vector.h"
#include "common/prng.h"

namespace ansmet::anns {

/** Identifiers for the seven paper datasets. */
enum class DatasetId
{
    kSift,
    kBigann,
    kSpacev,
    kDeep,
    kGlove,
    kTxt2img,
    kGist,
};

/** All seven, in the paper's Table 2 order. */
std::vector<DatasetId> allDatasets();

/** Static description of a dataset profile. */
struct DatasetSpec
{
    DatasetId id;
    std::string name;
    Metric metric;
    ScalarType type;
    unsigned dims;
    std::size_t defaultVectors;
    std::size_t defaultQueries;
};

const DatasetSpec &datasetSpec(DatasetId id);

/** A generated dataset: base vectors plus float query vectors. */
struct Dataset
{
    DatasetSpec spec;
    std::unique_ptr<VectorSet> base;
    std::vector<std::vector<float>> queries;

    unsigned dims() const { return spec.dims; }
    Metric metric() const { return spec.metric; }
};

/**
 * Generate a dataset.
 * @param n number of base vectors (0 = spec default)
 * @param q number of queries (0 = spec default)
 * @param seed PRNG seed; the same (id, n, q, seed) always yields the
 *        same data.
 * @param zipf_alpha if > 1, queries are drawn centered on base vectors
 *        chosen by a zipf distribution (skewed load, Section 5.3);
 *        otherwise uniformly.
 */
Dataset makeDataset(DatasetId id, std::size_t n = 0, std::size_t q = 0,
                    std::uint64_t seed = 1, double zipf_alpha = 0.0);

} // namespace ansmet::anns

#endif // ANSMET_ANNS_DATASET_H
