/**
 * @file
 * SIMD batch-kernel layer with runtime dispatch.
 *
 * Every hot inner loop of the host pipeline — distance computation,
 * batched multi-vector distance, L2 normalization, and the ET layer's
 * interval-bound tightening — is provided as a table of function
 * pointers (KernelOps), with one table per ISA tier (scalar reference,
 * AVX2, AVX-512). The active table is resolved once, at first use,
 * from CPU detection plus the ANSMET_KERNEL environment override
 * (scalar | avx2 | avx512) for A/B testing.
 *
 * ## Determinism and the conservative-bound contract
 *
 * The early-termination layer compares conservative lower bounds
 * against exact distances, so kernel results must be reproducible and
 * must never drift above the exact value the scalar math defines. All
 * variants therefore accumulate in double precision using one
 * canonical *blocked summation order*:
 *
 *   - lane j (j in [0,16)) accumulates the terms of elements
 *     i with i % 16 == j, in increasing i;
 *   - the 16 lanes reduce in the fixed tree
 *       c[j] = (l[j] + l[j+8]) + (l[j+4] + l[j+12]),  j in [0,4)
 *       total = (c[0] + c[2]) + (c[1] + c[3]);
 *   - no FMA contraction (kernel TUs build with -ffp-contract=off),
 *     element conversions (int widen, fp16 decode, fp32->double) are
 *     exact, and every per-element operation is performed in double.
 *
 * Sixteen lanes map exactly onto four AVX2 4x-double accumulators or
 * two AVX-512 8x-double accumulators, so every tier executes the same
 * double-precision operations in the same association and all tiers
 * produce bitwise-identical results (the kernel-parity tests assert
 * exact equality). Figures and ET decisions are thus independent of
 * the tier that happened to run; the boundExceeds() margin additionally
 * absorbs any future variant whose ordering diverges.
 */

#ifndef ANSMET_ANNS_KERNELS_H
#define ANSMET_ANNS_KERNELS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "anns/scalar.h"
#include "common/simd.h"
#include "common/types.h"

namespace ansmet::anns {

/** Distance of a float query against one raw typed row, canonical order. */
using RowDistFn = double (*)(const float *q, const std::uint8_t *raw,
                             unsigned d);

/**
 * Distance of one query against a block of rows: row i lives at
 * base + ids[i] * stride. Used by bruteforce ground truth (contiguous
 * ids) and HNSW neighbor expansion (scattered ids).
 */
using RowBatchFn = void (*)(const float *q, const std::uint8_t *base,
                            std::size_t stride, const VectorId *ids,
                            std::size_t n, unsigned d, double *out);

/**
 * Batched interval-bound tightening (one fetch-step's worth of
 * dimensions in one pass). For each i in [0, n):
 *   lo[i] = lo[i] >  nlo[i] ? lo[i] : nlo[i];   // intersect
 *   hi[i] = hi[i] <  nhi[i] ? hi[i] : nhi[i];
 *   c     = contribution of q[i] against [lo[i], hi[i]]
 *           (L2: min gap^2; IP: max achievable dot term);
 *   delta_i = c - contrib[i];  contrib[i] = c;
 * Returns sum of delta_i in the canonical blocked order.
 */
using BoundBatchFn = double (*)(const float *q, double *lo, double *hi,
                                double *contrib, const double *nlo,
                                const double *nhi, unsigned n);

/** One ISA tier's kernel table; entries indexed by ScalarType. */
struct KernelOps
{
    SimdLevel level = SimdLevel::kScalar;
    RowDistFn l2[4] = {};       //!< squared L2
    RowDistFn dot[4] = {};      //!< raw dot product (negIp = -dot)
    RowBatchFn l2Batch[4] = {};
    RowBatchFn dotBatch[4] = {};
    void (*normalize)(float *v, unsigned d) = nullptr;
    BoundBatchFn boundL2 = nullptr;
    BoundBatchFn boundIp = nullptr;
};

/** Index into the per-type kernel arrays. */
constexpr unsigned
typeIndex(ScalarType t)
{
    return static_cast<unsigned>(t);
}

namespace kernel_detail {

// Per-tier tables; null when the tier was not compiled in (non-x86
// build or compiler without the ISA flags).
const KernelOps *scalarKernels();
const KernelOps *avx2Kernels();
const KernelOps *avx512Kernels();

extern std::atomic<const KernelOps *> g_active;

/** Resolve the startup table (CPU detection + ANSMET_KERNEL). */
const KernelOps &resolveKernels();

} // namespace kernel_detail

/**
 * Table for @p level, or null when that tier is unavailable (not
 * compiled in, or the CPU lacks the ISA). Scalar is always available.
 */
const KernelOps *kernelsFor(SimdLevel level);

/** The active kernel table (resolved once at first use). */
inline const KernelOps &
kernels()
{
    // acquire: pairs with the release store in setKernelLevel() /
    // resolveKernels() so the table's contents are visible.
    const KernelOps *ops =
        kernel_detail::g_active.load(std::memory_order_acquire);
    return ops ? *ops : kernel_detail::resolveKernels();
}

/** Tier of the active table. */
inline SimdLevel
activeKernelLevel()
{
    return kernels().level;
}

/**
 * Force the active tier (bench/test A-B hook; not thread-safe against
 * concurrent searches). Returns false if @p level is unavailable.
 */
bool setKernelLevel(SimdLevel level);

} // namespace ansmet::anns

#endif // ANSMET_ANNS_KERNELS_H
