#include "anns/pq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ansmet::anns {

namespace {

/** Margin-protected threshold test (cf. et::boundExceeds). */
bool
boundExceedsPq(double bound, double threshold)
{
    return bound >= threshold + 1e-9 * (1.0 + std::abs(threshold));
}

} // namespace

PqIndex::PqIndex(const VectorSet &vs, Metric metric, PqParams params)
    : params_(params), metric_(metric), dims_(vs.dims()), n_(vs.size())
{
    ANSMET_ASSERT(params.subspaces > 0 &&
                      vs.dims() % params.subspaces == 0,
                  "subspaces must divide dims");
    ANSMET_ASSERT(params.codebookSize >= 2 &&
                  params.codebookSize <= 256);
    sub_dims_ = dims_ / params_.subspaces;
    codebooks_.resize(static_cast<std::size_t>(params_.subspaces) *
                      params_.codebookSize * sub_dims_);
    codes_.resize(n_ * params_.subspaces);
    train(vs);
    encode(vs);
}

void
PqIndex::train(const VectorSet &vs)
{
    Prng rng(params_.seed);
    std::vector<float> buf(dims_);

    for (unsigned s = 0; s < params_.subspaces; ++s) {
        const unsigned off = s * sub_dims_;
        // Init: distinct random sub-vectors.
        for (unsigned c = 0; c < params_.codebookSize; ++c) {
            const auto pick = static_cast<VectorId>(rng.below(n_));
            vs.toFloat(pick, buf.data());
            float *cw = codebooks_.data() +
                        (static_cast<std::size_t>(s) *
                             params_.codebookSize +
                         c) *
                            sub_dims_;
            std::copy(buf.begin() + off, buf.begin() + off + sub_dims_,
                      cw);
        }

        // Lloyd iterations on the sub-vectors.
        std::vector<unsigned> assign(n_, 0);
        for (unsigned iter = 0; iter < params_.kmeansIters; ++iter) {
            bool changed = false;
            for (std::size_t v = 0; v < n_; ++v) {
                vs.toFloat(static_cast<VectorId>(v), buf.data());
                double best = std::numeric_limits<double>::infinity();
                unsigned best_c = 0;
                for (unsigned c = 0; c < params_.codebookSize; ++c) {
                    const double d = l2Sq(buf.data() + off,
                                          codeword(s, c), sub_dims_);
                    if (d < best) {
                        best = d;
                        best_c = c;
                    }
                }
                if (assign[v] != best_c) {
                    assign[v] = best_c;
                    changed = true;
                }
            }
            if (!changed)
                break;

            std::vector<double> sums(
                static_cast<std::size_t>(params_.codebookSize) *
                    sub_dims_,
                0.0);
            std::vector<std::size_t> counts(params_.codebookSize, 0);
            for (std::size_t v = 0; v < n_; ++v) {
                vs.toFloat(static_cast<VectorId>(v), buf.data());
                for (unsigned i = 0; i < sub_dims_; ++i)
                    sums[assign[v] * sub_dims_ + i] += buf[off + i];
                ++counts[assign[v]];
            }
            for (unsigned c = 0; c < params_.codebookSize; ++c) {
                if (counts[c] == 0)
                    continue;
                float *cw = codebooks_.data() +
                            (static_cast<std::size_t>(s) *
                                 params_.codebookSize +
                             c) *
                                sub_dims_;
                for (unsigned i = 0; i < sub_dims_; ++i) {
                    cw[i] = static_cast<float>(
                        sums[c * sub_dims_ + i] /
                        static_cast<double>(counts[c]));
                }
            }
        }
    }
}

void
PqIndex::encode(const VectorSet &vs)
{
    std::vector<float> buf(dims_);
    for (std::size_t v = 0; v < n_; ++v) {
        vs.toFloat(static_cast<VectorId>(v), buf.data());
        for (unsigned s = 0; s < params_.subspaces; ++s) {
            const unsigned off = s * sub_dims_;
            double best = std::numeric_limits<double>::infinity();
            unsigned best_c = 0;
            for (unsigned c = 0; c < params_.codebookSize; ++c) {
                const double d =
                    l2Sq(buf.data() + off, codeword(s, c), sub_dims_);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            codes_[v * params_.subspaces + s] =
                static_cast<std::uint8_t>(best_c);
        }
    }
}

std::vector<double>
PqIndex::distanceTable(const float *query) const
{
    std::vector<double> table(static_cast<std::size_t>(params_.subspaces) *
                              params_.codebookSize);
    for (unsigned s = 0; s < params_.subspaces; ++s) {
        const unsigned off = s * sub_dims_;
        for (unsigned c = 0; c < params_.codebookSize; ++c) {
            table[s * params_.codebookSize + c] =
                distance(metric_, query + off, codeword(s, c), sub_dims_);
        }
    }
    return table;
}

std::vector<double>
PqIndex::rowMinima(const std::vector<double> &table) const
{
    std::vector<double> minima(params_.subspaces);
    for (unsigned s = 0; s < params_.subspaces; ++s) {
        double m = table[s * params_.codebookSize];
        for (unsigned c = 1; c < params_.codebookSize; ++c)
            m = std::min(m, table[s * params_.codebookSize + c]);
        minima[s] = m;
    }
    return minima;
}

double
PqIndex::partialLowerBound(const std::vector<double> &table,
                           const std::vector<double> &row_minima,
                           VectorId v, unsigned fetched) const
{
    double acc = 0.0;
    for (unsigned s = 0; s < params_.subspaces; ++s) {
        acc += s < fetched
                   ? table[s * params_.codebookSize + code(v, s)]
                   : row_minima[s];
    }
    return acc;
}

std::vector<Neighbor>
PqIndex::search(const float *query, std::size_t k) const
{
    const auto table = distanceTable(query);
    ResultSet rs(k);
    for (std::size_t v = 0; v < n_; ++v) {
        rs.offer({tableDistance(table, static_cast<VectorId>(v)),
                  static_cast<VectorId>(v)});
    }
    return rs.sorted();
}

std::vector<Neighbor>
PqIndex::searchEt(const float *query, std::size_t k,
                  std::uint64_t *reads_out) const
{
    const auto table = distanceTable(query);
    const auto minima = rowMinima(table);

    // Sum of row minima: the part of the bound common to all vectors.
    double minima_tail = 0.0;
    for (const double m : minima)
        minima_tail += m;

    ResultSet rs(k);
    std::uint64_t reads = 0;
    for (std::size_t v = 0; v < n_; ++v) {
        const auto id = static_cast<VectorId>(v);
        // Incremental bound: replace one row minimum with the exact
        // table entry per fetched code; terminate on threshold cross.
        double bound = minima_tail;
        bool dropped = false;
        for (unsigned s = 0; s < params_.subspaces; ++s) {
            if (boundExceedsPq(bound, rs.worst())) {
                dropped = true;
                break;
            }
            ++reads;
            bound += table[s * params_.codebookSize + code(id, s)] -
                     minima[s];
        }
        if (!dropped)
            rs.offer({bound, id});
    }
    if (reads_out)
        *reads_out += reads;
    return rs.sorted();
}

} // namespace ansmet::anns
