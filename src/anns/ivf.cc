#include "anns/ivf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ansmet::anns {

IvfIndex::IvfIndex(const VectorSet &vs, Metric m, IvfParams params)
    : vs_(vs), metric_(m)
{
    ANSMET_ASSERT(vs.size() > 0, "empty vector set");
    if (params.numClusters == 0) {
        params.numClusters = static_cast<unsigned>(
            std::ceil(std::sqrt(static_cast<double>(vs.size()))));
    }
    params.numClusters = std::min<unsigned>(
        params.numClusters, static_cast<unsigned>(vs.size()));
    kmeans(params);
}

void
IvfIndex::kmeans(const IvfParams &params)
{
    const unsigned d = vs_.dims();
    const std::size_t n = vs_.size();
    const unsigned kc = params.numClusters;
    Prng rng(params.seed);

    // Init: distinct random picks (Forgy).
    centroids_.assign(kc, std::vector<float>(d, 0.0f));
    std::vector<std::size_t> picks;
    while (picks.size() < kc) {
        const std::size_t p = rng.below(n);
        if (std::find(picks.begin(), picks.end(), p) == picks.end())
            picks.push_back(p);
    }
    for (unsigned c = 0; c < kc; ++c)
        vs_.toFloat(static_cast<VectorId>(picks[c]), centroids_[c].data());

    // Assignment is always by L2 (standard even for IP datasets, since
    // our IP data is unit-normalized so L2 ordering == cosine ordering).
    std::vector<unsigned> assign(n, 0);
    std::vector<float> buf(d);

    for (unsigned iter = 0; iter < params.kmeansIters; ++iter) {
        bool changed = false;
        for (std::size_t v = 0; v < n; ++v) {
            vs_.toFloat(static_cast<VectorId>(v), buf.data());
            double best = std::numeric_limits<double>::infinity();
            unsigned best_c = 0;
            for (unsigned c = 0; c < kc; ++c) {
                const double dist = l2Sq(buf.data(), centroids_[c].data(), d);
                if (dist < best) {
                    best = dist;
                    best_c = c;
                }
            }
            if (assign[v] != best_c) {
                assign[v] = best_c;
                changed = true;
            }
        }
        if (!changed)
            break;

        // Update step.
        std::vector<std::vector<double>> sums(kc,
                                              std::vector<double>(d, 0.0));
        std::vector<std::size_t> counts(kc, 0);
        for (std::size_t v = 0; v < n; ++v) {
            vs_.toFloat(static_cast<VectorId>(v), buf.data());
            for (unsigned i = 0; i < d; ++i)
                sums[assign[v]][i] += buf[i];
            ++counts[assign[v]];
        }
        for (unsigned c = 0; c < kc; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster on a random vector.
                vs_.toFloat(static_cast<VectorId>(rng.below(n)),
                            centroids_[c].data());
                continue;
            }
            for (unsigned i = 0; i < d; ++i)
                centroids_[c][i] = static_cast<float>(
                    sums[c][i] / static_cast<double>(counts[c]));
        }
    }

    lists_.assign(kc, {});
    for (std::size_t v = 0; v < n; ++v)
        lists_[assign[v]].push_back(static_cast<VectorId>(v));
}

std::vector<VectorId>
IvfIndex::search(const float *query, std::size_t k, unsigned nprobe,
                 SearchObserver &obs) const
{
    const unsigned kc = numClusters();
    nprobe = std::min(nprobe, kc);

    // Rank centroids (host-side index work; always by L2, see kmeans()).
    obs.beginStep(StepKind::kCentroidScan,
                  static_cast<std::size_t>(kc) * vs_.dims() * sizeof(float),
                  0);
    std::vector<Neighbor> ranked(kc);
    for (unsigned c = 0; c < kc; ++c) {
        ranked[c] = {l2Sq(query, centroids_[c].data(), vs_.dims()),
                     static_cast<VectorId>(c)};
    }
    std::sort(ranked.begin(), ranked.end());
    obs.onHeapOps(kc);

    // Posting lists are scanned in chunks of 8 comparisons — the
    // QSHR task capacity, i.e. one set-search instruction per chunk —
    // with the threshold refreshed between chunks.
    constexpr std::size_t kChunk = 8;
    ResultSet results(std::max<std::size_t>(k, 1));
    for (unsigned p = 0; p < nprobe; ++p) {
        const auto &members = lists_[ranked[p].id];
        for (std::size_t c0 = 0; c0 < members.size(); c0 += kChunk) {
            const std::size_t c1 = std::min(c0 + kChunk, members.size());
            obs.beginStep(StepKind::kClusterScan,
                          (c1 - c0) * sizeof(VectorId), ranked[p].id);
            const double batch_threshold = results.worst();
            for (std::size_t i = c0; i < c1; ++i) {
                const VectorId v = members[i];
                const double dist = distance(metric_, query, vs_, v);
                const bool accepted = dist < batch_threshold;
                obs.onCompare(v, batch_threshold, dist, accepted);
                if (results.offer({dist, v}))
                    obs.onHeapOps(1);
            }
        }
    }
    return results.topIds(k);
}

} // namespace ansmet::anns
