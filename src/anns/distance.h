/**
 * @file
 * Distance metrics (Section 2.1 of the paper).
 *
 * L2 distances are kept as *squared* Euclidean distances throughout:
 * the square root is monotone, so comparisons and thresholds are
 * unaffected, and this matches what both FAISS and the NDP hardware
 * compute. Inner-product "distance" is the negated dot product, so
 * smaller is always better for every metric. Cosine reduces to IP
 * after offline normalization (as the paper notes) and is provided as
 * an alias plus a normalization helper.
 *
 * Everything here is a thin wrapper over the SIMD kernel layer
 * (anns/kernels.h): the active kernel table is resolved once at
 * startup (AVX-512 / AVX2 / scalar, overridable via ANSMET_KERNEL)
 * and all variants accumulate in double precision in one canonical
 * blocked order, so distances are deterministic and the ET layer's
 * conservative bounds remain provably below them.
 */

#ifndef ANSMET_ANNS_DISTANCE_H
#define ANSMET_ANNS_DISTANCE_H

#include <cmath>
#include <cstdint>

#include "anns/kernels.h"
#include "anns/vector.h"

namespace ansmet::anns {

enum class Metric : std::uint8_t { kL2, kIp, kCosine };

const char *metricName(Metric m);

/** Squared L2 distance between a float query and a stored vector. */
inline double
l2Sq(const float *q, const VectorSet &vs, VectorId v)
{
    return kernels().l2[typeIndex(vs.type())](q, vs.raw(v), vs.dims());
}

/** Negated inner product (smaller = more similar). */
inline double
negIp(const float *q, const VectorSet &vs, VectorId v)
{
    return -kernels().dot[typeIndex(vs.type())](q, vs.raw(v), vs.dims());
}

/** Distance under @p m; kCosine assumes pre-normalized data. */
inline double
distance(Metric m, const float *q, const VectorSet &vs, VectorId v)
{
    switch (m) {
      case Metric::kL2:
        return l2Sq(q, vs, v);
      case Metric::kIp:
      case Metric::kCosine:
        return negIp(q, vs, v);
    }
    return 0.0;
}

/** Squared L2 between two float buffers. */
inline double
l2Sq(const float *a, const float *b, unsigned d)
{
    return kernels().l2[typeIndex(ScalarType::kFp32)](
        a, reinterpret_cast<const std::uint8_t *>(b), d);
}

inline double
negIp(const float *a, const float *b, unsigned d)
{
    return -kernels().dot[typeIndex(ScalarType::kFp32)](
        a, reinterpret_cast<const std::uint8_t *>(b), d);
}

inline double
distance(Metric m, const float *a, const float *b, unsigned d)
{
    return m == Metric::kL2 ? l2Sq(a, b, d) : negIp(a, b, d);
}

/**
 * Distances of one query against a block of candidates (out[i] is the
 * distance to ids[i]). The batched kernels keep the whole block in
 * the same dispatch and prefetch the next row, which is what the
 * bruteforce ground truth and HNSW neighbor expansion spend their
 * time in.
 */
inline void
distanceBatch(Metric m, const float *q, const VectorSet &vs,
              const VectorId *ids, std::size_t n, double *out)
{
    const KernelOps &ops = kernels();
    const unsigned t = typeIndex(vs.type());
    if (m == Metric::kL2) {
        ops.l2Batch[t](q, vs.raw(0), vs.vectorBytes(), ids, n, vs.dims(),
                       out);
        return;
    }
    ops.dotBatch[t](q, vs.raw(0), vs.vectorBytes(), ids, n, vs.dims(), out);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = -out[i];
}

/** Scale @p v (length d) to unit L2 norm in place; zero stays zero. */
inline void
normalizeL2(float *v, unsigned d)
{
    kernels().normalize(v, d);
}

} // namespace ansmet::anns

#endif // ANSMET_ANNS_DISTANCE_H
