/**
 * @file
 * Distance metrics (Section 2.1 of the paper).
 *
 * L2 distances are kept as *squared* Euclidean distances throughout:
 * the square root is monotone, so comparisons and thresholds are
 * unaffected, and this matches what both FAISS and the NDP hardware
 * compute. Inner-product "distance" is the negated dot product, so
 * smaller is always better for every metric. Cosine reduces to IP
 * after offline normalization (as the paper notes) and is provided as
 * an alias plus a normalization helper.
 */

#ifndef ANSMET_ANNS_DISTANCE_H
#define ANSMET_ANNS_DISTANCE_H

#include <cmath>
#include <cstdint>

#include "anns/vector.h"

namespace ansmet::anns {

enum class Metric : std::uint8_t { kL2, kIp, kCosine };

const char *metricName(Metric m);

/** Squared L2 distance between a float query and a stored vector. */
inline double
l2Sq(const float *q, const VectorSet &vs, VectorId v)
{
    const unsigned d = vs.dims();
    const std::uint8_t *raw = vs.raw(v);
    double acc = 0.0;
    // Typed inner loops so the compiler can vectorize; vs.at() would
    // re-dispatch on the scalar type per element.
    switch (vs.type()) {
      case ScalarType::kUint8:
        for (unsigned i = 0; i < d; ++i) {
            const double diff =
                static_cast<double>(q[i]) - static_cast<double>(raw[i]);
            acc += diff * diff;
        }
        break;
      case ScalarType::kInt8: {
        const auto *p = reinterpret_cast<const std::int8_t *>(raw);
        for (unsigned i = 0; i < d; ++i) {
            const double diff =
                static_cast<double>(q[i]) - static_cast<double>(p[i]);
            acc += diff * diff;
        }
        break;
      }
      case ScalarType::kFp16: {
        std::uint16_t h;
        for (unsigned i = 0; i < d; ++i) {
            std::memcpy(&h, raw + i * 2, 2);
            const double diff = static_cast<double>(q[i]) -
                                static_cast<double>(halfToFloat(h));
            acc += diff * diff;
        }
        break;
      }
      case ScalarType::kFp32: {
        // Double-precision differences so the ET lower bounds (which
        // operate on doubles) are *provably* never above this value.
        float f;
        for (unsigned i = 0; i < d; ++i) {
            std::memcpy(&f, raw + i * 4, 4);
            const double diff =
                static_cast<double>(q[i]) - static_cast<double>(f);
            acc += diff * diff;
        }
        break;
      }
    }
    return acc;
}

/** Negated inner product (smaller = more similar). */
inline double
negIp(const float *q, const VectorSet &vs, VectorId v)
{
    const unsigned d = vs.dims();
    const std::uint8_t *raw = vs.raw(v);
    double acc = 0.0;
    switch (vs.type()) {
      case ScalarType::kUint8:
        for (unsigned i = 0; i < d; ++i)
            acc += static_cast<double>(q[i]) * static_cast<float>(raw[i]);
        break;
      case ScalarType::kInt8: {
        const auto *p = reinterpret_cast<const std::int8_t *>(raw);
        for (unsigned i = 0; i < d; ++i)
            acc += static_cast<double>(q[i]) * static_cast<float>(p[i]);
        break;
      }
      case ScalarType::kFp16: {
        std::uint16_t h;
        for (unsigned i = 0; i < d; ++i) {
            std::memcpy(&h, raw + i * 2, 2);
            acc += static_cast<double>(q[i]) *
                   static_cast<double>(halfToFloat(h));
        }
        break;
      }
      case ScalarType::kFp32: {
        float f;
        for (unsigned i = 0; i < d; ++i) {
            std::memcpy(&f, raw + i * 4, 4);
            acc += static_cast<double>(q[i]) * f;
        }
        break;
      }
    }
    return -acc;
}

/** Distance under @p m; kCosine assumes pre-normalized data. */
inline double
distance(Metric m, const float *q, const VectorSet &vs, VectorId v)
{
    switch (m) {
      case Metric::kL2:
        return l2Sq(q, vs, v);
      case Metric::kIp:
      case Metric::kCosine:
        return negIp(q, vs, v);
    }
    return 0.0;
}

/** Squared L2 between two float buffers. */
inline double
l2Sq(const float *a, const float *b, unsigned d)
{
    double acc = 0.0;
    for (unsigned i = 0; i < d; ++i) {
        const double diff = static_cast<double>(a[i]) - b[i];
        acc += diff * diff;
    }
    return acc;
}

inline double
negIp(const float *a, const float *b, unsigned d)
{
    double acc = 0.0;
    for (unsigned i = 0; i < d; ++i)
        acc += static_cast<double>(a[i]) * b[i];
    return -acc;
}

inline double
distance(Metric m, const float *a, const float *b, unsigned d)
{
    return m == Metric::kL2 ? l2Sq(a, b, d) : negIp(a, b, d);
}

/** Scale @p v (length d) to unit L2 norm in place; zero stays zero. */
inline void
normalizeL2(float *v, unsigned d)
{
    double n = 0.0;
    for (unsigned i = 0; i < d; ++i)
        n += static_cast<double>(v[i]) * v[i];
    if (n <= 0.0)
        return;
    const float inv = static_cast<float>(1.0 / std::sqrt(n));
    for (unsigned i = 0; i < d; ++i)
        v[i] *= inv;
}

} // namespace ansmet::anns

#endif // ANSMET_ANNS_DISTANCE_H
