/**
 * @file
 * AVX2 kernel tier. Compiled with -mavx2 -mf16c -ffp-contract=off;
 * when the toolchain cannot target AVX2 (non-x86), the tier degrades
 * to a null table and dispatch falls back to scalar.
 *
 * Lane mapping (see kernels.h): four 4x-double accumulators a0..a3
 * hold canonical lanes 0-3 / 4-7 / 8-11 / 12-15; the tail and the
 * reduction reuse the scalar helpers on the stored lane array, so
 * results are bitwise identical to the scalar reference. No FMA: the
 * contract requires a rounded multiply followed by a rounded add.
 */

#include "anns/kernels.h"

#if defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

#include <cmath>

#include "anns/kernels_impl.h"

namespace ansmet::anns::kernel_detail {

namespace {

/** 16 query floats starting at @p q, widened to 4x4 doubles. */
struct Quad
{
    __m256d v0, v1, v2, v3;
};

inline Quad
loadQuery16(const float *q)
{
    return {_mm256_cvtps_pd(_mm_loadu_ps(q)),
            _mm256_cvtps_pd(_mm_loadu_ps(q + 4)),
            _mm256_cvtps_pd(_mm_loadu_ps(q + 8)),
            _mm256_cvtps_pd(_mm_loadu_ps(q + 12))};
}

template <ScalarType T>
inline Quad
loadElems16(const std::uint8_t *raw, unsigned i)
{
    if constexpr (T == ScalarType::kUint8 || T == ScalarType::kInt8) {
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(raw + i));
        const __m256i lo8 = T == ScalarType::kUint8
                                ? _mm256_cvtepu8_epi32(b)
                                : _mm256_cvtepi8_epi32(b);
        const __m128i bhi = _mm_srli_si128(b, 8);
        const __m256i hi8 = T == ScalarType::kUint8
                                ? _mm256_cvtepu8_epi32(bhi)
                                : _mm256_cvtepi8_epi32(bhi);
        return {_mm256_cvtepi32_pd(_mm256_castsi256_si128(lo8)),
                _mm256_cvtepi32_pd(_mm256_extracti128_si256(lo8, 1)),
                _mm256_cvtepi32_pd(_mm256_castsi256_si128(hi8)),
                _mm256_cvtepi32_pd(_mm256_extracti128_si256(hi8, 1))};
    } else if constexpr (T == ScalarType::kFp16) {
        const auto *p = reinterpret_cast<const __m128i *>(raw + i * 2u);
        const __m256 f0 = _mm256_cvtph_ps(_mm_loadu_si128(p));
        const __m256 f1 = _mm256_cvtph_ps(_mm_loadu_si128(p + 1));
        return {_mm256_cvtps_pd(_mm256_castps256_ps128(f0)),
                _mm256_cvtps_pd(_mm256_extractf128_ps(f0, 1)),
                _mm256_cvtps_pd(_mm256_castps256_ps128(f1)),
                _mm256_cvtps_pd(_mm256_extractf128_ps(f1, 1))};
    } else {
        const float *p = reinterpret_cast<const float *>(raw) + i;
        return loadQuery16(p);
    }
}

/**
 * Store the four accumulators as the canonical lane array, fold in the
 * scalar tail, and reduce. Shared by every AVX2 kernel so the
 * association matches the scalar reference exactly.
 */
struct Acc
{
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();

    void
    store(double *lanes) const
    {
        _mm256_storeu_pd(lanes + 0, a0);
        _mm256_storeu_pd(lanes + 4, a1);
        _mm256_storeu_pd(lanes + 8, a2);
        _mm256_storeu_pd(lanes + 12, a3);
    }
};

template <ScalarType T>
double
l2Avx2(const float *q, const std::uint8_t *raw, unsigned d)
{
    Acc acc;
    const unsigned main = d & ~(kLanes - 1);
    for (unsigned i = 0; i < main; i += kLanes) {
        const Quad qv = loadQuery16(q + i);
        const Quad xv = loadElems16<T>(raw, i);
        const __m256d d0 = _mm256_sub_pd(qv.v0, xv.v0);
        const __m256d d1 = _mm256_sub_pd(qv.v1, xv.v1);
        const __m256d d2 = _mm256_sub_pd(qv.v2, xv.v2);
        const __m256d d3 = _mm256_sub_pd(qv.v3, xv.v3);
        acc.a0 = _mm256_add_pd(acc.a0, _mm256_mul_pd(d0, d0));
        acc.a1 = _mm256_add_pd(acc.a1, _mm256_mul_pd(d1, d1));
        acc.a2 = _mm256_add_pd(acc.a2, _mm256_mul_pd(d2, d2));
        acc.a3 = _mm256_add_pd(acc.a3, _mm256_mul_pd(d3, d3));
    }
    double lanes[kLanes];
    acc.store(lanes);
    l2Tail<T>(q, raw, main, d, lanes);
    return reduceLanes(lanes);
}

template <ScalarType T>
double
dotAvx2(const float *q, const std::uint8_t *raw, unsigned d)
{
    Acc acc;
    const unsigned main = d & ~(kLanes - 1);
    for (unsigned i = 0; i < main; i += kLanes) {
        const Quad qv = loadQuery16(q + i);
        const Quad xv = loadElems16<T>(raw, i);
        acc.a0 = _mm256_add_pd(acc.a0, _mm256_mul_pd(qv.v0, xv.v0));
        acc.a1 = _mm256_add_pd(acc.a1, _mm256_mul_pd(qv.v1, xv.v1));
        acc.a2 = _mm256_add_pd(acc.a2, _mm256_mul_pd(qv.v2, xv.v2));
        acc.a3 = _mm256_add_pd(acc.a3, _mm256_mul_pd(qv.v3, xv.v3));
    }
    double lanes[kLanes];
    acc.store(lanes);
    dotTail<T>(q, raw, main, d, lanes);
    return reduceLanes(lanes);
}

void
normalizeAvx2(float *v, unsigned d)
{
    const double n =
        dotAvx2<ScalarType::kFp32>(v, reinterpret_cast<std::uint8_t *>(v), d);
    if (n <= 0.0)
        return;
    const float inv = static_cast<float>(1.0 / std::sqrt(n));
    const __m256 inv8 = _mm256_set1_ps(inv);
    unsigned i = 0;
    for (; i + 8 <= d; i += 8)
        _mm256_storeu_ps(v + i, _mm256_mul_ps(_mm256_loadu_ps(v + i), inv8));
    for (; i < d; ++i)
        v[i] *= inv;
}

/** One 4-wide bound-update step over elements [i, i+4). */
template <bool IsL2>
inline __m256d
boundStep4(const float *q, double *lo, double *hi, double *contrib,
           const double *nlo, const double *nhi, unsigned i)
{
    const __m256d l =
        _mm256_max_pd(_mm256_loadu_pd(lo + i), _mm256_loadu_pd(nlo + i));
    const __m256d h =
        _mm256_min_pd(_mm256_loadu_pd(hi + i), _mm256_loadu_pd(nhi + i));
    _mm256_storeu_pd(lo + i, l);
    _mm256_storeu_pd(hi + i, h);
    const __m256d qd = _mm256_cvtps_pd(_mm_loadu_ps(q + i));
    __m256d c;
    if constexpr (IsL2) {
        const __m256d below = _mm256_cmp_pd(qd, l, _CMP_LT_OQ);
        const __m256d above = _mm256_cmp_pd(qd, h, _CMP_GT_OQ);
        __m256d gap = _mm256_blendv_pd(_mm256_setzero_pd(),
                                       _mm256_sub_pd(l, qd), below);
        gap = _mm256_blendv_pd(gap, _mm256_sub_pd(qd, h), above);
        c = _mm256_mul_pd(gap, gap);
    } else {
        const __m256d nonneg =
            _mm256_cmp_pd(qd, _mm256_setzero_pd(), _CMP_GE_OQ);
        c = _mm256_mul_pd(_mm256_blendv_pd(l, h, nonneg), qd);
    }
    const __m256d delta = _mm256_sub_pd(c, _mm256_loadu_pd(contrib + i));
    _mm256_storeu_pd(contrib + i, c);
    return delta;
}

template <bool IsL2>
double
boundAvx2(const float *q, double *lo, double *hi, double *contrib,
          const double *nlo, const double *nhi, unsigned n)
{
    Acc acc;
    const unsigned main = n & ~(kLanes - 1);
    for (unsigned i = 0; i < main; i += kLanes) {
        acc.a0 = _mm256_add_pd(
            acc.a0, boundStep4<IsL2>(q, lo, hi, contrib, nlo, nhi, i));
        acc.a1 = _mm256_add_pd(
            acc.a1, boundStep4<IsL2>(q, lo, hi, contrib, nlo, nhi, i + 4));
        acc.a2 = _mm256_add_pd(
            acc.a2, boundStep4<IsL2>(q, lo, hi, contrib, nlo, nhi, i + 8));
        acc.a3 = _mm256_add_pd(
            acc.a3, boundStep4<IsL2>(q, lo, hi, contrib, nlo, nhi, i + 12));
    }
    double lanes[kLanes];
    acc.store(lanes);
    boundTail<IsL2>(q, lo, hi, contrib, nlo, nhi, main, n, lanes);
    return reduceLanes(lanes);
}

constexpr KernelOps
makeAvx2Ops()
{
    KernelOps ops;
    ops.level = SimdLevel::kAvx2;
    ops.l2[typeIndex(ScalarType::kUint8)] = l2Avx2<ScalarType::kUint8>;
    ops.l2[typeIndex(ScalarType::kInt8)] = l2Avx2<ScalarType::kInt8>;
    ops.l2[typeIndex(ScalarType::kFp16)] = l2Avx2<ScalarType::kFp16>;
    ops.l2[typeIndex(ScalarType::kFp32)] = l2Avx2<ScalarType::kFp32>;
    ops.dot[typeIndex(ScalarType::kUint8)] = dotAvx2<ScalarType::kUint8>;
    ops.dot[typeIndex(ScalarType::kInt8)] = dotAvx2<ScalarType::kInt8>;
    ops.dot[typeIndex(ScalarType::kFp16)] = dotAvx2<ScalarType::kFp16>;
    ops.dot[typeIndex(ScalarType::kFp32)] = dotAvx2<ScalarType::kFp32>;
    ops.l2Batch[typeIndex(ScalarType::kUint8)] =
        rowBatch<l2Avx2<ScalarType::kUint8>>;
    ops.l2Batch[typeIndex(ScalarType::kInt8)] =
        rowBatch<l2Avx2<ScalarType::kInt8>>;
    ops.l2Batch[typeIndex(ScalarType::kFp16)] =
        rowBatch<l2Avx2<ScalarType::kFp16>>;
    ops.l2Batch[typeIndex(ScalarType::kFp32)] =
        rowBatch<l2Avx2<ScalarType::kFp32>>;
    ops.dotBatch[typeIndex(ScalarType::kUint8)] =
        rowBatch<dotAvx2<ScalarType::kUint8>>;
    ops.dotBatch[typeIndex(ScalarType::kInt8)] =
        rowBatch<dotAvx2<ScalarType::kInt8>>;
    ops.dotBatch[typeIndex(ScalarType::kFp16)] =
        rowBatch<dotAvx2<ScalarType::kFp16>>;
    ops.dotBatch[typeIndex(ScalarType::kFp32)] =
        rowBatch<dotAvx2<ScalarType::kFp32>>;
    ops.normalize = normalizeAvx2;
    ops.boundL2 = boundAvx2<true>;
    ops.boundIp = boundAvx2<false>;
    return ops;
}

const KernelOps g_avx2_ops = makeAvx2Ops();

} // namespace

const KernelOps *
avx2Kernels()
{
    return &g_avx2_ops;
}

} // namespace ansmet::anns::kernel_detail

#else // !(__AVX2__ && __F16C__)

namespace ansmet::anns::kernel_detail {

const KernelOps *
avx2Kernels()
{
    return nullptr;
}

} // namespace ansmet::anns::kernel_detail

#endif
