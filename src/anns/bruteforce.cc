#include "anns/bruteforce.h"

#include <algorithm>

#include "common/logging.h"
#include "common/runtime/runtime.h"

namespace ansmet::anns {

std::vector<Neighbor>
bruteForceKnn(Metric m, const float *query, const VectorSet &vs,
              std::size_t k)
{
    // Chunked through the batched distance kernel: one dispatch per
    // block instead of one per vector, with next-row prefetch inside
    // the kernel. Offers happen per block, so results match the
    // one-at-a-time loop exactly.
    constexpr std::size_t kChunk = 256;
    VectorId ids[kChunk];
    double dist[kChunk];

    ResultSet rs(k);
    const std::size_t n = vs.size();
    for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t m_block = std::min(kChunk, n - base);
        for (std::size_t i = 0; i < m_block; ++i)
            ids[i] = static_cast<VectorId>(base + i);
        distanceBatch(m, query, vs, ids, m_block, dist);
        for (std::size_t i = 0; i < m_block; ++i)
            rs.offer({dist[i], ids[i]});
    }
    return rs.sorted();
}

std::vector<std::vector<Neighbor>>
bruteForceAll(Metric m, const std::vector<std::vector<float>> &queries,
              const VectorSet &vs, std::size_t k)
{
    // Embarrassingly parallel over queries; each slot is written by
    // exactly one iteration, so the result matches a serial run.
    std::vector<std::vector<Neighbor>> out(queries.size());
    runtime::parallelFor(0, queries.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q)
            out[q] = bruteForceKnn(m, queries[q].data(), vs, k);
    });
    return out;
}

double
recallAtK(const std::vector<VectorId> &result,
          const std::vector<Neighbor> &ground_truth, std::size_t k)
{
    ANSMET_ASSERT(!ground_truth.empty());
    const std::size_t kk = std::min(k, ground_truth.size());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < kk; ++i) {
        const VectorId want = ground_truth[i].id;
        for (std::size_t j = 0; j < result.size() && j < k; ++j) {
            if (result[j] == want) {
                ++hits;
                break;
            }
        }
    }
    return static_cast<double>(hits) / static_cast<double>(kk);
}

double
meanRecall(const std::vector<std::vector<VectorId>> &results,
           const std::vector<std::vector<Neighbor>> &gt, std::size_t k)
{
    ANSMET_ASSERT(results.size() == gt.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i)
        acc += recallAtK(results[i], gt[i], k);
    return results.empty() ? 0.0 : acc / static_cast<double>(results.size());
}

} // namespace ansmet::anns
