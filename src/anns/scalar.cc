#include "anns/scalar.h"

#include "anns/distance.h"

namespace ansmet::anns {

const char *
metricName(Metric m)
{
    switch (m) {
      case Metric::kL2:     return "L2";
      case Metric::kIp:     return "IP";
      case Metric::kCosine: return "Cosine";
    }
    return "?";
}

const char *
scalarName(ScalarType t)
{
    switch (t) {
      case ScalarType::kUint8: return "UINT8";
      case ScalarType::kInt8:  return "INT8";
      case ScalarType::kFp16:  return "FP16";
      case ScalarType::kFp32:  return "FP32";
    }
    return "?";
}

std::uint16_t
floatToHalf(float f)
{
    const std::uint32_t x = floatBits(f);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xff) - 127;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp == 128) {
        // Inf / NaN
        return static_cast<std::uint16_t>(sign | 0x7c00u |
                                          (mant ? 0x200u : 0u));
    }
    if (exp > 15) {
        // Overflow -> inf
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (exp >= -14) {
        // Normal. Round to nearest even on the 13 dropped bits.
        std::uint32_t half =
            sign | (static_cast<std::uint32_t>(exp + 15) << 10) |
            (mant >> 13);
        const std::uint32_t rem = mant & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (half & 1)))
            ++half;
        return static_cast<std::uint16_t>(half);
    }
    if (exp >= -24) {
        // Subnormal.
        mant |= 0x800000u;
        const unsigned shift = static_cast<unsigned>(-exp - 14 + 13);
        std::uint32_t half = sign | (mant >> shift);
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            ++half;
        return static_cast<std::uint16_t>(half);
    }
    // Underflow -> signed zero.
    return static_cast<std::uint16_t>(sign);
}

} // namespace ansmet::anns
