/**
 * @file
 * AVX-512 kernel tier (F/BW/DQ/VL + F16C). Two 8x-double accumulators
 * hold canonical lanes 0-7 / 8-15; tails and the reduction reuse the
 * scalar helpers on the stored lane array, so results stay bitwise
 * identical to the scalar reference (see kernels.h). No FMA.
 */

#include "anns/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512DQ__) && defined(__AVX512VL__) && defined(__F16C__)

#include <immintrin.h>

#include <cmath>

#include "anns/kernels_impl.h"

namespace ansmet::anns::kernel_detail {

namespace {

/** 16 values widened to 2x8 doubles (canonical lanes 0-7 / 8-15). */
struct Pair512
{
    __m512d v0, v1;
};

inline Pair512
loadQuery16z(const float *q)
{
    return {_mm512_cvtps_pd(_mm256_loadu_ps(q)),
            _mm512_cvtps_pd(_mm256_loadu_ps(q + 8))};
}

template <ScalarType T>
inline Pair512
loadElems16z(const std::uint8_t *raw, unsigned i)
{
    if constexpr (T == ScalarType::kUint8 || T == ScalarType::kInt8) {
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(raw + i));
        const __m512i w = T == ScalarType::kUint8
                              ? _mm512_cvtepu8_epi32(b)
                              : _mm512_cvtepi8_epi32(b);
        return {_mm512_cvtepi32_pd(_mm512_castsi512_si256(w)),
                _mm512_cvtepi32_pd(_mm512_extracti64x4_epi64(w, 1))};
    } else if constexpr (T == ScalarType::kFp16) {
        const __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(raw + i * 2u));
        const __m512 f = _mm512_cvtph_ps(h);
        return {_mm512_cvtps_pd(_mm512_castps512_ps256(f)),
                _mm512_cvtps_pd(_mm512_extractf32x8_ps(f, 1))};
    } else {
        return loadQuery16z(reinterpret_cast<const float *>(raw) + i);
    }
}

struct Acc512
{
    __m512d a0 = _mm512_setzero_pd();
    __m512d a1 = _mm512_setzero_pd();

    void
    store(double *lanes) const
    {
        _mm512_storeu_pd(lanes + 0, a0);
        _mm512_storeu_pd(lanes + 8, a1);
    }
};

template <ScalarType T>
double
l2Avx512(const float *q, const std::uint8_t *raw, unsigned d)
{
    Acc512 acc;
    const unsigned main = d & ~(kLanes - 1);
    for (unsigned i = 0; i < main; i += kLanes) {
        const Pair512 qv = loadQuery16z(q + i);
        const Pair512 xv = loadElems16z<T>(raw, i);
        const __m512d d0 = _mm512_sub_pd(qv.v0, xv.v0);
        const __m512d d1 = _mm512_sub_pd(qv.v1, xv.v1);
        acc.a0 = _mm512_add_pd(acc.a0, _mm512_mul_pd(d0, d0));
        acc.a1 = _mm512_add_pd(acc.a1, _mm512_mul_pd(d1, d1));
    }
    double lanes[kLanes];
    acc.store(lanes);
    l2Tail<T>(q, raw, main, d, lanes);
    return reduceLanes(lanes);
}

template <ScalarType T>
double
dotAvx512(const float *q, const std::uint8_t *raw, unsigned d)
{
    Acc512 acc;
    const unsigned main = d & ~(kLanes - 1);
    for (unsigned i = 0; i < main; i += kLanes) {
        const Pair512 qv = loadQuery16z(q + i);
        const Pair512 xv = loadElems16z<T>(raw, i);
        acc.a0 = _mm512_add_pd(acc.a0, _mm512_mul_pd(qv.v0, xv.v0));
        acc.a1 = _mm512_add_pd(acc.a1, _mm512_mul_pd(qv.v1, xv.v1));
    }
    double lanes[kLanes];
    acc.store(lanes);
    dotTail<T>(q, raw, main, d, lanes);
    return reduceLanes(lanes);
}

void
normalizeAvx512(float *v, unsigned d)
{
    const double n = dotAvx512<ScalarType::kFp32>(
        v, reinterpret_cast<std::uint8_t *>(v), d);
    if (n <= 0.0)
        return;
    const float inv = static_cast<float>(1.0 / std::sqrt(n));
    const __m512 invw = _mm512_set1_ps(inv);
    unsigned i = 0;
    for (; i + 16 <= d; i += 16) {
        _mm512_storeu_ps(v + i,
                         _mm512_mul_ps(_mm512_loadu_ps(v + i), invw));
    }
    for (; i < d; ++i)
        v[i] *= inv;
}

/** One 8-wide bound-update step over elements [i, i+8). */
template <bool IsL2>
inline __m512d
boundStep8(const float *q, double *lo, double *hi, double *contrib,
           const double *nlo, const double *nhi, unsigned i)
{
    const __m512d l =
        _mm512_max_pd(_mm512_loadu_pd(lo + i), _mm512_loadu_pd(nlo + i));
    const __m512d h =
        _mm512_min_pd(_mm512_loadu_pd(hi + i), _mm512_loadu_pd(nhi + i));
    _mm512_storeu_pd(lo + i, l);
    _mm512_storeu_pd(hi + i, h);
    const __m512d qd = _mm512_cvtps_pd(_mm256_loadu_ps(q + i));
    __m512d c;
    if constexpr (IsL2) {
        const __mmask8 below = _mm512_cmp_pd_mask(qd, l, _CMP_LT_OQ);
        const __mmask8 above = _mm512_cmp_pd_mask(qd, h, _CMP_GT_OQ);
        __m512d gap = _mm512_maskz_sub_pd(below, l, qd);
        gap = _mm512_mask_sub_pd(gap, above, qd, h);
        c = _mm512_mul_pd(gap, gap);
    } else {
        const __mmask8 nonneg =
            _mm512_cmp_pd_mask(qd, _mm512_setzero_pd(), _CMP_GE_OQ);
        c = _mm512_mul_pd(_mm512_mask_blend_pd(nonneg, l, h), qd);
    }
    const __m512d delta = _mm512_sub_pd(c, _mm512_loadu_pd(contrib + i));
    _mm512_storeu_pd(contrib + i, c);
    return delta;
}

template <bool IsL2>
double
boundAvx512(const float *q, double *lo, double *hi, double *contrib,
            const double *nlo, const double *nhi, unsigned n)
{
    Acc512 acc;
    const unsigned main = n & ~(kLanes - 1);
    for (unsigned i = 0; i < main; i += kLanes) {
        acc.a0 = _mm512_add_pd(
            acc.a0, boundStep8<IsL2>(q, lo, hi, contrib, nlo, nhi, i));
        acc.a1 = _mm512_add_pd(
            acc.a1, boundStep8<IsL2>(q, lo, hi, contrib, nlo, nhi, i + 8));
    }
    double lanes[kLanes];
    acc.store(lanes);
    boundTail<IsL2>(q, lo, hi, contrib, nlo, nhi, main, n, lanes);
    return reduceLanes(lanes);
}

constexpr KernelOps
makeAvx512Ops()
{
    KernelOps ops;
    ops.level = SimdLevel::kAvx512;
    ops.l2[typeIndex(ScalarType::kUint8)] = l2Avx512<ScalarType::kUint8>;
    ops.l2[typeIndex(ScalarType::kInt8)] = l2Avx512<ScalarType::kInt8>;
    ops.l2[typeIndex(ScalarType::kFp16)] = l2Avx512<ScalarType::kFp16>;
    ops.l2[typeIndex(ScalarType::kFp32)] = l2Avx512<ScalarType::kFp32>;
    ops.dot[typeIndex(ScalarType::kUint8)] = dotAvx512<ScalarType::kUint8>;
    ops.dot[typeIndex(ScalarType::kInt8)] = dotAvx512<ScalarType::kInt8>;
    ops.dot[typeIndex(ScalarType::kFp16)] = dotAvx512<ScalarType::kFp16>;
    ops.dot[typeIndex(ScalarType::kFp32)] = dotAvx512<ScalarType::kFp32>;
    ops.l2Batch[typeIndex(ScalarType::kUint8)] =
        rowBatch<l2Avx512<ScalarType::kUint8>>;
    ops.l2Batch[typeIndex(ScalarType::kInt8)] =
        rowBatch<l2Avx512<ScalarType::kInt8>>;
    ops.l2Batch[typeIndex(ScalarType::kFp16)] =
        rowBatch<l2Avx512<ScalarType::kFp16>>;
    ops.l2Batch[typeIndex(ScalarType::kFp32)] =
        rowBatch<l2Avx512<ScalarType::kFp32>>;
    ops.dotBatch[typeIndex(ScalarType::kUint8)] =
        rowBatch<dotAvx512<ScalarType::kUint8>>;
    ops.dotBatch[typeIndex(ScalarType::kInt8)] =
        rowBatch<dotAvx512<ScalarType::kInt8>>;
    ops.dotBatch[typeIndex(ScalarType::kFp16)] =
        rowBatch<dotAvx512<ScalarType::kFp16>>;
    ops.dotBatch[typeIndex(ScalarType::kFp32)] =
        rowBatch<dotAvx512<ScalarType::kFp32>>;
    ops.normalize = normalizeAvx512;
    ops.boundL2 = boundAvx512<true>;
    ops.boundIp = boundAvx512<false>;
    return ops;
}

const KernelOps g_avx512_ops = makeAvx512Ops();

} // namespace

const KernelOps *
avx512Kernels()
{
    return &g_avx512_ops;
}

} // namespace ansmet::anns::kernel_detail

#else // AVX-512 feature set unavailable at compile time

namespace ansmet::anns::kernel_detail {

const KernelOps *
avx512Kernels()
{
    return nullptr;
}

} // namespace ansmet::anns::kernel_detail

#endif
