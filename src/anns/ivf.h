/**
 * @file
 * Inverted-file (IVF) cluster index, the paper's representative
 * cluster-based index (Figure 1, Section 2.1).
 *
 * Build: k-means (Lloyd) over the base vectors. Search: rank all
 * centroids, scan the nprobe closest clusters, keeping a bounded
 * result heap. All comparisons are reported through SearchObserver.
 */

#ifndef ANSMET_ANNS_IVF_H
#define ANSMET_ANNS_IVF_H

#include <cstdint>
#include <vector>

#include "anns/distance.h"
#include "anns/heap.h"
#include "anns/observer.h"
#include "anns/vector.h"
#include "common/prng.h"

namespace ansmet::anns {

/** IVF construction parameters. */
struct IvfParams
{
    unsigned numClusters = 0;  //!< 0 = sqrt(N) rounded up
    unsigned kmeansIters = 10;
    std::uint64_t seed = 42;
};

/** Cluster index over an externally owned VectorSet. */
class IvfIndex
{
  public:
    IvfIndex(const VectorSet &vs, Metric m, IvfParams params = {});

    /**
     * Approximate kNN search scanning the @p nprobe nearest clusters.
     * @return up to k ids ascending by distance
     */
    std::vector<VectorId> search(const float *query, std::size_t k,
                                 unsigned nprobe,
                                 SearchObserver &obs = nullObserver()) const;

    unsigned numClusters() const
    {
        return static_cast<unsigned>(lists_.size());
    }

    /** Centroid @p c as floats. */
    const std::vector<float> &centroid(unsigned c) const
    {
        return centroids_[c];
    }

    /** Member vector ids of cluster @p c. */
    const std::vector<VectorId> &list(unsigned c) const { return lists_[c]; }

    Metric metric() const { return metric_; }
    const VectorSet &vectors() const { return vs_; }

  private:
    void kmeans(const IvfParams &params);

    const VectorSet &vs_;
    Metric metric_;
    std::vector<std::vector<float>> centroids_;
    std::vector<std::vector<VectorId>> lists_;
};

} // namespace ansmet::anns

#endif // ANSMET_ANNS_IVF_H
