/**
 * @file
 * Product quantization (Jegou et al., and Sections 2.1 / 4.3 of the
 * ANSMET paper).
 *
 * The D-dimensional space is split into m subspaces; each sub-vector
 * is replaced by the id of its nearest codeword from a per-subspace
 * codebook trained with k-means. At query time the distance from the
 * query's sub-vector to every codeword of every subspace is memoized
 * once (the distance table); a database vector's approximate distance
 * is then m table lookups plus an aggregation.
 *
 * Section 4.3: partial *bits* of codeword ids are useless, but partial
 * *elements* still admit early termination — with only a subset of the
 * subspaces' codes fetched, summing the fetched codes' memoized
 * distances and, for each unfetched subspace, the minimum entry of its
 * table row yields a valid lower bound of the PQ distance.
 */

#ifndef ANSMET_ANNS_PQ_H
#define ANSMET_ANNS_PQ_H

#include <cstdint>
#include <vector>

#include "anns/distance.h"
#include "anns/heap.h"
#include "anns/vector.h"
#include "common/prng.h"

namespace ansmet::anns {

/** PQ training parameters. */
struct PqParams
{
    unsigned subspaces = 8;     //!< m; must divide dims
    unsigned codebookSize = 16; //!< codewords per subspace (fits 4 bits)
    unsigned kmeansIters = 10;
    std::uint64_t seed = 42;
};

/** A trained product quantizer plus the encoded database. */
class PqIndex
{
  public:
    /** Train codebooks on @p vs and encode every vector. */
    PqIndex(const VectorSet &vs, Metric metric, PqParams params = {});

    unsigned subspaces() const { return params_.subspaces; }
    unsigned codebookSize() const { return params_.codebookSize; }
    unsigned subDims() const { return sub_dims_; }

    /** Code of vector @p v in subspace @p s. */
    std::uint8_t
    code(VectorId v, unsigned s) const
    {
        return codes_[static_cast<std::size_t>(v) * params_.subspaces + s];
    }

    /** Codeword @p c of subspace @p s (subDims() floats). */
    const float *
    codeword(unsigned s, unsigned c) const
    {
        return codebooks_.data() +
               (static_cast<std::size_t>(s) * params_.codebookSize + c) *
                   sub_dims_;
    }

    /**
     * The memoized query-to-codeword distance table:
     * table[s * codebookSize + c] = distance contribution of subspace
     * s if the vector's code there is c.
     */
    std::vector<double> distanceTable(const float *query) const;

    /** PQ-approximate distance via the memoized table. */
    double
    tableDistance(const std::vector<double> &table, VectorId v) const
    {
        double acc = 0.0;
        for (unsigned s = 0; s < params_.subspaces; ++s)
            acc += table[s * params_.codebookSize + code(v, s)];
        return acc;
    }

    /**
     * Lower bound on the PQ distance when only subspaces
     * [0, fetched) of @p v 's code have been read: fetched codes use
     * their exact table entry, the rest use their row minimum
     * (Section 4.3's partial-element bound).
     */
    double partialLowerBound(const std::vector<double> &table,
                             const std::vector<double> &row_minima,
                             VectorId v, unsigned fetched) const;

    /** Per-subspace row minima of @p table (precompute once). */
    std::vector<double>
    rowMinima(const std::vector<double> &table) const;

    /** Exact PQ kNN over the encoded database. */
    std::vector<Neighbor> search(const float *query, std::size_t k) const;

    /**
     * PQ kNN with partial-element early termination: identical
     * results, fewer code reads. @p reads_out (optional) accumulates
     * the number of per-subspace code reads performed.
     */
    std::vector<Neighbor> searchEt(const float *query, std::size_t k,
                                   std::uint64_t *reads_out = nullptr) const;

    std::size_t size() const { return n_; }
    Metric metric() const { return metric_; }

  private:
    void train(const VectorSet &vs);
    void encode(const VectorSet &vs);

    PqParams params_;
    Metric metric_;
    unsigned dims_;
    unsigned sub_dims_;
    std::size_t n_;
    std::vector<float> codebooks_;
    std::vector<std::uint8_t> codes_;
};

} // namespace ansmet::anns

#endif // ANSMET_ANNS_PQ_H
