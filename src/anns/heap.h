/**
 * @file
 * Heaps used by ANNS search: a bounded max-heap result set (keeps the
 * k' best candidates and exposes the current distance threshold) and
 * an unbounded min-heap search set, matching the HNSW description in
 * Section 2.1 of the paper.
 */

#ifndef ANSMET_ANNS_HEAP_H
#define ANSMET_ANNS_HEAP_H

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace ansmet::anns {

/** (distance, id) candidate pair. */
struct Neighbor
{
    double dist;
    VectorId id;

    bool operator<(const Neighbor &o) const { return dist < o.dist; }
    bool operator>(const Neighbor &o) const { return dist > o.dist; }
};

/**
 * Bounded max-heap keeping the @p capacity nearest candidates seen so
 * far. worst() is the current early-termination threshold.
 */
class ResultSet
{
  public:
    explicit ResultSet(std::size_t capacity) : capacity_(capacity)
    {
        ANSMET_CHECK(capacity > 0, "result set needs capacity >= 1");
        heap_.reserve(capacity);
    }

    /** The distance a new candidate must beat; +inf until full. */
    double
    worst() const
    {
        return full() ? heap_.front().dist
                      : std::numeric_limits<double>::infinity();
    }

    bool full() const { return heap_.size() >= capacity_; }
    std::size_t size() const { return heap_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Offer a candidate.
     * @return true if it was kept (better than worst, or not yet full).
     */
    bool
    offer(Neighbor n)
    {
        if (!full()) {
            heap_.push_back(n);
            std::push_heap(heap_.begin(), heap_.end());
            ANSMET_DCHECK(std::is_heap(heap_.begin(), heap_.end()),
                          "result set lost its heap ordering");
            return true;
        }
        if (n.dist >= heap_.front().dist)
            return false;
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.back() = n;
        std::push_heap(heap_.begin(), heap_.end());
        ANSMET_DCHECK(heap_.size() == capacity_,
                      "bounded result set changed size on replacement");
        ANSMET_DCHECK(std::is_heap(heap_.begin(), heap_.end()),
                      "result set lost its heap ordering");
        return true;
    }

    /** Contents sorted ascending by distance. */
    std::vector<Neighbor>
    sorted() const
    {
        std::vector<Neighbor> out(heap_);
        std::sort(out.begin(), out.end());
        return out;
    }

    /** The @p k nearest ids, ascending by distance. */
    std::vector<VectorId>
    topIds(std::size_t k) const
    {
        auto s = sorted();
        if (s.size() > k)
            s.resize(k);
        std::vector<VectorId> ids;
        ids.reserve(s.size());
        for (const auto &n : s)
            ids.push_back(n.id);
        return ids;
    }

  private:
    std::size_t capacity_;
    std::vector<Neighbor> heap_; // max-heap by dist
};

/** Unbounded min-heap of candidates to expand. */
class SearchSet
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    void
    push(Neighbor n)
    {
        heap_.push_back(n);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
        ANSMET_DCHECK(
            std::is_heap(heap_.begin(), heap_.end(), std::greater<>()),
            "search set lost its heap ordering");
    }

    Neighbor
    pop()
    {
        ANSMET_CHECK(!heap_.empty(), "pop from an empty search set");
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        Neighbor n = heap_.back();
        heap_.pop_back();
        return n;
    }

    const Neighbor &
    top() const
    {
        ANSMET_DCHECK(!heap_.empty(), "top of an empty search set");
        return heap_.front();
    }

  private:
    std::vector<Neighbor> heap_; // min-heap by dist
};

} // namespace ansmet::anns

#endif // ANSMET_ANNS_HEAP_H
