#include "anns/hnsw.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/logging.h"
#include "common/runtime/runtime.h"
#include "obs/metrics.h"

namespace ansmet::anns {

namespace {

struct HnswMetrics
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter hops = reg.counter("hnsw.hops");
    obs::Counter distanceComps = reg.counter("hnsw.distance_comps");
};

HnswMetrics &
hnswMetrics()
{
    static HnswMetrics m;
    return m;
}

} // namespace

SearchObserver &
nullObserver()
{
    static SearchObserver obs;
    return obs;
}

// ---------------------------------------------------------------------
// Visited-set scratch pool
// ---------------------------------------------------------------------

class HnswIndex::ScratchPool
{
  public:
    explicit ScratchPool(std::size_t n) : n_(n) {}

    VisitScratch *
    acquire()
    {
        {
            MutexLock lk(mu_);
            if (!free_.empty()) {
                VisitScratch *s = free_.back();
                free_.pop_back();
                return s;
            }
        }
        auto s = std::make_unique<VisitScratch>();
        s->tag.assign(n_, 0);
        VisitScratch *raw = s.get();
        MutexLock lk(mu_);
        all_.push_back(std::move(s));
        return raw;
    }

    void
    release(VisitScratch *s)
    {
        MutexLock lk(mu_);
        free_.push_back(s);
    }

  private:
    std::size_t n_; //!< immutable after construction
    Mutex mu_;
    std::vector<std::unique_ptr<VisitScratch>> all_ ANSMET_GUARDED_BY(mu_);
    std::vector<VisitScratch *> free_ ANSMET_GUARDED_BY(mu_);
};

class HnswIndex::ScratchLease
{
  public:
    explicit ScratchLease(ScratchPool &pool)
        : pool_(pool), scratch_(pool.acquire())
    {
    }
    ~ScratchLease() { pool_.release(scratch_); }
    ScratchLease(const ScratchLease &) = delete;
    ScratchLease &operator=(const ScratchLease &) = delete;

    VisitScratch &operator*() const { return *scratch_; }

  private:
    ScratchPool &pool_;
    VisitScratch *scratch_;
};

// ---------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------

HnswIndex::HnswIndex(const VectorSet &vs, Metric m, HnswParams params)
    : vs_(vs), metric_(m), params_(params),
      level_mult_(1.0 / std::log(static_cast<double>(params.m))),
      nodes_(vs.size()),
      scratch_(std::make_unique<ScratchPool>(vs.size()))
{
    ANSMET_ASSERT(vs.size() > 0, "empty vector set");
    const std::vector<unsigned> levels = drawLevels();
    if (params_.build == HnswParams::Build::kLocked)
        buildLocked(levels);
    else
        buildOrdered(levels);
    locks_.reset();
    entry_mu_.reset();
}

// Defined here, where ScratchPool is complete.
HnswIndex::HnswIndex(HnswIndex &&) noexcept = default;
HnswIndex::~HnswIndex() = default;

unsigned
HnswIndex::randomLevel(Prng &rng) const
{
    double u = rng.uniform();
    if (u < 1e-12)
        u = 1e-12;
    const double level = -std::log(u) * level_mult_;
    return static_cast<unsigned>(std::min(level, 31.0));
}

std::vector<unsigned>
HnswIndex::drawLevels() const
{
    // One independent PRNG stream per vertex: the level of a vertex
    // depends only on (seed, id), never on insertion or thread order.
    std::vector<unsigned> levels(vs_.size());
    runtime::parallelFor(0, vs_.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
            Prng rng = Prng::stream(params_.seed, v);
            levels[v] = randomLevel(rng);
        }
    });
    return levels;
}

const std::vector<VectorId> &
HnswIndex::neighbors(VectorId v, unsigned level) const
{
    ANSMET_ASSERT(v < nodes_.size() && level < nodes_[v].links.size());
    return nodes_[v].links[level];
}

std::vector<VectorId>
HnswIndex::verticesAtLevel(unsigned level) const
{
    std::vector<VectorId> out;
    for (std::size_t v = 0; v < nodes_.size(); ++v)
        if (nodes_[v].links.size() > level)
            out.push_back(static_cast<VectorId>(v));
    return out;
}

std::size_t
HnswIndex::graphBytes() const
{
    std::size_t bytes = 0;
    for (const auto &n : nodes_)
        for (const auto &l : n.links)
            bytes += l.size() * sizeof(VectorId) + sizeof(std::uint32_t);
    return bytes;
}

std::vector<Neighbor>
HnswIndex::searchLayer(const float *q, Neighbor entry, std::size_t ef,
                       unsigned level, SearchObserver *obs,
                       VisitScratch &vis, bool locked) const
{
    if (++vis.epoch == 0) {
        // Epoch wrapped: old tags could collide with the new epoch.
        std::fill(vis.tag.begin(), vis.tag.end(), 0);
        vis.epoch = 1;
    }
    vis.tag[entry.id] = vis.epoch;

    SearchSet candidates;
    candidates.push(entry);
    ResultSet results(ef);
    results.offer(entry);

    // Accumulated locally and flushed once per call: searchLayer is the
    // inner loop of parallel index build, where per-hop shard traffic
    // would still be visible.
    std::uint64_t hops = 0;
    std::uint64_t comps = 0;

    std::vector<VectorId> snapshot;
    while (!candidates.empty()) {
        const Neighbor cur = candidates.pop();
        if (cur.dist > results.worst())
            break;
        ++hops;

        const std::vector<VectorId> *links = &nodes_[cur.id].links[level];
        if (locked) {
            // Live parallel build: another thread may be appending to
            // this list; copy it under the node's lock.
            MutexLock lk(locks_[cur.id]);
            snapshot = nodes_[cur.id].links[level];
            links = &snapshot;
        }
        if (obs) {
            obs->beginStep(level == 0 ? StepKind::kBaseBeam
                                      : StepKind::kUpperGreedy,
                           links->size() * sizeof(VectorId), cur.id);
            obs->onHeapOps(1); // the pop above
        }

        // The threshold in force when this batch is offloaded: the
        // NDP units reject any neighbor at or beyond it.
        const double batch_threshold = results.worst();

        // Stage the unvisited neighbors, compute their distances in
        // one batched kernel call, then apply the accept decisions in
        // the original order. The threshold is frozen for the whole
        // batch, so decisions match the one-at-a-time loop exactly.
        vis.batchIds.clear();
        for (const VectorId nb : *links) {
            if (vis.tag[nb] == vis.epoch)
                continue;
            vis.tag[nb] = vis.epoch;
            vis.batchIds.push_back(nb);
        }
        if (vis.batchIds.empty())
            continue;
        vis.batchDist.resize(vis.batchIds.size());
        distanceBatch(metric_, q, vs_, vis.batchIds.data(),
                      vis.batchIds.size(), vis.batchDist.data());
        comps += vis.batchIds.size();

        for (std::size_t i = 0; i < vis.batchIds.size(); ++i) {
            const VectorId nb = vis.batchIds[i];
            const double d = vis.batchDist[i];
            const bool accepted = d < batch_threshold;
            if (obs)
                obs->onCompare(nb, batch_threshold, d, accepted);

            if (accepted || !results.full()) {
                candidates.push({d, nb});
                results.offer({d, nb});
                if (obs)
                    obs->onHeapOps(2);
            }
        }
    }
    HnswMetrics &m = hnswMetrics();
    m.hops.add(hops);
    m.distanceComps.add(comps);
    return results.sorted();
}

std::vector<VectorId>
HnswIndex::selectNeighbors(const float *q, std::vector<Neighbor> candidates,
                           unsigned m_target) const
{
    (void)q;
    std::sort(candidates.begin(), candidates.end());
    std::vector<VectorId> selected;
    std::vector<Neighbor> discarded;

    // Algorithm 4: keep a candidate only if it is closer to the query
    // than to every already-selected neighbor (diversity pruning).
    for (const Neighbor &c : candidates) {
        if (selected.size() >= m_target)
            break;
        bool keep = true;
        std::vector<float> cbuf = vs_.toFloat(c.id);
        for (const VectorId s : selected) {
            if (distance(metric_, cbuf.data(), vs_, s) < c.dist) {
                keep = false;
                break;
            }
        }
        if (keep)
            selected.push_back(c.id);
        else
            discarded.push_back(c);
    }

    // keepPrunedConnections: fill up with the best discarded ones.
    for (const Neighbor &c : discarded) {
        if (selected.size() >= m_target)
            break;
        selected.push_back(c.id);
    }
    return selected;
}

void
HnswIndex::shrink(VectorId v, unsigned level)
{
    auto &links = nodes_[v].links[level];
    const unsigned cap = params_.maxDegree(level);
    if (links.size() <= cap)
        return;

    std::vector<float> vbuf = vs_.toFloat(v);
    std::vector<Neighbor> cands;
    cands.reserve(links.size());
    for (const VectorId nb : links)
        cands.push_back({distance(metric_, vbuf.data(), vs_, nb), nb});
    links = selectNeighbors(vbuf.data(), std::move(cands), cap);
}

HnswIndex::InsertPlan
HnswIndex::planInsert(VectorId v, unsigned level, VisitScratch &vis) const
{
    std::vector<float> q = vs_.toFloat(v);
    Neighbor ep{dist(q.data(), entry_), entry_};

    // Greedy descent through layers above the insertion level.
    for (unsigned l = max_level_; l > level && l > 0; --l)
        ep = searchLayer(q.data(), ep, 1, l, nullptr, vis).front();

    InsertPlan plan;
    const unsigned top = std::min(level, max_level_);
    plan.selected.resize(top + 1);
    for (int l = static_cast<int>(top); l >= 0; --l) {
        const auto lu = static_cast<unsigned>(l);
        auto found = searchLayer(q.data(), ep, params_.efConstruction, lu,
                                 nullptr, vis);
        ep = found.front();
        plan.selected[lu] = selectNeighbors(q.data(), found, params_.m);
    }
    return plan;
}

void
HnswIndex::buildOrdered(const std::vector<unsigned> &levels)
{
    const std::size_t n = vs_.size();
    entry_ = 0;
    max_level_ = levels[0];
    nodes_[0].links.resize(levels[0] + 1);

    // Batches double in size: candidate searches within a batch see
    // the graph frozen at batch start (so they parallelize), while the
    // stale window stays proportional to what is already built. The
    // schedule is fixed, so the graph never depends on thread count.
    constexpr std::size_t kMaxBatch = 4096;

    std::size_t done = 1;
    std::vector<InsertPlan> plans;
    while (done < n) {
        const std::size_t batch =
            std::min({n - done, done, kMaxBatch});
        plans.assign(batch, InsertPlan{});

        // Phase A (parallel): pick neighbors against the frozen graph.
        runtime::parallelFor(0, batch, [&](std::size_t lo, std::size_t hi) {
            ScratchLease vis(*scratch_);
            for (std::size_t i = lo; i < hi; ++i) {
                const auto v = static_cast<VectorId>(done + i);
                plans[i] = planInsert(v, levels[v], *vis);
            }
        });

        // Phase B1 (parallel): each vertex writes its own adjacency.
        runtime::parallelFor(0, batch, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto v = static_cast<VectorId>(done + i);
                nodes_[v].links.resize(levels[v] + 1);
                for (std::size_t l = 0; l < plans[i].selected.size(); ++l)
                    nodes_[v].links[l] = plans[i].selected[l];
            }
        });

        // Group the back-edges by (target, level) with a stable sort
        // over a flat (key, src) vector: per-key source runs keep
        // their insertion order, so the appended runs — and the shrink
        // decisions they feed — are schedule-independent, and the key
        // walk itself is sorted (an unordered_map here would hand the
        // keys out in hash-bucket order).
        std::vector<std::pair<std::uint64_t, VectorId>> incoming;
        for (std::size_t i = 0; i < batch; ++i) {
            const auto v = static_cast<VectorId>(done + i);
            for (std::size_t l = 0; l < plans[i].selected.size(); ++l) {
                for (const VectorId nb : plans[i].selected[l]) {
                    incoming.emplace_back(
                        (static_cast<std::uint64_t>(nb) << 6) | l, v);
                }
            }
        }
        std::stable_sort(incoming.begin(), incoming.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        std::vector<std::pair<std::size_t, std::size_t>> groups;
        for (std::size_t i = 0; i < incoming.size();) {
            std::size_t j = i + 1;
            while (j < incoming.size() &&
                   incoming[j].first == incoming[i].first)
                ++j;
            groups.emplace_back(i, j);
            i = j;
        }

        // Phase B2 (parallel): targets are distinct across keys, so
        // each append + shrink touches exactly one neighbor list.
        runtime::parallelFor(0, groups.size(), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const auto [b, e] = groups[i];
                const std::uint64_t key = incoming[b].first;
                const auto nb = static_cast<VectorId>(key >> 6);
                const auto l = static_cast<unsigned>(key & 63);
                auto &links = nodes_[nb].links[l];
                for (std::size_t s = b; s < e; ++s)
                    links.push_back(incoming[s].second);
                shrink(nb, l);
            }
        });

        // Entry-point handoff in insertion order, as serial HNSW does.
        for (std::size_t i = 0; i < batch; ++i) {
            const auto v = static_cast<VectorId>(done + i);
            if (levels[v] > max_level_) {
                max_level_ = levels[v];
                entry_ = v;
            }
        }
        done += batch;
    }
}

void
HnswIndex::buildLocked(const std::vector<unsigned> &levels)
{
    const std::size_t n = vs_.size();
    locks_ = std::make_unique<Mutex[]>(n);
    entry_mu_ = std::make_unique<Mutex>();

    entry_ = 0;
    max_level_ = levels[0];
    nodes_[0].links.resize(levels[0] + 1);

    runtime::parallelFor(1, n, [&](std::size_t lo, std::size_t hi) {
        ScratchLease vis(*scratch_);
        for (std::size_t v = lo; v < hi; ++v) {
            insertLocked(static_cast<VectorId>(v), levels[v], *vis);
        }
    });
}

void
HnswIndex::insertLocked(VectorId v, unsigned level, VisitScratch &vis)
{
    // Size the adjacency before v becomes reachable via back-edges.
    {
        MutexLock lk(locks_[v]);
        nodes_[v].links.resize(level + 1);
    }

    Neighbor ep;
    unsigned start_level;
    {
        MutexLock lk(*entry_mu_);
        ep.id = entry_;
        start_level = max_level_;
    }
    std::vector<float> q = vs_.toFloat(v);
    ep.dist = dist(q.data(), ep.id);

    for (unsigned l = start_level; l > level && l > 0; --l)
        ep = searchLayer(q.data(), ep, 1, l, nullptr, vis, true).front();

    for (int l = static_cast<int>(std::min(level, start_level)); l >= 0;
         --l) {
        const auto lu = static_cast<unsigned>(l);
        auto found = searchLayer(q.data(), ep, params_.efConstruction, lu,
                                 nullptr, vis, true);
        ep = found.front();

        const auto selected = selectNeighbors(q.data(), found, params_.m);
        {
            MutexLock lk(locks_[v]);
            nodes_[v].links[lu] = selected;
        }
        for (const VectorId nb : selected) {
            MutexLock lk(locks_[nb]);
            nodes_[nb].links[lu].push_back(v);
            shrink(nb, lu);
        }
    }

    MutexLock lk(*entry_mu_);
    if (level > max_level_) {
        max_level_ = level;
        entry_ = v;
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

namespace {

constexpr std::uint32_t kGraphMagic = 0x414e5347; // "ANSG"

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

} // namespace

HnswIndex::HnswIndex(LoadTag, const VectorSet &vs, Metric m,
                     HnswParams params)
    : vs_(vs), metric_(m), params_(params),
      level_mult_(1.0 / std::log(static_cast<double>(params.m))),
      nodes_(vs.size()),
      scratch_(std::make_unique<ScratchPool>(vs.size()))
{
}

void
HnswIndex::save(std::ostream &os) const
{
    writePod(os, kGraphMagic);
    writePod(os, static_cast<std::uint64_t>(nodes_.size()));
    writePod(os, entry_);
    writePod(os, max_level_);
    for (const auto &n : nodes_) {
        writePod(os, static_cast<std::uint32_t>(n.links.size()));
        for (const auto &l : n.links) {
            writePod(os, static_cast<std::uint32_t>(l.size()));
            os.write(reinterpret_cast<const char *>(l.data()),
                     static_cast<std::streamsize>(l.size() *
                                                  sizeof(VectorId)));
        }
    }
}

HnswIndex
HnswIndex::load(std::istream &is, const VectorSet &vs, Metric m,
                HnswParams params)
{
    HnswIndex idx(LoadTag{}, vs, m, params);
    ANSMET_ASSERT(readPod<std::uint32_t>(is) == kGraphMagic,
                  "bad HNSW graph file");
    const auto n = readPod<std::uint64_t>(is);
    ANSMET_ASSERT(n == vs.size(), "graph/vector-set size mismatch");
    idx.entry_ = readPod<VectorId>(is);
    idx.max_level_ = readPod<unsigned>(is);
    for (auto &node : idx.nodes_) {
        const auto levels = readPod<std::uint32_t>(is);
        node.links.resize(levels);
        for (auto &l : node.links) {
            const auto deg = readPod<std::uint32_t>(is);
            l.resize(deg);
            is.read(reinterpret_cast<char *>(l.data()),
                    static_cast<std::streamsize>(deg * sizeof(VectorId)));
        }
    }
    ANSMET_ASSERT(is.good(), "truncated HNSW graph file");
    return idx;
}

// ---------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------

std::vector<VectorId>
HnswIndex::search(const float *query, std::size_t k, std::size_t ef,
                  SearchObserver &obs) const
{
    ANSMET_ASSERT(ef >= k, "efSearch must be >= k");

    ScratchLease vis(*scratch_);
    Neighbor ep{dist(query, entry_), entry_};
    obs.beginStep(StepKind::kUpperGreedy, sizeof(VectorId), entry_);
    obs.onCompare(ep.id, std::numeric_limits<double>::infinity(), ep.dist,
                  true);

    for (unsigned l = max_level_; l > 0; --l)
        ep = searchLayer(query, ep, 1, l, &obs, *vis).front();

    const auto found = searchLayer(query, ep, ef, 0, &obs, *vis);
    std::vector<VectorId> out;
    out.reserve(std::min(k, found.size()));
    for (std::size_t i = 0; i < found.size() && i < k; ++i)
        out.push_back(found[i].id);
    return out;
}

} // namespace ansmet::anns
