#include "anns/hnsw.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/logging.h"

namespace ansmet::anns {

SearchObserver &
nullObserver()
{
    static SearchObserver obs;
    return obs;
}

HnswIndex::HnswIndex(const VectorSet &vs, Metric m, HnswParams params)
    : vs_(vs), metric_(m), params_(params),
      level_mult_(1.0 / std::log(static_cast<double>(params.m))),
      nodes_(vs.size()),
      visit_tag_(vs.size(), 0)
{
    ANSMET_ASSERT(vs.size() > 0, "empty vector set");
    Prng rng(params_.seed);
    for (std::size_t v = 0; v < vs_.size(); ++v)
        insert(static_cast<VectorId>(v), rng);
}

unsigned
HnswIndex::randomLevel(Prng &rng) const
{
    double u = rng.uniform();
    if (u < 1e-12)
        u = 1e-12;
    const double level = -std::log(u) * level_mult_;
    return static_cast<unsigned>(std::min(level, 31.0));
}

const std::vector<VectorId> &
HnswIndex::neighbors(VectorId v, unsigned level) const
{
    ANSMET_ASSERT(v < nodes_.size() && level < nodes_[v].links.size());
    return nodes_[v].links[level];
}

std::vector<VectorId>
HnswIndex::verticesAtLevel(unsigned level) const
{
    std::vector<VectorId> out;
    for (std::size_t v = 0; v < nodes_.size(); ++v)
        if (nodes_[v].links.size() > level)
            out.push_back(static_cast<VectorId>(v));
    return out;
}

std::size_t
HnswIndex::graphBytes() const
{
    std::size_t bytes = 0;
    for (const auto &n : nodes_)
        for (const auto &l : n.links)
            bytes += l.size() * sizeof(VectorId) + sizeof(std::uint32_t);
    return bytes;
}

std::vector<Neighbor>
HnswIndex::searchLayer(const float *q, Neighbor entry, std::size_t ef,
                       unsigned level, SearchObserver *obs) const
{
    ++visit_epoch_;
    visit_tag_[entry.id] = visit_epoch_;

    SearchSet candidates;
    candidates.push(entry);
    ResultSet results(ef);
    results.offer(entry);

    while (!candidates.empty()) {
        const Neighbor cur = candidates.pop();
        if (cur.dist > results.worst())
            break;

        const auto &links = nodes_[cur.id].links[level];
        if (obs) {
            obs->beginStep(level == 0 ? StepKind::kBaseBeam
                                      : StepKind::kUpperGreedy,
                           links.size() * sizeof(VectorId), cur.id);
            obs->onHeapOps(1); // the pop above
        }

        // The threshold in force when this batch is offloaded: the
        // NDP units reject any neighbor at or beyond it.
        const double batch_threshold = results.worst();

        for (const VectorId nb : links) {
            if (visit_tag_[nb] == visit_epoch_)
                continue;
            visit_tag_[nb] = visit_epoch_;

            const double d = dist(q, nb);
            const bool accepted = d < batch_threshold;
            if (obs)
                obs->onCompare(nb, batch_threshold, d, accepted);

            if (accepted || !results.full()) {
                candidates.push({d, nb});
                results.offer({d, nb});
                if (obs)
                    obs->onHeapOps(2);
            }
        }
    }
    return results.sorted();
}

std::vector<VectorId>
HnswIndex::selectNeighbors(const float *q, std::vector<Neighbor> candidates,
                           unsigned m_target) const
{
    (void)q;
    std::sort(candidates.begin(), candidates.end());
    std::vector<VectorId> selected;
    std::vector<Neighbor> discarded;

    // Algorithm 4: keep a candidate only if it is closer to the query
    // than to every already-selected neighbor (diversity pruning).
    for (const Neighbor &c : candidates) {
        if (selected.size() >= m_target)
            break;
        bool keep = true;
        std::vector<float> cbuf = vs_.toFloat(c.id);
        for (const VectorId s : selected) {
            if (distance(metric_, cbuf.data(), vs_, s) < c.dist) {
                keep = false;
                break;
            }
        }
        if (keep)
            selected.push_back(c.id);
        else
            discarded.push_back(c);
    }

    // keepPrunedConnections: fill up with the best discarded ones.
    for (const Neighbor &c : discarded) {
        if (selected.size() >= m_target)
            break;
        selected.push_back(c.id);
    }
    return selected;
}

void
HnswIndex::connect(VectorId from, VectorId to, unsigned level)
{
    nodes_[from].links[level].push_back(to);
}

void
HnswIndex::shrink(VectorId v, unsigned level)
{
    auto &links = nodes_[v].links[level];
    const unsigned cap = params_.maxDegree(level);
    if (links.size() <= cap)
        return;

    std::vector<float> vbuf = vs_.toFloat(v);
    std::vector<Neighbor> cands;
    cands.reserve(links.size());
    for (const VectorId nb : links)
        cands.push_back({distance(metric_, vbuf.data(), vs_, nb), nb});
    links = selectNeighbors(vbuf.data(), std::move(cands), cap);
}

void
HnswIndex::insert(VectorId v, Prng &rng)
{
    const unsigned level = randomLevel(rng);
    nodes_[v].links.resize(level + 1);

    if (entry_ == kInvalidVector) {
        entry_ = v;
        max_level_ = level;
        return;
    }

    std::vector<float> q = vs_.toFloat(v);
    Neighbor ep{dist(q.data(), entry_), entry_};

    // Greedy descent through layers above the insertion level.
    for (unsigned l = max_level_; l > level && l > 0; --l) {
        const auto found = searchLayer(q.data(), ep, 1, l, nullptr);
        ep = found.front();
    }

    // Insert at each layer from min(level, max_level_) down to 0.
    for (int l = static_cast<int>(std::min(level, max_level_)); l >= 0;
         --l) {
        const auto lu = static_cast<unsigned>(l);
        auto found =
            searchLayer(q.data(), ep, params_.efConstruction, lu, nullptr);
        ep = found.front();

        const auto selected =
            selectNeighbors(q.data(), found, params_.m);
        for (const VectorId nb : selected) {
            connect(v, nb, lu);
            connect(nb, v, lu);
            shrink(nb, lu);
        }
    }

    if (level > max_level_) {
        max_level_ = level;
        entry_ = v;
    }
}

namespace {

constexpr std::uint32_t kGraphMagic = 0x414e5347; // "ANSG"

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

} // namespace

HnswIndex::HnswIndex(LoadTag, const VectorSet &vs, Metric m,
                     HnswParams params)
    : vs_(vs), metric_(m), params_(params),
      level_mult_(1.0 / std::log(static_cast<double>(params.m))),
      nodes_(vs.size()),
      visit_tag_(vs.size(), 0)
{
}

void
HnswIndex::save(std::ostream &os) const
{
    writePod(os, kGraphMagic);
    writePod(os, static_cast<std::uint64_t>(nodes_.size()));
    writePod(os, entry_);
    writePod(os, max_level_);
    for (const auto &n : nodes_) {
        writePod(os, static_cast<std::uint32_t>(n.links.size()));
        for (const auto &l : n.links) {
            writePod(os, static_cast<std::uint32_t>(l.size()));
            os.write(reinterpret_cast<const char *>(l.data()),
                     static_cast<std::streamsize>(l.size() *
                                                  sizeof(VectorId)));
        }
    }
}

HnswIndex
HnswIndex::load(std::istream &is, const VectorSet &vs, Metric m,
                HnswParams params)
{
    HnswIndex idx(LoadTag{}, vs, m, params);
    ANSMET_ASSERT(readPod<std::uint32_t>(is) == kGraphMagic,
                  "bad HNSW graph file");
    const auto n = readPod<std::uint64_t>(is);
    ANSMET_ASSERT(n == vs.size(), "graph/vector-set size mismatch");
    idx.entry_ = readPod<VectorId>(is);
    idx.max_level_ = readPod<unsigned>(is);
    for (auto &node : idx.nodes_) {
        const auto levels = readPod<std::uint32_t>(is);
        node.links.resize(levels);
        for (auto &l : node.links) {
            const auto deg = readPod<std::uint32_t>(is);
            l.resize(deg);
            is.read(reinterpret_cast<char *>(l.data()),
                    static_cast<std::streamsize>(deg * sizeof(VectorId)));
        }
    }
    ANSMET_ASSERT(is.good(), "truncated HNSW graph file");
    return idx;
}

std::vector<VectorId>
HnswIndex::search(const float *query, std::size_t k, std::size_t ef,
                  SearchObserver &obs) const
{
    ANSMET_ASSERT(ef >= k, "efSearch must be >= k");

    Neighbor ep{dist(query, entry_), entry_};
    obs.beginStep(StepKind::kUpperGreedy, sizeof(VectorId), entry_);
    obs.onCompare(ep.id, std::numeric_limits<double>::infinity(), ep.dist,
                  true);

    for (unsigned l = max_level_; l > 0; --l) {
        const auto found = searchLayer(query, ep, 1, l, &obs);
        ep = found.front();
    }

    const auto found = searchLayer(query, ep, ef, 0, &obs);
    std::vector<VectorId> out;
    out.reserve(std::min(k, found.size()));
    for (std::size_t i = 0; i < found.size() && i < k; ++i)
        out.push_back(found[i].id);
    return out;
}

} // namespace ansmet::anns
