/**
 * @file
 * Hierarchical Navigable Small World index (Malkov & Yashunin, and
 * Section 2.1 of the ANSMET paper).
 *
 * Build parameters follow the paper's methodology: efConstruction=500
 * and maximum degree 16 by default. Search exposes efSearch (k' in the
 * paper) and reports every comparison through a SearchObserver so the
 * timing layer can replay it.
 *
 * Construction is parallelized over the global thread pool in one of
 * two modes (HnswParams::build):
 *  - kOrdered (default): deterministic batch-parallel insertion. The
 *    vertex stream is processed in exponentially growing batches; all
 *    candidate searches of a batch run in parallel against the graph
 *    frozen at batch start, then edges are applied in insertion order.
 *    The resulting graph is a pure function of the seed, identical for
 *    any thread count — this is what keeps traces and figures
 *    reproducible.
 *  - kLocked: live insertion with fine-grained per-node neighbor-list
 *    locking (hnswlib-style). Slightly better graph quality under
 *    massive parallelism, but adjacency depends on thread
 *    interleaving, so it is opt-in for throughput-only uses.
 * Search is thread-safe and lock-free: per-call visited-set scratch
 * comes from an internal pool instead of shared mutable members.
 */

#ifndef ANSMET_ANNS_HNSW_H
#define ANSMET_ANNS_HNSW_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "anns/distance.h"
#include "anns/heap.h"
#include "anns/observer.h"
#include "anns/vector.h"
#include "common/prng.h"
#include "common/sync.h"

namespace ansmet::anns {

/** HNSW construction parameters. */
struct HnswParams
{
    /** Parallel construction mode; see file comment. */
    enum class Build : std::uint8_t { kOrdered, kLocked };

    unsigned m = 16;              //!< max degree on upper layers
    unsigned efConstruction = 500;
    std::uint64_t seed = 42;
    Build build = Build::kOrdered;

    unsigned maxDegree(unsigned level) const { return level == 0 ? 2 * m : m; }
};

/** Graph index over an externally owned VectorSet. */
class HnswIndex
{
  public:
    /**
     * Build the index over @p vs (which must outlive the index).
     * @param m distance metric (kCosine data must be pre-normalized)
     */
    HnswIndex(const VectorSet &vs, Metric m, HnswParams params = {});

    // Out-of-line: members hold pointers to types incomplete here.
    HnswIndex(HnswIndex &&) noexcept;
    ~HnswIndex();

    /**
     * Approximate k-nearest-neighbor search. Safe to call from many
     * threads concurrently (each call draws its own visited-set
     * scratch from a pool).
     * @param ef beam width (k', >= k)
     * @return up to k ids ascending by distance
     */
    std::vector<VectorId> search(const float *query, std::size_t k,
                                 std::size_t ef,
                                 SearchObserver &obs = nullObserver()) const;

    unsigned maxLevel() const { return max_level_; }
    VectorId entryPoint() const { return entry_; }
    Metric metric() const { return metric_; }
    const VectorSet &vectors() const { return vs_; }

    /** Neighbors of @p v at @p level. */
    const std::vector<VectorId> &neighbors(VectorId v, unsigned level) const;

    /** Level of vertex @p v (0 = base only). */
    unsigned levelOf(VectorId v) const
    {
        return static_cast<unsigned>(nodes_[v].links.size()) - 1;
    }

    /** Vertices present at @p level and above (hot-set for replication). */
    std::vector<VectorId> verticesAtLevel(unsigned level) const;

    /** Total adjacency storage in bytes (graph memory footprint). */
    std::size_t graphBytes() const;

    /**
     * Serialize the graph (not the vectors) to a binary stream, so
     * expensive builds can be cached across experiment binaries.
     */
    void save(std::ostream &os) const;

    /**
     * Deserialize a graph previously written by save(). @p vs must be
     * the same vector set the graph was built over.
     */
    static HnswIndex load(std::istream &is, const VectorSet &vs, Metric m,
                          HnswParams params = {});

  private:
    struct LoadTag {};

    /** Internal: construct without building (used by load()). */
    HnswIndex(LoadTag, const VectorSet &vs, Metric m, HnswParams params);

    struct Node
    {
        // links[l] = adjacency at layer l; size() == level + 1.
        std::vector<std::vector<VectorId>> links;
    };

    /** Per-search visited-set scratch (tag array + epoch counter). */
    struct VisitScratch
    {
        std::vector<std::uint32_t> tag;
        std::uint32_t epoch = 0;
        // Neighbor-expansion staging for the batched distance kernel;
        // kept here so expansion allocates nothing per step.
        std::vector<VectorId> batchIds;
        std::vector<double> batchDist;
    };

    /** Pool of VisitScratch instances for concurrent searches. */
    class ScratchPool;

    /** RAII lease of one VisitScratch from the pool. */
    class ScratchLease;

    /** Neighbor lists selected for one vertex, per level (0..top). */
    struct InsertPlan
    {
        std::vector<std::vector<VectorId>> selected;
    };

    unsigned randomLevel(Prng &rng) const;

    double
    dist(const float *q, VectorId v) const
    {
        return distance(metric_, q, vs_, v);
    }

    /**
     * Beam search within one layer from @p entry.
     * @param vis per-call visited scratch
     * @param locked snapshot each node's links under its lock (live
     *        parallel build only)
     * @return candidates found, ascending by distance (up to ef).
     */
    std::vector<Neighbor> searchLayer(const float *q, Neighbor entry,
                                      std::size_t ef, unsigned level,
                                      SearchObserver *obs,
                                      VisitScratch &vis,
                                      bool locked = false) const;

    /** HNSW Algorithm 4 neighbor selection (heuristic with pruning). */
    std::vector<VectorId> selectNeighbors(const float *q,
                                          std::vector<Neighbor> candidates,
                                          unsigned m_target) const;

    /** Per-vertex levels drawn from seed-derived per-vertex streams. */
    std::vector<unsigned> drawLevels() const;

    /** Candidate selection for @p v against the current (frozen) graph. */
    InsertPlan planInsert(VectorId v, unsigned level,
                          VisitScratch &vis) const;

    void buildOrdered(const std::vector<unsigned> &levels);
    void buildLocked(const std::vector<unsigned> &levels);
    void insertLocked(VectorId v, unsigned level, VisitScratch &vis);

    void shrink(VectorId v, unsigned level);

    const VectorSet &vs_;
    Metric metric_;
    HnswParams params_;
    double level_mult_;
    std::vector<Node> nodes_;
    VectorId entry_ = kInvalidVector;
    unsigned max_level_ = 0;

    // Search scratch pool; mutable because search is logically const.
    mutable std::unique_ptr<ScratchPool> scratch_;

    // Per-node neighbor-list locks plus the entry-point lock; allocated
    // only for the duration of a kLocked build (a mutex member would
    // make the index non-movable). locks_[v] guards nodes_[v].links and
    // *entry_mu_ guards entry_/max_level_ — but only while the locked
    // build runs, so the per-element contracts stay in comments: a
    // static GUARDED_BY would outlaw the single-threaded ordered build
    // and post-build reads, which need no lock at all.
    mutable std::unique_ptr<Mutex[]> locks_;
    std::unique_ptr<Mutex> entry_mu_;
};

} // namespace ansmet::anns

#endif // ANSMET_ANNS_HNSW_H
