/**
 * @file
 * Hierarchical Navigable Small World index (Malkov & Yashunin, and
 * Section 2.1 of the ANSMET paper).
 *
 * Build parameters follow the paper's methodology: efConstruction=500
 * and maximum degree 16 by default. Search exposes efSearch (k' in the
 * paper) and reports every comparison through a SearchObserver so the
 * timing layer can replay it.
 */

#ifndef ANSMET_ANNS_HNSW_H
#define ANSMET_ANNS_HNSW_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "anns/distance.h"
#include "anns/heap.h"
#include "anns/observer.h"
#include "anns/vector.h"
#include "common/prng.h"

namespace ansmet::anns {

/** HNSW construction parameters. */
struct HnswParams
{
    unsigned m = 16;              //!< max degree on upper layers
    unsigned efConstruction = 500;
    std::uint64_t seed = 42;

    unsigned maxDegree(unsigned level) const { return level == 0 ? 2 * m : m; }
};

/** Graph index over an externally owned VectorSet. */
class HnswIndex
{
  public:
    /**
     * Build the index over @p vs (which must outlive the index).
     * @param m distance metric (kCosine data must be pre-normalized)
     */
    HnswIndex(const VectorSet &vs, Metric m, HnswParams params = {});

    /**
     * Approximate k-nearest-neighbor search.
     * @param ef beam width (k', >= k)
     * @return up to k ids ascending by distance
     */
    std::vector<VectorId> search(const float *query, std::size_t k,
                                 std::size_t ef,
                                 SearchObserver &obs = nullObserver()) const;

    unsigned maxLevel() const { return max_level_; }
    VectorId entryPoint() const { return entry_; }
    Metric metric() const { return metric_; }
    const VectorSet &vectors() const { return vs_; }

    /** Neighbors of @p v at @p level. */
    const std::vector<VectorId> &neighbors(VectorId v, unsigned level) const;

    /** Level of vertex @p v (0 = base only). */
    unsigned levelOf(VectorId v) const
    {
        return static_cast<unsigned>(nodes_[v].links.size()) - 1;
    }

    /** Vertices present at @p level and above (hot-set for replication). */
    std::vector<VectorId> verticesAtLevel(unsigned level) const;

    /** Total adjacency storage in bytes (graph memory footprint). */
    std::size_t graphBytes() const;

    /**
     * Serialize the graph (not the vectors) to a binary stream, so
     * expensive builds can be cached across experiment binaries.
     */
    void save(std::ostream &os) const;

    /**
     * Deserialize a graph previously written by save(). @p vs must be
     * the same vector set the graph was built over.
     */
    static HnswIndex load(std::istream &is, const VectorSet &vs, Metric m,
                          HnswParams params = {});

  private:
    struct LoadTag {};

    /** Internal: construct without building (used by load()). */
    HnswIndex(LoadTag, const VectorSet &vs, Metric m, HnswParams params);

    struct Node
    {
        // links[l] = adjacency at layer l; size() == level + 1.
        std::vector<std::vector<VectorId>> links;
    };

    unsigned randomLevel(Prng &rng) const;

    double
    dist(const float *q, VectorId v) const
    {
        return distance(metric_, q, vs_, v);
    }

    /**
     * Beam search within one layer from @p entry.
     * @return candidates found, ascending by distance (up to ef).
     */
    std::vector<Neighbor> searchLayer(const float *q, Neighbor entry,
                                      std::size_t ef, unsigned level,
                                      SearchObserver *obs) const;

    /** HNSW Algorithm 4 neighbor selection (heuristic with pruning). */
    std::vector<VectorId> selectNeighbors(const float *q,
                                          std::vector<Neighbor> candidates,
                                          unsigned m_target) const;

    void insert(VectorId v, Prng &rng);
    void connect(VectorId from, VectorId to, unsigned level);
    void shrink(VectorId v, unsigned level);

    const VectorSet &vs_;
    Metric metric_;
    HnswParams params_;
    double level_mult_;
    std::vector<Node> nodes_;
    VectorId entry_ = kInvalidVector;
    unsigned max_level_ = 0;

    // Scratch for visited-set tagging; mutable because search is
    // logically const. Not thread-safe by design (single-threaded sim).
    mutable std::vector<std::uint32_t> visit_tag_;
    mutable std::uint32_t visit_epoch_ = 0;
};

} // namespace ansmet::anns

#endif // ANSMET_ANNS_HNSW_H
