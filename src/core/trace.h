/**
 * @file
 * Functional search traces.
 *
 * Lossless early termination never changes which vectors are accepted,
 * so the search path — which vectors are compared, in what batches,
 * under what thresholds — is identical across every evaluated design.
 * We therefore run the functional HNSW/IVF search once per query,
 * capture it as a QueryTrace, and replay that trace through each
 * design's timing model (see DESIGN.md, "trace-then-replay").
 */

#ifndef ANSMET_CORE_TRACE_H
#define ANSMET_CORE_TRACE_H

#include <vector>

#include "anns/hnsw.h"
#include "anns/ivf.h"
#include "anns/observer.h"

namespace ansmet::core {

/** One distance comparison as issued by the host. */
struct CompareTask
{
    VectorId vec;
    double threshold; //!< result-set bound at batch issue (+inf early)
    double dist;      //!< exact distance
    bool accepted;    //!< dist < threshold
};

/** One traversal step: a popped vertex / cluster chunk and its batch. */
struct TraceStep
{
    anns::StepKind kind;
    std::size_t indexBytes = 0;  //!< adjacency / posting list read
    std::uint64_t ident = 0;     //!< popped vertex / cluster id
    unsigned heapOps = 0;
    std::vector<CompareTask> tasks;
};

/** A full query's worth of steps plus the functional result. */
struct QueryTrace
{
    std::vector<float> query;
    std::vector<TraceStep> steps;
    std::vector<VectorId> result;

    std::size_t
    numComparisons() const
    {
        std::size_t n = 0;
        for (const auto &s : steps)
            n += s.tasks.size();
        return n;
    }

    std::size_t
    numAccepted() const
    {
        std::size_t n = 0;
        for (const auto &s : steps)
            for (const auto &t : s.tasks)
                n += t.accepted ? 1 : 0;
        return n;
    }
};

/** SearchObserver that materializes a QueryTrace. */
class TraceBuilder : public anns::SearchObserver
{
  public:
    explicit TraceBuilder(QueryTrace &out) : out_(out) {}

    void
    beginStep(anns::StepKind kind, std::size_t index_bytes,
              std::uint64_t ident) override
    {
        out_.steps.push_back(TraceStep{kind, index_bytes, ident, 0, {}});
    }

    void
    onCompare(VectorId v, double threshold, double dist,
              bool accepted) override
    {
        ANSMET_ASSERT(!out_.steps.empty());
        out_.steps.back().tasks.push_back(
            CompareTask{v, threshold, dist, accepted});
    }

    void
    onHeapOps(unsigned n) override
    {
        if (!out_.steps.empty())
            out_.steps.back().heapOps += n;
    }

  private:
    QueryTrace &out_;
};

/** Trace one HNSW query. */
QueryTrace traceHnswQuery(const anns::HnswIndex &index,
                          const std::vector<float> &query, std::size_t k,
                          std::size_t ef);

/** Trace one IVF query. */
QueryTrace traceIvfQuery(const anns::IvfIndex &index,
                         const std::vector<float> &query, std::size_t k,
                         unsigned nprobe);

} // namespace ansmet::core

#endif // ANSMET_CORE_TRACE_H
