/**
 * @file
 * The ANSMET system timing model: host CPU + (optionally) rank-level
 * NDP units over the event-driven DDR5 model, replaying functional
 * search traces under one of the nine evaluated designs.
 *
 * Concurrency model: `concurrentQueries` host cores each drain queries
 * from a shared queue, so the CPU designs become bandwidth-bound on
 * the 4 channels (the paper's Figure 1 observation) while the NDP
 * designs spread distance work over all ranks — that contrast is where
 * the ~5x NDP speedup comes from, with early termination cutting the
 * per-comparison line count on top.
 */

#ifndef ANSMET_CORE_SYSTEM_H
#define ANSMET_CORE_SYSTEM_H

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/design.h"
#include "core/trace.h"
#include "cpu/host.h"
#include "dram/power.h"
#include "et/fetchsim.h"
#include "layout/partition.h"
#include "ndp/ndp_unit.h"
#include "ndp/polling.h"

namespace ansmet::core {

/** Full configuration of one simulated design point. */
struct SystemConfig
{
    Design design = Design::kNdpEtOpt;
    unsigned ndpUnits = 32;
    unsigned subVectorBytes = 1024;   //!< hybrid partitioning S
    bool replicateHot = true;
    ndp::PollingParams polling{};
    unsigned concurrentQueries = 16;  //!< host cores driving queries
    /**
     * QSHRs each query spreads its same-unit tasks over. More QSHRs
     * buy intra-unit task parallelism at the cost of extra set-query
     * writes (the QSHR holds the query data).
     */
    unsigned qshrsPerQuery = 2;
    /**
     * Precompute all fetch-simulation results in parallel before the
     * event replay (identical outcome either way; see
     * precomputeFetch()). Off forces the on-the-fly reference path —
     * used by the determinism tests, not a tuning knob.
     */
    bool prefetchReplay = true;

    dram::TimingParams timing{};
    dram::OrgParams org{};
    cpu::HostParams host{};
    ndp::NdpParams ndpParams{};
    dram::EnergyParams energy{};
};

/** Per-query timing outcome. */
struct QueryStats
{
    Tick start{};
    Tick end{};
    TickDelta traversal{}; //!< index reads + step overhead + heap ops
    TickDelta offload{};   //!< NDP instruction transfer time
    TickDelta distComp{};  //!< distance comparison (CPU or NDP)
    TickDelta collect{};   //!< result polling / collection

    std::uint64_t comparisons = 0;
    std::uint64_t accepted = 0;
    std::uint64_t terminated = 0;
    std::uint64_t linesEffectual = 0;   //!< lines of accepted vectors
    std::uint64_t linesIneffectual = 0; //!< lines of rejected vectors
    std::uint64_t backupLines = 0;
    std::uint64_t polls = 0;

    TickDelta latency() const { return end - start; }
};

/** Whole-run outcome. */
struct RunStats
{
    std::vector<QueryStats> queries;
    TickDelta makespan{};
    dram::EnergyBreakdown energy;
    double loadImbalance = 1.0;

    double
    qps() const
    {
        if (makespan == TickDelta{})
            return 0.0;
        return static_cast<double>(queries.size()) /
               (static_cast<double>(makespan.raw()) * 1e-12);
    }

    TickDelta
    meanLatency() const
    {
        if (queries.empty())
            return TickDelta{};
        TickDelta sum{};
        for (const auto &q : queries)
            sum += q.latency();
        return sum / queries.size();
    }

    std::uint64_t
    totalLines() const
    {
        std::uint64_t n = 0;
        for (const auto &q : queries)
            n += q.linesEffectual + q.linesIneffectual + q.backupLines;
        return n;
    }

    QueryStats
    totals() const
    {
        QueryStats t;
        for (const auto &q : queries) {
            t.traversal += q.traversal;
            t.offload += q.offload;
            t.distComp += q.distComp;
            t.collect += q.collect;
            t.comparisons += q.comparisons;
            t.accepted += q.accepted;
            t.terminated += q.terminated;
            t.linesEffectual += q.linesEffectual;
            t.linesIneffectual += q.linesIneffectual;
            t.backupLines += q.backupLines;
            t.polls += q.polls;
        }
        return t;
    }
};

/**
 * Scale the host cache hierarchy to the (scaled-down) dataset so the
 * LLC:data ratio matches the paper's billion-scale setting, where
 * vector data exceeds the last-level cache by orders of magnitude. At
 * our dataset sizes the full-size 8 MB LLC would otherwise hold the
 * whole database and make CPU-Base artificially fast (see DESIGN.md,
 * substitutions). Latencies are unchanged; only capacities shrink.
 */
void scaleCachesToDataset(SystemConfig &cfg, std::uint64_t data_bytes);

/**
 * One design point bound to one dataset. Construct, then call run()
 * exactly once with the functional traces.
 */
class SystemModel
{
  public:
    /**
     * @param profile ET preprocessing output (may be null for kNone
     *        schemes)
     * @param hot vector ids replicated to all rank groups (HNSW upper
     *        layers / IVF centroids); ignored unless replicateHot
     */
    SystemModel(const SystemConfig &cfg, const anns::VectorSet &vs,
                anns::Metric metric, const et::EtProfile *profile,
                const std::vector<VectorId> &hot = {});

    ~SystemModel();

    /** Replay @p traces; single use. */
    RunStats run(const std::vector<QueryTrace> &traces);

    // ------------------------------------------------------------------
    // Session API: the multi-query entry point behind run() and the
    // online serving engine (src/serve). A session replaces the old
    // monolithic run(): the caller opens it once, starts queries on
    // numbered slots at any simulated time (e.g. from arrival events
    // scheduled on eventQueue()), drives eq_.run(), and closes it to
    // collect whole-run statistics. run() is the batch dispatcher built
    // on top, and replays the exact event sequence the pre-session code
    // produced (golden figures are bitwise unchanged).
    // ------------------------------------------------------------------

    /** Completion callback of one submitted query. Runs inline at the
     *  query's final simulated tick; it may submit() again (on this or
     *  any idle slot) at that same tick. */
    using QueryDone = std::function<void(const QueryStats &)>;

    /**
     * Open a session over @p traces with @p slots concurrent query
     * slots. A slot is one host core driving one in-flight query; its
     * index also selects the QSHR set NDP offloads use, so distinct
     * in-flight queries never contend for a QSHR as long as
     * slots * qshrsPerQuery <= numQshrs (the admission scheduler in
     * src/serve enforces exactly that packing). Single use per model.
     */
    void beginSession(const std::vector<QueryTrace> &traces,
                      unsigned slots);

    /** Slots the open session was sized with. */
    unsigned
    sessionSlots() const
    {
        return static_cast<unsigned>(contexts_.size());
    }

    /** True when @p slot has no query in flight. */
    bool slotIdle(unsigned slot) const;

    /**
     * Start replaying trace @p traceIdx on idle slot @p slot at the
     * current simulated time (fatal if the slot is busy). The same
     * trace may be submitted any number of times per session — the
     * serving engine replays popular queries repeatedly under Zipf
     * skew. @p done fires when the query completes.
     */
    void submit(unsigned slot, std::size_t traceIdx, QueryDone done);

    /** The session's event queue, for arrival scheduling and now(). */
    sim::EventQueue &eventQueue() { return eq_; }

    /**
     * Close the session and collect run statistics (queries in
     * completion order, makespan up to the last executed event,
     * energy). Fatal if events are still pending or a query is still
     * in flight.
     */
    RunStats endSession();

    const SystemConfig &config() const { return cfg_; }
    const et::FetchSimulator &fetchSimulator() const { return *fetchsim_; }
    const layout::Partitioner *partitioner() const { return part_.get(); }

  private:
    struct SubPlace
    {
        unsigned rank;
        unsigned dimBegin;
        unsigned dimEnd;
        std::uint64_t baseLine;
    };

    /** Precomputed outcome of one FetchSimulator call during replay. */
    struct PreFetch
    {
        unsigned lines;
        unsigned backup;
        bool terminated;
    };

    class QueryContext;
    friend class QueryContext;

    void allocatePlacement(const std::vector<VectorId> &hot);

    /** Batch dispatcher: feed @p slot the next undispatched trace. */
    void dispatchNext(unsigned slot);

    /**
     * Fetch-simulate every comparison of every trace in parallel over
     * the thread pool, in the exact (step, task, sub-vector) order the
     * replay consumes them. The simulator is a pure function of
     * (query, vector, threshold, dim range) — and the dimension split
     * is the same in every rank group — so the event-driven replay
     * stays serial and bit-identical while the expensive bound loops
     * run on all cores. No-op with a single-threaded pool (the
     * reference path computes on the fly).
     */
    void precomputeFetch(const std::vector<QueryTrace> &traces);
    const std::vector<SubPlace> &placeOf(VectorId v, unsigned group) const;

    /** Channel that carries NDP unit @p u's instructions. */
    unsigned
    channelOf(unsigned u) const
    {
        return (u / cfg_.org.ranksPerChannel()) % cfg_.org.channels;
    }

    dram::EnergyBreakdown collectEnergy(const RunStats &rs) const;

    SystemConfig cfg_;
    const anns::VectorSet &vs_;
    anns::Metric metric_;

    sim::EventQueue eq_;
    std::unique_ptr<et::FetchSimulator> fetchsim_;
    std::unique_ptr<cpu::HostCpu> hostCpu_;
    std::vector<std::unique_ptr<ndp::NdpUnit>> units_;
    std::unique_ptr<layout::Partitioner> part_;
    std::unique_ptr<layout::LoadTracker> loads_;
    std::unique_ptr<ndp::PollingEstimator> pollEst_;

    // (vector, group) -> placement with allocated base lines.
    std::vector<std::vector<SubPlace>> home_place_;
    std::unordered_map<std::uint64_t, std::vector<SubPlace>> replica_place_;
    std::vector<std::uint64_t> rank_alloc_;

    // Session state.
    // prefetch_[q] = PreFetch per simulator call of trace q, in
    // consumption order; empty when computing on the fly. Indexed by
    // trace, so repeated submissions of one trace replay one sequence.
    std::vector<std::vector<PreFetch>> prefetch_;
    const std::vector<QueryTrace> *traces_ = nullptr;
    std::size_t next_query_ = 0; //!< batch dispatcher cursor (run())
    std::vector<std::unique_ptr<QueryContext>> contexts_;
    RunStats session_stats_;
    RunStats *run_stats_ = nullptr; //!< &session_stats_ while open
    bool ran_ = false;
};

} // namespace ansmet::core

#endif // ANSMET_CORE_SYSTEM_H
