#include "core/experiment.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/runtime/runtime.h"

namespace ansmet::core {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::filesystem::path
cacheDir()
{
    if (const char *env = std::getenv("ANSMET_CACHE"))
        return env;
    return ".ansmet_cache";
}

} // namespace

ExperimentContext::ExperimentContext(const ExperimentConfig &cfg)
    : cfg_(cfg),
      ds_(anns::makeDataset(cfg.dataset, cfg.numVectors, cfg.numQueries,
                            cfg.seed, cfg.zipfAlpha))
{
    buildOrLoadIndex();

    const auto t0 = std::chrono::steady_clock::now();
    profile_ = et::buildProfile(*ds_.base, ds_.metric(), cfg_.profile);
    preproc_seconds_ = secondsSince(t0);

    ef_ = cfg_.efSearch != 0 ? cfg_.efSearch : tuneEf();
    auto [traces, recall] = traceWithEf(ef_);
    traces_ = std::move(traces);
    recall_ = recall;

    // Hot set: top four layers of the HNSW graph (Section 5.3).
    const unsigned top = index_->maxLevel();
    const unsigned cutoff = top >= 3 ? top - 3 : 1;
    hot_ = index_->verticesAtLevel(cutoff);
}

void
ExperimentContext::buildOrLoadIndex()
{
    const auto &spec = anns::datasetSpec(cfg_.dataset);
    std::ostringstream key;
    // "_g3" = canonical blocked-summation distance kernels; graphs
    // cached by earlier builders used a different summation order and
    // are not comparable, so they must not be loaded.
    key << spec.name << "_n" << ds_.base->size() << "_q"
        << ds_.queries.size() << "_s" << cfg_.seed << "_m" << cfg_.hnsw.m
        << "_efc" << cfg_.hnsw.efConstruction << "_z" << cfg_.zipfAlpha
        << "_g3.hnsw";
    const auto path = cacheDir() / key.str();

    if (std::filesystem::exists(path)) {
        std::ifstream in(path, std::ios::binary);
        index_ = std::make_unique<anns::HnswIndex>(anns::HnswIndex::load(
            in, *ds_.base, ds_.metric(), cfg_.hnsw));
        // Cached: report a typical single-build time measured fresh is
        // unavailable; keep 0 and let Table 4 rebuild explicitly.
        graph_seconds_ = 0.0;
        return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    index_ = std::make_unique<anns::HnswIndex>(*ds_.base, ds_.metric(),
                                               cfg_.hnsw);
    graph_seconds_ = secondsSince(t0);

    std::error_code ec;
    std::filesystem::create_directories(cacheDir(), ec);
    if (!ec) {
        std::ofstream out(path, std::ios::binary);
        if (out)
            index_->save(out);
    }
}

const std::vector<std::vector<anns::Neighbor>> &
ExperimentContext::groundTruth() const
{
    if (!gt_) {
        gt_ = anns::bruteForceAll(ds_.metric(), ds_.queries, *ds_.base,
                                  cfg_.k);
    }
    return *gt_;
}

std::size_t
ExperimentContext::tuneEf()
{
    const auto &gt = groundTruth();
    const std::size_t nq = ds_.queries.size();
    std::vector<double> per_query(nq);
    for (std::size_t ef = std::max<std::size_t>(cfg_.k, 10);
         ef <= 5120; ef *= 2) {
        // Parallel searches write per-query slots; the reduction runs
        // serially in query order so the sum is bit-identical to the
        // single-threaded loop.
        runtime::parallelFor(0, nq, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t q = lo; q < hi; ++q) {
                const auto ids =
                    index_->search(ds_.queries[q].data(), cfg_.k, ef);
                per_query[q] = anns::recallAtK(ids, gt[q], cfg_.k);
            }
        });
        const double total =
            std::accumulate(per_query.begin(), per_query.end(), 0.0);
        const double recall = total / static_cast<double>(nq);
        if (recall >= cfg_.targetRecall)
            return ef;
    }
    ANSMET_WARN("efSearch tuning hit the cap without reaching target "
                "recall; using 5120");
    return 5120;
}

std::pair<std::vector<QueryTrace>, double>
ExperimentContext::traceWithEf(std::size_t ef) const
{
    const std::size_t nq = ds_.queries.size();
    std::vector<QueryTrace> traces(nq);
    const auto &gt = groundTruth();
    std::vector<double> per_query(nq);
    // Queries are independent; traces land in their stable slots and
    // the recall reduction runs in query order (see tuneEf).
    runtime::parallelFor(0, nq, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
            traces[q] = traceHnswQuery(*index_, ds_.queries[q], cfg_.k,
                                       std::max(ef, cfg_.k));
            per_query[q] = anns::recallAtK(traces[q].result, gt[q], cfg_.k);
        }
    });
    const double total =
        std::accumulate(per_query.begin(), per_query.end(), 0.0);
    return {std::move(traces), total / static_cast<double>(nq)};
}

SystemConfig
ExperimentContext::systemConfig(Design design) const
{
    SystemConfig sc;
    sc.design = design;
    scaleCachesToDataset(sc, ds_.base->size() * ds_.base->vectorBytes());
    return sc;
}

RunStats
ExperimentContext::runDesign(Design design) const
{
    return runDesign(systemConfig(design));
}

RunStats
ExperimentContext::runDesign(const SystemConfig &cfg) const
{
    SystemModel model(cfg, *ds_.base, ds_.metric(), &profile_, hot_);
    return model.run(traces_);
}

} // namespace ansmet::core
