#include "core/trace.h"

namespace ansmet::core {

QueryTrace
traceHnswQuery(const anns::HnswIndex &index, const std::vector<float> &query,
               std::size_t k, std::size_t ef)
{
    QueryTrace trace;
    trace.query = query;
    TraceBuilder builder(trace);
    trace.result = index.search(query.data(), k, ef, builder);
    return trace;
}

QueryTrace
traceIvfQuery(const anns::IvfIndex &index, const std::vector<float> &query,
              std::size_t k, unsigned nprobe)
{
    QueryTrace trace;
    trace.query = query;
    TraceBuilder builder(trace);
    trace.result = index.search(query.data(), k, nprobe, builder);
    return trace;
}

} // namespace ansmet::core
