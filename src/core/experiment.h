/**
 * @file
 * Experiment harness shared by the benchmark binaries: builds (or
 * loads from cache) a dataset + HNSW index, tunes efSearch for the
 * paper's >= 80% recall methodology, runs the ET preprocessing, traces
 * the queries once, and replays them under any design.
 */

#ifndef ANSMET_CORE_EXPERIMENT_H
#define ANSMET_CORE_EXPERIMENT_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anns/bruteforce.h"
#include "anns/dataset.h"
#include "anns/hnsw.h"
#include "core/system.h"
#include "core/trace.h"
#include "et/profile.h"

namespace ansmet::core {

/** Workload + methodology configuration for one experiment context. */
struct ExperimentConfig
{
    anns::DatasetId dataset = anns::DatasetId::kSift;
    std::size_t numVectors = 0; //!< 0 = dataset default (scaled down)
    std::size_t numQueries = 0;
    std::size_t k = 10;
    std::size_t efSearch = 0;   //!< 0 = auto-tune to targetRecall
    double targetRecall = 0.80; //!< the paper's recall floor
    std::uint64_t seed = 1;
    double zipfAlpha = 0.0;     //!< skewed queries (Section 5.3 study)

    /**
     * HNSW parameters. The paper uses efConstruction=500 at
     * million/billion scale; at our scaled-down N, 200 yields graphs
     * of equivalent quality in a fraction of the build time.
     */
    anns::HnswParams hnsw{16, 200, 42};

    et::ProfileConfig profile{};
};

/**
 * A fully prepared workload: dataset, index, ground truth, traces,
 * and the ET profile. Expensive parts (graph build) are cached on
 * disk under .ansmet_cache/.
 */
class ExperimentContext
{
  public:
    explicit ExperimentContext(const ExperimentConfig &cfg);

    const ExperimentConfig &config() const { return cfg_; }
    const anns::Dataset &dataset() const { return ds_; }
    const anns::HnswIndex &index() const { return *index_; }
    const et::EtProfile &profile() const { return profile_; }
    const std::vector<QueryTrace> &traces() const { return traces_; }

    std::size_t efSearch() const { return ef_; }
    double recall() const { return recall_; }

    /** HNSW top-layer vertices (the paper replicates the top 4). */
    const std::vector<VectorId> &hotVectors() const { return hot_; }

    /** Ground truth (lazy, cached in memory). */
    const std::vector<std::vector<anns::Neighbor>> &groundTruth() const;

    /** Wall-clock seconds of each preprocessing stage (Table 4). */
    double graphBuildSeconds() const { return graph_seconds_; }
    double etPreprocSeconds() const { return preproc_seconds_; }

    /** Replay the traces under @p design with default hardware. */
    RunStats runDesign(Design design) const;

    /** Replay under an explicit system configuration. */
    RunStats runDesign(const SystemConfig &cfg) const;

    /**
     * Re-trace with a different efSearch (Figure 8 sweeps) and return
     * (traces, recall) without touching this context's default traces.
     */
    std::pair<std::vector<QueryTrace>, double>
    traceWithEf(std::size_t ef) const;

    /** Default SystemConfig for @p design (Table 1 parameters). */
    SystemConfig systemConfig(Design design) const;

  private:
    void buildOrLoadIndex();
    std::size_t tuneEf();

    ExperimentConfig cfg_;
    anns::Dataset ds_;
    std::unique_ptr<anns::HnswIndex> index_;
    et::EtProfile profile_;
    std::vector<QueryTrace> traces_;
    std::vector<VectorId> hot_;
    std::size_t ef_ = 0;
    double recall_ = 0.0;
    double graph_seconds_ = 0.0;
    double preproc_seconds_ = 0.0;
    mutable std::optional<std::vector<std::vector<anns::Neighbor>>> gt_;
};

} // namespace ansmet::core

#endif // ANSMET_CORE_EXPERIMENT_H
