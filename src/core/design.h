/**
 * @file
 * The nine evaluated designs (Section 6 of the paper, "Evaluated
 * designs") and their mapping onto hardware/ET configurations.
 */

#ifndef ANSMET_CORE_DESIGN_H
#define ANSMET_CORE_DESIGN_H

#include <cstdint>
#include <vector>

#include "et/fetchsim.h"

namespace ansmet::core {

/** Evaluated design points. */
enum class Design : std::uint8_t
{
    kCpuBase,   //!< host CPU only, full fetches
    kCpuEt,     //!< host CPU + hybrid ET, heuristic layout
    kCpuEtOpt,  //!< host CPU + dual-granularity + prefix elimination
    kNdpBase,   //!< 32 NDP units, full fetches
    kNdpDimEt,  //!< NDP + partial-dimension-only ET (prior work)
    kNdpBitEt,  //!< NDP + fixed 1-bit ET (BitNN-style)
    kNdpEt,     //!< NDP + hybrid ET, heuristic layout
    kNdpEtDual, //!< NDP + dual-granularity fetch
    kNdpEtOpt,  //!< full ANSMET (+ common prefix elimination)
};

inline const char *
designName(Design d)
{
    switch (d) {
      case Design::kCpuBase:   return "CPU-Base";
      case Design::kCpuEt:     return "CPU-ET";
      case Design::kCpuEtOpt:  return "CPU-ETOpt";
      case Design::kNdpBase:   return "NDP-Base";
      case Design::kNdpDimEt:  return "NDP-DimET";
      case Design::kNdpBitEt:  return "NDP-BitET";
      case Design::kNdpEt:     return "NDP-ET";
      case Design::kNdpEtDual: return "NDP-ET+Dual";
      case Design::kNdpEtOpt:  return "NDP-ETOpt";
    }
    return "?";
}

inline bool
isNdp(Design d)
{
    switch (d) {
      case Design::kCpuBase:
      case Design::kCpuEt:
      case Design::kCpuEtOpt:
        return false;
      default:
        return true;
    }
}

/** The ET scheme each design runs. */
inline et::EtScheme
schemeOf(Design d)
{
    switch (d) {
      case Design::kCpuBase:
      case Design::kNdpBase:
        return et::EtScheme::kNone;
      case Design::kNdpDimEt:
        return et::EtScheme::kDimOnly;
      case Design::kNdpBitEt:
        return et::EtScheme::kBitSerial;
      case Design::kCpuEt:
      case Design::kNdpEt:
        return et::EtScheme::kHeuristic;
      case Design::kNdpEtDual:
        return et::EtScheme::kDual;
      case Design::kCpuEtOpt:
      case Design::kNdpEtOpt:
        return et::EtScheme::kOpt;
    }
    return et::EtScheme::kNone;
}

/** All nine designs in the paper's legend order. */
inline std::vector<Design>
allDesigns()
{
    return {Design::kCpuBase,  Design::kCpuEt,     Design::kCpuEtOpt,
            Design::kNdpBase,  Design::kNdpDimEt,  Design::kNdpBitEt,
            Design::kNdpEt,    Design::kNdpEtDual, Design::kNdpEtOpt};
}

} // namespace ansmet::core

#endif // ANSMET_CORE_DESIGN_H
