#include "core/system.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/runtime/runtime.h"
#include "ndp/instr.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ansmet::core {

namespace {

/** Byte-address regions so vector and index data never alias. */
constexpr Addr kVectorRegion = 0;
constexpr Addr kIndexRegion = Addr{1} << 38;
constexpr Addr kCentroidRegion = Addr{1} << 39;
constexpr Addr kIndexStride = 4096;

/** Replay-level metrics; see DESIGN.md "Observability layer". */
struct ReplayMetrics
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter queries = reg.counter("replay.queries");
    obs::Counter steps = reg.counter("replay.steps");
    obs::Counter comparisons = reg.counter("replay.comparisons");
    obs::Counter terminated = reg.counter("replay.et_terminations");
    obs::Counter linesEffectual = reg.counter("replay.lines_effectual");
    obs::Counter linesIneffectual =
        reg.counter("replay.lines_ineffectual");
    obs::Counter backupLines = reg.counter("replay.backup_lines");
    obs::Counter polls = reg.counter("replay.polls");
    obs::Histogram queryLatency =
        reg.histogram("replay.query_latency_ps", 48);
};

ReplayMetrics &
replayMetrics()
{
    static ReplayMetrics m;
    return m;
}

} // namespace

// ---------------------------------------------------------------------
// Query context: one host core's in-flight query state machine.
// ---------------------------------------------------------------------

class SystemModel::QueryContext
{
  public:
    QueryContext(SystemModel &sys, unsigned id) : sys_(sys), id_(id)
    {
        // Per-unit scratch is sized once here and cleared (never
        // reallocated) across steps; see DESIGN.md, "Hot-path
        // allocation rules".
        if (isNdp(sys.cfg_.design)) {
            const unsigned n = sys.cfg_.ndpUnits;
            const unsigned k = std::max(1u, sys.cfg_.qshrsPerQuery);
            batch_scratch_.resize(n);
            unit_pending_.assign(n, 0);
            results_fetched_.assign(n, 0);
            query_loaded_bits_.assign(n + (k + 63) / 64, 0);
        }
    }

    /** True when no query is in flight on this slot. */
    bool idle() const { return idle_; }

    /**
     * Start replaying trace @p trace_idx at the current tick. @p done
     * fires inline at the query's final tick, after the slot went back
     * to idle — it may begin() this slot again at that same tick.
     */
    void
    begin(std::size_t trace_idx, QueryDone done)
    {
        ANSMET_ASSERT(idle_, "slot already has a query in flight");
        idle_ = false;
        done_ = std::move(done);
        qidx_ = trace_idx;
        trace_ = &(*sys_.traces_)[qidx_];
        stats_ = QueryStats{};
        stats_.start = sys_.eq_.now();
        step_ = 0;
        fetch_cursor_ = 0;
        std::fill(query_loaded_bits_.begin(), query_loaded_bits_.end(),
                  std::uint64_t{0});
        startStep();
    }

  private:
    struct UnitBatch
    {
        std::vector<ndp::NdpTask> tasks;
        unsigned writes = 0;
    };

    /** Mark (unit, qshr slot) as query-loaded; true on first use. */
    bool
    loadQuerySlot(unsigned unit, unsigned slot)
    {
        const auto key = static_cast<std::uint64_t>(unit) * 64 + slot;
        std::uint64_t &word = query_loaded_bits_[key >> 6];
        const std::uint64_t bit = std::uint64_t{1} << (key & 63);
        if ((word & bit) != 0)
            return false;
        word |= bit;
        return true;
    }

    /**
     * Fetch-simulation outcome for the next comparison, either popped
     * from the precomputed per-query sequence or simulated on the fly
     * (single-threaded reference path). Call sites consume results in
     * the same (step, task, sub-vector) order precomputeFetch()
     * produced them.
     */
    et::FetchResult
    nextFetch(const CompareTask &t, unsigned dim_begin, unsigned dim_end)
    {
        if (!sys_.prefetch_.empty()) {
            const auto &pre = sys_.prefetch_[qidx_];
            ANSMET_ASSERT(fetch_cursor_ < pre.size(),
                          "replay consumed more fetches than precomputed");
            const SystemModel::PreFetch &p = pre[fetch_cursor_++];
            et::FetchResult fr;
            fr.lines = p.lines;
            fr.backupLines = p.backup;
            fr.terminatedEarly = p.terminated;
            return fr;
        }
        return sys_.fetchsim_->simulateRange(trace_->query.data(), t.vec,
                                             t.threshold, dim_begin,
                                             dim_end);
    }

    void
    startStep()
    {
        if (step_ >= trace_->steps.size()) {
            finishQuery();
            return;
        }
        step_start_ = sys_.eq_.now();
        const TraceStep &s = trace_->steps[step_];

        sys_.hostCpu_->compute(
            sys_.cfg_.host.stepOverheadCycles, [this, &s] {
                const unsigned lines = std::max<unsigned>(
                    1, static_cast<unsigned>(
                           divCeil(s.indexBytes, kLineBytes)));
                const Addr addr =
                    s.kind == anns::StepKind::kCentroidScan
                        ? kCentroidRegion
                        : kIndexRegion + s.ident * kIndexStride;
                sys_.hostCpu_->read(addr, lines, [this] { afterIndex(); });
            });
    }

    void
    afterIndex()
    {
        stats_.traversal += sys_.eq_.now() - step_start_;
        obs::TraceWriter::instance().span(
            "traverse", static_cast<std::uint32_t>(qidx_), step_start_,
            sys_.eq_.now());
        const TraceStep &s = trace_->steps[step_];
        if (s.tasks.empty()) {
            finishStep();
            return;
        }
        offload_start_ = sys_.eq_.now();
        if (isNdp(sys_.cfg_.design)) {
            ndpOffload();
        } else {
            task_ = 0;
            cpuNextTask();
        }
    }

    // ---------------- CPU path ----------------

    void
    cpuNextTask()
    {
        const TraceStep &s = trace_->steps[step_];
        if (task_ >= s.tasks.size()) {
            stats_.distComp += sys_.eq_.now() - offload_start_;
            obs::TraceWriter::instance().span(
                "compute", static_cast<std::uint32_t>(qidx_),
                offload_start_, sys_.eq_.now());
            finishStep();
            return;
        }
        const CompareTask &t = s.tasks[task_];
        const et::FetchResult fr = nextFetch(t, 0, sys_.vs_.dims());
        accountFetch(t, fr.totalLines(), fr.terminatedEarly,
                     fr.backupLines);

        const unsigned lines = std::max(1u, fr.totalLines());
        const Addr addr =
            kVectorRegion +
            (static_cast<Addr>(t.vec) * sys_.fetchsim_->fullLines()) *
                kLineBytes;
        sys_.hostCpu_->read(addr, lines, [this, lines] {
            // SIMD distance kernel + per-line bound checks.
            const unsigned dims = sys_.vs_.dims();
            const std::uint64_t per_line =
                divCeil(std::max(1u, dims / std::max(1u, lines)),
                        sys_.cfg_.host.simdLanes) +
                2 + sys_.cfg_.host.bitRecoverCycles;
            sys_.hostCpu_->compute(per_line * lines + 8, [this] {
                ++task_;
                cpuNextTask();
            });
        });
    }

    // ---------------- NDP path ----------------

    void
    ndpOffload()
    {
        const TraceStep &s = trace_->steps[step_];

        pending_sub_ = 0;
        max_tasks_per_unit_ = 0;
        results_fetched_count_ = 0;
        units_in_step_.clear();

        // Batches accumulate in per-context scratch indexed by unit;
        // units_in_step_ records first-touch order, which replaces the
        // old per-step unordered_map (and its per-step allocations)
        // while staying deterministic.
        for (const CompareTask &t : s.tasks) {
            const unsigned group = chooseGroup(t.vec);
            const auto &places = sys_.placeOf(t.vec, group);
            for (const auto &sp : places) {
                const et::FetchResult fr =
                    nextFetch(t, sp.dimBegin, sp.dimEnd);
                accountFetch(t, fr.totalLines(), fr.terminatedEarly,
                             fr.backupLines);
                sys_.loads_->add(sp.rank, fr.totalLines());

                ndp::NdpTask task;
                task.startLine = sp.baseLine;
                task.lines = std::max(1u, fr.totalLines());
                const unsigned unit = sp.rank;
                task.onComplete = [this, unit](Tick when) {
                    ndpTaskDone(unit, when);
                };
                UnitBatch &batch = batch_scratch_[unit];
                if (batch.tasks.empty()) {
                    units_in_step_.push_back(unit);
                    unit_pending_[unit] = 0;
                    results_fetched_[unit] = 0;
                }
                batch.tasks.push_back(std::move(task));
                ++unit_pending_[unit];
                ++pending_sub_;
            }
        }

        // Instruction writes per unit: set-query per QSHR used (first
        // use only) plus one set-search per 8 tasks.
        const unsigned k = std::max(1u, sys_.cfg_.qshrsPerQuery);
        pending_writes_ = 0;
        for (const unsigned unit : units_in_step_) {
            UnitBatch &batch = batch_scratch_[unit];
            const unsigned qshrs_used = std::min<unsigned>(
                k, static_cast<unsigned>(batch.tasks.size()));
            unsigned writes = static_cast<unsigned>(
                divCeil(batch.tasks.size(), 8));
            const unsigned dims_per_sub = static_cast<unsigned>(divCeil(
                sys_.vs_.dims(),
                sys_.part_ ? sys_.part_->ranksPerGroup() : 1));
            const unsigned qbytes = std::min<unsigned>(
                ndp::kQshrQueryBytes,
                std::max(1u, dims_per_sub *
                                 anns::scalarBytes(sys_.vs_.type())));
            for (unsigned slot = 0; slot < qshrs_used; ++slot) {
                if (loadQuerySlot(unit, slot))
                    writes += ndp::setQueryWrites(qbytes);
            }
            batch.writes = writes;
            pending_writes_ += writes;
            max_tasks_per_unit_ = std::max(
                max_tasks_per_unit_,
                static_cast<unsigned>(divCeil(batch.tasks.size(), k)));
        }

        all_tasks_submitted_ = false;
        tasks_done_ = false;
        collected_ = false;
        poll_inflight_ = 0;

        // Issue the instruction stream. The final write of each unit's
        // batch hands its tasks to that unit, spread across this
        // query's QSHRs. The tasks stay parked in the scratch until
        // that write's completion event fires (safe: the next step
        // cannot start until every write completed), so the event
        // captures only the unit index.
        unsigned issued_units = 0;
        for (const unsigned unit : units_in_step_) {
            const UnitBatch &batch = batch_scratch_[unit];
            const unsigned ch = sys_.channelOf(unit);
            for (unsigned w = 0; w + 1 < batch.writes; ++w) {
                sys_.hostCpu_->channel(ch).enqueueBusTransfer(
                    true, [this](Tick) { writeDone(); });
            }
            sys_.hostCpu_->channel(ch).enqueueBusTransfer(
                true, [this, unit, k](Tick) {
                    UnitBatch &b = batch_scratch_[unit];
                    const unsigned nq = sys_.cfg_.ndpParams.numQshrs;
                    for (std::size_t i = 0; i < b.tasks.size(); ++i) {
                        const unsigned qshr =
                            (id_ * k + static_cast<unsigned>(i) % k) % nq;
                        sys_.units_[unit]->submit(qshr,
                                                  std::move(b.tasks[i]));
                    }
                    b.tasks.clear(); // keeps capacity for the next step
                    writeDone();
                });
            ++issued_units;
        }
        ANSMET_ASSERT(issued_units > 0);
    }

    void
    writeDone()
    {
        ANSMET_ASSERT(pending_writes_ > 0);
        if (--pending_writes_ != 0)
            return;
        offload_done_ = sys_.eq_.now();
        stats_.offload += offload_done_ - offload_start_;
        obs::TraceWriter::instance().span(
            "offload", static_cast<std::uint32_t>(qidx_), offload_start_,
            offload_done_);
        all_tasks_submitted_ = true;
        if (pending_sub_ == 0)
            tasksFinished(offload_done_);
        schedulePolling();
    }

    void
    ndpTaskDone(unsigned unit, Tick when)
    {
        ANSMET_ASSERT(pending_sub_ > 0);
        --unit_pending_[unit];
        if (--pending_sub_ == 0 && all_tasks_submitted_)
            tasksFinished(when);
    }

    void
    tasksFinished(Tick when)
    {
        tasks_done_ = true;
        last_task_done_ = when;
        stats_.distComp += when - offload_done_;
        obs::TraceWriter::instance().span(
            "compute", static_cast<std::uint32_t>(qidx_), offload_done_,
            when);
        if (sys_.cfg_.polling.mode == ndp::PollingMode::kIdeal)
            collected();
    }

    void
    schedulePolling()
    {
        if (sys_.cfg_.polling.mode == ndp::PollingMode::kIdeal)
            return;
        TickDelta first;
        if (sys_.cfg_.polling.mode == ndp::PollingMode::kConventional) {
            first = sys_.cfg_.polling.conventionalInterval;
        } else {
            first = sys_.pollEst_
                        ? sys_.pollEst_->expectedLatency(
                              std::max(1u, max_tasks_per_unit_))
                        : sys_.cfg_.polling.conventionalInterval;
        }
        sys_.eq_.scheduleIn(std::max(first, TickDelta{1}),
                            [this] { poll(); });
    }

    void
    poll()
    {
        if (collected_)
            return;
        // Probe only the units whose results are still outstanding;
        // each successful probe also transfers that unit's results.
        poll_targets_.clear();
        for (const unsigned unit : units_in_step_) {
            if (!results_fetched_[unit])
                poll_targets_.push_back(unit);
        }
        ANSMET_ASSERT(!poll_targets_.empty());
        poll_inflight_ = static_cast<unsigned>(poll_targets_.size());
        stats_.polls += poll_inflight_;
        replayMetrics().polls.add(poll_inflight_);
        for (const unsigned unit : poll_targets_) {
            sys_.hostCpu_->channel(sys_.channelOf(unit))
                .enqueueBusTransfer(false, [this, unit](Tick) {
                    if (unit_pending_[unit] == 0 &&
                        !results_fetched_[unit]) {
                        results_fetched_[unit] = 1;
                        ++results_fetched_count_;
                    }
                    if (--poll_inflight_ != 0)
                        return;
                    if (results_fetched_count_ ==
                        units_in_step_.size()) {
                        collected();
                    } else {
                        const TickDelta backoff =
                            sys_.cfg_.polling.mode ==
                                    ndp::PollingMode::kConventional
                                ? sys_.cfg_.polling.conventionalInterval
                                : sys_.cfg_.polling.adaptiveBackoff;
                        sys_.eq_.scheduleIn(backoff, [this] { poll(); });
                    }
                });
        }
    }

    void
    collected()
    {
        if (collected_)
            return;
        collected_ = true;
        stats_.collect += sys_.eq_.now() - last_task_done_;
        obs::TraceWriter::instance().span(
            "collect", static_cast<std::uint32_t>(qidx_), last_task_done_,
            sys_.eq_.now());
        finishStep();
    }

    // ---------------- common ----------------

    unsigned
    chooseGroup(VectorId v)
    {
        if (!sys_.part_)
            return 0;
        const auto &part = *sys_.part_;
        if (!part.isReplicated(v))
            return part.groupOf(v);
        // Replicated vector: steer to the currently least-loaded group.
        unsigned best = 0;
        std::uint64_t best_load = ~std::uint64_t{0};
        for (unsigned g = 0; g < part.numGroups(); ++g) {
            std::uint64_t load = 0;
            for (unsigned r = 0; r < part.ranksPerGroup(); ++r)
                load += sys_.loads_->load(g * part.ranksPerGroup() + r);
            if (load < best_load) {
                best_load = load;
                best = g;
            }
        }
        return best;
    }

    void
    accountFetch(const CompareTask &t, unsigned lines, bool terminated,
                 unsigned backup_lines)
    {
        ReplayMetrics &m = replayMetrics();
        if (t.accepted) {
            stats_.linesEffectual += lines;
            m.linesEffectual.add(lines);
        } else {
            stats_.linesIneffectual += lines;
            m.linesIneffectual.add(lines);
        }
        stats_.backupLines += backup_lines;
        m.backupLines.add(backup_lines);
        if (terminated) {
            ++stats_.terminated;
            m.terminated.inc();
        }
    }

    void
    finishStep()
    {
        const TraceStep &s = trace_->steps[step_];
        stats_.comparisons += s.tasks.size();
        for (const auto &t : s.tasks)
            stats_.accepted += t.accepted ? 1 : 0;
        replayMetrics().steps.inc();
        replayMetrics().comparisons.add(s.tasks.size());

        const Tick heap_start = sys_.eq_.now();
        const std::uint64_t cycles =
            static_cast<std::uint64_t>(s.heapOps) *
            sys_.cfg_.host.heapOpCycles;
        sys_.hostCpu_->compute(std::max<std::uint64_t>(cycles, 1),
                               [this, heap_start] {
                                   stats_.traversal +=
                                       sys_.eq_.now() - heap_start;
                                   ++step_;
                                   startStep();
                               });
    }

    void
    finishQuery()
    {
        stats_.end = sys_.eq_.now();
        ReplayMetrics &m = replayMetrics();
        m.queries.inc();
        m.queryLatency.sample(
            static_cast<double>((stats_.end - stats_.start).raw()));
        auto &tw = obs::TraceWriter::instance();
        if (tw.enabled()) {
            const obs::TraceArg args[] = {
                {"comparisons",
                 static_cast<std::int64_t>(stats_.comparisons)},
                {"terminated",
                 static_cast<std::int64_t>(stats_.terminated)},
                {"lines_effectual",
                 static_cast<std::int64_t>(stats_.linesEffectual)},
                {"lines_ineffectual",
                 static_cast<std::int64_t>(stats_.linesIneffectual)},
                {"polls", static_cast<std::int64_t>(stats_.polls)},
            };
            tw.span("query", static_cast<std::uint32_t>(qidx_),
                    stats_.start, stats_.end, args, std::size(args));
        }
        sys_.run_stats_->queries.push_back(stats_);
        // Hand the slot back before notifying: the callback may begin()
        // the next query on this slot at this same tick.
        idle_ = true;
        QueryDone done = std::move(done_);
        done_ = nullptr;
        if (done)
            done(stats_);
    }

    SystemModel &sys_;
    unsigned id_;
    bool idle_ = true;
    QueryDone done_;
    const QueryTrace *trace_ = nullptr;
    std::size_t qidx_ = 0;
    std::size_t step_ = 0;
    std::size_t task_ = 0;
    std::size_t fetch_cursor_ = 0;
    QueryStats stats_;

    Tick step_start_{};
    Tick offload_start_{};
    Tick offload_done_{};
    Tick last_task_done_{};

    unsigned pending_sub_ = 0;
    unsigned pending_writes_ = 0;
    unsigned poll_inflight_ = 0;
    unsigned max_tasks_per_unit_ = 0;
    std::size_t results_fetched_count_ = 0;
    bool all_tasks_submitted_ = false;
    bool tasks_done_ = false;
    bool collected_ = false;

    // Reusable per-context scratch, indexed by NDP unit (sized in the
    // constructor, cleared per step, never reallocated).
    std::vector<UnitBatch> batch_scratch_;
    std::vector<unsigned> units_in_step_;
    std::vector<unsigned> unit_pending_;
    std::vector<std::uint8_t> results_fetched_;
    std::vector<unsigned> poll_targets_;
    std::vector<std::uint64_t> query_loaded_bits_;
};

void
scaleCachesToDataset(SystemConfig &cfg, std::uint64_t data_bytes)
{
    // Keep data at least ~16x the LLC, as at billion scale, while
    // never exceeding the paper's real capacities.
    auto pow2_capacity = [](std::uint64_t target, unsigned assoc) {
        std::uint64_t sets =
            std::max<std::uint64_t>(1, target / (assoc * kLineBytes));
        sets = std::bit_floor(sets);
        return sets * assoc * kLineBytes;
    };

    auto &cp = cfg.host.cacheParams;
    const std::uint64_t llc_target = std::clamp<std::uint64_t>(
        data_bytes / 16, 128 * 1024, 8 * 1024 * 1024);
    cp.llcBytes = pow2_capacity(llc_target, cp.llcAssoc);
    cp.l2Bytes = std::max<std::uint64_t>(
        32 * 1024, pow2_capacity(cp.llcBytes / 8, cp.l2Assoc));
    cp.l1Bytes = std::max<std::uint64_t>(
        8 * 1024, pow2_capacity(cp.l2Bytes / 8, cp.l1Assoc));
}

// ---------------------------------------------------------------------
// SystemModel
// ---------------------------------------------------------------------

SystemModel::SystemModel(const SystemConfig &cfg, const anns::VectorSet &vs,
                         anns::Metric metric, const et::EtProfile *profile,
                         const std::vector<VectorId> &hot)
    : cfg_(cfg), vs_(vs), metric_(metric)
{
    fetchsim_ = std::make_unique<et::FetchSimulator>(
        vs, metric, schemeOf(cfg.design), profile);
    hostCpu_ = std::make_unique<cpu::HostCpu>(eq_, cfg.host, cfg.timing,
                                              cfg.org);

    if (isNdp(cfg.design)) {
        for (unsigned u = 0; u < cfg.ndpUnits; ++u) {
            units_.push_back(std::make_unique<ndp::NdpUnit>(
                eq_, cfg.ndpParams, cfg.timing, cfg.org, u));
        }
        part_ = std::make_unique<layout::Partitioner>(
            layout::PartitionConfig{cfg.ndpUnits, cfg.subVectorBytes},
            vs.dims(), anns::scalarBytes(vs.type()), vs.size());
        loads_ = std::make_unique<layout::LoadTracker>(cfg.ndpUnits);
        allocatePlacement(cfg.replicateHot ? hot : std::vector<VectorId>{});

        // Adaptive polling prediction: with a fetch window of depth d,
        // the steady-state cost per line is roughly one DRAM round
        // trip divided by d, plus a pipeline-fill fixed cost.
        const unsigned rt =
            cfg.timing.tRCD + cfg.timing.tCL + cfg.timing.tBL;
        const TickDelta per_line = cfg.timing.cycles(
            std::max(cfg.timing.tBL,
                     rt / std::max(1u, cfg.ndpParams.fetchPipelineDepth)));
        const TickDelta fixed =
            cfg.timing.cycles(rt) + 4 * cfg.ndpParams.period();
        const et::EtScheme scheme = schemeOf(cfg.design);
        const bool uses_et = scheme != et::EtScheme::kNone &&
                             !(scheme == et::EtScheme::kDimOnly &&
                               metric != anns::Metric::kL2);
        if (uses_et && profile && !profile->fetchCountDist.empty()) {
            // Approximate every ET scheme's completion time with the
            // sampled ETOpt fetch distribution (Section 5.4).
            pollEst_ = std::make_unique<ndp::PollingEstimator>(
                profile->fetchCountDist, per_line, fixed);
        } else {
            // No early termination: every task fetches the full layout.
            std::vector<double> dist(fetchsim_->fullLines() + 1, 0.0);
            dist.back() = 1.0;
            pollEst_ = std::make_unique<ndp::PollingEstimator>(
                dist, per_line, fixed);
        }
    }
}

SystemModel::~SystemModel() = default;

void
SystemModel::allocatePlacement(const std::vector<VectorId> &hot)
{
    rank_alloc_.assign(cfg_.ndpUnits, 0);
    part_->replicate(hot);

    home_place_.resize(vs_.size());
    for (std::size_t v = 0; v < vs_.size(); ++v) {
        const auto id = static_cast<VectorId>(v);
        const unsigned home = part_->groupOf(id);
        const auto subs = part_->placement(id, home);
        auto &out = home_place_[v];
        for (const auto &s : subs) {
            const unsigned lines =
                fetchsim_->subPlan(s.dimEnd - s.dimBegin).totalLines();
            out.push_back(
                SubPlace{s.rank, s.dimBegin, s.dimEnd, rank_alloc_[s.rank]});
            rank_alloc_[s.rank] += lines;
        }
        if (part_->isReplicated(id)) {
            for (unsigned g = 0; g < part_->numGroups(); ++g) {
                if (g == home)
                    continue;
                const auto rsubs = part_->placement(id, g);
                std::vector<SubPlace> rout;
                for (const auto &s : rsubs) {
                    const unsigned lines =
                        fetchsim_->subPlan(s.dimEnd - s.dimBegin)
                            .totalLines();
                    rout.push_back(SubPlace{s.rank, s.dimBegin, s.dimEnd,
                                            rank_alloc_[s.rank]});
                    rank_alloc_[s.rank] += lines;
                }
                replica_place_[(static_cast<std::uint64_t>(id) << 8) | g] =
                    std::move(rout);
            }
        }
    }
}

const std::vector<SystemModel::SubPlace> &
SystemModel::placeOf(VectorId v, unsigned group) const
{
    if (!part_ || group == part_->groupOf(v))
        return home_place_[v];
    const auto it =
        replica_place_.find((static_cast<std::uint64_t>(v) << 8) | group);
    ANSMET_ASSERT(it != replica_place_.end(),
                  "no replica of vector in requested group");
    return it->second;
}

void
SystemModel::precomputeFetch(const std::vector<QueryTrace> &traces)
{
    if (!cfg_.prefetchReplay || runtime::Runtime::global().lanes() == 1)
        return; // serial reference path simulates on the fly

    // The dimension ranges every comparison is simulated over: the
    // rank-group split for NDP designs (identical in every group, only
    // ranks rotate), or the full vector for CPU designs.
    std::vector<std::pair<unsigned, unsigned>> ranges;
    if (isNdp(cfg_.design) && part_) {
        for (const auto &s : part_->placement(0, 0))
            ranges.emplace_back(s.dimBegin, s.dimEnd);
    } else {
        ranges.emplace_back(0, vs_.dims());
    }
    // Warm the plan cache once so the parallel phase only reads it.
    for (const auto &[b, e] : ranges)
        (void)fetchsim_->subPlan(e - b);

    prefetch_.assign(traces.size(), {});
    runtime::parallelFor(0, traces.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t q = lo; q < hi; ++q) {
            auto &out = prefetch_[q];
            const QueryTrace &tr = traces[q];
            out.reserve(tr.numComparisons() * ranges.size());
            for (const auto &s : tr.steps) {
                for (const auto &t : s.tasks) {
                    for (const auto &[b, e] : ranges) {
                        const et::FetchResult fr =
                            fetchsim_->simulateRange(tr.query.data(),
                                                     t.vec, t.threshold,
                                                     b, e);
                        out.push_back(PreFetch{fr.lines, fr.backupLines,
                                               fr.terminatedEarly});
                    }
                }
            }
        }
    });
}

void
SystemModel::beginSession(const std::vector<QueryTrace> &traces,
                          unsigned slots)
{
    ANSMET_ASSERT(!ran_, "SystemModel session is single-use");
    ANSMET_ASSERT(slots > 0, "session needs at least one slot");
    ran_ = true;
    // A figure binary replays many designs from tick 0 each; a fresh
    // pid per run keeps their timelines from overlapping in the trace.
    obs::TraceWriter::instance().beginRun(designName(cfg_.design));

    session_stats_ = RunStats{};
    run_stats_ = &session_stats_;
    traces_ = &traces;
    next_query_ = 0;
    precomputeFetch(traces);

    for (unsigned c = 0; c < slots; ++c)
        contexts_.push_back(std::make_unique<QueryContext>(*this, c));
}

bool
SystemModel::slotIdle(unsigned slot) const
{
    ANSMET_ASSERT(slot < contexts_.size(), "slot out of range");
    return contexts_[slot]->idle();
}

void
SystemModel::submit(unsigned slot, std::size_t traceIdx, QueryDone done)
{
    ANSMET_ASSERT(run_stats_ != nullptr, "no open session");
    ANSMET_ASSERT(slot < contexts_.size(), "slot out of range");
    ANSMET_ASSERT(traceIdx < traces_->size(), "trace index out of range");
    contexts_[slot]->begin(traceIdx, std::move(done));
}

RunStats
SystemModel::endSession()
{
    ANSMET_ASSERT(run_stats_ != nullptr, "no open session");
    ANSMET_ASSERT(eq_.pending() == 0,
                  "endSession with simulation events still pending");
    for (unsigned s = 0; s < contexts_.size(); ++s)
        ANSMET_ASSERT(contexts_[s]->idle(),
                      "endSession with a query still in flight");

    RunStats rs = std::move(session_stats_);
    session_stats_ = RunStats{};
    rs.makespan = eq_.now() - Tick{};
    rs.loadImbalance = loads_ ? loads_->imbalanceRatio() : 1.0;
    rs.energy = collectEnergy(rs);
    run_stats_ = nullptr;
    traces_ = nullptr;
    return rs;
}

void
SystemModel::dispatchNext(unsigned slot)
{
    if (next_query_ >= traces_->size())
        return; // this slot is done
    submit(slot, next_query_++,
           [this, slot](const QueryStats &) { dispatchNext(slot); });
}

RunStats
SystemModel::run(const std::vector<QueryTrace> &traces)
{
    const unsigned ctxs = std::min<unsigned>(
        cfg_.concurrentQueries,
        static_cast<unsigned>(std::max<std::size_t>(1, traces.size())));
    beginSession(traces, ctxs);
    for (unsigned c = 0; c < ctxs; ++c)
        dispatchNext(c);

    if (std::getenv("ANSMET_EQ_DEBUG")) {
        eq_.setDebug(true);
        eq_.setDebugHook([this] {
            std::size_t bank = 0, ndpq = 0;
            std::uint64_t nlines = 0, ntasks = 0;
            for (unsigned c = 0; c < hostCpu_->numChannels(); ++c)
                bank += hostCpu_->channel(c).queueDepth();
            for (auto &u : units_) {
                ndpq += u->rankController().queueDepth();
                nlines += u->linesFetched();
                ntasks += u->tasksCompleted();
            }
            std::fprintf(stderr,
                         "  host_bankq=%zu ndp_bankq=%zu ndp_lines=%llu "
                         "ndp_tasks=%llu done_queries=%zu\n",
                         bank, ndpq, (unsigned long long)nlines,
                         (unsigned long long)ntasks,
                         run_stats_ ? run_stats_->queries.size() : 0);
        });
    }
    eq_.run();
    return endSession();
}

dram::EnergyBreakdown
SystemModel::collectEnergy(const RunStats &rs) const
{
    dram::EnergyBreakdown total;
    const TickDelta elapsed = rs.makespan;

    // Host channel DRAM energy (index data; plus vector data for CPU
    // designs). I/O is charged for every channel transfer.
    for (unsigned c = 0; c < hostCpu_->numChannels(); ++c) {
        const auto &ctrl = hostCpu_->channel(c);
        std::uint64_t transfers = 0;
        for (const auto &[name, counter] : ctrl.stats().counters()) {
            if (name == "reads" || name == "writes" ||
                name == "bus_reads" || name == "bus_writes") {
                transfers += counter.value();
            }
        }
        for (unsigned r = 0; r < ctrl.numRanks(); ++r) {
            total += dram::rankEnergy(ctrl.rankDevice(r), cfg_.energy,
                                      elapsed,
                                      r == 0 ? transfers : 0);
        }
    }

    // NDP rank energy: no channel I/O for local fetches, plus the
    // compute units' active power.
    double ndp_compute_nj = 0.0;
    for (const auto &u : units_) {
        const auto &ctrl = u->rankController();
        total += dram::rankEnergy(ctrl.rankDevice(0), cfg_.energy, elapsed,
                                  0);
        ndp_compute_nj += cfg_.energy.ndpUnitActiveMw *
                          static_cast<double>(u->computeBusy().raw()) *
                          1e-6;
    }

    // Host cores: for CPU designs the core spins through the whole
    // query (compute + memory stall); for NDP designs it is busy only
    // during traversal, offload, and collection.
    double host_busy_ticks = 0.0;
    for (const auto &q : rs.queries) {
        host_busy_ticks += static_cast<double>(q.traversal.raw()) +
                           static_cast<double>(q.offload.raw()) +
                           static_cast<double>(q.collect.raw());
        if (!isNdp(cfg_.design))
            host_busy_ticks += static_cast<double>(q.distComp.raw());
    }
    // W * ps = 1e-12 J = 1e-3 nJ
    const double host_nj =
        cfg_.energy.cpuCoreActiveW * host_busy_ticks * 1e-3;

    total.backgroundNj += ndp_compute_nj + host_nj;
    return total;
}

} // namespace ansmet::core
