/**
 * @file
 * Hybrid vertical/horizontal partitioning of vector data across DRAM
 * ranks (Section 5.3 of the paper).
 *
 * A single knob — the sub-vector size S — spans the whole space:
 * S = 64 B is pure vertical partitioning (every rank holds a slice of
 * every vector), S >= vector size is pure horizontal (each vector
 * lives entirely in one rank), and intermediate values form rank
 * groups of ceil(vectorBytes / S) ranks. Vectors hash across groups;
 * hot vectors (HNSW top layers, IVF centroids) can be replicated to
 * every group to fight load imbalance.
 */

#ifndef ANSMET_LAYOUT_PARTITION_H
#define ANSMET_LAYOUT_PARTITION_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace ansmet::layout {

/** Partitioning configuration. */
struct PartitionConfig
{
    unsigned numRanks = 32;
    unsigned subVectorBytes = 1024; //!< S; the paper's best is 1 kB

    /** Pure vertical = minimum sub-vector (one 64 B line). */
    static PartitionConfig
    vertical(unsigned ranks)
    {
        return {ranks, kLineBytes};
    }

    /** Pure horizontal = whole vector per rank. */
    static PartitionConfig
    horizontal(unsigned ranks)
    {
        return {ranks, ~0u};
    }

    static PartitionConfig
    hybrid(unsigned ranks, unsigned s)
    {
        return {ranks, s};
    }
};

/** One dimension-slice of a vector mapped to a rank. */
struct SubVector
{
    unsigned rank;
    unsigned dimBegin;
    unsigned dimEnd; //!< exclusive
};

/** Static data placement across ranks. */
class Partitioner
{
  public:
    /**
     * @param dims vector dimensionality
     * @param bytes_per_dim storage bytes of one element
     */
    Partitioner(const PartitionConfig &cfg, unsigned dims,
                unsigned bytes_per_dim, std::size_t num_vectors);

    /** Ranks cooperating on one vector. */
    unsigned ranksPerGroup() const { return ranks_per_group_; }

    /** Number of independent rank groups. */
    unsigned numGroups() const { return num_groups_; }

    /** Home group of @p v. */
    unsigned
    groupOf(VectorId v) const
    {
        // Multiplicative hash so consecutive ids spread across groups.
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull >> 32) %
            num_groups_);
    }

    /**
     * Placement of @p v within group @p group (its home group unless
     * the vector is replicated and the caller picked another group).
     */
    std::vector<SubVector> placement(VectorId v, unsigned group) const;

    std::vector<SubVector>
    placement(VectorId v) const
    {
        return placement(v, groupOf(v));
    }

    /** Mark @p hot vectors as replicated to every group. */
    void
    replicate(const std::vector<VectorId> &hot)
    {
        replicated_.insert(hot.begin(), hot.end());
    }

    bool
    isReplicated(VectorId v) const
    {
        return replicated_.count(v) != 0;
    }

    std::size_t numReplicated() const { return replicated_.size(); }

    /** Replicated bytes across all extra copies. */
    std::uint64_t
    replicationBytes() const
    {
        return static_cast<std::uint64_t>(replicated_.size()) *
               (num_groups_ - 1) * dims_ * bytes_per_dim_;
    }

    unsigned dims() const { return dims_; }
    unsigned numRanks() const { return cfg_.numRanks; }

  private:
    PartitionConfig cfg_;
    unsigned dims_;
    unsigned bytes_per_dim_;
    std::size_t num_vectors_;
    unsigned dims_per_sub_;
    unsigned ranks_per_group_;
    unsigned num_groups_;
    std::unordered_set<VectorId> replicated_;
};

/** Load-imbalance accounting: max-over-ranks vs average. */
class LoadTracker
{
  public:
    explicit LoadTracker(unsigned num_ranks) : load_(num_ranks, 0) {}

    void add(unsigned rank, std::uint64_t lines) { load_[rank] += lines; }

    std::uint64_t load(unsigned rank) const { return load_[rank]; }

    /** The rank with the smallest accumulated load among @p ranks. */
    unsigned
    leastLoaded(const std::vector<unsigned> &ranks) const
    {
        ANSMET_ASSERT(!ranks.empty());
        unsigned best = ranks[0];
        for (const unsigned r : ranks)
            if (load_[r] < load_[best])
                best = r;
        return best;
    }

    /** max(load) / mean(load); 1.0 = perfectly balanced. */
    double
    imbalanceRatio() const
    {
        std::uint64_t max = 0, sum = 0;
        for (const auto l : load_) {
            max = std::max(max, l);
            sum += l;
        }
        if (sum == 0)
            return 1.0;
        const double mean =
            static_cast<double>(sum) / static_cast<double>(load_.size());
        return static_cast<double>(max) / mean;
    }

  private:
    std::vector<std::uint64_t> load_;
};

} // namespace ansmet::layout

#endif // ANSMET_LAYOUT_PARTITION_H
