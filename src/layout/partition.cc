#include "layout/partition.h"

#include <algorithm>

#include "common/bitops.h"

namespace ansmet::layout {

Partitioner::Partitioner(const PartitionConfig &cfg, unsigned dims,
                         unsigned bytes_per_dim, std::size_t num_vectors)
    : cfg_(cfg), dims_(dims), bytes_per_dim_(bytes_per_dim),
      num_vectors_(num_vectors)
{
    ANSMET_ASSERT(cfg.numRanks >= 1 && dims >= 1 && bytes_per_dim >= 1);

    const std::uint64_t vector_bytes =
        static_cast<std::uint64_t>(dims) * bytes_per_dim;
    const std::uint64_t s =
        std::max<std::uint64_t>(cfg.subVectorBytes, kLineBytes);

    ranks_per_group_ = static_cast<unsigned>(
        std::min<std::uint64_t>(divCeil(vector_bytes, s), cfg.numRanks));
    ranks_per_group_ = std::max(1u, ranks_per_group_);
    num_groups_ = std::max(1u, cfg.numRanks / ranks_per_group_);

    // Dimensions per sub-vector: even split over the group.
    dims_per_sub_ =
        static_cast<unsigned>(divCeil(dims, ranks_per_group_));
}

std::vector<SubVector>
Partitioner::placement(VectorId v, unsigned group) const
{
    ANSMET_ASSERT(group < num_groups_);
    std::vector<SubVector> subs;
    const unsigned base_rank = group * ranks_per_group_;

    unsigned d = 0;
    unsigned i = 0;
    while (d < dims_) {
        const unsigned end = std::min(d + dims_per_sub_, dims_);
        // Rotate the starting rank by vector id so single sub-vector
        // vectors spread across the ranks of the group.
        const unsigned rank =
            base_rank + (i + static_cast<unsigned>(v)) % ranks_per_group_;
        subs.push_back({rank, d, end});
        d = end;
        ++i;
    }
    return subs;
}

} // namespace ansmet::layout
