/**
 * @file
 * Cycle-approximate host CPU model (Table 1: 16 OoO cores, 3.2 GHz,
 * L1/L2/LLC + DDR5-4800 x 4 channels).
 *
 * The host does two kinds of work:
 *  - compute: index traversal, heap maintenance, and (in CPU designs)
 *    SIMD distance kernels — charged via an issue-width cost model;
 *  - memory: 64 B line accesses through the cache hierarchy; misses go
 *    to the channel memory controllers of the event-driven DRAM model.
 *
 * The query loop is sequential (one query at a time per core), which
 * matches how the paper reports per-query latency; throughput scaling
 * over 16 cores is applied at the QPS level by the experiment runner.
 */

#ifndef ANSMET_CPU_HOST_H
#define ANSMET_CPU_HOST_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "common/types.h"
#include "dram/controller.h"
#include "sim/event_queue.h"

namespace ansmet::cpu {

/** Host core cost model parameters. */
struct HostParams
{
    double freqGHz = 3.2;
    unsigned cores = 16;

    /** SIMD lanes per cycle for distance kernels (FP32 elements). */
    unsigned simdLanes = 16;
    /** Cycles per heap push/pop (log-depth pointer chasing). */
    unsigned heapOpCycles = 12;
    /** Cycles of control overhead per traversal step. */
    unsigned stepOverheadCycles = 24;
    /** Cycles to recover one 64 B line of bit-planed data in software
     *  (bit gather); the paper's CPU-ET assumes dedicated logic, so
     *  this defaults to 0 to match its "optimistic" CPU-ET. */
    unsigned bitRecoverCycles = 0;

    cache::HierarchyParams cacheParams{};

    TickDelta period() const { return periodFromGHz(freqGHz); }
};

/**
 * The host CPU attached to the channel-level DRAM controllers.
 * All methods are callback-based so the caller can sequence work on
 * the shared event queue.
 */
class HostCpu
{
  public:
    HostCpu(sim::EventQueue &eq, const HostParams &hp,
            const dram::TimingParams &tp, const dram::OrgParams &org);

    /** Completion callback type; inline capture only (hot path). */
    using Callback = sim::EventQueue::Callback;

    /** Busy-wait @p cycles of pure compute, then call @p done. */
    void compute(std::uint64_t cycles, Callback done);

    /**
     * Read @p lines consecutive 64 B lines starting at @p addr through
     * the cache hierarchy; @p done fires when the last line arrives.
     */
    void read(Addr addr, unsigned lines, Callback done);

    /**
     * Issue an uncached 64 B write to channel @p channel (the NDP
     * instruction path: DDR WRITE to a reserved address).
     */
    void writeUncached(unsigned channel, Addr addr, Callback done);

    /** Issue an uncached 64 B read (the NDP poll path). */
    void readUncached(unsigned channel, Addr addr, Callback done);

    /** Cycles to compute a distance over @p dims elements with SIMD. */
    std::uint64_t
    distanceKernelCycles(unsigned dims) const
    {
        return std::max<std::uint64_t>(1, dims / hp_.simdLanes) + 8;
    }

    const HostParams &params() const { return hp_; }
    cache::CacheHierarchy &caches() { return *caches_; }
    dram::MemController &channel(unsigned c) { return *channels_[c]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Total busy compute ticks accumulated (for energy). */
    TickDelta computeBusy() const { return compute_busy_; }

    /** Map a flat line number onto (channel, rank, bank address). */
    struct MappedLine
    {
        unsigned channel;
        unsigned rank;
        dram::BankAddr addr;
    };
    MappedLine mapHostLine(std::uint64_t line) const;

  private:
    /** In-flight multi-line read: join counter + completion. Pooled so
     *  the per-read shared_ptr allocation is gone from the hot path. */
    struct ReadOp
    {
        unsigned remaining = 0;
        Callback done;
    };

    std::uint32_t allocReadOp(unsigned lines, Callback done);
    void lineDone(std::uint32_t op);

    sim::EventQueue &eq_;
    HostParams hp_;
    dram::OrgParams org_;
    std::unique_ptr<cache::CacheHierarchy> caches_;
    std::vector<std::unique_ptr<dram::MemController>> channels_;
    std::vector<ReadOp> read_pool_;
    std::vector<std::uint32_t> read_free_;
    TickDelta compute_busy_{};
};

} // namespace ansmet::cpu

#endif // ANSMET_CPU_HOST_H
