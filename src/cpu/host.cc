#include "cpu/host.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace ansmet::cpu {

namespace {

struct HostMetrics
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter computeCycles = reg.counter("host.compute_cycles");
    obs::Counter linesRead = reg.counter("host.lines_read");
    obs::Counter cacheHits = reg.counter("host.cache_hits");
    obs::Counter cacheMisses = reg.counter("host.cache_misses");
};

HostMetrics &
hostMetrics()
{
    static HostMetrics m;
    return m;
}

} // namespace

HostCpu::HostCpu(sim::EventQueue &eq, const HostParams &hp,
                 const dram::TimingParams &tp, const dram::OrgParams &org)
    : eq_(eq), hp_(hp), org_(org),
      caches_(std::make_unique<cache::CacheHierarchy>(hp.cacheParams))
{
    for (unsigned c = 0; c < org.channels; ++c) {
        channels_.push_back(std::make_unique<dram::MemController>(
            eq, tp, org, org.ranksPerChannel(),
            "host_ch" + std::to_string(c)));
    }
}

void
HostCpu::compute(std::uint64_t cycles, Callback done)
{
    const TickDelta ticks = cycles * hp_.period();
    compute_busy_ += ticks;
    hostMetrics().computeCycles.add(cycles);
    eq_.scheduleIn(ticks, std::move(done));
}

HostCpu::MappedLine
HostCpu::mapHostLine(std::uint64_t line) const
{
    MappedLine m;
    // Channel-interleave at line granularity for bandwidth, then rank,
    // then the in-rank mapping.
    m.channel = static_cast<unsigned>(line % channels_.size());
    line /= channels_.size();
    m.rank = static_cast<unsigned>(line % org_.ranksPerChannel());
    line /= org_.ranksPerChannel();
    m.addr = dram::mapLine(line, org_);
    return m;
}

std::uint32_t
HostCpu::allocReadOp(unsigned lines, Callback done)
{
    std::uint32_t op;
    if (read_free_.empty()) {
        read_pool_.emplace_back();
        op = static_cast<std::uint32_t>(read_pool_.size() - 1);
    } else {
        op = read_free_.back();
        read_free_.pop_back();
    }
    read_pool_[op].remaining = lines;
    read_pool_[op].done = std::move(done);
    return op;
}

void
HostCpu::lineDone(std::uint32_t op)
{
    ReadOp &r = read_pool_[op];
    ANSMET_ASSERT(r.remaining > 0);
    if (--r.remaining != 0)
        return;
    Callback done = std::move(r.done);
    read_free_.push_back(op);
    done();
}

void
HostCpu::read(Addr addr, unsigned lines, Callback done)
{
    ANSMET_ASSERT(lines >= 1);
    // Issue all lines; complete when the slowest returns. Cache hits
    // add their hit latency; misses traverse to DRAM. The join state
    // lives in a pooled ReadOp; events carry only its index.
    const std::uint32_t op = allocReadOp(lines, std::move(done));

    unsigned hits = 0;
    for (unsigned i = 0; i < lines; ++i) {
        const Addr a = addr + static_cast<Addr>(i) * kLineBytes;
        const auto level = caches_->access(a);
        const TickDelta lat =
            static_cast<std::uint64_t>(caches_->hitCycles(level)) *
            hp_.period();
        if (level != cache::CacheHierarchy::Level::kMemory) {
            ++hits;
            eq_.scheduleIn(lat, [this, op] { lineDone(op); });
            continue;
        }
        const MappedLine m = mapHostLine(a / kLineBytes);
        dram::Request req;
        req.addr = m.addr;
        req.isWrite = false;
        req.onComplete = [this, lat, op](Tick) {
            // LLC-to-core return latency after the DRAM data arrives.
            eq_.scheduleIn(lat, [this, op] { lineDone(op); });
        };
        channels_[m.channel]->enqueue(m.rank, std::move(req));
    }
    HostMetrics &hm = hostMetrics();
    hm.linesRead.add(lines);
    hm.cacheHits.add(hits);
    hm.cacheMisses.add(lines - hits);
}

void
HostCpu::writeUncached(unsigned channel, Addr addr, Callback done)
{
    (void)addr; // buffer-chip register target: no bank is involved
    // A Callback is too big to re-capture in a Request::Callback by
    // design; park it in the read-op pool (a one-line "read").
    const std::uint32_t op = allocReadOp(1, std::move(done));
    channels_[channel % channels_.size()]->enqueueBusTransfer(
        true, [this, op](Tick) { lineDone(op); });
}

void
HostCpu::readUncached(unsigned channel, Addr addr, Callback done)
{
    (void)addr;
    const std::uint32_t op = allocReadOp(1, std::move(done));
    channels_[channel % channels_.size()]->enqueueBusTransfer(
        false, [this, op](Tick) { lineDone(op); });
}

} // namespace ansmet::cpu
