#include "cache/cache.h"

#include "common/bitops.h"

namespace ansmet::cache {

CacheArray::CacheArray(std::uint64_t size_bytes, unsigned assoc,
                       unsigned line_bytes)
    : line_shift_(log2Exact(line_bytes)), assoc_(assoc)
{
    ANSMET_ASSERT(isPow2(line_bytes));
    const std::uint64_t lines = size_bytes / line_bytes;
    ANSMET_ASSERT(lines % assoc == 0, "capacity not divisible by assoc");
    const std::uint64_t num_sets = lines / assoc;
    ANSMET_ASSERT(isPow2(num_sets), "set count must be a power of two");
    sets_.resize(num_sets);
    for (auto &s : sets_)
        s.ways.resize(assoc);
}

std::uint64_t
CacheArray::setIndex(Addr addr) const
{
    return (addr >> line_shift_) & (sets_.size() - 1);
}

Addr
CacheArray::tagOf(Addr addr) const
{
    return (addr >> line_shift_) / sets_.size();
}

bool
CacheArray::accessAndFill(Addr addr)
{
    Set &set = sets_[setIndex(addr)];
    const Addr tag = tagOf(addr);
    ++use_clock_;

    for (auto &w : set.ways) {
        if (w.valid && w.tag == tag) {
            w.lastUse = use_clock_;
            return true;
        }
    }

    // Miss: install into the LRU way.
    Way *victim = &set.ways[0];
    for (auto &w : set.ways) {
        if (!w.valid) {
            victim = &w;
            break;
        }
        if (w.lastUse < victim->lastUse)
            victim = &w;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->lastUse = use_clock_;
    return false;
}

bool
CacheArray::probe(Addr addr) const
{
    const Set &set = sets_[setIndex(addr)];
    const Addr tag = tagOf(addr);
    for (const auto &w : set.ways)
        if (w.valid && w.tag == tag)
            return true;
    return false;
}

void
CacheArray::flush()
{
    for (auto &s : sets_)
        for (auto &w : s.ways)
            w.valid = false;
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &p)
    : p_(p),
      l1_(p.l1Bytes, p.l1Assoc),
      l2_(p.l2Bytes, p.l2Assoc),
      llc_(p.llcBytes, p.llcAssoc),
      stats_("cache")
{
}

CacheHierarchy::Level
CacheHierarchy::access(Addr addr)
{
    if (l1_.accessAndFill(addr)) {
        ++stats_.counter("l1_hits");
        return Level::kL1;
    }
    // The L1 miss above already installed the line there (fill on the
    // way back); the same holds for L2/LLC below.
    if (l2_.accessAndFill(addr)) {
        ++stats_.counter("l2_hits");
        return Level::kL2;
    }
    if (llc_.accessAndFill(addr)) {
        ++stats_.counter("llc_hits");
        return Level::kLlc;
    }
    ++stats_.counter("misses");
    return Level::kMemory;
}

unsigned
CacheHierarchy::hitCycles(Level level) const
{
    switch (level) {
      case Level::kL1: return p_.l1Cycles;
      case Level::kL2: return p_.l2Cycles;
      case Level::kLlc: return p_.llcCycles;
      case Level::kMemory: return p_.llcCycles; // traversal before DRAM
    }
    return p_.l1Cycles;
}

void
CacheHierarchy::flush()
{
    l1_.flush();
    l2_.flush();
    llc_.flush();
}

} // namespace ansmet::cache
