/**
 * @file
 * Set-associative LRU cache model (tags only, no data), plus a
 * three-level hierarchy matching the paper's host CPU (Table 1):
 * 64 kB L1, 1 MB L2 (14 cycles), 8 MB LLC (60 cycles), DDR5 behind it.
 */

#ifndef ANSMET_CACHE_CACHE_H
#define ANSMET_CACHE_CACHE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/types.h"

namespace ansmet::cache {

/** Tag array of one cache level with true-LRU replacement. */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_bytes cache line size (64 throughout)
     */
    CacheArray(std::uint64_t size_bytes, unsigned assoc,
               unsigned line_bytes = kLineBytes);

    /**
     * Look up @p addr; on miss, install it (evicting LRU).
     * @return true on hit.
     */
    bool accessAndFill(Addr addr);

    /** Look up without modifying state. */
    bool probe(Addr addr) const;

    /** Invalidate everything. */
    void flush();

    std::uint64_t numSets() const { return sets_.size(); }
    unsigned assoc() const { return assoc_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    struct Set
    {
        std::vector<Way> ways;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    unsigned line_shift_;
    unsigned assoc_;
    std::vector<Set> sets_;
    std::uint64_t use_clock_ = 0;
};

/** Latency configuration of the three-level hierarchy, in CPU cycles. */
struct HierarchyParams
{
    std::uint64_t l1Bytes = 64 * 1024;
    unsigned l1Assoc = 8;
    unsigned l1Cycles = 4;

    std::uint64_t l2Bytes = 1024 * 1024;
    unsigned l2Assoc = 8;
    unsigned l2Cycles = 14;

    std::uint64_t llcBytes = 8 * 1024 * 1024;
    unsigned llcAssoc = 16;
    unsigned llcCycles = 60;
};

/**
 * Functional-timing cache hierarchy front-end. On an access it walks
 * L1 -> L2 -> LLC, returns the hit level and latency, and fills all
 * levels on the way back. DRAM access time is added by the caller
 * (the host CPU model), which owns the channel controllers.
 */
class CacheHierarchy
{
  public:
    enum class Level { kL1, kL2, kLlc, kMemory };

    explicit CacheHierarchy(const HierarchyParams &p);

    /**
     * Access one 64 B line.
     * @return hit level; latency in CPU cycles for cache-resident data
     *         is hitCycles(level). Level::kMemory means go to DRAM.
     */
    Level access(Addr addr);

    /** Cycles to serve a hit at @p level (kMemory returns LLC miss path). */
    unsigned hitCycles(Level level) const;

    void flush();

    StatGroup &stats() { return stats_; }

  private:
    HierarchyParams p_;
    CacheArray l1_;
    CacheArray l2_;
    CacheArray llc_;
    StatGroup stats_;
};

} // namespace ansmet::cache

#endif // ANSMET_CACHE_CACHE_H
