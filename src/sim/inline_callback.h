/**
 * @file
 * Small-buffer callable for simulation hot paths.
 *
 * `InlineFunction<R(Args...), Capacity>` is a move-only replacement
 * for `std::function` that stores its callable inside the object —
 * never on the heap. The capacity is part of the type, and a
 * static_assert fires *at the capture site* when a lambda outgrows it,
 * so "this event allocates" becomes a compile error instead of a
 * profiler finding. See DESIGN.md, "Hot-path allocation rules".
 *
 * Differences from std::function, all deliberate:
 *  - move-only (copying a captured state bundle is never wanted on the
 *    hot path; wrap in std::shared_ptr explicitly if it ever is);
 *  - invoking an empty InlineFunction is undefined (callers check
 *    `if (cb)` exactly as the codebase already does);
 *  - the stored callable must be nothrow-move-constructible, because
 *    relocation happens inside event-queue containers.
 */

#ifndef ANSMET_SIM_INLINE_CALLBACK_H
#define ANSMET_SIM_INLINE_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ansmet::sim {

template <typename Signature, std::size_t Capacity>
class InlineFunction; // primary template left undefined

template <std::size_t Capacity, typename R, typename... Args>
class InlineFunction<R(Args...), Capacity>
{
  public:
    static constexpr std::size_t kCapacity = Capacity;

    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    /** Wrap any callable; fails to compile if it exceeds Capacity. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callback capture exceeds the inline budget for "
                      "this site; shrink the capture (indices, not "
                      "values) or pool the state");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callback capture");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callback captures must be nothrow-movable");
        ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(f));
        invoke_ = [](void *s, Args... args) -> R {
            return (*static_cast<Fn *>(s))(std::forward<Args>(args)...);
        };
        manage_ = [](void *dst, void *src) {
            if (src != nullptr) {
                // Relocate: move-construct into dst, destroy src.
                ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                static_cast<Fn *>(src)->~Fn();
            } else {
                static_cast<Fn *>(dst)->~Fn();
            }
        };
    }

    InlineFunction(InlineFunction &&o) noexcept { moveFrom(o); }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(storage_, std::forward<Args>(args)...);
    }

  private:
    void
    reset()
    {
        if (invoke_ != nullptr) {
            manage_(storage_, nullptr);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

    void
    moveFrom(InlineFunction &o)
    {
        if (o.invoke_ != nullptr) {
            o.manage_(storage_, o.storage_);
            invoke_ = o.invoke_;
            manage_ = o.manage_;
            o.invoke_ = nullptr;
            o.manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity];
    R (*invoke_)(void *, Args...) = nullptr;
    /** manage(dst, src): src != null relocates src into dst (move +
     *  destroy source); src == null destroys dst. */
    void (*manage_)(void *, void *) = nullptr;
};

} // namespace ansmet::sim

#endif // ANSMET_SIM_INLINE_CALLBACK_H
