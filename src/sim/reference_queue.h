/**
 * @file
 * The pre-overhaul event queue, kept verbatim as an executable
 * specification: a single `std::priority_queue` over (tick, priority,
 * insertion-order) with `std::function` callbacks and lazy
 * cancellation.
 *
 * Two consumers, neither of them the simulator:
 *  - tests/test_event_queue.cc replays randomized schedules through
 *    this queue and the production calendar queue side by side and
 *    asserts identical execution order (the ordering-parity oracle);
 *  - bench/macro_sim.cc runs the same synthetic workload through both
 *    and reports the speedup, which CI gates with
 *    `tools/bench_diff.py --speedup`.
 *
 * Do not "fix" or optimize this class; its value is being the simple,
 * obviously-correct definition of the execution order.
 */

#ifndef ANSMET_SIM_REFERENCE_QUEUE_H
#define ANSMET_SIM_REFERENCE_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace ansmet::sim {

/** Heap-per-event reference implementation of the event queue. */
class ReferenceEventQueue
{
  public:
    using Callback = std::function<void()>;
    using Priority = int;

    Tick now() const { return now_; }

    std::size_t pending() const { return heap_.size(); }

    /** Fire-and-forget; mirrors EventQueue's split schedule API. */
    void
    schedule(Tick when, Callback cb, Priority prio = 0)
    {
        static_cast<void>(
            scheduleCancelable(when, std::move(cb), prio));
    }

    [[nodiscard]] std::uint64_t
    scheduleCancelable(Tick when, Callback cb, Priority prio = 0)
    {
        ANSMET_CHECK(when >= now_, "scheduling in the past: ", when,
                     " < ", now_);
        const std::uint64_t id = next_id_++;
        heap_.push(Entry{when, prio, id, std::move(cb)});
        return id;
    }

    void
    scheduleIn(TickDelta delta, Callback cb, Priority prio = 0)
    {
        schedule(now_ + delta, std::move(cb), prio);
    }

    [[nodiscard]] std::uint64_t
    scheduleInCancelable(TickDelta delta, Callback cb, Priority prio = 0)
    {
        return scheduleCancelable(now_ + delta, std::move(cb), prio);
    }

    /** Cancel a pending event by handle (lazy deletion). */
    void
    deschedule(std::uint64_t id)
    {
        ANSMET_DCHECK(id < next_id_, "descheduling unknown handle ", id);
        cancelled_.push_back(id);
    }

    void
    run(Tick limit = kMaxTick)
    {
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            if (top.when > limit)
                break;
            if (isCancelled(top.id)) {
                heap_.pop();
                continue;
            }
            now_ = top.when;
            Callback cb = std::move(top.cb);
            heap_.pop();
            cb();
        }
    }

    bool
    step()
    {
        while (!heap_.empty() && isCancelled(heap_.top().id))
            heap_.pop();
        if (heap_.empty())
            return false;
        const Entry &top = heap_.top();
        now_ = top.when;
        Callback cb = std::move(top.cb);
        heap_.pop();
        cb();
        return true;
    }

    void
    reset()
    {
        heap_ = {};
        cancelled_.clear();
        now_ = Tick{};
        next_id_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        Priority prio;
        std::uint64_t id;
        mutable Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return id > o.id;
        }
    };

    bool
    isCancelled(std::uint64_t id)
    {
        for (auto it = cancelled_.begin(); it != cancelled_.end(); ++it) {
            if (*it == id) {
                cancelled_.erase(it);
                return true;
            }
        }
        return false;
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<std::uint64_t> cancelled_;
    Tick now_{};
    std::uint64_t next_id_ = 0;
};

} // namespace ansmet::sim

#endif // ANSMET_SIM_REFERENCE_QUEUE_H
