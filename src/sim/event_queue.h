/**
 * @file
 * Discrete-event simulation core.
 *
 * Time is measured in ticks (picoseconds). Components schedule
 * callbacks at absolute ticks; the queue executes them in (tick,
 * priority, insertion-order) order, which makes runs fully
 * deterministic.
 */

#ifndef ANSMET_SIM_EVENT_QUEUE_H
#define ANSMET_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace ansmet::sim {

/** Event priority: lower values run first within the same tick. */
using Priority = int;

constexpr Priority kDefaultPriority = 0;

/** Central event queue driving a simulation. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule @p cb at absolute time @p when (>= now).
     * @return a handle usable with deschedule().
     */
    std::uint64_t
    schedule(Tick when, Callback cb, Priority prio = kDefaultPriority)
    {
        ANSMET_CHECK(when >= now_, "scheduling in the past: ", when,
                     " < ", now_);
        const std::uint64_t id = next_id_++;
        ANSMET_DCHECK(id != ~std::uint64_t{0},
                      "event id space exhausted; tie-break order would wrap");
        heap_.push(Entry{when, prio, id, std::move(cb)});
        return id;
    }

    /** Schedule @p delta ticks from now. */
    std::uint64_t
    scheduleIn(Tick delta, Callback cb, Priority prio = kDefaultPriority)
    {
        return schedule(now_ + delta, std::move(cb), prio);
    }

    /** Cancel a pending event by handle (lazy deletion). */
    void
    deschedule(std::uint64_t id)
    {
        ANSMET_DCHECK(id < next_id_, "descheduling unknown handle ", id);
        cancelled_.push_back(id);
    }

    /** Run until the queue is empty or @p limit is reached. */
    void
    run(Tick limit = kMaxTick)
    {
        std::uint64_t processed = 0;
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            if (top.when > limit)
                break;
            if (isCancelled(top.id)) {
                heap_.pop();
                continue;
            }
            ANSMET_DCHECK(top.when >= now_,
                          "event queue time ran backwards: ", top.when,
                          " < ", now_);
            now_ = top.when;
            Callback cb = std::move(top.cb);
            heap_.pop();
            cb();
            if (((++processed) & ((1u << 24) - 1)) == 0 && debug_) {
                std::fprintf(stderr,
                             "[eq] %llu events, now=%llu ps, pending=%zu\n",
                             static_cast<unsigned long long>(processed),
                             static_cast<unsigned long long>(now_),
                             heap_.size());
                if (debug_hook_)
                    debug_hook_();
            }
        }
        if (processed != 0) {
            static obs::Counter events =
                obs::Registry::instance().counter("sim.events");
            events.add(processed);
        }
    }

    /** Enable periodic progress logging (debug aid). */
    void setDebug(bool on) { debug_ = on; }

    /** Extra state dumper invoked with the periodic debug line. */
    void setDebugHook(std::function<void()> hook) { debug_hook_ = std::move(hook); }

    /** Execute exactly one event; returns false if none pending. */
    bool
    step()
    {
        while (!heap_.empty() && isCancelled(heap_.top().id))
            heap_.pop();
        if (heap_.empty())
            return false;
        const Entry &top = heap_.top();
        ANSMET_DCHECK(top.when >= now_,
                      "event queue time ran backwards: ", top.when, " < ",
                      now_);
        now_ = top.when;
        Callback cb = std::move(top.cb);
        heap_.pop();
        cb();
        return true;
    }

    /** Reset to an empty queue at time zero. */
    void
    reset()
    {
        heap_ = {};
        cancelled_.clear();
        now_ = 0;
        next_id_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        Priority prio;
        std::uint64_t id;
        mutable Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return id > o.id;
        }
    };

    bool
    isCancelled(std::uint64_t id)
    {
        for (auto it = cancelled_.begin(); it != cancelled_.end(); ++it) {
            if (*it == id) {
                cancelled_.erase(it);
                return true;
            }
        }
        return false;
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<std::uint64_t> cancelled_;
    Tick now_ = 0;
    std::uint64_t next_id_ = 0;
    bool debug_ = false;
    std::function<void()> debug_hook_;
};

/**
 * Base class for components that operate on a fixed clock. Provides
 * cycle<->tick conversion helpers relative to the component's period.
 */
class Clocked
{
  public:
    Clocked(EventQueue &eq, Tick period) : eq_(eq), period_(period)
    {
        ANSMET_CHECK(period > 0, "clocked component with zero period");
    }

    virtual ~Clocked() = default;

    Tick period() const { return period_; }
    Tick now() const { return eq_.now(); }

    /** The tick of the next clock edge at or after now. */
    Tick
    nextEdge() const
    {
        const Tick t = eq_.now();
        return roundUpTick(t);
    }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(std::uint64_t cycles) const { return cycles * period_; }

    /** Convert ticks to whole cycles (rounding up). */
    std::uint64_t
    ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

    EventQueue &eventQueue() { return eq_; }

  protected:
    Tick
    roundUpTick(Tick t) const
    {
        return (t + period_ - 1) / period_ * period_;
    }

  private:
    EventQueue &eq_;
    Tick period_;
};

} // namespace ansmet::sim

#endif // ANSMET_SIM_EVENT_QUEUE_H
