/**
 * @file
 * Discrete-event simulation core.
 *
 * Time is measured in ticks (picoseconds). Components schedule
 * callbacks at absolute ticks; the queue executes them in (tick,
 * priority, insertion-order) order, which makes runs fully
 * deterministic.
 *
 * Implementation: a calendar queue tuned for the DRAM timing model,
 * where almost every schedule is a short scheduleIn() delta. Time is
 * divided into fixed "days" of 2^kDayShift ticks, tracked by three
 * tiers that together always hold the earliest pending event at the
 * front of `cur_heap_`:
 *
 *  - cur_heap_: a small binary heap of events due on or before the
 *    current day, ordered by (tick, priority, insertion seq);
 *  - a ring of kNumBuckets per-day buckets (plain vectors of event
 *    slots, unordered) for events within the horizon, with an occupancy
 *    bitmap so advancing to the next non-empty day is a word scan;
 *  - overflow_: a binary heap for events beyond the horizon, migrated
 *    into the ring as the current day advances past their distance.
 *
 * Every pending event lives in a slot of a pooled table; handles are
 * (generation << 32 | slot), which makes deschedule() an O(1)
 * tombstone write instead of the old cancelled-list scan, and lets the
 * heaps/buckets move 24-byte keys instead of whole callbacks.
 * Callbacks are InlineFunction (see inline_callback.h): captures
 * beyond kInlineCallbackBytes fail to compile, so the hot loop never
 * touches the allocator. See DESIGN.md, "Event-queue architecture".
 */

#ifndef ANSMET_SIM_EVENT_QUEUE_H
#define ANSMET_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sim/inline_callback.h"

namespace ansmet::sim {

/** Event priority: lower values run first within the same tick. */
using Priority = int;

constexpr Priority kDefaultPriority = 0;

/** Central event queue driving a simulation. */
class EventQueue
{
  public:
    /** Inline capture budget for event callbacks (compile-enforced). */
    static constexpr std::size_t kInlineCallbackBytes = 48;

    using Callback = InlineFunction<void(), kInlineCallbackBytes>;

    /** Ticks per calendar day; DRAM-model deltas span a few days. */
    static constexpr unsigned kDayShift = 10;
    /** Ring size (days); must be a power of two. */
    static constexpr std::size_t kNumBuckets = 4096;
    /** Events scheduled further than this go to the overflow tier. */
    static constexpr TickDelta kHorizonTicks{
        static_cast<std::uint64_t>(kNumBuckets) << kDayShift};

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Number of events still pending (descheduled ones excluded). */
    std::size_t pending() const { return live_; }

    /**
     * Schedule @p cb at absolute time @p when (>= now), fire-and-
     * forget. Use scheduleCancelable() when the event may need to be
     * descheduled — only that variant hands out a handle, and its
     * result is [[nodiscard]] (lint R11): a dropped handle means the
     * event can never be cancelled again.
     */
    void
    schedule(Tick when, Callback cb, Priority prio = kDefaultPriority)
    {
        static_cast<void>(
            scheduleCancelable(when, std::move(cb), prio));
    }

    /**
     * Schedule @p cb at absolute time @p when (>= now).
     * @return a handle usable with deschedule(); must not be
     *         discarded (use schedule() for fire-and-forget events).
     */
    [[nodiscard]] std::uint64_t
    scheduleCancelable(Tick when, Callback cb,
                       Priority prio = kDefaultPriority)
    {
        ANSMET_CHECK(when >= now_, "scheduling in the past: ", when,
                     " < ", now_);
        std::uint32_t slot;
        if (free_.empty()) {
            ANSMET_DCHECK(slots_.size() < 0xffffffffu,
                          "event slot space exhausted");
            slots_.emplace_back();
            slot = static_cast<std::uint32_t>(slots_.size() - 1);
        } else {
            slot = free_.back();
            free_.pop_back();
        }
        EventRec &r = slots_[slot];
        r.cb = std::move(cb);
        r.when = when;
        r.seq = seq_++;
        r.prio = prio;
        r.dead = false;
        ++live_;
        place(Key{when, r.seq, slot, prio});
        return (static_cast<std::uint64_t>(r.gen) << 32) | slot;
    }

    /** Schedule @p delta ticks from now, fire-and-forget. */
    void
    scheduleIn(TickDelta delta, Callback cb,
               Priority prio = kDefaultPriority)
    {
        schedule(now_ + delta, std::move(cb), prio);
    }

    /** Schedule @p delta ticks from now; returns a deschedule handle. */
    [[nodiscard]] std::uint64_t
    scheduleInCancelable(TickDelta delta, Callback cb,
                         Priority prio = kDefaultPriority)
    {
        return scheduleCancelable(now_ + delta, std::move(cb), prio);
    }

    /**
     * Cancel a pending event by handle: an O(1) tombstone write. A
     * handle whose event already executed is a benign no-op (the slot
     * generation has moved on).
     */
    void
    deschedule(std::uint64_t id)
    {
        const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
        const auto gen = static_cast<std::uint32_t>(id >> 32);
        ANSMET_DCHECK(slot < slots_.size(),
                      "descheduling unknown handle ", id);
        if (slot >= slots_.size())
            return;
        EventRec &r = slots_[slot];
        if (r.gen != gen || r.dead)
            return; // already executed or already descheduled
        r.dead = true;
        r.cb = nullptr; // release captured resources eagerly
        --live_;
    }

    /** Run until the queue is empty or @p limit is reached. */
    void
    run(Tick limit = kMaxTick)
    {
        std::uint64_t processed = 0;
        for (;;) {
            const Key *top = front();
            if (top == nullptr || top->when > limit)
                break;
            ANSMET_DCHECK(top->when >= now_,
                          "event queue time ran backwards: ", top->when,
                          " < ", now_);
            now_ = top->when;
            const std::uint32_t slot = top->slot;
            Callback cb = std::move(slots_[slot].cb);
            heapPop(cur_heap_);
            releaseSlot(slot);
            --live_;
            cb();
            ++processed;
            if ((processed & ((1u << 16) - 1)) == 0)
                depthGauge().set(static_cast<std::int64_t>(live_));
            if ((processed & ((1u << 24) - 1)) == 0 && debug_) {
                std::fprintf(stderr,
                             "[eq] %llu events, now=%llu ps, pending=%zu\n",
                             static_cast<unsigned long long>(processed),
                             static_cast<unsigned long long>(now_.raw()),
                             live_);
                if (debug_hook_)
                    debug_hook_();
            }
        }
        if (processed != 0) {
            static obs::Counter events =
                obs::Registry::instance().counter("sim.events");
            events.add(processed);
            depthGauge().set(static_cast<std::int64_t>(live_));
        }
    }

    /** Enable periodic progress logging (debug aid). */
    void setDebug(bool on) { debug_ = on; }

    /** Extra state dumper invoked with the periodic debug line. */
    void setDebugHook(std::function<void()> hook) { debug_hook_ = std::move(hook); }

    /** Execute exactly one event; returns false if none pending. */
    bool
    step()
    {
        const Key *top = front();
        if (top == nullptr)
            return false;
        ANSMET_DCHECK(top->when >= now_,
                      "event queue time ran backwards: ", top->when, " < ",
                      now_);
        now_ = top->when;
        const std::uint32_t slot = top->slot;
        Callback cb = std::move(slots_[slot].cb);
        heapPop(cur_heap_);
        releaseSlot(slot);
        --live_;
        cb();
        return true;
    }

    /** Reset to an empty queue at time zero. */
    void
    reset()
    {
        slots_.clear();
        free_.clear();
        cur_heap_.clear();
        overflow_.clear();
        for (auto &b : buckets_)
            b.clear();
        occupied_.fill(0);
        ring_count_ = 0;
        cur_day_ = 0;
        seq_ = 0;
        live_ = 0;
        now_ = Tick{};
    }

  private:
    /** Pooled per-event state; `slot` indexes into slots_. */
    struct EventRec
    {
        Callback cb;
        Tick when{};
        std::uint64_t seq = 0;   //!< global insertion order
        std::uint32_t gen = 0;   //!< bumped on release; part of handle
        Priority prio = 0;
        bool dead = false;       //!< descheduled, not yet reaped
    };

    /** Heap entry: full ordering key plus the owning slot (24 B). */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        Priority prio;
    };

    /** a executes after b (max-heap comparator → min at front). */
    struct After
    {
        bool
        operator()(const Key &a, const Key &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    static void
    heapPush(std::vector<Key> &h, const Key &k)
    {
        h.push_back(k);
        std::push_heap(h.begin(), h.end(), After{});
    }

    static void
    heapPop(std::vector<Key> &h)
    {
        std::pop_heap(h.begin(), h.end(), After{});
        h.pop_back();
    }

    /** File @p k into the tier its day belongs to. */
    void
    place(const Key &k)
    {
        const std::uint64_t day = k.when.raw() >> kDayShift;
        if (day <= cur_day_) {
            // Current (or, after a bounded run(), an already-passed)
            // day: must be visible to the next front() immediately.
            heapPush(cur_heap_, k);
        } else if (day - cur_day_ < kNumBuckets) {
            const std::size_t idx = day & (kNumBuckets - 1);
            buckets_[idx].push_back(k.slot);
            occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
            ++ring_count_;
        } else {
            heapPush(overflow_, k);
        }
    }

    /**
     * Earliest live event, advancing the calendar as needed; null iff
     * the queue is empty. Dead (descheduled) events are reaped here.
     */
    const Key *
    front()
    {
        for (;;) {
            while (!cur_heap_.empty()) {
                const Key &top = cur_heap_.front();
                if (!slots_[top.slot].dead)
                    return &cur_heap_.front();
                releaseSlot(top.slot);
                heapPop(cur_heap_);
            }
            if (!advanceDay())
                return nullptr;
        }
    }

    /** Move the calendar to the next day holding events, if any. */
    bool
    advanceDay()
    {
        if (ring_count_ > 0) {
            adoptDay(nextOccupiedDay());
            return true;
        }
        if (overflow_.empty())
            return false;
        // Ring empty: jump straight to the earliest overflow day and
        // pull everything newly within the horizon back in.
        ANSMET_DCHECK((overflow_.front().when.raw() >> kDayShift) >=
                          cur_day_,
                      "overflow event behind the calendar");
        cur_day_ = overflow_.front().when.raw() >> kDayShift;
        migrateOverflow();
        return true;
    }

    /** Move day @p day's bucket into cur_heap_ and advance the ring. */
    void
    adoptDay(std::uint64_t day)
    {
        cur_day_ = day;
        const std::size_t idx = day & (kNumBuckets - 1);
        std::vector<std::uint32_t> &b = buckets_[idx];
        for (const std::uint32_t slot : b) {
            const EventRec &r = slots_[slot];
            if (r.dead)
                releaseSlot(slot);
            else
                cur_heap_.push_back(Key{r.when, r.seq, slot, r.prio});
        }
        ring_count_ -= b.size();
        b.clear(); // keeps capacity: steady state stops allocating
        occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        std::make_heap(cur_heap_.begin(), cur_heap_.end(), After{});
        migrateOverflow();
    }

    /** Ring-index bitmap scan for the next occupied day > cur_day_.
     *  Precondition: ring_count_ > 0 (a hit is guaranteed within one
     *  lap because occupied days all lie inside the horizon). */
    std::uint64_t
    nextOccupiedDay() const
    {
        std::uint64_t d = cur_day_ + 1;
        for (;;) {
            const std::size_t idx = d & (kNumBuckets - 1);
            const std::size_t bit = idx & 63;
            const std::uint64_t word =
                occupied_[idx >> 6] & (~std::uint64_t{0} << bit);
            if (word != 0) {
                return d + (static_cast<std::uint64_t>(
                                std::countr_zero(word)) -
                            bit);
            }
            d += 64 - bit;
            ANSMET_DCHECK(d - cur_day_ <= kNumBuckets + 64,
                          "calendar bitmap lost an occupied bucket");
        }
    }

    /** Pull every overflow event now within the horizon into the ring
     *  (or cur_heap_, for the day just adopted). */
    void
    migrateOverflow()
    {
        while (!overflow_.empty() &&
               (overflow_.front().when.raw() >> kDayShift) - cur_day_ <
                   kNumBuckets) {
            const Key k = overflow_.front();
            heapPop(overflow_);
            place(k);
        }
    }

    void
    releaseSlot(std::uint32_t slot)
    {
        EventRec &r = slots_[slot];
        r.cb = nullptr;
        ++r.gen; // invalidates outstanding handles to this slot
        free_.push_back(slot);
    }

    static obs::Gauge &
    depthGauge()
    {
        static obs::Gauge g =
            obs::Registry::instance().gauge("sim.queue_depth");
        return g;
    }

    std::vector<EventRec> slots_;
    std::vector<std::uint32_t> free_;
    std::vector<Key> cur_heap_;  //!< events due on/before cur_day_
    std::vector<Key> overflow_;  //!< events beyond the horizon
    std::array<std::vector<std::uint32_t>, kNumBuckets> buckets_;
    std::array<std::uint64_t, kNumBuckets / 64> occupied_{};
    std::size_t ring_count_ = 0; //!< events resident in the ring
    std::uint64_t cur_day_ = 0;
    std::uint64_t seq_ = 0;
    std::size_t live_ = 0;
    Tick now_{};
    bool debug_ = false;
    std::function<void()> debug_hook_;
};

/**
 * Base class for components that operate on a fixed clock. Provides
 * cycle<->tick conversion helpers relative to the component's period.
 */
class Clocked
{
  public:
    Clocked(EventQueue &eq, TickDelta period) : eq_(eq), period_(period)
    {
        ANSMET_CHECK(period > TickDelta{},
                     "clocked component with zero period");
    }

    virtual ~Clocked() = default;

    TickDelta period() const { return period_; }
    Tick now() const { return eq_.now(); }

    /** The tick of the next clock edge at or after now. */
    Tick
    nextEdge() const
    {
        const Tick t = eq_.now();
        return roundUpTick(t);
    }

    /** Convert a cycle count to a span of ticks. */
    TickDelta
    cyclesToTicks(std::uint64_t cycles) const
    {
        return cycles * period_;
    }

    /** Convert a span of ticks to whole cycles (rounding up). */
    std::uint64_t
    ticksToCycles(TickDelta t) const
    {
        return (t.raw() + period_.raw() - 1) / period_.raw();
    }

    EventQueue &eventQueue() { return eq_; }

  protected:
    Tick
    roundUpTick(Tick t) const
    {
        const std::uint64_t p = period_.raw();
        return Tick{(t.raw() + p - 1) / p * p};
    }

  private:
    EventQueue &eq_;
    TickDelta period_;
};

} // namespace ansmet::sim

#endif // ANSMET_SIM_EVENT_QUEUE_H
