#!/usr/bin/env python3
"""ansmet_lint: project-specific determinism and style linter.

ANSMET's figures depend on bitwise-deterministic replay, and its
locking contracts are enforced at compile time through the annotated
wrappers in src/common/sync.h. This linter statically proves the
conventions that neither the compiler nor clang-tidy checks:

  R1  ansmet-determinism   No nondeterminism source in the simulator-
                           deterministic directories (src/sim, src/ndp,
                           src/dram, src/et, src/anns): std::rand and
                           friends, wall-clock time, and std random
                           engines are banned; common::Prng is the only
                           sanctioned randomness.
  R2  ansmet-rawnew        No raw `new` / `delete` in src/ (smart
                           pointers and containers own everything);
                           `= delete`d functions and placement forms
                           are exempt.
  R3  ansmet-nolint        Every NOLINT / NOLINTNEXTLINE / NOLINTBEGIN
                           must carry a written justification after the
                           check list (": why" — keeps suppressions
                           honest).
  R4  ansmet-rawsync       No direct std::mutex / std::shared_mutex /
                           std::condition_variable (or std lock RAII
                           over them) outside src/common/sync.h — the
                           annotated wrappers are mandatory so Clang's
                           thread-safety analysis sees every lock.
                           Likewise no direct std::thread / std::jthread
                           / std::async outside src/common/runtime/ and
                           the src/common/thread_pool facade — threads
                           are spawned only by the task runtime so
                           worker count, affinity, and shutdown stay
                           centralized (std::this_thread is fine).
  R5  ansmet-eventcapture  No std::function inside the arguments of a
                           schedule()/scheduleIn() call in the
                           simulator-hot directories (src/sim, src/ndp,
                           src/dram, src/cpu, src/core, src/cache):
                           event callbacks are sim::EventQueue::Callback
                           (an InlineFunction with a compile-enforced
                           capture budget); std::function would put its
                           capture back on the heap per event.
  R6  ansmet-tickunits     No raw integer literal as the time argument
                           of schedule()/scheduleIn() or the DRAM
                           timing-legality calls (earliestAct/issueAct/
                           earliestPre/issuePre/earliestCol/issueCol/
                           catchUpRefresh) in the simulator-hot
                           directories: simulated times are sim::Tick /
                           sim::TickDelta, and a bare literal bypasses
                           the unit check the strong types exist for.
  R7  ansmet-lockorder     The static lock-acquisition graph must be
                           acyclic. Scoped acquisitions (MutexLock /
                           ReaderLock / WriterLock from common/sync.h,
                           plus ANSMET_REQUIRES preconditions) are
                           collected per function, propagated through
                           direct calls, and any cycle in the resulting
                           order graph is reported with its full path —
                           a cycle is a latent deadlock even if today's
                           schedules never interleave it.
  R8  ansmet-danglecapture A callback handed to schedule()/scheduleIn()
                           or stored in an onComplete field
                           (dram::Request, ndp::NdpTask) runs after the
                           enclosing frame is gone, so its lambda must
                           not capture by reference ([&], [&x],
                           [&x = ...]); capture by value or [this].

Suppression: a finding is waived by `// NOLINT(<rule>): reason` on the
same line or `// NOLINTNEXTLINE(<rule>): reason` on the line above,
using the rule names in the middle column (for R7, on the acquisition
or call line that contributes the unwanted edge). R3 itself validates
those comments, so a suppression can never be silent.

Engines: with the libclang Python bindings installed (python3-clang)
each file is parsed by clang itself, driven by the build tree's
compile_commands.json; the structural rules then run over clang's
token stream and a cursor-visitation pass over the AST prunes any
finding the AST disproves (wrong call resolution, a bracket that is
not a lambda). Without the bindings a built-in lexer produces the same
unified token stream and every rule — including R6/R7/R8 — runs on the
structural analysis alone, so lexical-engine findings are always a
superset of libclang-engine findings. `--engine libclang` makes
libclang mandatory and SKIPS with exit 0 when it is absent, mirroring
tools/run_tidy.sh's behavior when clang-tidy is missing.

Exit status: 0 clean (or skipped), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------

DETERMINISTIC_DIRS = ("src/sim", "src/ndp", "src/dram", "src/et",
                      "src/anns", "src/serve")

# Identifier tokens banned by R1 inside the deterministic directories.
BANNED_RANDOM = {
    "rand": "std::rand is seed-global and unordered under threading",
    "srand": "std::srand mutates global state",
    "rand_r": "use common::Prng streams instead",
    "random": "POSIX random() is seed-global",
    "drand48": "use common::Prng streams instead",
    "lrand48": "use common::Prng streams instead",
    "mrand48": "use common::Prng streams instead",
    "random_device": "std::random_device is nondeterministic by design",
    "mt19937": "std engines drift across stdlibs; use common::Prng",
    "mt19937_64": "std engines drift across stdlibs; use common::Prng",
    "minstd_rand": "std engines drift across stdlibs; use common::Prng",
    "default_random_engine": "implementation-defined; use common::Prng",
}
BANNED_CLOCK = {
    "system_clock": "wall-clock time must not feed simulated output",
    "high_resolution_clock": "wall-clock time must not feed simulated "
                             "output",
    "steady_clock": "host timing must not feed simulated output",
    "clock_gettime": "host timing must not feed simulated output",
    "gettimeofday": "host timing must not feed simulated output",
}

# R4: raw sync vocabulary banned outside the wrapper header.
BANNED_SYNC = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "lock_guard", "unique_lock", "shared_lock",
    "scoped_lock",
}
SYNC_EXEMPT_SUFFIX = os.path.join("src", "common", "sync.h")

# R4 (thread-spawn half): raw std::thread / std::jthread / std::async
# outside the task runtime and its ThreadPool facade. Centralizing
# thread creation is what keeps worker count, core affinity, the
# nested-inline rules, and drain-then-join shutdown coherent.
# (`std::this_thread` lexes as the single identifier `this_thread` and
# is deliberately not banned — yield/sleep_for are fine anywhere.)
BANNED_THREAD_SPAWN = {"thread", "jthread", "async"}
THREAD_EXEMPT_DIRS = ("src/common/runtime",)
THREAD_EXEMPT_FILES = (
    "src/common/thread_pool.h",
    "src/common/thread_pool.cc",
)

# R5/R6/R8: directories whose schedule()/scheduleIn() calls sit on the
# simulated hot path.
SIM_HOT_DIRS = ("src/sim", "src/ndp", "src/dram", "src/cpu", "src/core",
                "src/cache")
SCHEDULE_CALLS = ("schedule", "scheduleIn")

# R6: call name -> zero-based index of its Tick/TickDelta argument.
# The schedule() priority argument and DRAM bank-address/is_write
# arguments are deliberately NOT covered: only the time slot is
# unit-typed.
TIME_ARG_CALLS = {
    "schedule": 0,
    "scheduleIn": 0,
    "catchUpRefresh": 0,
    "earliestAct": 1,
    "earliestPre": 1,
    "issueAct": 1,
    "issuePre": 1,
    "earliestCol": 2,
    "issueCol": 2,
}

# R7: the scoped-capability RAII classes from src/common/sync.h.
LOCK_CLASSES = {"MutexLock", "ReaderLock", "WriterLock"}
REQUIRES_MACROS = {"ANSMET_REQUIRES", "ANSMET_REQUIRES_SHARED"}

# R8: struct fields holding completion callbacks that outlive the
# assigning frame (dram::Request::onComplete, ndp::NdpTask::onComplete).
CALLBACK_FIELDS = {"onComplete"}

RULES = {
    "R1": "ansmet-determinism",
    "R2": "ansmet-rawnew",
    "R3": "ansmet-nolint",
    "R4": "ansmet-rawsync",
    "R5": "ansmet-eventcapture",
    "R6": "ansmet-tickunits",
    "R7": "ansmet-lockorder",
    "R8": "ansmet-danglecapture",
}

NOLINT_RE = re.compile(
    r"NOLINT(NEXTLINE|BEGIN|END)?(\(([^)]*)\))?(.*)", re.DOTALL)


class Token:
    __slots__ = ("kind", "spelling", "line")

    def __init__(self, kind, spelling, line):
        self.kind = kind  # 'id', 'punct', 'comment', 'literal', 'kw'
        self.spelling = spelling
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.spelling!r},{self.line})"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}/"
                f"{RULES[self.rule]}] {self.message}")


# --------------------------------------------------------------------
# Lexical engine: a small C++ scanner producing the unified tokens.
# --------------------------------------------------------------------

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_KEYWORDS = {"new", "delete", "operator"}


def lex_tokens(text):
    """Tokenize C++ source: identifiers, punctuation, comments,
    literals. Strings/chars collapse to one literal token so banned
    names inside them never match; comments are kept for R3."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            # A backslash immediately before the newline (phase-2 line
            # splice) continues the comment onto the next line.
            while j < n and (text[j - 1] == "\\" or
                             text[j - 2:j] == "\\\r"):
                j = text.find("\n", j + 1)
                j = n if j < 0 else j
            tokens.append(Token("comment", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            body = text[i:j + 2]
            tokens.append(Token("comment", body, line))
            line += body.count("\n")
            i = j + 2
        elif c == '"':
            # Defense in depth: if this quote opens a raw string whose
            # `R` prefix was consumed by an earlier token (possible
            # only after a lexing desync), honor the )delim" close
            # instead of stopping at the next bare quote.
            raw = (re.match(r'"([^()\\\s]{0,16})\(', text[i:])
                   if i >= 1 and text[i - 1] == "R" else None)
            if raw:
                close = f"){raw.group(1)}\""
                end = text.find(close, i)
                end = n if end < 0 else end + len(close)
                tokens.append(Token("literal", text[i:end], line))
                line += text.count("\n", i, end)
                i = end
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("literal", text[i:j + 1], line))
            line += text.count("\n", i, j + 1)
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("literal", text[i:j + 1], line))
            i = j + 1
        elif c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            spelling = text[i:j]
            # Raw string literal: R"delim( ... )delim"
            if spelling.endswith("R") and j < n and text[j] == '"':
                m = re.match(r'R"([^()\\ ]*)\(', text[j - 1:])
                if m:
                    end = text.find(f"){m.group(1)}\"", j)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    tokens.append(Token("literal", text[i:end], line))
                    line += text.count("\n", i, end)
                    i = end
                    continue
            kind = "kw" if spelling in _KEYWORDS else "id"
            tokens.append(Token(kind, spelling, line))
            i = j
        elif c.isdigit():
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _ID_CONT or ch == ".":
                    j += 1
                elif ch == "'" and j + 1 < n and text[j + 1] in _ID_CONT:
                    j += 2  # digit separator, e.g. 5'000
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("literal", text[i:j], line))
            i = j
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


# --------------------------------------------------------------------
# libclang engine: the same token stream, produced by clang's lexer,
# plus the translation unit for the AST refinement pass.
# --------------------------------------------------------------------

def try_import_libclang():
    if os.environ.get("ANSMET_LINT_FORCE_NO_LIBCLANG"):
        return None
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()  # verifies libclang.so actually loads
        return cindex
    except Exception:
        return None


def compile_args_for(path, compdb_dir):
    """Extract the -I/-D/-std args recorded for path (or any TU) from
    compile_commands.json, so clang lexes under the project config."""
    cc_path = os.path.join(compdb_dir or "", "compile_commands.json")
    if not compdb_dir or not os.path.isfile(cc_path):
        return ["-std=c++20"]
    try:
        with open(cc_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, json.JSONDecodeError):
        return ["-std=c++20"]
    want = os.path.abspath(path)
    fallback = None
    for entry in db:
        args = entry.get("command", "").split()[1:]
        keep = [a for a in args
                if a.startswith(("-I", "-D", "-std=", "-isystem"))]
        if os.path.abspath(entry.get("file", "")) == want:
            return keep or ["-std=c++20"]
        fallback = fallback or keep
    return fallback or ["-std=c++20"]


def clang_parse(cindex, path, text, args):
    return cindex.TranslationUnit.from_source(
        path, args=args, unsaved_files=[(path, text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)


def clang_tokens(cindex, tu, path):
    kinds = cindex.TokenKind
    out = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.location.file and tok.location.file.name != path:
            continue
        spelling = tok.spelling
        line = tok.location.line
        if tok.kind == kinds.COMMENT:
            out.append(Token("comment", spelling, line))
        elif tok.kind == kinds.LITERAL:
            out.append(Token("literal", spelling, line))
        elif tok.kind == kinds.IDENTIFIER:
            out.append(Token("id", spelling, line))
        elif tok.kind == kinds.KEYWORD:
            out.append(Token("kw" if spelling in _KEYWORDS else "id",
                             spelling, line))
        else:  # punctuation: split multi-char operators into chars
            for ch in spelling:
                out.append(Token("punct", ch, line))
    return out


def ast_refine(cindex, tu, findings):
    """Cursor-visitation refinement (libclang engine only).

    Walks the AST and drops structural findings the AST disproves:
    an R6 finding whose time argument actually references a variable
    or call, and an R8 finding on a line no lambda expression spans.
    The pass only ever REMOVES findings, so the lexical engine stays a
    strict superset, and it bails out wholesale when the translation
    unit did not parse cleanly (a broken AST proves nothing).
    """
    try:
        if any(d.severity >= cindex.Diagnostic.Error
               for d in tu.diagnostics):
            return findings
        kinds = cindex.CursorKind
        value_ref_kinds = {kinds.DECL_REF_EXPR, kinds.MEMBER_REF_EXPR,
                           kinds.CALL_EXPR}
        r6_disproved = set()
        lambda_lines = set()
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is None or loc.file.name != tu.spelling:
                continue
            if cur.kind == kinds.LAMBDA_EXPR:
                ext = cur.extent
                lambda_lines.update(
                    range(ext.start.line, ext.end.line + 1))
            elif (cur.kind == kinds.CALL_EXPR and
                  cur.spelling in TIME_ARG_CALLS):
                k = TIME_ARG_CALLS[cur.spelling]
                args = list(cur.get_arguments())
                if k >= len(args):
                    continue
                seen = {c.kind for c in args[k].walk_preorder()}
                if seen & value_ref_kinds:
                    ext = args[k].extent
                    r6_disproved.update(
                        range(ext.start.line, ext.end.line + 1))
        kept = []
        for f in findings:
            if f.rule == "R6" and f.line in r6_disproved:
                continue
            if f.rule == "R8" and f.line not in lambda_lines:
                continue
            kept.append(f)
        return kept
    except Exception:
        return findings


# --------------------------------------------------------------------
# Suppression handling
# --------------------------------------------------------------------

def suppressed_lines(tokens):
    """Map rule-name -> set of line numbers waived by NOLINT comments."""
    waived = {}
    for tok in tokens:
        if tok.kind != "comment" or "NOLINT" not in tok.spelling:
            continue
        m = NOLINT_RE.search(tok.spelling)
        if not m:
            continue
        variant = m.group(1) or ""
        names = [s.strip() for s in (m.group(3) or "").split(",")
                 if s.strip()]
        last_line = tok.line + tok.spelling.count("\n")
        target = last_line + 1 if variant == "NEXTLINE" else tok.line
        for name in names or ["*"]:
            waived.setdefault(name, set()).add(target)
    return waived


def is_waived(waived, rule_name, line):
    for name in (rule_name, "*"):
        if line in waived.get(name, set()):
            return True
    return False


# --------------------------------------------------------------------
# Structural helpers shared by the R6/R7/R8 analyses
# --------------------------------------------------------------------

def code_tokens(tokens):
    return [t for t in tokens if t.kind in ("id", "kw", "punct",
                                            "literal")]


def skip_balanced(code, i, open_s, close_s):
    """code[i] must be open_s; return the index just past its matching
    close_s, or None when unbalanced."""
    depth = 0
    n = len(code)
    while i < n:
        s = code[i].spelling
        if s == open_s:
            depth += 1
        elif s == close_s:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return None


def split_top_commas(arg_tokens):
    """Split an argument token slice at depth-zero commas."""
    args = []
    cur = []
    depth = 0
    for t in arg_tokens:
        s = t.spelling
        if s in "([{":
            depth += 1
        elif s in ")]}":
            depth -= 1
        if s == "," and depth == 0:
            args.append(cur)
            cur = []
        else:
            cur.append(t)
    args.append(cur)
    return args


def render_expr(expr_tokens):
    return "".join(t.spelling for t in expr_tokens)


# --------------------------------------------------------------------
# Rule implementations R1-R5 (token-level; shared by both engines)
# --------------------------------------------------------------------

def path_in(path, prefixes):
    rel = path.replace(os.sep, "/")
    return any(f"/{p}/" in f"/{rel}/" or rel.startswith(p + "/")
               for p in prefixes)


def check_determinism(path, tokens, waived, findings):
    if not path_in(path, DETERMINISTIC_DIRS):
        return
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    for idx, tok in enumerate(code):
        if tok.kind != "id":
            continue
        reason = None
        name = tok.spelling
        if name in BANNED_RANDOM:
            reason = BANNED_RANDOM[name]
        elif name in BANNED_CLOCK:
            reason = BANNED_CLOCK[name]
        elif name == "time":
            # Only the call `time(...)` is banned; `time` as a field or
            # parameter name stays legal.
            nxt = code[idx + 1] if idx + 1 < len(code) else None
            prv = code[idx - 1] if idx > 0 else None
            called = nxt is not None and nxt.spelling == "("
            member = prv is not None and prv.spelling in (".", ">")
            if called and not member:
                reason = "wall-clock time() must not feed simulated " \
                         "output"
        if reason and not is_waived(waived, RULES["R1"], tok.line):
            findings.append(Finding(
                path, tok.line, "R1",
                f"'{name}' in a deterministic directory: {reason}; "
                f"common::Prng is the only sanctioned randomness"))


def check_raw_new_delete(path, tokens, waived, findings):
    code = code_tokens(tokens)
    for idx, tok in enumerate(code):
        if tok.kind != "kw" or tok.spelling not in ("new", "delete"):
            continue
        prv = code[idx - 1] if idx > 0 else None
        nxt = code[idx + 1] if idx + 1 < len(code) else None
        # `#include <new>` lexes the header name as the keyword.
        if (prv is not None and prv.spelling == "<" and
                nxt is not None and nxt.spelling == ">"):
            continue
        if tok.spelling == "delete":
            # `= delete` (deleted functions) and `operator delete`.
            if prv is not None and prv.spelling in ("=", "operator"):
                continue
        else:
            # Placement new `new (addr) T` is allowed: it constructs
            # into storage owned elsewhere. `operator new` decls too.
            if prv is not None and prv.spelling == "operator":
                continue
            if nxt is not None and nxt.spelling == "(":
                continue
        if is_waived(waived, RULES["R2"], tok.line):
            continue
        findings.append(Finding(
            path, tok.line, "R2",
            f"raw '{tok.spelling}': ownership must go through smart "
            f"pointers or containers"))


def check_nolint_justified(path, tokens, findings):
    for tok in tokens:
        if tok.kind != "comment":
            continue
        for m in re.finditer(r"NOLINT\w*", tok.spelling):
            sub = tok.spelling[m.start():]
            mm = NOLINT_RE.match(sub)
            variant = mm.group(1) or ""
            if variant == "END":
                continue  # the BEGIN marker carries the justification
            trailing = (mm.group(4) or "").strip()
            # Strip comment furniture, then require real words.
            trailing = re.sub(r"[*/\s:;,-]+", " ", trailing).strip()
            line = tok.line + tok.spelling.count("\n", 0, m.start())
            if len(trailing) < 8:
                findings.append(Finding(
                    path, line, "R3",
                    "NOLINT without a written justification; append "
                    "': <why this suppression is sound>'"))
            if not mm.group(3):
                findings.append(Finding(
                    path, line, "R3",
                    "blanket NOLINT; name the suppressed check(s), "
                    "e.g. NOLINT(concurrency-mt-unsafe)"))


def check_raw_sync(path, tokens, waived, findings):
    norm = path.replace(os.sep, "/")
    if norm.endswith("common/sync.h"):
        return
    spawn_exempt = (any(f"/{d}/" in norm or norm.startswith(f"{d}/")
                        for d in THREAD_EXEMPT_DIRS) or
                    norm.endswith(THREAD_EXEMPT_FILES))
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    for idx, tok in enumerate(code):
        if tok.kind != "id":
            continue
        is_sync = tok.spelling in BANNED_SYNC
        is_spawn = tok.spelling in BANNED_THREAD_SPAWN and not spawn_exempt
        if not (is_sync or is_spawn):
            continue
        # Require the std:: qualification: `std` `:` `:` `mutex`.
        if idx < 3:
            continue
        if not (code[idx - 1].spelling == ":" and
                code[idx - 2].spelling == ":" and
                code[idx - 3].spelling == "std"):
            continue
        if is_waived(waived, RULES["R4"], tok.line):
            continue
        if is_sync:
            findings.append(Finding(
                path, tok.line, "R4",
                f"raw std::{tok.spelling}: use the annotated wrappers in "
                f"common/sync.h (Mutex/SharedMutex/CondVar + MutexLock/"
                f"ReaderLock/WriterLock) so thread-safety analysis sees "
                f"the contract"))
        else:
            findings.append(Finding(
                path, tok.line, "R4",
                f"raw std::{tok.spelling}: spawn through the task runtime "
                f"(common/runtime/Runtime, TaskGroup, parallelFor) or the "
                f"ThreadPool facade so worker count, core affinity, and "
                f"drain-then-join shutdown stay centralized"))


def check_event_capture(path, tokens, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    code = [t for t in tokens if t.kind in ("id", "kw", "punct")]
    n = len(code)
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in SCHEDULE_CALLS:
            continue
        if idx + 1 >= n or code[idx + 1].spelling != "(":
            continue
        # Walk the balanced argument list of the call; any qualified
        # `std :: function` token run inside it is a finding.
        depth = 0
        j = idx + 1
        while j < n:
            s = code[j].spelling
            if s == "(":
                depth += 1
            elif s == ")":
                depth -= 1
                if depth == 0:
                    break
            elif (s == "function" and code[j].kind == "id" and j >= 3 and
                  code[j - 1].spelling == ":" and
                  code[j - 2].spelling == ":" and
                  code[j - 3].spelling == "std"):
                if not is_waived(waived, RULES["R5"], code[j].line):
                    findings.append(Finding(
                        path, code[j].line, "R5",
                        "std::function inside a schedule()/scheduleIn() "
                        "argument: event callbacks are inline "
                        "(sim::EventQueue::Callback); a std::function "
                        "capture heap-allocates on the hot path"))
            j += 1


# --------------------------------------------------------------------
# R6 ansmet-tickunits: raw integer literals in time arguments
# --------------------------------------------------------------------

def check_tick_units(path, tokens, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    code = code_tokens(tokens)
    n = len(code)
    for idx, tok in enumerate(code):
        if tok.kind != "id" or tok.spelling not in TIME_ARG_CALLS:
            continue
        if idx + 1 >= n or code[idx + 1].spelling != "(":
            continue
        end = skip_balanced(code, idx + 1, "(", ")")
        if end is None:
            continue
        args = split_top_commas(code[idx + 2:end - 1])
        k = TIME_ARG_CALLS[tok.spelling]
        if k >= len(args) or not args[k]:
            continue
        arg = args[k]
        # An identifier anywhere in the argument means the value went
        # through a name — a Tick{}/TickDelta{} constructor, a typed
        # variable, or an expression over them. Only a pure-literal
        # argument (possibly parenthesized / negated) is unit-blind.
        if any(t.kind in ("id", "kw") for t in arg):
            continue
        lits = [t for t in arg
                if t.kind == "literal" and t.spelling[:1].isdigit()]
        if not lits:
            continue
        lit = lits[0]
        if is_waived(waived, RULES["R6"], lit.line):
            continue
        findings.append(Finding(
            path, lit.line, "R6",
            f"raw integer literal '{lit.spelling}' as the time argument "
            f"of {tok.spelling}(): simulated times are unit-typed; "
            f"construct a sim::Tick{{...}} / sim::TickDelta{{...}} "
            f"instead"))


# --------------------------------------------------------------------
# R7 ansmet-lockorder: static lock-acquisition cycle detection
# --------------------------------------------------------------------

# Keywords that look like `name (` but never head a definition or call
# worth tracking.
_CONTROL = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "catch", "throw", "assert", "else",
    "do", "case", "default", "co_await", "co_return", "co_yield",
    "alignas", "noexcept", "typeid", "requires",
}


class FuncInfo:
    __slots__ = ("name", "owner", "path", "acquisitions", "calls",
                 "requires")

    def __init__(self, name, owner, path):
        self.name = name  # "Class::method" or bare function name
        self.owner = owner  # enclosing/qualifying class, or None
        self.path = path
        # (lock_id, line, frozenset(locks held at the acquisition))
        self.acquisitions = []
        # (callee name, explicit qualifier or None, line,
        #  frozenset(locks held))
        self.calls = []
        self.requires = set()  # ANSMET_REQUIRES locks, held body-wide


def _qualify(owner, expr):
    return f"{owner}::{expr}" if owner else expr


def _scan_function_body(code, body_start, owner, func):
    """Walk one function body collecting scoped-lock acquisitions and
    every call site with the set of locks held at it. Returns the index
    just past the closing brace."""
    n = len(code)
    i = body_start  # at '{'
    depth = 0
    active = []  # (depth at acquisition, lock_id)
    base = frozenset(func.requires)
    while i < n:
        t = code[i]
        s = t.spelling
        if s == "{":
            depth += 1
            i += 1
            continue
        if s == "}":
            depth -= 1
            while active and active[-1][0] > depth:
                active.pop()
            i += 1
            if depth == 0:
                return i
            continue
        if (t.kind == "id" and s in LOCK_CLASSES and i + 2 < n and
                code[i + 1].kind == "id" and
                code[i + 2].spelling in ("(", "{")):
            open_s = code[i + 2].spelling
            close_s = ")" if open_s == "(" else "}"
            end = skip_balanced(code, i + 2, open_s, close_s)
            if end is not None:
                lock_id = _qualify(owner,
                                   render_expr(code[i + 3:end - 1]))
                held = base | {lk for _, lk in active}
                func.acquisitions.append((lock_id, t.line,
                                          frozenset(held)))
                active.append((depth, lock_id))
                i = end
                continue
        if (t.kind == "id" and s not in _CONTROL and
                s not in LOCK_CLASSES and i + 1 < n and
                code[i + 1].spelling == "("):
            qual = None
            keep = True
            if i >= 1 and code[i - 1].spelling in (".", "->"):
                # Member call on some object. Only `this->f()` is
                # resolvable by name; a call through another object
                # (`obj.load()`, `ptr->find()`) routinely collides
                # with unrelated project functions, so skip it rather
                # than poison the graph with false edges.
                keep = (code[i - 1].spelling == "->" and i >= 2 and
                        code[i - 2].spelling == "this")
            elif (i >= 3 and code[i - 1].spelling == ":" and
                    code[i - 2].spelling == ":" and
                    code[i - 3].kind == "id" and
                    code[i - 3].spelling not in ("std",)):
                qual = code[i - 3].spelling
            if keep:
                held = base | {lk for _, lk in active}
                func.calls.append((s, qual, t.line, frozenset(held)))
        i += 1
    return n


def parse_lock_functions(path, tokens):
    """Structural parse of one file: function definitions with their
    scoped-lock acquisitions, ANSMET_REQUIRES preconditions, and the
    calls made under held locks. Tolerant by construction — anything it
    cannot prove to be a function definition is skipped."""
    code = code_tokens(tokens)
    n = len(code)
    funcs = []
    class_stack = []  # (name, depth inside the class body)
    depth = 0
    i = 0
    while i < n:
        t = code[i]
        s = t.spelling
        if s == "{":
            depth += 1
            i += 1
            continue
        if s == "}":
            depth -= 1
            while class_stack and depth < class_stack[-1][1]:
                class_stack.pop()
            i += 1
            continue
        if t.kind == "id" and s in ("class", "struct"):
            name = None
            j = i + 1
            while j < n and code[j].spelling not in ("{", ";", ":"):
                if code[j].spelling == "(":  # attribute macro args
                    j = skip_balanced(code, j, "(", ")") or n
                    continue
                if code[j].kind == "id":
                    name = code[j].spelling
                j += 1
            while j < n and code[j].spelling not in ("{", ";"):
                j += 1
            if j < n and code[j].spelling == "{" and name:
                class_stack.append((name, depth + 1))
            i += 1
            continue
        if (t.kind == "id" and s not in _CONTROL and i + 1 < n and
                code[i + 1].spelling == "("):
            parsed = _try_parse_function(path, code, i, class_stack)
            if parsed is not None:
                func, next_i = parsed
                funcs.append(func)
                i = next_i
                continue
        i += 1
    return funcs


def _try_parse_function(path, code, i, class_stack):
    """Attempt to parse a function definition headed at code[i]
    (an identifier followed by '('). Returns (FuncInfo, index past the
    body) or None when this is not a definition."""
    n = len(code)
    name = code[i].spelling
    owner = None
    if (i >= 3 and code[i - 1].spelling == ":" and
            code[i - 2].spelling == ":" and code[i - 3].kind == "id"):
        owner = code[i - 3].spelling
    elif class_stack:
        owner = class_stack[-1][0]
    params_end = skip_balanced(code, i + 1, "(", ")")
    if params_end is None:
        return None
    requires = set()
    seen_init_colon = False
    k = params_end
    while k < n:
        s = code[k].spelling
        if s in (";", "}", "="):
            return None  # declaration, `= default/delete`, initializer
        if (code[k].kind == "id" and s in REQUIRES_MACROS and
                k + 1 < n and code[k + 1].spelling == "("):
            end = skip_balanced(code, k + 1, "(", ")")
            if end is None:
                return None
            for arg in split_top_commas(code[k + 2:end - 1]):
                if arg:
                    requires.add(_qualify(owner, render_expr(arg)))
            k = end
            continue
        if s == "(":  # noexcept(...), other annotation macros
            k = skip_balanced(code, k, "(", ")") or n
            continue
        if s == ":":
            seen_init_colon = True
            k += 1
            continue
        if s == "{":
            if seen_init_colon and code[k - 1].kind == "id":
                # Brace member-init inside a ctor init list: b_{2}
                k = skip_balanced(code, k, "{", "}") or n
                continue
            break  # the function body
        k += 1
    else:
        return None
    func = FuncInfo(f"{owner}::{name}" if owner else name, owner, path)
    func.requires = requires
    body_end = _scan_function_body(code, k, owner, func)
    return func, body_end


def check_lock_order(lock_facts, findings):
    """Global pass: build the lock-order graph across every scanned
    file and report each cycle once, with its full path.

    lock_facts: list of (path, [FuncInfo], waived-map) triples.
    """
    funcs_by_last = {}
    for _, funcs, _ in lock_facts:
        for f in funcs:
            funcs_by_last.setdefault(f.name.split("::")[-1],
                                     []).append(f)

    def resolve(callee, qual, caller):
        """Candidate definitions for a call site. An explicit `Foo::`
        qualifier pins the owner; an unqualified call resolves only to
        methods of the caller's own class or to free functions —
        cross-class resolution by bare name is how unrelated functions
        that happen to share a method name (e.g. `load`) would
        otherwise pollute the graph."""
        out = []
        for g in funcs_by_last.get(callee, ()):
            if qual is not None:
                if g.owner == qual:
                    out.append(g)
            elif g.owner is None or g.owner == caller.owner:
                out.append(g)
        return out

    # Transitive may-acquire sets, propagated through direct calls.
    every = [f for _, funcs, _ in lock_facts for f in funcs]
    trans = {id(f): {a[0] for a in f.acquisitions} for f in every}
    changed = True
    rounds = 0
    while changed and rounds < 64:
        changed = False
        rounds += 1
        for f in every:
            for callee, qual, _, _ in f.calls:
                for g in resolve(callee, qual, f):
                    add = trans[id(g)] - trans[id(f)]
                    if add:
                        trans[id(f)] |= add
                        changed = True

    # Edges A -> B: lock B acquired (directly or via a call) while A is
    # held. Witness: where the edge is introduced.
    edges = {}  # (A, B) -> (path, line, description)
    for path, funcs, waived in lock_facts:
        for f in funcs:
            for lock, line, held in f.acquisitions:
                if is_waived(waived, RULES["R7"], line):
                    continue
                for a in sorted(held):
                    if a != lock:
                        edges.setdefault(
                            (a, lock),
                            (path, line, f"{f.name} acquires {lock}"))
            for callee, qual, line, held in f.calls:
                if not held or is_waived(waived, RULES["R7"], line):
                    continue
                for g in resolve(callee, qual, f):
                    for lock in sorted(trans[id(g)]):
                        for a in sorted(held):
                            if a != lock:
                                edges.setdefault(
                                    (a, lock),
                                    (path, line,
                                     f"{f.name} calls {g.name} which "
                                     f"acquires {lock}"))

    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)
    for nbrs in adj.values():
        nbrs.sort()

    # Iterative coloring DFS; every cycle is reported once, normalized
    # by rotating its smallest lock to the front.
    color = {}
    reported = set()

    def emit(cycle):
        pivot = cycle.index(min(cycle))
        norm = tuple(cycle[pivot:] + cycle[:pivot])
        if norm in reported:
            return
        reported.add(norm)
        ring = list(norm) + [norm[0]]
        hops = []
        for a, b in zip(ring, ring[1:]):
            epath, eline, edesc = edges[(a, b)]
            hops.append(f"{a} -> {b} [{edesc} at {epath}:{eline}]")
        first = edges[(ring[0], ring[1])]
        findings.append(Finding(
            first[0], first[1], "R7",
            "lock-order cycle (latent deadlock): "
            + " -> ".join(ring) + "; " + "; ".join(hops)))

    def dfs(root):
        stack = [(root, iter(adj.get(root, ())))]
        path = [root]
        color[root] = "gray"
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt) == "gray":
                    emit(path[path.index(nxt):])
                elif color.get(nxt) is None:
                    color[nxt] = "gray"
                    stack.append((nxt, iter(adj.get(nxt, ()))))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = "black"
                stack.pop()
                path.pop()

    for node in sorted(adj):
        if color.get(node) is None:
            dfs(node)


# --------------------------------------------------------------------
# R8 ansmet-danglecapture: by-reference captures escaping into
# deferred callbacks
# --------------------------------------------------------------------

def _callback_sink_ranges(code):
    """Yield (lo, hi, description) index ranges of code token slices
    whose lambdas become deferred callbacks: schedule()/scheduleIn()
    argument lists and the right-hand side of `onComplete = ...`."""
    n = len(code)
    for idx, t in enumerate(code):
        if t.kind != "id":
            continue
        if (t.spelling in SCHEDULE_CALLS and idx + 1 < n and
                code[idx + 1].spelling == "("):
            end = skip_balanced(code, idx + 1, "(", ")")
            if end is not None:
                yield idx + 2, end - 1, f"{t.spelling}()"
        elif (t.spelling in CALLBACK_FIELDS and idx + 1 < n and
              code[idx + 1].spelling == "=" and
              (idx + 2 >= n or code[idx + 2].spelling != "=")):
            j = idx + 2
            depth = 0
            while j < n:
                s = code[j].spelling
                if s in "([{":
                    depth += 1
                elif s in ")]}":
                    depth -= 1
                    if depth < 0:
                        break
                elif s == ";" and depth == 0:
                    break
                j += 1
            yield idx + 2, j, f"{t.spelling} assignment"


def check_dangle_capture(path, tokens, waived, findings):
    if not path_in(path, SIM_HOT_DIRS):
        return
    code = code_tokens(tokens)
    for lo, hi, what in _callback_sink_ranges(code):
        j = lo
        while j < hi:
            t = code[j]
            if t.spelling != "[":
                j += 1
                continue
            prev = code[j - 1] if j > 0 else None
            # `[` after a value expression is a subscript, not a
            # lambda introducer.
            if prev is not None and (prev.kind in ("id", "literal") or
                                     prev.spelling in (")", "]")):
                j += 1
                continue
            end = skip_balanced(code, j, "[", "]")
            if end is None:
                j += 1
                continue
            for cap in split_top_commas(code[j + 1:end - 1]):
                if not cap:
                    continue
                bad = None
                if cap[0].spelling == "&":
                    if len(cap) == 1:
                        bad = "the enclosing frame by reference ([&])"
                    else:
                        bad = (f"'{cap[1].spelling}' by reference "
                               f"(&{cap[1].spelling})")
                if bad and not is_waived(waived, RULES["R8"], t.line):
                    findings.append(Finding(
                        path, t.line, "R8",
                        f"deferred callback in {what} captures {bad}: "
                        f"the callback runs after the enclosing frame "
                        f"is gone; capture by value or [this]"))
            j = end


# --------------------------------------------------------------------
# Per-file rule driver
# --------------------------------------------------------------------

def lint_file(path, repo_root, tokens):
    """Run every per-file rule; returns (findings, FuncInfos, waived)
    so the driver can finish with the cross-file lock-order pass."""
    rel = os.path.relpath(path, repo_root)
    findings = []
    waived = suppressed_lines(tokens)
    check_determinism(rel, tokens, waived, findings)
    check_raw_new_delete(rel, tokens, waived, findings)
    check_nolint_justified(rel, tokens, findings)
    check_raw_sync(rel, tokens, waived, findings)
    check_event_capture(rel, tokens, waived, findings)
    check_tick_units(rel, tokens, waived, findings)
    check_dangle_capture(rel, tokens, waived, findings)
    funcs = parse_lock_functions(rel, tokens)
    return findings, funcs, waived


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def collect_files(repo_root, paths):
    if paths:
        out = []
        for p in paths:
            if os.path.isdir(p):
                for dirpath, _, names in os.walk(p):
                    out.extend(os.path.join(dirpath, n) for n in names
                               if n.endswith((".h", ".cc")))
            else:
                out.append(p)
        return sorted(out)
    src = os.path.join(repo_root, "src")
    out = []
    for dirpath, _, names in os.walk(src):
        out.extend(os.path.join(dirpath, n) for n in names
                   if n.endswith((".h", ".cc")))
    return sorted(out)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="ANSMET determinism/style linter (rules R1-R8)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: <repo>/src)")
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--build-dir", default=None,
                    help="build tree with compile_commands.json "
                         "(libclang engine only; default: <repo>/build)")
    ap.add_argument("--engine", choices=("auto", "libclang", "lexical"),
                    default="auto",
                    help="auto: libclang when importable, else the "
                         "built-in lexer; libclang: require it and "
                         "SKIP (exit 0) when absent")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, name in RULES.items():
            print(f"{rule}  {name}")
        return 0

    repo_root = os.path.abspath(
        args.repo or
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    build_dir = args.build_dir or os.path.join(repo_root, "build")

    cindex = None
    if args.engine in ("auto", "libclang"):
        cindex = try_import_libclang()
        if cindex is None:
            if args.engine == "libclang":
                print("ansmet_lint: libclang python bindings not found;"
                      " SKIPPING AST engine (install python3-clang)",
                      file=sys.stderr)
                return 0
            print("ansmet_lint: libclang python bindings not found; "
                  "falling back to the built-in lexer (lexical "
                  "findings are a superset of the AST engine's)",
                  file=sys.stderr)

    files = collect_files(repo_root, args.paths)
    if not files:
        print("ansmet_lint: no input files", file=sys.stderr)
        return 2

    findings = []
    lock_facts = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"ansmet_lint: cannot read {path}: {e}",
                  file=sys.stderr)
            return 2
        tu = None
        if cindex is not None:
            try:
                tu = clang_parse(cindex, path, text,
                                 compile_args_for(path, build_dir))
                tokens = clang_tokens(cindex, tu, path)
            except Exception as e:
                print(f"ansmet_lint: libclang failed on {path} ({e}); "
                      f"using the built-in lexer", file=sys.stderr)
                tu = None
                tokens = lex_tokens(text)
        else:
            tokens = lex_tokens(text)
        file_findings, funcs, waived = lint_file(path, repo_root,
                                                 tokens)
        if tu is not None:
            file_findings = ast_refine(cindex, tu, file_findings)
        findings.extend(file_findings)
        lock_facts.append((os.path.relpath(path, repo_root), funcs,
                           waived))
    check_lock_order(lock_facts, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding.render())
    engine = "libclang" if cindex is not None else "lexical"
    if findings:
        print(f"ansmet_lint: {len(findings)} finding(s) over "
              f"{len(files)} files ({engine} engine)", file=sys.stderr)
        return 1
    print(f"ansmet_lint: clean ({len(files)} files, {engine} engine)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
